//! Shelf-based strip-packing baselines used for ablation studies.
//!
//! The HARP paper picks the best-fit skyline heuristic for resource-component
//! composition; these simpler packers exist to quantify that choice (see the
//! `packing_ablation` bench):
//!
//! * [`pack_strip_ffdh`] — First-Fit Decreasing Height: sort by height, place
//!   each item on the first shelf it fits, open a new shelf otherwise. The
//!   classic 1.7·OPT + 1 approximation.
//! * [`pack_strip_nfdh`] — Next-Fit Decreasing Height: like FFDH but only the
//!   topmost shelf may receive items (2·OPT bound, cheaper, worse fill).

use crate::skyline::StripPacking;
use crate::{PackError, Rect, Size};

/// A horizontal shelf: items are placed left to right, the shelf height is
/// fixed by its first (tallest) item.
#[derive(Debug, Clone)]
struct Shelf {
    y: u32,
    height: u32,
    used_width: u32,
}

fn validate(items: &[Size], width: u32) -> Result<(), PackError> {
    if width == 0 {
        return Err(PackError::ZeroWidthStrip);
    }
    for (index, item) in items.iter().enumerate() {
        if item.is_empty() {
            return Err(PackError::EmptyItem { index });
        }
        if item.w > width {
            return Err(PackError::ItemTooWide {
                index,
                item_width: item.w,
                strip_width: width,
            });
        }
    }
    Ok(())
}

/// Indices of `items` ordered by decreasing height (ties: decreasing width,
/// then input order). Shelf algorithms need this order for their guarantees.
fn decreasing_height_order(items: &[Size]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| (items[b].h, items[b].w, a).cmp(&(items[a].h, items[a].w, b)));
    order
}

fn shelf_pack(items: &[Size], width: u32, first_fit: bool) -> Result<StripPacking, PackError> {
    validate(items, width)?;
    let mut shelves: Vec<Shelf> = Vec::new();
    let mut placements = vec![Rect::default(); items.len()];
    let mut top = 0u32;

    for idx in decreasing_height_order(items) {
        let size = items[idx];
        let candidate = if first_fit {
            shelves
                .iter_mut()
                .find(|s| s.height >= size.h && s.used_width + size.w <= width)
        } else {
            shelves
                .last_mut()
                .filter(|s| s.height >= size.h && s.used_width + size.w <= width)
        };
        let shelf = match candidate {
            Some(shelf) => shelf,
            None => {
                shelves.push(Shelf {
                    y: top,
                    height: size.h,
                    used_width: 0,
                });
                top += size.h;
                shelves.last_mut().expect("just pushed")
            }
        };
        placements[idx] = Rect::from_xywh(shelf.used_width, shelf.y, size.w, size.h);
        shelf.used_width += size.w;
    }

    let height = placements.iter().map(Rect::top).max().unwrap_or(0);
    Ok(StripPacking::from_parts(placements, width, height))
}

/// Packs `items` into a strip of `width` using First-Fit Decreasing Height.
///
/// # Errors
///
/// Same conditions as [`crate::pack_strip`]: zero-width strip, empty items,
/// or an item wider than the strip.
///
/// # Examples
///
/// ```
/// use packing::{shelf::pack_strip_ffdh, Size};
///
/// # fn main() -> Result<(), packing::PackError> {
/// let items = [Size::new(3, 2), Size::new(3, 2), Size::new(4, 1)];
/// let packing = pack_strip_ffdh(&items, 6)?;
/// assert_eq!(packing.height(), 3); // shelf of height 2, shelf of height 1
/// # Ok(())
/// # }
/// ```
pub fn pack_strip_ffdh(items: &[Size], width: u32) -> Result<StripPacking, PackError> {
    shelf_pack(items, width, true)
}

/// Packs `items` into a strip of `width` using Next-Fit Decreasing Height.
///
/// # Errors
///
/// Same conditions as [`crate::pack_strip`].
pub fn pack_strip_nfdh(items: &[Size], width: u32) -> Result<StripPacking, PackError> {
    shelf_pack(items, width, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_disjoint;

    fn sizes(v: &[(u32, u32)]) -> Vec<Size> {
        v.iter().map(|&(w, h)| Size::new(w, h)).collect()
    }

    fn check_valid(items: &[Size], packing: &StripPacking) {
        assert_eq!(packing.placements().len(), items.len());
        for (item, rect) in items.iter().zip(packing.placements()) {
            assert_eq!(rect.size, *item);
            assert!(rect.right() <= packing.width());
            assert!(rect.top() <= packing.height());
        }
        assert!(all_disjoint(packing.placements()));
    }

    #[test]
    fn ffdh_single_shelf() {
        let items = sizes(&[(2, 2), (2, 2), (2, 2)]);
        let p = pack_strip_ffdh(&items, 6).unwrap();
        check_valid(&items, &p);
        assert_eq!(p.height(), 2);
    }

    #[test]
    fn ffdh_reuses_earlier_shelf() {
        // Heights sorted: 3, 2, 1, 1. The two unit items return to shelf 1's
        // spare width under FFDH but not under NFDH.
        let items = sizes(&[(4, 3), (4, 2), (1, 1), (1, 1)]);
        let ffdh = pack_strip_ffdh(&items, 6).unwrap();
        let nfdh = pack_strip_nfdh(&items, 6).unwrap();
        check_valid(&items, &ffdh);
        check_valid(&items, &nfdh);
        assert_eq!(ffdh.height(), 5);
        assert!(nfdh.height() >= ffdh.height());
    }

    #[test]
    fn nfdh_only_uses_top_shelf() {
        let items = sizes(&[(4, 3), (4, 2), (2, 1)]);
        let p = pack_strip_nfdh(&items, 6).unwrap();
        check_valid(&items, &p);
        // The 2x1 fits beside the 4x2 on the top shelf.
        assert_eq!(p.height(), 5);
    }

    #[test]
    fn shelf_errors_match_skyline() {
        assert_eq!(
            pack_strip_ffdh(&[Size::new(1, 1)], 0).unwrap_err(),
            PackError::ZeroWidthStrip
        );
        assert_eq!(
            pack_strip_ffdh(&sizes(&[(0, 1)]), 5).unwrap_err(),
            PackError::EmptyItem { index: 0 }
        );
        assert_eq!(
            pack_strip_nfdh(&sizes(&[(9, 1)]), 5).unwrap_err(),
            PackError::ItemTooWide {
                index: 0,
                item_width: 9,
                strip_width: 5
            }
        );
    }

    #[test]
    fn empty_input_is_flat() {
        assert_eq!(pack_strip_ffdh(&[], 5).unwrap().height(), 0);
        assert_eq!(pack_strip_nfdh(&[], 5).unwrap().height(), 0);
    }

    #[test]
    fn skyline_not_worse_than_shelves_on_mixed_load() {
        // Sanity anchor for the ablation claim: on a mixed workload the
        // skyline heuristic should not lose to the shelf baselines.
        let items = sizes(&[
            (5, 3),
            (3, 4),
            (2, 2),
            (4, 1),
            (1, 5),
            (6, 2),
            (2, 3),
            (3, 1),
        ]);
        let sky = crate::pack_strip(&items, 8).unwrap();
        let ffdh = pack_strip_ffdh(&items, 8).unwrap();
        let nfdh = pack_strip_nfdh(&items, 8).unwrap();
        check_valid(&items, &sky);
        assert!(sky.height() <= ffdh.height());
        assert!(ffdh.height() <= nfdh.height());
    }
}
