//! Rectangle Packing Problem (RPP): can a set of rectangles fit inside a
//! fixed container?
//!
//! HARP's dynamic-adjustment *feasibility test* (Problem 2 in the paper) is an
//! RPP instance: given the updated resource component and its siblings, decide
//! whether they still fit in the parent's partition. Following the paper we
//! answer it with the best-fit skyline heuristic — pack into a strip of the
//! container's width and accept if the achieved height fits. The heuristic is
//! sound (a reported packing is always valid) but, like any heuristic for an
//! NP-hard problem, incomplete: it may report "no" for instances an exact
//! solver could pack.

use crate::{pack_strip, PackError, Rect, Size};

/// Attempts to pack `items` inside a `container` of fixed size.
///
/// On success, returns one placement per item (input order) whose rectangles
/// are pairwise disjoint and lie within `(0,0)..(container.w, container.h)`.
/// Returns `Ok(None)` when the heuristic cannot fit the items.
///
/// The heuristic tries both axis assignments (packing along the container's
/// width and along its height) and accepts the first that fits, which in
/// practice recovers most of the gap to an exact solver at negligible cost.
///
/// # Errors
///
/// * [`PackError::ZeroWidthStrip`] if the container has a zero dimension.
/// * [`PackError::EmptyItem`] if any item has a zero dimension.
///
/// An item larger than the container is not an error — it simply makes the
/// instance infeasible (`Ok(None)`).
///
/// # Examples
///
/// ```
/// use packing::{pack_into, Size};
///
/// # fn main() -> Result<(), packing::PackError> {
/// let items = [Size::new(2, 2), Size::new(2, 2)];
/// assert!(pack_into(&items, Size::new(4, 2))?.is_some());
/// assert!(pack_into(&items, Size::new(3, 2))?.is_none());
/// # Ok(())
/// # }
/// ```
pub fn pack_into(items: &[Size], container: Size) -> Result<Option<Vec<Rect>>, PackError> {
    crate::obs::CONTAINER_PACKS.add(1);
    if container.is_empty() {
        return Err(PackError::ZeroWidthStrip);
    }
    for (index, item) in items.iter().enumerate() {
        if item.is_empty() {
            return Err(PackError::EmptyItem { index });
        }
    }
    if items.iter().any(|i| !i.fits_in(container)) {
        return Ok(None);
    }

    // Primary orientation: strip width = container width, height bound =
    // container height.
    let packing = pack_strip(items, container.w)?;
    if packing.height() <= container.h {
        return Ok(Some(packing.into_placements()));
    }

    // Secondary orientation: pack along the other axis (transpose the
    // instance, then transpose the placements back). The items themselves are
    // still not rotated — only the packing direction changes.
    let transposed: Vec<Size> = items.iter().map(|s| s.transposed()).collect();
    let packing = pack_strip(&transposed, container.h)?;
    if packing.height() <= container.w {
        let placements = packing
            .into_placements()
            .into_iter()
            .map(|r| Rect::from_xywh(r.origin.y, r.origin.x, r.size.h, r.size.w))
            .collect();
        return Ok(Some(placements));
    }
    Ok(None)
}

/// Convenience wrapper for [`pack_into`] when only feasibility is needed.
///
/// # Errors
///
/// Same conditions as [`pack_into`].
///
/// # Examples
///
/// ```
/// use packing::{fits_into, Size};
///
/// # fn main() -> Result<(), packing::PackError> {
/// assert!(fits_into(&[Size::new(1, 1); 4], Size::new(2, 2))?);
/// assert!(!fits_into(&[Size::new(1, 1); 5], Size::new(2, 2))?);
/// # Ok(())
/// # }
/// ```
pub fn fits_into(items: &[Size], container: Size) -> Result<bool, PackError> {
    crate::obs::FEASIBILITY_TESTS.add(1);
    Ok(pack_into(items, container)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_disjoint;

    fn sizes(v: &[(u32, u32)]) -> Vec<Size> {
        v.iter().map(|&(w, h)| Size::new(w, h)).collect()
    }

    fn check_inside(items: &[Size], container: Size, placements: &[Rect]) {
        let bounds = Rect::from_xywh(0, 0, container.w, container.h);
        assert_eq!(placements.len(), items.len());
        for (item, rect) in items.iter().zip(placements) {
            assert_eq!(rect.size, *item);
            assert!(bounds.contains_rect(rect), "{rect} outside {container}");
        }
        assert!(all_disjoint(placements));
    }

    #[test]
    fn exact_tiling_fits() {
        let items = sizes(&[(2, 2); 4]);
        let container = Size::new(4, 4);
        let placements = pack_into(&items, container).unwrap().unwrap();
        check_inside(&items, container, &placements);
    }

    #[test]
    fn over_capacity_is_infeasible() {
        // Total area 17 > 16.
        let mut items = sizes(&[(2, 2); 4]);
        items.push(Size::new(1, 1));
        assert!(pack_into(&items, Size::new(4, 4)).unwrap().is_none());
    }

    #[test]
    fn item_taller_than_container_is_infeasible_not_error() {
        assert!(pack_into(&sizes(&[(1, 5)]), Size::new(10, 4))
            .unwrap()
            .is_none());
    }

    #[test]
    fn item_wider_than_container_is_infeasible_not_error() {
        assert!(pack_into(&sizes(&[(11, 1)]), Size::new(10, 4))
            .unwrap()
            .is_none());
    }

    #[test]
    fn empty_container_is_error() {
        assert_eq!(
            pack_into(&sizes(&[(1, 1)]), Size::new(0, 4)).unwrap_err(),
            PackError::ZeroWidthStrip
        );
    }

    #[test]
    fn empty_item_is_error() {
        assert_eq!(
            pack_into(&sizes(&[(1, 0)]), Size::new(4, 4)).unwrap_err(),
            PackError::EmptyItem { index: 0 }
        );
    }

    #[test]
    fn no_items_always_fit() {
        assert!(fits_into(&[], Size::new(1, 1)).unwrap());
    }

    #[test]
    fn transposed_orientation_rescues_tall_instances() {
        // Three 1x4 columns in a 3x4 container: the primary orientation
        // packs them side by side already, but a 4x1-rows instance in a
        // 1x12 container needs nothing fancy either. Construct a case where
        // packing along the height axis is the natural fit.
        let items = sizes(&[(1, 4), (1, 4), (1, 4)]);
        let container = Size::new(3, 4);
        let placements = pack_into(&items, container).unwrap().unwrap();
        check_inside(&items, container, &placements);
    }

    #[test]
    fn feasibility_matches_packing() {
        let items = sizes(&[(3, 2), (2, 3), (2, 2)]);
        let container = Size::new(5, 4);
        let fit = fits_into(&items, container).unwrap();
        let packed = pack_into(&items, container).unwrap();
        assert_eq!(fit, packed.is_some());
    }

    #[test]
    fn single_item_exactly_container_sized() {
        let items = sizes(&[(7, 3)]);
        let container = Size::new(7, 3);
        let placements = pack_into(&items, container).unwrap().unwrap();
        check_inside(&items, container, &placements);
        assert_eq!(placements[0], Rect::from_xywh(0, 0, 7, 3));
    }

    #[test]
    fn harp_shaped_instance_rows_fit() {
        // HARP components at a layer are rows [n_s, 1]; many rows must fit a
        // partition that is wide in slots and short in channels.
        let items = sizes(&[(5, 1), (3, 1), (4, 1), (2, 1), (6, 1)]);
        let container = Size::new(10, 2);
        let placements = pack_into(&items, container).unwrap().unwrap();
        check_inside(&items, container, &placements);
    }
}
