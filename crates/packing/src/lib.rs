//! 2-D rectangle packing substrate for the HARP reproduction.
//!
//! The HARP framework (ICDCS 2022) reduces its three core geometric problems
//! to rectangle packing:
//!
//! * **Resource component composition** (Alg. 1) → strip packing, solved here
//!   by the best-fit skyline heuristic: [`pack_strip`].
//! * **Feasibility test** (Problem 2) → rectangle packing into a fixed
//!   container: [`pack_into`] / [`fits_into`].
//! * **Cost-aware partition adjustment** (Alg. 2) → packing into the *idle*
//!   areas of a partly occupied container: [`FreeSpace`].
//!
//! Rectangles are never rotated — the axes represent time slots and channels,
//! which are semantically distinct in a TSCH slotframe.
//!
//! # Examples
//!
//! Compose three per-subtree resource components into a strip limited to 16
//! channels, as a HARP node would when building its resource interface:
//!
//! ```
//! use packing::{pack_strip, Size};
//!
//! # fn main() -> Result<(), packing::PackError> {
//! // Components are (channels, slots) here: strip width = channel budget.
//! let components = [Size::new(1, 5), Size::new(2, 3), Size::new(1, 2)];
//! let packing = pack_strip(&components, 16)?;
//! assert_eq!(packing.height(), 5); // all fit side by side in 5 slots
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exact;
mod maxrects;
mod rect;
mod rpp;
pub mod shelf;
mod skyline;

pub use exact::{exact_strip_height, ExactResult};
pub use maxrects::FreeSpace;
pub use rect::{all_disjoint, Point, Rect, Size};
pub use rpp::{fits_into, pack_into};
pub use skyline::{pack_strip, Skyline, StripPacking};

use core::fmt;

/// Process-wide activity counters of the packing substrate.
///
/// The packing algorithms are pure functions with no handle to thread an
/// [`harp_obs::Obs`] through, so the library keeps always-on global totals
/// instead: plain relaxed atomics whose cost is one uncontended fetch-add
/// per *algorithm invocation* (never per inner-loop step). Fold them into a
/// snapshot with [`harp_obs::MetricsSnapshot::add_counters`] via
/// [`totals`](obs::totals).
pub mod obs {
    use harp_obs::StaticCounter;

    /// Strip packings computed ([`pack_strip`](crate::pack_strip) — HARP's
    /// component composition, Alg. 1).
    pub static STRIP_PACKS: StaticCounter = StaticCounter::new();
    /// Fixed-container packings attempted ([`pack_into`](crate::pack_into)).
    pub static CONTAINER_PACKS: StaticCounter = StaticCounter::new();
    /// Feasibility tests run ([`fits_into`](crate::fits_into) — Problem 2).
    pub static FEASIBILITY_TESTS: StaticCounter = StaticCounter::new();
    /// Idle-area batch placements
    /// ([`FreeSpace::place_all`](crate::FreeSpace::place_all) — Alg. 2's
    /// cost-aware adjustment).
    pub static FREESPACE_PLACEMENTS: StaticCounter = StaticCounter::new();

    /// Current totals, in the shape
    /// [`MetricsSnapshot::add_counters`](harp_obs::MetricsSnapshot::add_counters)
    /// accepts. Totals are process-wide and monotonic (tests and parallel
    /// sweeps sharing the process all contribute).
    #[must_use]
    pub fn totals() -> [(&'static str, u64); 4] {
        [
            ("packing.strip_packs", STRIP_PACKS.get()),
            ("packing.container_packs", CONTAINER_PACKS.get()),
            ("packing.feasibility_tests", FEASIBILITY_TESTS.get()),
            ("packing.freespace_placements", FREESPACE_PLACEMENTS.get()),
        ]
    }
}

/// Errors reported by the packing algorithms.
///
/// All of these indicate invalid *input* — a heuristic failing to find a
/// packing is expressed in the success type (`None` placements), not as an
/// error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PackError {
    /// The strip or container has a zero dimension.
    ZeroWidthStrip,
    /// An item has a zero width or height.
    EmptyItem {
        /// Index of the offending item in the input slice.
        index: usize,
    },
    /// An item is wider than the strip it must be packed into.
    ItemTooWide {
        /// Index of the offending item in the input slice.
        index: usize,
        /// The item's width.
        item_width: u32,
        /// The strip width it exceeds.
        strip_width: u32,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::ZeroWidthStrip => write!(f, "strip or container has a zero dimension"),
            PackError::EmptyItem { index } => {
                write!(f, "item {index} has a zero width or height")
            }
            PackError::ItemTooWide {
                index,
                item_width,
                strip_width,
            } => write!(
                f,
                "item {index} of width {item_width} exceeds strip width {strip_width}"
            ),
        }
    }
}

impl std::error::Error for PackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_lowercase_and_specific() {
        let e = PackError::ItemTooWide {
            index: 3,
            item_width: 9,
            strip_width: 5,
        };
        assert_eq!(e.to_string(), "item 3 of width 9 exceeds strip width 5");
        assert!(PackError::ZeroWidthStrip.to_string().starts_with("strip"));
    }

    #[test]
    fn error_is_send_sync_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<PackError>();
    }

    #[test]
    fn public_types_are_debug_clone() {
        fn assert_traits<T: std::fmt::Debug + Clone>() {}
        assert_traits::<Size>();
        assert_traits::<Point>();
        assert_traits::<Rect>();
        assert_traits::<PackError>();
        assert_traits::<StripPacking>();
        assert_traits::<FreeSpace>();
    }
}
