//! Axis-aligned rectangle geometry used throughout the packing algorithms.
//!
//! All coordinates are unsigned integers: in the HARP setting a rectangle's
//! width/height count time slots and channels, which are small non-negative
//! quantities. Rectangles are half-open: a rectangle at `(x, y)` with size
//! `(w, h)` covers the cells `x..x+w` × `y..y+h`.

use core::fmt;

/// A width × height extent with no position.
///
/// # Examples
///
/// ```
/// use packing::Size;
///
/// let s = Size::new(4, 2);
/// assert_eq!(s.area(), 8);
/// assert!(!s.is_empty());
/// assert!(s.fits_in(Size::new(4, 3)));
/// assert!(!s.fits_in(Size::new(3, 3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Size {
    /// Horizontal extent (number of columns).
    pub w: u32,
    /// Vertical extent (number of rows).
    pub h: u32,
}

impl Size {
    /// Creates a new size.
    #[must_use]
    pub const fn new(w: u32, h: u32) -> Self {
        Self { w, h }
    }

    /// The number of unit cells covered by this extent.
    #[must_use]
    pub const fn area(self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// Returns `true` if either dimension is zero.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Returns `true` if `self` fits inside `other` without rotation.
    #[must_use]
    pub const fn fits_in(self, other: Size) -> bool {
        self.w <= other.w && self.h <= other.h
    }

    /// Swaps width and height.
    #[must_use]
    pub const fn transposed(self) -> Size {
        Size::new(self.h, self.w)
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.w, self.h)
    }
}

impl From<(u32, u32)> for Size {
    fn from((w, h): (u32, u32)) -> Self {
        Size::new(w, h)
    }
}

/// A point in the packing plane.
///
/// # Examples
///
/// ```
/// use packing::Point;
///
/// let p = Point::new(3, 1);
/// assert_eq!((p.x, p.y), (3, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: u32,
    /// Vertical coordinate.
    pub y: u32,
}

impl Point {
    /// Creates a new point.
    #[must_use]
    pub const fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u32, u32)> for Point {
    fn from((x, y): (u32, u32)) -> Self {
        Point::new(x, y)
    }
}

/// A positioned, axis-aligned rectangle (half-open on both axes).
///
/// # Examples
///
/// ```
/// use packing::Rect;
///
/// let a = Rect::from_xywh(0, 0, 4, 2);
/// let b = Rect::from_xywh(3, 1, 2, 2);
/// let c = Rect::from_xywh(4, 0, 1, 1);
/// assert!(a.overlaps(&b));
/// assert!(!a.overlaps(&c)); // touching edges do not overlap
/// assert!(a.contains_rect(&Rect::from_xywh(1, 0, 2, 2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Position of the lower-left corner.
    pub origin: Point,
    /// Extent of the rectangle.
    pub size: Size,
}

impl Rect {
    /// Creates a rectangle from an origin and a size.
    #[must_use]
    pub const fn new(origin: Point, size: Size) -> Self {
        Self { origin, size }
    }

    /// Creates a rectangle from raw coordinates.
    #[must_use]
    pub const fn from_xywh(x: u32, y: u32, w: u32, h: u32) -> Self {
        Self::new(Point::new(x, y), Size::new(w, h))
    }

    /// Leftmost column (inclusive).
    #[must_use]
    pub const fn left(&self) -> u32 {
        self.origin.x
    }

    /// One past the rightmost column (exclusive).
    #[must_use]
    pub const fn right(&self) -> u32 {
        self.origin.x + self.size.w
    }

    /// Bottom row (inclusive).
    #[must_use]
    pub const fn bottom(&self) -> u32 {
        self.origin.y
    }

    /// One past the top row (exclusive).
    #[must_use]
    pub const fn top(&self) -> u32 {
        self.origin.y + self.size.h
    }

    /// Width of the rectangle.
    #[must_use]
    pub const fn width(&self) -> u32 {
        self.size.w
    }

    /// Height of the rectangle.
    #[must_use]
    pub const fn height(&self) -> u32 {
        self.size.h
    }

    /// Area in unit cells.
    #[must_use]
    pub const fn area(&self) -> u64 {
        self.size.area()
    }

    /// Returns `true` if the rectangle covers no cells.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.size.is_empty()
    }

    /// Returns `true` if the two rectangles share at least one unit cell.
    ///
    /// Rectangles that merely touch along an edge do not overlap.
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.left() < other.right()
            && other.left() < self.right()
            && self.bottom() < other.top()
            && other.bottom() < self.top()
    }

    /// Returns `true` if `other` lies entirely within `self`.
    ///
    /// An empty rectangle is contained anywhere its origin lies within the
    /// closed bounds of `self`.
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.left() >= self.left()
            && other.right() <= self.right()
            && other.bottom() >= self.bottom()
            && other.top() <= self.top()
    }

    /// Returns `true` if the unit cell at `(x, y)` lies inside the rectangle.
    #[must_use]
    pub fn contains_cell(&self, x: u32, y: u32) -> bool {
        x >= self.left() && x < self.right() && y >= self.bottom() && y < self.top()
    }

    /// The intersection of two rectangles, if it is non-empty.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        let x = self.left().max(other.left());
        let y = self.bottom().max(other.bottom());
        let r = self.right().min(other.right());
        let t = self.top().min(other.top());
        Some(Rect::from_xywh(x, y, r - x, t - y))
    }

    /// Translates the rectangle by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: u32, dy: u32) -> Rect {
        Rect::new(
            Point::new(self.origin.x + dx, self.origin.y + dy),
            self.size,
        )
    }

    /// The Chebyshev (L∞) distance between the closest cells of two
    /// rectangles; `0` when they touch or overlap.
    ///
    /// Used by the partition-adjustment heuristic (Alg. 2 in the paper) to
    /// pick "the partition closest to `P_j,l`" when freeing space.
    #[must_use]
    pub fn distance_to(&self, other: &Rect) -> u32 {
        let dx = gap(self.left(), self.right(), other.left(), other.right());
        let dy = gap(self.bottom(), self.top(), other.bottom(), other.top());
        dx.max(dy)
    }
}

/// The gap between two 1-D half-open intervals; `0` when they intersect or touch.
fn gap(a_lo: u32, a_hi: u32, b_lo: u32, b_hi: u32) -> u32 {
    if a_hi >= b_lo && b_hi >= a_lo {
        0
    } else if a_hi < b_lo {
        b_lo - a_hi
    } else {
        a_lo - b_hi
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.size, self.origin)
    }
}

/// Returns `true` if no pair of rectangles in `rects` overlaps.
///
/// Runs in O(n²); intended for validation and tests rather than hot paths.
#[must_use]
pub fn all_disjoint(rects: &[Rect]) -> bool {
    for (i, a) in rects.iter().enumerate() {
        for b in &rects[i + 1..] {
            if a.overlaps(b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_area_and_empty() {
        assert_eq!(Size::new(3, 4).area(), 12);
        assert!(Size::new(0, 4).is_empty());
        assert!(Size::new(4, 0).is_empty());
        assert!(!Size::new(1, 1).is_empty());
    }

    #[test]
    fn size_area_does_not_overflow_u32() {
        let s = Size::new(u32::MAX, u32::MAX);
        assert_eq!(s.area(), u32::MAX as u64 * u32::MAX as u64);
    }

    #[test]
    fn size_fits_in_requires_both_dims() {
        assert!(Size::new(2, 2).fits_in(Size::new(2, 2)));
        assert!(!Size::new(3, 1).fits_in(Size::new(2, 2)));
        assert!(!Size::new(1, 3).fits_in(Size::new(2, 2)));
    }

    #[test]
    fn size_transposed_swaps() {
        assert_eq!(Size::new(3, 7).transposed(), Size::new(7, 3));
    }

    #[test]
    fn rect_edges() {
        let r = Rect::from_xywh(2, 3, 4, 5);
        assert_eq!(r.left(), 2);
        assert_eq!(r.right(), 6);
        assert_eq!(r.bottom(), 3);
        assert_eq!(r.top(), 8);
        assert_eq!(r.area(), 20);
    }

    #[test]
    fn overlap_is_strict() {
        let a = Rect::from_xywh(0, 0, 2, 2);
        assert!(!a.overlaps(&Rect::from_xywh(2, 0, 2, 2)), "edge touch");
        assert!(!a.overlaps(&Rect::from_xywh(0, 2, 2, 2)), "edge touch");
        assert!(!a.overlaps(&Rect::from_xywh(2, 2, 2, 2)), "corner touch");
        assert!(a.overlaps(&Rect::from_xywh(1, 1, 2, 2)));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn empty_rect_never_overlaps() {
        let a = Rect::from_xywh(0, 0, 2, 2);
        let e = Rect::from_xywh(1, 1, 0, 3);
        assert!(!a.overlaps(&e));
        assert!(!e.overlaps(&a));
    }

    #[test]
    fn containment() {
        let outer = Rect::from_xywh(0, 0, 10, 10);
        assert!(outer.contains_rect(&Rect::from_xywh(0, 0, 10, 10)));
        assert!(outer.contains_rect(&Rect::from_xywh(9, 9, 1, 1)));
        assert!(!outer.contains_rect(&Rect::from_xywh(9, 9, 2, 1)));
    }

    #[test]
    fn contains_cell_matches_bounds() {
        let r = Rect::from_xywh(1, 1, 2, 2);
        assert!(r.contains_cell(1, 1));
        assert!(r.contains_cell(2, 2));
        assert!(!r.contains_cell(3, 1));
        assert!(!r.contains_cell(0, 1));
    }

    #[test]
    fn intersection_clips() {
        let a = Rect::from_xywh(0, 0, 4, 4);
        let b = Rect::from_xywh(2, 3, 5, 5);
        assert_eq!(a.intersection(&b), Some(Rect::from_xywh(2, 3, 2, 1)));
        assert_eq!(a.intersection(&Rect::from_xywh(4, 0, 1, 1)), None);
    }

    #[test]
    fn distance_zero_when_touching() {
        let a = Rect::from_xywh(0, 0, 2, 2);
        assert_eq!(a.distance_to(&Rect::from_xywh(2, 0, 2, 2)), 0);
        assert_eq!(a.distance_to(&Rect::from_xywh(1, 1, 3, 3)), 0);
    }

    #[test]
    fn distance_is_chebyshev_gap() {
        let a = Rect::from_xywh(0, 0, 2, 2);
        assert_eq!(a.distance_to(&Rect::from_xywh(5, 0, 1, 1)), 3);
        assert_eq!(a.distance_to(&Rect::from_xywh(0, 6, 1, 1)), 4);
        assert_eq!(a.distance_to(&Rect::from_xywh(5, 6, 1, 1)), 4);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Rect::from_xywh(0, 0, 2, 2);
        let b = Rect::from_xywh(7, 3, 1, 4);
        assert_eq!(a.distance_to(&b), b.distance_to(&a));
    }

    #[test]
    fn all_disjoint_detects_overlap() {
        let ok = [Rect::from_xywh(0, 0, 2, 2), Rect::from_xywh(2, 0, 2, 2)];
        assert!(all_disjoint(&ok));
        let bad = [Rect::from_xywh(0, 0, 2, 2), Rect::from_xywh(1, 1, 2, 2)];
        assert!(!all_disjoint(&bad));
    }

    #[test]
    fn conversions_from_tuples() {
        assert_eq!(Size::from((2, 3)), Size::new(2, 3));
        assert_eq!(Point::from((2, 3)), Point::new(2, 3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Size::new(2, 3).to_string(), "2x3");
        assert_eq!(Point::new(2, 3).to_string(), "(2, 3)");
        assert_eq!(Rect::from_xywh(1, 2, 3, 4).to_string(), "3x4+(1, 2)");
    }
}
