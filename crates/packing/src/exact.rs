//! Exact strip packing for small instances — the optimality baseline for
//! the skyline heuristic.
//!
//! The heuristic ablations need ground truth: how far from optimal is the
//! best-fit skyline on component-composition workloads? This module finds
//! the true minimal strip height by branch-and-bound over *normal
//! patterns* (Herz 1972; Christofides & Whitlock 1977): in any packing,
//! every rectangle can be pushed left and down until each coordinate is a
//! sum of other rectangles' widths/heights, so searching only those
//! coordinates is complete. Exponential, so callers pass a node budget;
//! instances up to ~8 rectangles solve instantly.

use crate::{PackError, Size};

/// Result of an exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactResult {
    /// The search completed: this is the true minimal height.
    Optimal(u32),
    /// The node budget ran out; the value is the best height found so far
    /// (a valid upper bound, possibly not optimal).
    Budget(u32),
}

impl ExactResult {
    /// The height, optimal or not.
    #[must_use]
    pub fn height(self) -> u32 {
        match self {
            ExactResult::Optimal(h) | ExactResult::Budget(h) => h,
        }
    }

    /// Returns `true` if the search proved optimality.
    #[must_use]
    pub fn is_optimal(self) -> bool {
        matches!(self, ExactResult::Optimal(_))
    }
}

struct Search {
    items: Vec<Size>,
    width: u32,
    /// Normal-pattern x coordinates (subset sums of widths, < width).
    xs: Vec<u32>,
    /// Normal-pattern y coordinates (subset sums of heights).
    ys: Vec<u32>,
    best: u32,
    nodes_left: u64,
    exhausted: bool,
}

/// All subset sums of `values` up to `bound` (inclusive), sorted.
fn subset_sums(values: &[u32], bound: u32) -> Vec<u32> {
    let mut sums = std::collections::BTreeSet::new();
    sums.insert(0u32);
    for &v in values {
        let snapshot: Vec<u32> = sums.iter().copied().collect();
        for s in snapshot {
            let t = s.saturating_add(v);
            if t <= bound {
                sums.insert(t);
            }
        }
    }
    sums.into_iter().collect()
}

impl Search {
    /// Places item `idx` (fixed order) at every feasible normal position.
    fn dfs(&mut self, placed: &mut Vec<(u32, u32, Size)>, idx: usize, current_height: u32) {
        if self.nodes_left == 0 {
            self.exhausted = true;
            return;
        }
        self.nodes_left -= 1;

        if idx == self.items.len() {
            self.best = self.best.min(current_height);
            return;
        }
        // Area lower bound on the final height.
        let remaining_area: u64 = self.items[idx..].iter().map(|s| s.area()).sum::<u64>()
            + placed.iter().map(|&(_, _, s)| s.area()).sum::<u64>();
        let lb = (remaining_area.div_ceil(u64::from(self.width))) as u32;
        if lb.max(current_height) >= self.best {
            return;
        }

        let size = self.items[idx];
        // Identical items in the fixed order: force non-decreasing (x, y)
        // positions between equal-sized neighbours to break the symmetry.
        let min_pos = if idx > 0 && self.items[idx - 1] == size {
            placed.last().map(|&(px, py, _)| (px, py)).unwrap_or((0, 0))
        } else {
            (0, 0)
        };
        for xi in 0..self.xs.len() {
            let x = self.xs[xi];
            if x + size.w > self.width {
                break; // xs sorted
            }
            for yi in 0..self.ys.len() {
                let y = self.ys[yi];
                if (x, y) < min_pos {
                    continue;
                }
                if y + size.h >= self.best {
                    break; // ys sorted
                }
                let candidate_top = current_height.max(y + size.h);
                if candidate_top >= self.best {
                    break;
                }
                let overlaps = placed.iter().any(|&(px, py, ps)| {
                    px < x + size.w && x < px + ps.w && py < y + size.h && y < py + ps.h
                });
                if overlaps {
                    continue;
                }
                placed.push((x, y, size));
                self.dfs(placed, idx + 1, candidate_top);
                placed.pop();
                if self.exhausted {
                    return;
                }
            }
        }
    }
}

/// Finds the minimal strip height for `items` in a strip of `width`,
/// searching at most `node_budget` branch-and-bound nodes.
///
/// # Errors
///
/// Same input validation as [`crate::pack_strip`], plus a 63-item cap (the
/// search uses a `u64` bitmask — far beyond what is tractable anyway).
///
/// # Examples
///
/// ```
/// use packing::{exact_strip_height, ExactResult, Size};
///
/// # fn main() -> Result<(), packing::PackError> {
/// let items = [Size::new(3, 2), Size::new(2, 2), Size::new(5, 1)];
/// let result = exact_strip_height(&items, 5, 100_000)?;
/// assert_eq!(result, ExactResult::Optimal(3));
/// # Ok(())
/// # }
/// ```
pub fn exact_strip_height(
    items: &[Size],
    width: u32,
    node_budget: u64,
) -> Result<ExactResult, PackError> {
    if width == 0 {
        return Err(PackError::ZeroWidthStrip);
    }
    for (index, item) in items.iter().enumerate() {
        if item.is_empty() {
            return Err(PackError::EmptyItem { index });
        }
        if item.w > width {
            return Err(PackError::ItemTooWide {
                index,
                item_width: item.w,
                strip_width: width,
            });
        }
    }
    assert!(items.len() < 64, "exact search is capped at 63 items");
    if items.is_empty() {
        return Ok(ExactResult::Optimal(0));
    }
    // Seed the upper bound with the heuristic (also makes pruning strong).
    let upper = crate::pack_strip(items, width)?.height();
    let mut items_sorted = items.to_vec();
    // Decreasing area first: big rectangles prune earlier.
    items_sorted.sort_by_key(|s| std::cmp::Reverse((s.area(), s.h, s.w)));
    let widths: Vec<u32> = items_sorted.iter().map(|s| s.w).collect();
    let heights: Vec<u32> = items_sorted.iter().map(|s| s.h).collect();
    let xs = subset_sums(&widths, width.saturating_sub(1));
    let ys = subset_sums(&heights, upper.saturating_sub(1));
    let mut search = Search {
        items: items_sorted,
        width,
        xs,
        ys,
        best: upper,
        nodes_left: node_budget,
        exhausted: false,
    };
    search.dfs(&mut Vec::new(), 0, 0);
    Ok(if search.exhausted {
        ExactResult::Budget(search.best)
    } else {
        ExactResult::Optimal(search.best)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_strip;

    fn sizes(v: &[(u32, u32)]) -> Vec<Size> {
        v.iter().map(|&(w, h)| Size::new(w, h)).collect()
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(
            exact_strip_height(&[], 5, 1000).unwrap(),
            ExactResult::Optimal(0)
        );
        assert_eq!(
            exact_strip_height(&sizes(&[(3, 4)]), 5, 1000).unwrap(),
            ExactResult::Optimal(4)
        );
    }

    #[test]
    fn perfect_tiling_found() {
        // Four 5x5 squares tile 10x10.
        let items = sizes(&[(5, 5); 4]);
        assert_eq!(
            exact_strip_height(&items, 10, 1_000_000).unwrap(),
            ExactResult::Optimal(10)
        );
    }

    #[test]
    fn beats_or_matches_skyline_on_small_instances() {
        let cases: Vec<Vec<Size>> = vec![
            sizes(&[(3, 2), (2, 2), (5, 1)]),
            sizes(&[(4, 3), (3, 4), (2, 2), (5, 1)]),
            sizes(&[(1, 5), (2, 3), (3, 2), (4, 1), (2, 2)]),
            sizes(&[(6, 2), (4, 3), (2, 5), (3, 3), (1, 1)]),
        ];
        for items in cases {
            let heuristic = pack_strip(&items, 7).unwrap().height();
            let exact = exact_strip_height(&items, 7, 5_000_000).unwrap();
            assert!(exact.is_optimal());
            assert!(
                exact.height() <= heuristic,
                "exact {} > heuristic {heuristic} for {items:?}",
                exact.height()
            );
            // Exact height is feasible: at least the area bound and the
            // tallest item.
            let area: u64 = items.iter().map(|s| s.area()).sum();
            assert!(u64::from(exact.height()) >= area.div_ceil(7));
            assert!(exact.height() >= items.iter().map(|s| s.h).max().unwrap());
        }
    }

    #[test]
    fn known_skyline_suboptimality_is_detected() {
        // A case where greedy best-fit wastes space: exact must match the
        // area bound here. Width 4: [3x2, 1x2, 2x2, 2x2] has area 16 → 4.
        let items = sizes(&[(3, 2), (1, 2), (2, 2), (2, 2)]);
        let exact = exact_strip_height(&items, 4, 1_000_000).unwrap();
        assert_eq!(exact, ExactResult::Optimal(4));
    }

    #[test]
    fn budget_exhaustion_returns_upper_bound() {
        let items = sizes(&[(3, 2), (2, 3), (4, 1), (1, 4), (2, 2), (3, 3), (1, 1)]);
        // Zero budget: the search cannot expand a single node, so the
        // result is the heuristic-seeded upper bound, unproven.
        let result = exact_strip_height(&items, 6, 0).unwrap();
        assert!(!result.is_optimal());
        let heuristic = pack_strip(&items, 6).unwrap().height();
        assert_eq!(result.height(), heuristic);
        // A small-but-positive budget may legitimately *prove* optimality
        // via the area lower bound; only the height contract holds then.
        let result = exact_strip_height(&items, 6, 5).unwrap();
        assert!(result.height() <= heuristic);
    }

    #[test]
    fn validation_matches_pack_strip() {
        assert!(exact_strip_height(&sizes(&[(1, 1)]), 0, 10).is_err());
        assert!(exact_strip_height(&sizes(&[(0, 1)]), 4, 10).is_err());
        assert!(exact_strip_height(&sizes(&[(9, 1)]), 4, 10).is_err());
    }
}
