//! Maximal-rectangles tracking of free space inside a container with
//! obstacles.
//!
//! HARP's partition-adjustment heuristic (Alg. 2 in the paper) repeatedly asks
//! "can this set of components be placed *in the idle rectangular areas* of
//! the parent partition, keeping every other child partition where it is?".
//! [`FreeSpace`] answers that: it maintains the set of *maximal* free
//! rectangles of a container after a number of regions have been occupied, and
//! places new rectangles into them bottom-left-first.

use crate::{Point, Rect, Size};

/// The free space of a container, represented as maximal free rectangles.
///
/// Start from an empty container, mark existing partitions with
/// [`FreeSpace::occupy`], then try to place new rectangles with
/// [`FreeSpace::place`] / [`FreeSpace::place_all`]. Placements are committed —
/// a successful `place` shrinks the free space. Use [`Clone`] to test a
/// placement tentatively.
///
/// # Examples
///
/// ```
/// use packing::{FreeSpace, Rect, Size};
///
/// let mut space = FreeSpace::new(Size::new(10, 4));
/// space.occupy(Rect::from_xywh(0, 0, 6, 4)); // an existing partition
/// let spot = space.place(Size::new(4, 2)).expect("fits in the idle area");
/// assert!(spot.x >= 6);
/// ```
#[derive(Debug, Clone)]
pub struct FreeSpace {
    container: Rect,
    free: Vec<Rect>,
}

impl FreeSpace {
    /// Creates the free space of an entirely empty container.
    #[must_use]
    pub fn new(container: Size) -> Self {
        let container = Rect::new(Point::ORIGIN, container);
        let free = if container.is_empty() {
            Vec::new()
        } else {
            vec![container]
        };
        Self { container, free }
    }

    /// The container this free space tracks.
    #[must_use]
    pub fn container(&self) -> Rect {
        self.container
    }

    /// The current maximal free rectangles. None of them is contained in
    /// another, and their union is exactly the unoccupied area.
    #[must_use]
    pub fn free_rects(&self) -> &[Rect] {
        &self.free
    }

    /// Total free area in unit cells.
    ///
    /// Maximal rectangles overlap, so this is computed by sweeping rows
    /// rather than summing rectangle areas.
    #[must_use]
    pub fn free_area(&self) -> u64 {
        // Row sweep: for each row y, merge the x-intervals of free rects
        // covering it. Containers here are small (slotframe-sized), so this
        // exact O(rows · rects log rects) sweep is plenty fast.
        let mut total = 0u64;
        for y in self.container.bottom()..self.container.top() {
            let mut intervals: Vec<(u32, u32)> = self
                .free
                .iter()
                .filter(|r| y >= r.bottom() && y < r.top())
                .map(|r| (r.left(), r.right()))
                .collect();
            intervals.sort_unstable();
            let mut covered = 0u64;
            let mut cur: Option<(u32, u32)> = None;
            for (lo, hi) in intervals {
                match cur {
                    Some((clo, chi)) if lo <= chi => cur = Some((clo, chi.max(hi))),
                    Some((clo, chi)) => {
                        covered += (chi - clo) as u64;
                        cur = Some((lo, hi));
                        let _ = clo;
                    }
                    None => cur = Some((lo, hi)),
                }
            }
            if let Some((clo, chi)) = cur {
                covered += (chi - clo) as u64;
            }
            total += covered;
        }
        total
    }

    /// Marks a region as occupied, removing it from the free space.
    ///
    /// The region is clipped to the container; occupying an area that is
    /// already (partly) occupied is permitted and idempotent.
    pub fn occupy(&mut self, region: Rect) {
        let Some(region) = region.intersection(&self.container) else {
            return;
        };
        let mut next: Vec<Rect> = Vec::with_capacity(self.free.len() + 4);
        for &fr in &self.free {
            if let Some(cut) = fr.intersection(&region) {
                // Split `fr` into up to four maximal leftovers around `cut`.
                if cut.left() > fr.left() {
                    next.push(Rect::from_xywh(
                        fr.left(),
                        fr.bottom(),
                        cut.left() - fr.left(),
                        fr.height(),
                    ));
                }
                if cut.right() < fr.right() {
                    next.push(Rect::from_xywh(
                        cut.right(),
                        fr.bottom(),
                        fr.right() - cut.right(),
                        fr.height(),
                    ));
                }
                if cut.bottom() > fr.bottom() {
                    next.push(Rect::from_xywh(
                        fr.left(),
                        fr.bottom(),
                        fr.width(),
                        cut.bottom() - fr.bottom(),
                    ));
                }
                if cut.top() < fr.top() {
                    next.push(Rect::from_xywh(
                        fr.left(),
                        cut.top(),
                        fr.width(),
                        fr.top() - cut.top(),
                    ));
                }
            } else {
                next.push(fr);
            }
        }
        self.free = next;
        self.prune();
    }

    /// Removes free rectangles contained in other free rectangles, keeping
    /// the set maximal and small.
    fn prune(&mut self) {
        let mut keep = vec![true; self.free.len()];
        for i in 0..self.free.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.free.len() {
                if i != j
                    && keep[j]
                    && keep[i]
                    && self.free[j].contains_rect(&self.free[i])
                    && !(self.free[i] == self.free[j] && i < j)
                {
                    keep[i] = false;
                }
            }
        }
        let mut idx = 0;
        self.free.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Places a rectangle of `size` in the free space, bottom-left-first
    /// (lowest fitting position, ties toward the left), and commits it.
    ///
    /// Returns the chosen origin, or `None` if no free rectangle can host
    /// `size`. Zero-sized requests are rejected with `None`.
    pub fn place(&mut self, size: Size) -> Option<Point> {
        if size.is_empty() {
            return None;
        }
        let spot = self
            .free
            .iter()
            .filter(|fr| size.fits_in(fr.size))
            .map(|fr| fr.origin)
            .min_by_key(|p| (p.y, p.x))?;
        self.occupy(Rect::new(spot, size));
        Some(spot)
    }

    /// Places every size in `sizes`, largest area first, committing all of
    /// them; returns one placement per input (input order), or `None` if any
    /// fails — in which case `self` is left unchanged.
    pub fn place_all(&mut self, sizes: &[Size]) -> Option<Vec<Rect>> {
        crate::obs::FREESPACE_PLACEMENTS.add(1);
        let mut trial = self.clone();
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        // Largest-area-first is the standard decreasing heuristic order.
        order.sort_by_key(|&i| std::cmp::Reverse((sizes[i].area(), sizes[i].h, sizes[i].w)));
        let mut placements = vec![Rect::default(); sizes.len()];
        for i in order {
            let origin = trial.place(sizes[i])?;
            placements[i] = Rect::new(origin, sizes[i]);
        }
        *self = trial;
        Some(placements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_disjoint;

    #[test]
    fn fresh_container_is_one_free_rect() {
        let fs = FreeSpace::new(Size::new(8, 4));
        assert_eq!(fs.free_rects(), &[Rect::from_xywh(0, 0, 8, 4)]);
        assert_eq!(fs.free_area(), 32);
    }

    #[test]
    fn empty_container_has_no_free_space() {
        let fs = FreeSpace::new(Size::new(0, 4));
        assert!(fs.free_rects().is_empty());
        assert_eq!(fs.free_area(), 0);
    }

    #[test]
    fn occupy_splits_into_maximal_rects() {
        let mut fs = FreeSpace::new(Size::new(8, 4));
        fs.occupy(Rect::from_xywh(2, 1, 3, 2));
        // Maximal rects: left band, right band, bottom band, top band.
        assert_eq!(fs.free_rects().len(), 4);
        assert_eq!(fs.free_area(), 32 - 6);
        for fr in fs.free_rects() {
            assert!(!fr.overlaps(&Rect::from_xywh(2, 1, 3, 2)));
        }
    }

    #[test]
    fn occupy_is_clipped_to_container() {
        let mut fs = FreeSpace::new(Size::new(4, 4));
        fs.occupy(Rect::from_xywh(3, 3, 10, 10));
        assert_eq!(fs.free_area(), 16 - 1);
    }

    #[test]
    fn occupy_outside_container_is_noop() {
        let mut fs = FreeSpace::new(Size::new(4, 4));
        fs.occupy(Rect::from_xywh(10, 10, 2, 2));
        assert_eq!(fs.free_area(), 16);
    }

    #[test]
    fn double_occupy_is_idempotent() {
        let mut fs = FreeSpace::new(Size::new(6, 6));
        fs.occupy(Rect::from_xywh(0, 0, 3, 3));
        let area = fs.free_area();
        fs.occupy(Rect::from_xywh(0, 0, 3, 3));
        assert_eq!(fs.free_area(), area);
    }

    #[test]
    fn place_bottom_left_first() {
        let mut fs = FreeSpace::new(Size::new(8, 4));
        fs.occupy(Rect::from_xywh(0, 0, 3, 1));
        let p = fs.place(Size::new(2, 1)).unwrap();
        assert_eq!(p, Point::new(3, 0), "lowest then leftmost");
    }

    #[test]
    fn place_commits_and_shrinks() {
        let mut fs = FreeSpace::new(Size::new(4, 4));
        let before = fs.free_area();
        fs.place(Size::new(2, 2)).unwrap();
        assert_eq!(fs.free_area(), before - 4);
    }

    #[test]
    fn place_fails_when_fragmented() {
        let mut fs = FreeSpace::new(Size::new(8, 1));
        fs.occupy(Rect::from_xywh(3, 0, 2, 1)); // splits row into 3 + 3
        assert_eq!(fs.free_area(), 6);
        assert!(fs.place(Size::new(4, 1)).is_none(), "no contiguous 4-run");
        assert!(fs.place(Size::new(3, 1)).is_some());
    }

    #[test]
    fn place_zero_size_rejected() {
        let mut fs = FreeSpace::new(Size::new(4, 4));
        assert!(fs.place(Size::new(0, 2)).is_none());
    }

    #[test]
    fn place_all_is_atomic_on_failure() {
        let mut fs = FreeSpace::new(Size::new(4, 2));
        let before = fs.free_area();
        // 3x2 fits, but then 2x2 cannot.
        let result = fs.place_all(&[Size::new(3, 2), Size::new(2, 2)]);
        assert!(result.is_none());
        assert_eq!(fs.free_area(), before, "failed place_all must not commit");
    }

    #[test]
    fn place_all_returns_input_order() {
        let mut fs = FreeSpace::new(Size::new(6, 2));
        let sizes = [Size::new(1, 1), Size::new(4, 2)];
        let placements = fs.place_all(&sizes).unwrap();
        assert_eq!(placements[0].size, sizes[0]);
        assert_eq!(placements[1].size, sizes[1]);
        assert!(all_disjoint(&placements));
    }

    #[test]
    fn place_all_fills_exact_capacity() {
        let mut fs = FreeSpace::new(Size::new(4, 4));
        fs.occupy(Rect::from_xywh(0, 0, 4, 2));
        let placements = fs
            .place_all(&[Size::new(2, 2), Size::new(2, 2)])
            .expect("two 2x2 fill the top half");
        assert!(all_disjoint(&placements));
        assert_eq!(fs.free_area(), 0);
    }

    #[test]
    fn free_rects_never_overlap_occupied() {
        let mut fs = FreeSpace::new(Size::new(10, 10));
        let occupied = [
            Rect::from_xywh(0, 0, 4, 4),
            Rect::from_xywh(6, 2, 3, 5),
            Rect::from_xywh(2, 6, 5, 3),
        ];
        for &r in &occupied {
            fs.occupy(r);
        }
        for fr in fs.free_rects() {
            for occ in &occupied {
                assert!(!fr.overlaps(occ), "{fr} overlaps occupied {occ}");
            }
        }
        // The second and third obstacles overlap in exactly one cell (6, 6).
        assert_eq!(fs.free_area(), 100 - 16 - 15 - 15 + 1);
    }

    #[test]
    fn prune_keeps_maximal_set_small() {
        let mut fs = FreeSpace::new(Size::new(16, 16));
        for i in 0..8 {
            fs.occupy(Rect::from_xywh(i * 2, i, 1, 1));
        }
        // No free rect contained in another.
        let rects = fs.free_rects();
        for (i, a) in rects.iter().enumerate() {
            for (j, b) in rects.iter().enumerate() {
                if i != j {
                    assert!(!b.contains_rect(a), "{a} ⊂ {b} should be pruned");
                }
            }
        }
    }
}
