//! Best-fit skyline heuristic for the 2-D strip packing problem (SPP).
//!
//! This is the constructive heuristic the HARP paper selects (Wei et al.,
//! *An improved skyline based heuristic for the 2D strip packing problem*,
//! C&OR 2017) because it runs in `O(n log n)` on resource-constrained
//! devices while producing near-optimal strips.
//!
//! The strip has a fixed width and unbounded height. The *skyline* is the
//! staircase outline of the already-placed rectangles. At each step the
//! algorithm:
//!
//! 1. finds the lowest skyline segment (ties broken leftward),
//! 2. picks the unplaced rectangle that *best fits* that segment — the widest
//!    one not exceeding the segment width, preferring an exact width match,
//!    then the tallest,
//! 3. if nothing fits, raises the segment to its lowest neighbour (creating
//!    waste) and merges,
//! 4. otherwise places the rectangle against the taller neighbouring wall to
//!    keep the skyline flat.
//!
//! Rectangles are never rotated: in HARP the two axes are time slots and
//! channels, which are semantically distinct.

use crate::{PackError, Point, Rect, Size};

/// The result of packing rectangles into a strip.
///
/// `placements[i]` is the position chosen for `items[i]` of the call that
/// produced this value; the indices always correspond.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripPacking {
    /// One placed rectangle per input item, in input order.
    placements: Vec<Rect>,
    /// Width of the strip that was packed into.
    width: u32,
    /// Height of the packing: the maximum `top()` over all placements.
    height: u32,
}

impl StripPacking {
    /// Assembles a packing from raw parts (used by the other packers in this
    /// crate, which uphold the same invariants).
    pub(crate) fn from_parts(placements: Vec<Rect>, width: u32, height: u32) -> Self {
        Self {
            placements,
            width,
            height,
        }
    }

    /// The placed rectangles, in the same order as the input items.
    #[must_use]
    pub fn placements(&self) -> &[Rect] {
        &self.placements
    }

    /// Consumes the packing and returns the placements.
    #[must_use]
    pub fn into_placements(self) -> Vec<Rect> {
        self.placements
    }

    /// The strip width the items were packed into.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The achieved strip height (the quantity SPP minimises).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The bounding box `width() × height()` of the packing.
    #[must_use]
    pub fn bounding_size(&self) -> Size {
        Size::new(self.width, self.height)
    }

    /// Fraction of the bounding box covered by items, in `[0, 1]`.
    ///
    /// Returns `1.0` for an empty packing (nothing was wasted).
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        let total = Size::new(self.width, self.height).area();
        if total == 0 {
            return 1.0;
        }
        let used: u64 = self.placements.iter().map(Rect::area).sum();
        used as f64 / total as f64
    }
}

/// One horizontal segment of the skyline: the interval `[x, x + w)` at
/// height `y` (the next free row above placed material).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    x: u32,
    w: u32,
    y: u32,
}

/// The skyline contour of a partially packed strip.
///
/// Maintains a list of disjoint horizontal segments covering `[0, width)`,
/// ordered by `x`. Exposed for use by the packers in this crate and by
/// white-box tests; most callers want [`pack_strip`].
#[derive(Debug, Clone)]
pub struct Skyline {
    segments: Vec<Segment>,
    width: u32,
    /// Highest top edge of any placed rectangle.
    max_top: u32,
}

impl Skyline {
    /// Creates a flat skyline of the given strip width.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::ZeroWidthStrip`] if `width == 0`.
    pub fn new(width: u32) -> Result<Self, PackError> {
        if width == 0 {
            return Err(PackError::ZeroWidthStrip);
        }
        Ok(Self {
            segments: vec![Segment {
                x: 0,
                w: width,
                y: 0,
            }],
            width,
            max_top: 0,
        })
    }

    /// The strip width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current packing height (max top edge of placed rectangles).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.max_top
    }

    /// Index of the lowest segment, ties broken toward the left.
    fn lowest_segment(&self) -> usize {
        let mut best = 0;
        for (i, s) in self.segments.iter().enumerate().skip(1) {
            if s.y < self.segments[best].y {
                best = i;
            }
        }
        best
    }

    /// Heights of the walls bounding segment `i` on the left and right.
    /// The strip edge counts as an infinitely tall wall.
    fn walls(&self, i: usize) -> (u32, u32) {
        let left = if i == 0 {
            u32::MAX
        } else {
            self.segments[i - 1].y
        };
        let right = if i + 1 == self.segments.len() {
            u32::MAX
        } else {
            self.segments[i + 1].y
        };
        (left, right)
    }

    /// Raises segment `i` to the height of its lower neighbouring wall and
    /// merges it into that neighbour. The skipped area becomes waste.
    fn raise(&mut self, i: usize) {
        let (left, right) = self.walls(i);
        debug_assert!(
            left != u32::MAX || right != u32::MAX,
            "a single full-width segment fits everything, so raise is never \
             called on it"
        );
        let target = left.min(right);
        self.segments[i].y = target;
        self.merge();
    }

    /// Places a rectangle of `size` on segment `i`, against the taller wall.
    /// Returns the chosen origin.
    fn place_on(&mut self, i: usize, size: Size) -> Point {
        let seg = self.segments[i];
        debug_assert!(size.w <= seg.w && !size.is_empty());
        let (left_wall, right_wall) = self.walls(i);
        // Against the taller wall: fills corners first, keeping the skyline
        // flat (Burke et al. best-fit placement policy).
        let x = if left_wall >= right_wall {
            seg.x
        } else {
            seg.x + seg.w - size.w
        };
        let origin = Point::new(x, seg.y);
        let top = seg.y + size.h;

        // Rebuild the affected segment: the covered interval rises to `top`,
        // the remainder keeps the old height.
        let mut replacement = Vec::with_capacity(3);
        if x > seg.x {
            replacement.push(Segment {
                x: seg.x,
                w: x - seg.x,
                y: seg.y,
            });
        }
        replacement.push(Segment {
            x,
            w: size.w,
            y: top,
        });
        let right_rest = (seg.x + seg.w) - (x + size.w);
        if right_rest > 0 {
            replacement.push(Segment {
                x: x + size.w,
                w: right_rest,
                y: seg.y,
            });
        }
        self.segments.splice(i..=i, replacement);
        self.max_top = self.max_top.max(top);
        self.merge();
        origin
    }

    /// Merges adjacent segments of equal height.
    fn merge(&mut self) {
        let mut i = 0;
        while i + 1 < self.segments.len() {
            if self.segments[i].y == self.segments[i + 1].y {
                self.segments[i].w += self.segments[i + 1].w;
                self.segments.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Invariant check: segments tile `[0, width)` in order.
    #[cfg(test)]
    fn assert_well_formed(&self) {
        let mut x = 0;
        for s in &self.segments {
            assert_eq!(s.x, x, "segments must be contiguous");
            assert!(s.w > 0, "segments must be non-empty");
            x += s.w;
        }
        assert_eq!(x, self.width, "segments must cover the strip");
    }
}

/// Validates a list of items against a strip width.
fn validate(items: &[Size], width: u32) -> Result<(), PackError> {
    if width == 0 {
        return Err(PackError::ZeroWidthStrip);
    }
    for (index, item) in items.iter().enumerate() {
        if item.is_empty() {
            return Err(PackError::EmptyItem { index });
        }
        if item.w > width {
            return Err(PackError::ItemTooWide {
                index,
                item_width: item.w,
                strip_width: width,
            });
        }
    }
    Ok(())
}

/// Packs `items` into a strip of the given `width` using the best-fit
/// skyline heuristic, minimising the resulting height.
///
/// The returned [`StripPacking`] holds one placement per input item, in
/// input order; placements never overlap and never exceed the strip width.
/// Items are *not* rotated.
///
/// # Errors
///
/// * [`PackError::ZeroWidthStrip`] if `width == 0`.
/// * [`PackError::EmptyItem`] if any item has a zero dimension.
/// * [`PackError::ItemTooWide`] if any item is wider than the strip.
///
/// # Examples
///
/// ```
/// use packing::{pack_strip, Size};
///
/// # fn main() -> Result<(), packing::PackError> {
/// let items = [Size::new(3, 2), Size::new(2, 2), Size::new(5, 1)];
/// let packing = pack_strip(&items, 5)?;
/// assert_eq!(packing.height(), 3); // 3+2 wide side by side, 5-wide on top
/// # Ok(())
/// # }
/// ```
pub fn pack_strip(items: &[Size], width: u32) -> Result<StripPacking, PackError> {
    crate::obs::STRIP_PACKS.add(1);
    validate(items, width)?;
    let mut skyline = Skyline::new(width)?;
    let mut placements = vec![Rect::default(); items.len()];
    // Indices of items not yet placed.
    let mut pending: Vec<usize> = (0..items.len()).collect();

    while !pending.is_empty() {
        let seg_idx = skyline.lowest_segment();
        let seg_w = skyline.segments[seg_idx].w;

        // Best fit: widest item that fits the gap; exact width match wins;
        // ties broken by greater height (locks in tall items early), then by
        // input order for determinism.
        let mut best: Option<(usize, Size)> = None;
        for &item_idx in &pending {
            let size = items[item_idx];
            if size.w > seg_w {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, b)) => {
                    let exact_new = size.w == seg_w;
                    let exact_old = b.w == seg_w;
                    (exact_new, size.w, size.h) > (exact_old, b.w, b.h)
                }
            };
            if better {
                best = Some((item_idx, size));
            }
        }

        match best {
            Some((item_idx, size)) => {
                let origin = skyline.place_on(seg_idx, size);
                placements[item_idx] = Rect::new(origin, size);
                pending.retain(|&i| i != item_idx);
            }
            None => skyline.raise(seg_idx),
        }
    }

    Ok(StripPacking {
        placements,
        width,
        height: skyline.height(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_disjoint;

    fn sizes(v: &[(u32, u32)]) -> Vec<Size> {
        v.iter().map(|&(w, h)| Size::new(w, h)).collect()
    }

    fn check_valid(items: &[Size], packing: &StripPacking) {
        assert_eq!(packing.placements().len(), items.len());
        for (item, rect) in items.iter().zip(packing.placements()) {
            assert_eq!(rect.size, *item, "placement preserves size");
            assert!(rect.right() <= packing.width(), "within strip width");
            assert!(rect.top() <= packing.height(), "within reported height");
        }
        assert!(all_disjoint(packing.placements()), "no overlaps");
    }

    #[test]
    fn empty_input_packs_to_zero_height() {
        let packing = pack_strip(&[], 10).unwrap();
        assert_eq!(packing.height(), 0);
        assert!(packing.placements().is_empty());
        assert!((packing.fill_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn single_item_at_origin() {
        let items = sizes(&[(4, 3)]);
        let packing = pack_strip(&items, 10).unwrap();
        check_valid(&items, &packing);
        assert_eq!(packing.height(), 3);
        assert_eq!(packing.placements()[0].origin, Point::ORIGIN);
    }

    #[test]
    fn exact_row_fills_width() {
        let items = sizes(&[(4, 2), (3, 2), (3, 2)]);
        let packing = pack_strip(&items, 10).unwrap();
        check_valid(&items, &packing);
        assert_eq!(packing.height(), 2, "all three fit in one row");
        assert!((packing.fill_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn stacks_when_too_wide_for_row() {
        let items = sizes(&[(6, 1), (6, 2)]);
        let packing = pack_strip(&items, 10).unwrap();
        check_valid(&items, &packing);
        assert_eq!(packing.height(), 3);
    }

    #[test]
    fn perfect_square_tiling() {
        // Four 5x5 squares tile a 10x10 area exactly.
        let items = sizes(&[(5, 5), (5, 5), (5, 5), (5, 5)]);
        let packing = pack_strip(&items, 10).unwrap();
        check_valid(&items, &packing);
        assert_eq!(packing.height(), 10);
        assert!((packing.fill_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn doc_example_height() {
        let items = sizes(&[(3, 2), (2, 2), (5, 1)]);
        let packing = pack_strip(&items, 5).unwrap();
        check_valid(&items, &packing);
        assert_eq!(packing.height(), 3);
    }

    #[test]
    fn unit_width_strip_stacks_vertically() {
        let items = sizes(&[(1, 2), (1, 3), (1, 1)]);
        let packing = pack_strip(&items, 1).unwrap();
        check_valid(&items, &packing);
        assert_eq!(packing.height(), 6);
    }

    #[test]
    fn wide_gap_best_fit_prefers_exact_match() {
        // Lowest gap is width 10. The 10-wide item is an exact match and
        // should be chosen over the (wider-is-better within <=gap) tall one.
        let items = sizes(&[(10, 1), (4, 8)]);
        let packing = pack_strip(&items, 10).unwrap();
        check_valid(&items, &packing);
        // 10-wide goes down first, then the 4x8 on top: height 9.
        assert_eq!(packing.placements()[0].bottom(), 0);
        assert_eq!(packing.height(), 9);
    }

    #[test]
    fn raises_waste_when_nothing_fits_gap() {
        // After placing 7x3 and 3x1, the lowest gap is 3 wide at y=1; the
        // remaining 5-wide item cannot fit there, forcing a raise.
        let items = sizes(&[(7, 3), (3, 1), (5, 2)]);
        let packing = pack_strip(&items, 10).unwrap();
        check_valid(&items, &packing);
        assert!(packing.height() >= 4);
    }

    #[test]
    fn item_as_wide_as_strip() {
        let items = sizes(&[(10, 2), (10, 3)]);
        let packing = pack_strip(&items, 10).unwrap();
        check_valid(&items, &packing);
        assert_eq!(packing.height(), 5);
    }

    #[test]
    fn error_zero_width_strip() {
        assert_eq!(
            pack_strip(&[Size::new(1, 1)], 0).unwrap_err(),
            PackError::ZeroWidthStrip
        );
    }

    #[test]
    fn error_empty_item() {
        let err = pack_strip(&sizes(&[(2, 2), (0, 3)]), 5).unwrap_err();
        assert_eq!(err, PackError::EmptyItem { index: 1 });
    }

    #[test]
    fn error_item_too_wide() {
        let err = pack_strip(&sizes(&[(6, 1)]), 5).unwrap_err();
        assert_eq!(
            err,
            PackError::ItemTooWide {
                index: 0,
                item_width: 6,
                strip_width: 5
            }
        );
    }

    #[test]
    fn height_is_max_top_not_waste_height() {
        // One tall narrow item plus a short wide one; the reported height must
        // equal the max placement top exactly.
        let items = sizes(&[(1, 7), (9, 2)]);
        let packing = pack_strip(&items, 10).unwrap();
        check_valid(&items, &packing);
        let max_top = packing.placements().iter().map(Rect::top).max().unwrap();
        assert_eq!(packing.height(), max_top);
    }

    #[test]
    fn skyline_well_formed_through_operations() {
        let mut sky = Skyline::new(10).unwrap();
        sky.assert_well_formed();
        sky.place_on(0, Size::new(4, 2));
        sky.assert_well_formed();
        sky.place_on(sky.lowest_segment(), Size::new(3, 1));
        sky.assert_well_formed();
        let low = sky.lowest_segment();
        sky.raise(low);
        sky.assert_well_formed();
    }

    #[test]
    fn placements_indexed_like_input() {
        let items = sizes(&[(2, 1), (3, 1), (4, 1)]);
        let packing = pack_strip(&items, 9).unwrap();
        for (i, item) in items.iter().enumerate() {
            assert_eq!(packing.placements()[i].size, *item);
        }
    }

    #[test]
    fn many_unit_squares_fill_exactly() {
        let items = vec![Size::new(1, 1); 100];
        let packing = pack_strip(&items, 10).unwrap();
        check_valid(&items, &packing);
        assert_eq!(packing.height(), 10);
        assert!((packing.fill_ratio() - 1.0).abs() < f64::EPSILON);
    }
}
