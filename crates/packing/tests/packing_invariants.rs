//! Seeded randomized tests for the packing substrate.
//!
//! These pin down the soundness invariants every packer must uphold: no
//! overlap, in-bounds placement, size preservation, and agreement between
//! feasibility answers and actual packings. Inputs come from the
//! simulator's `SplitMix64` so every case replays from the seeds below.

use packing::shelf::{pack_strip_ffdh, pack_strip_nfdh};
use packing::{all_disjoint, fits_into, pack_into, pack_strip, FreeSpace, Rect, Size};
use tsch_sim::SplitMix64;

/// Items sized like HARP resource components: small widths and heights.
fn item(rng: &mut SplitMix64, max_w: u32) -> Size {
    Size::new(
        1 + rng.next_below(u64::from(max_w)) as u32,
        1 + rng.next_below(12) as u32,
    )
}

fn items(rng: &mut SplitMix64, max_w: u32, max_len: u64) -> Vec<Size> {
    let n = rng.next_below(max_len);
    (0..n).map(|_| item(rng, max_w)).collect()
}

fn check_strip_packing(items: &[Size], width: u32, packing: &packing::StripPacking) {
    assert_eq!(packing.placements().len(), items.len());
    for (item, rect) in items.iter().zip(packing.placements()) {
        assert_eq!(rect.size, *item, "size preserved");
        assert!(rect.right() <= width, "within width");
        assert!(rect.top() <= packing.height(), "within height");
    }
    assert!(all_disjoint(packing.placements()), "no overlaps");
    // Height is tight: some placement touches it (unless empty).
    if !items.is_empty() {
        let max_top = packing.placements().iter().map(Rect::top).max().unwrap();
        assert_eq!(packing.height(), max_top);
    }
}

#[test]
fn skyline_packing_is_sound() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x5C_A1 ^ case);
        let width = 1 + rng.next_below(16) as u32;
        let items = items(&mut rng, width, 40);
        let packing = pack_strip(&items, width).unwrap();
        check_strip_packing(&items, width, &packing);
    }
}

#[test]
fn skyline_height_at_least_area_bound() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0xA2_EA ^ case);
        let items = items(&mut rng, 16, 40);
        let width = 16u32;
        let packing = pack_strip(&items, width).unwrap();
        let area: u64 = items.iter().map(|i| i.area()).sum();
        let lower = area.div_ceil(u64::from(width)) as u32;
        assert!(
            packing.height() >= lower,
            "case {case}: height below area lower bound"
        );
        let tallest = items.iter().map(|i| i.h).max().unwrap_or(0);
        assert!(packing.height() >= tallest, "case {case}");
    }
}

#[test]
fn skyline_never_exceeds_stacked_height() {
    // Worst case is stacking everything: a valid packer never does worse
    // than the sum of heights.
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x57_AC ^ case);
        let items = items(&mut rng, 8, 40);
        let packing = pack_strip(&items, 8).unwrap();
        let stacked: u64 = items.iter().map(|i| u64::from(i.h)).sum();
        assert!(u64::from(packing.height()) <= stacked, "case {case}");
    }
}

#[test]
fn shelf_packers_are_sound() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x5E_1F ^ case);
        let width = 1 + rng.next_below(10) as u32;
        let items = items(&mut rng, width, 40);
        let ffdh = pack_strip_ffdh(&items, width).unwrap();
        check_strip_packing(&items, width, &ffdh);
        let nfdh = pack_strip_nfdh(&items, width).unwrap();
        check_strip_packing(&items, width, &nfdh);
        // NFDH can reuse only the top shelf, so FFDH never does worse.
        assert!(ffdh.height() <= nfdh.height(), "case {case}");
    }
}

#[test]
fn pack_into_placements_are_inside_container() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x1B_0C ^ case);
        let items = items(&mut rng, 12, 40);
        let cw = 1 + rng.next_below(12) as u32;
        let ch = 1 + rng.next_below(30) as u32;
        let container = Size::new(cw, ch);
        if let Some(placements) = pack_into(&items, container).unwrap() {
            let bounds = Rect::from_xywh(0, 0, cw, ch);
            assert_eq!(placements.len(), items.len());
            for (item, rect) in items.iter().zip(&placements) {
                assert_eq!(rect.size, *item);
                assert!(bounds.contains_rect(rect), "case {case}");
            }
            assert!(all_disjoint(&placements), "case {case}");
        }
        // The heuristic is incomplete but must agree with the feasibility
        // answer either way.
        let fit = fits_into(&items, container).unwrap();
        assert_eq!(
            fit,
            pack_into(&items, container).unwrap().is_some(),
            "case {case}"
        );
    }
}

#[test]
fn pack_into_never_accepts_over_area() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x0E_4A ^ case);
        let items = items(&mut rng, 12, 40);
        let total: u64 = items.iter().map(|i| i.area()).sum();
        if total == 0 {
            continue;
        }
        // A container strictly smaller than the total item area can never fit.
        let cw = 12u32;
        let ch = ((total - 1) / u64::from(cw)) as u32; // area cw*ch < total
        if ch == 0 {
            continue;
        }
        let placements = pack_into(&items, Size::new(cw, ch)).unwrap();
        assert!(placements.is_none(), "case {case}");
    }
}

#[test]
fn freespace_placements_never_overlap_obstacles() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0xF5_0B ^ case);
        let obstacle_rects: Vec<Rect> = (0..rng.next_below(6))
            .map(|_| {
                Rect::from_xywh(
                    rng.next_below(20) as u32,
                    rng.next_below(10) as u32,
                    1 + rng.next_below(5) as u32,
                    1 + rng.next_below(3) as u32,
                )
            })
            .collect();
        let request = item(&mut rng, 6);
        let container = Size::new(24, 12);
        let mut fs = FreeSpace::new(container);
        for &r in &obstacle_rects {
            fs.occupy(r);
        }
        if let Some(origin) = fs.place(request) {
            let placed = Rect::new(origin, request);
            let bounds = Rect::from_xywh(0, 0, container.w, container.h);
            assert!(bounds.contains_rect(&placed), "case {case}");
            for obs in &obstacle_rects {
                assert!(
                    !placed.overlaps(obs),
                    "case {case}: {placed} overlaps obstacle {obs}"
                );
            }
        }
    }
}

#[test]
fn freespace_area_accounting_is_consistent() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0xF5_A2 ^ case);
        let rects: Vec<Rect> = (0..rng.next_below(5))
            .map(|_| {
                Rect::from_xywh(
                    rng.next_below(16) as u32,
                    rng.next_below(8) as u32,
                    1 + rng.next_below(4) as u32,
                    1 + rng.next_below(3) as u32,
                )
            })
            .collect();
        let container = Size::new(16, 8);
        let mut fs = FreeSpace::new(container);
        let bounds = Rect::from_xywh(0, 0, 16, 8);
        for &r in &rects {
            fs.occupy(r);
        }
        // Compute expected free area by brute-force cell counting.
        let mut expected = 0u64;
        for x in 0..16u32 {
            for y in 0..8u32 {
                let covered = rects.iter().any(|r| r.contains_cell(x, y));
                if bounds.contains_cell(x, y) && !covered {
                    expected += 1;
                }
            }
        }
        assert_eq!(fs.free_area(), expected, "case {case}");
    }
}

#[test]
fn freespace_place_all_atomicity() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0xF5_0D ^ case);
        let sizes: Vec<Size> = (0..1 + rng.next_below(7))
            .map(|_| item(&mut rng, 5))
            .collect();
        let mut fs = FreeSpace::new(Size::new(10, 6));
        fs.occupy(Rect::from_xywh(0, 0, 5, 6));
        let before = fs.free_area();
        match fs.place_all(&sizes) {
            Some(placements) => {
                assert!(all_disjoint(&placements), "case {case}");
                let placed: u64 = sizes.iter().map(|s| s.area()).sum();
                assert_eq!(fs.free_area(), before - placed, "case {case}");
            }
            None => assert_eq!(fs.free_area(), before, "case {case}"),
        }
    }
}

#[test]
fn rect_distance_triangle_inequality_with_zero() {
    for case in 0..200u64 {
        let mut rng = SplitMix64::new(0xD1_57 ^ case);
        let mut rect = |_| {
            Rect::from_xywh(
                rng.next_below(20) as u32,
                rng.next_below(20) as u32,
                1 + rng.next_below(5) as u32,
                1 + rng.next_below(5) as u32,
            )
        };
        let a = rect(0);
        let b = rect(1);
        assert_eq!(a.distance_to(&b), b.distance_to(&a), "case {case}");
        if a.overlaps(&b) {
            assert_eq!(a.distance_to(&b), 0, "case {case}");
        }
        assert_eq!(a.distance_to(&a), 0, "case {case}");
    }
}

#[test]
fn exact_solver_sandwiched_between_bounds() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xE7_AC ^ case);
        let width = 3 + rng.next_below(6) as u32;
        let items: Vec<Size> = (0..1 + rng.next_below(5))
            .map(|_| {
                Size::new(
                    1 + rng.next_below(u64::from(width.min(5))) as u32,
                    1 + rng.next_below(5) as u32,
                )
            })
            .collect();
        let heuristic = pack_strip(&items, width).unwrap().height();
        let exact = packing::exact_strip_height(&items, width, 2_000_000).unwrap();
        assert!(
            exact.is_optimal(),
            "case {case}: tiny instances must complete"
        );
        let optimal = exact.height();
        // Sandwich: area/width ≤ optimal ≤ heuristic, and the tallest item
        // is a lower bound too.
        assert!(optimal <= heuristic, "case {case}");
        let area: u64 = items.iter().map(|i| i.area()).sum();
        assert!(
            u64::from(optimal) >= area.div_ceil(u64::from(width)),
            "case {case}"
        );
        let tallest = items.iter().map(|i| i.h).max().unwrap();
        assert!(optimal >= tallest, "case {case}");
    }
}

#[test]
fn maxrects_strip_never_beats_exact_optimum() {
    // The bench's quality factor divides a greedy-MaxRects strip height by
    // the exact optimum; the factor is only meaningful if every height
    // MaxRects succeeds at is a genuine packing, so optimal ≤ maxrects.
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0x3A_C7 ^ case);
        let width = 4 + rng.next_below(6) as u32;
        let items: Vec<Size> = (0..1 + rng.next_below(6))
            .map(|_| {
                Size::new(
                    1 + rng.next_below(u64::from(width.min(5))) as u32,
                    1 + rng.next_below(5) as u32,
                )
            })
            .collect();
        let exact = packing::exact_strip_height(&items, width, 2_000_000).unwrap();
        assert!(exact.is_optimal(), "case {case}");
        let total_h: u32 = items.iter().map(|i| i.h).sum();
        let mut h = exact.height();
        let maxrects = loop {
            assert!(h <= total_h.max(1), "case {case}: scan ran away");
            match FreeSpace::new(Size::new(width, h)).place_all(&items) {
                Some(rects) => {
                    assert!(all_disjoint(&rects), "case {case}: overlap at {h}");
                    break h;
                }
                None => h += 1,
            }
        };
        assert!(maxrects >= exact.height(), "case {case}");
    }
}
