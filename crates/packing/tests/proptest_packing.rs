//! Property-based tests for the packing substrate.
//!
//! These pin down the soundness invariants every packer must uphold: no
//! overlap, in-bounds placement, size preservation, and agreement between
//! feasibility answers and actual packings.

use packing::shelf::{pack_strip_ffdh, pack_strip_nfdh};
use packing::{all_disjoint, fits_into, pack_into, pack_strip, FreeSpace, Rect, Size};
use proptest::prelude::*;

/// Items sized like HARP resource components: small widths and heights.
fn item_strategy(max_w: u32) -> impl Strategy<Value = Size> {
    (1..=max_w, 1u32..=12).prop_map(|(w, h)| Size::new(w, h))
}

fn items_strategy(max_w: u32) -> impl Strategy<Value = Vec<Size>> {
    prop::collection::vec(item_strategy(max_w), 0..40)
}

fn check_strip_packing(items: &[Size], width: u32, packing: &packing::StripPacking) {
    assert_eq!(packing.placements().len(), items.len());
    for (item, rect) in items.iter().zip(packing.placements()) {
        assert_eq!(rect.size, *item, "size preserved");
        assert!(rect.right() <= width, "within width");
        assert!(rect.top() <= packing.height(), "within height");
    }
    assert!(all_disjoint(packing.placements()), "no overlaps");
    // Height is tight: some placement touches it (unless empty).
    if !items.is_empty() {
        let max_top = packing.placements().iter().map(Rect::top).max().unwrap();
        assert_eq!(packing.height(), max_top);
    }
}

proptest! {
    #[test]
    fn skyline_packing_is_sound(
        (width, items) in (1u32..=16).prop_flat_map(|w| (Just(w), items_strategy(w))),
    ) {
        let packing = pack_strip(&items, width).unwrap();
        check_strip_packing(&items, width, &packing);
    }

    #[test]
    fn skyline_height_at_least_area_bound(items in items_strategy(16)) {
        let width = 16u32;
        let packing = pack_strip(&items, width).unwrap();
        let area: u64 = items.iter().map(|i| i.area()).sum();
        let lower = area.div_ceil(width as u64) as u32;
        prop_assert!(packing.height() >= lower, "height below area lower bound");
        let tallest = items.iter().map(|i| i.h).max().unwrap_or(0);
        prop_assert!(packing.height() >= tallest);
    }

    #[test]
    fn skyline_never_exceeds_stacked_height(items in items_strategy(8)) {
        // Worst case is stacking everything: a valid packer never does worse
        // than the sum of heights.
        let packing = pack_strip(&items, 8).unwrap();
        let stacked: u64 = items.iter().map(|i| i.h as u64).sum();
        prop_assert!(u64::from(packing.height()) <= stacked);
    }

    #[test]
    fn shelf_packers_are_sound(
        (width, items) in (1u32..=10).prop_flat_map(|w| (Just(w), items_strategy(w))),
    ) {
        let ffdh = pack_strip_ffdh(&items, width).unwrap();
        check_strip_packing(&items, width, &ffdh);
        let nfdh = pack_strip_nfdh(&items, width).unwrap();
        check_strip_packing(&items, width, &nfdh);
        // NFDH can reuse only the top shelf, so FFDH never does worse.
        prop_assert!(ffdh.height() <= nfdh.height());
    }

    #[test]
    fn pack_into_placements_are_inside_container(
        items in items_strategy(12),
        cw in 1u32..=12,
        ch in 1u32..=30,
    ) {
        let container = Size::new(cw, ch);
        if let Some(placements) = pack_into(&items, container).unwrap() {
            let bounds = Rect::from_xywh(0, 0, cw, ch);
            prop_assert_eq!(placements.len(), items.len());
            for (item, rect) in items.iter().zip(&placements) {
                prop_assert_eq!(rect.size, *item);
                prop_assert!(bounds.contains_rect(rect));
            }
            prop_assert!(all_disjoint(&placements));
        } else {
            // The heuristic is incomplete but must reject anything that
            // provably cannot fit; nothing to check on the None side beyond
            // agreement with fits_into below.
        }
        let fit = fits_into(&items, container).unwrap();
        prop_assert_eq!(fit, pack_into(&items, container).unwrap().is_some());
    }

    #[test]
    fn pack_into_never_accepts_over_area(items in items_strategy(12)) {
        let total: u64 = items.iter().map(|i| i.area()).sum();
        prop_assume!(total > 0);
        // A container strictly smaller than the total item area can never fit.
        let cw = 12u32;
        let ch = ((total - 1) / cw as u64) as u32; // area cw*ch < total
        prop_assume!(ch > 0);
        let placements = pack_into(&items, Size::new(cw, ch)).unwrap();
        prop_assert!(placements.is_none());
    }

    #[test]
    fn freespace_placements_never_overlap_obstacles(
        obstacles in prop::collection::vec((0u32..20, 0u32..10, 1u32..6, 1u32..4), 0..6),
        request in item_strategy(6),
    ) {
        let container = Size::new(24, 12);
        let mut fs = FreeSpace::new(container);
        let obstacle_rects: Vec<Rect> = obstacles
            .into_iter()
            .map(|(x, y, w, h)| Rect::from_xywh(x, y, w, h))
            .collect();
        for &r in &obstacle_rects {
            fs.occupy(r);
        }
        if let Some(origin) = fs.place(request) {
            let placed = Rect::new(origin, request);
            let bounds = Rect::from_xywh(0, 0, container.w, container.h);
            prop_assert!(bounds.contains_rect(&placed));
            for obs in &obstacle_rects {
                prop_assert!(!placed.overlaps(obs), "{} overlaps obstacle {}", placed, obs);
            }
        }
    }

    #[test]
    fn freespace_area_accounting_is_consistent(
        obstacles in prop::collection::vec((0u32..16, 0u32..8, 1u32..5, 1u32..4), 0..5),
    ) {
        let container = Size::new(16, 8);
        let mut fs = FreeSpace::new(container);
        let bounds = Rect::from_xywh(0, 0, 16, 8);
        // Compute expected free area by brute-force cell counting.
        let rects: Vec<Rect> = obstacles
            .into_iter()
            .map(|(x, y, w, h)| Rect::from_xywh(x, y, w, h))
            .collect();
        for &r in &rects {
            fs.occupy(r);
        }
        let mut expected = 0u64;
        for x in 0..16u32 {
            for y in 0..8u32 {
                let covered = rects.iter().any(|r| r.contains_cell(x, y));
                if bounds.contains_cell(x, y) && !covered {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(fs.free_area(), expected);
    }

    #[test]
    fn freespace_place_all_atomicity(
        sizes in prop::collection::vec(item_strategy(5), 1..8),
    ) {
        let mut fs = FreeSpace::new(Size::new(10, 6));
        fs.occupy(Rect::from_xywh(0, 0, 5, 6));
        let before = fs.free_area();
        match fs.place_all(&sizes) {
            Some(placements) => {
                prop_assert!(all_disjoint(&placements));
                let placed: u64 = sizes.iter().map(|s| s.area()).sum();
                prop_assert_eq!(fs.free_area(), before - placed);
            }
            None => prop_assert_eq!(fs.free_area(), before),
        }
    }

    #[test]
    fn rect_distance_triangle_inequality_with_zero(
        ax in 0u32..20, ay in 0u32..20, aw in 1u32..6, ah in 1u32..6,
        bx in 0u32..20, by in 0u32..20, bw in 1u32..6, bh in 1u32..6,
    ) {
        let a = Rect::from_xywh(ax, ay, aw, ah);
        let b = Rect::from_xywh(bx, by, bw, bh);
        prop_assert_eq!(a.distance_to(&b), b.distance_to(&a));
        if a.overlaps(&b) {
            prop_assert_eq!(a.distance_to(&b), 0);
        }
        prop_assert_eq!(a.distance_to(&a), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_solver_sandwiched_between_bounds(
        items in prop::collection::vec((1u32..=5, 1u32..=5).prop_map(|(w, h)| Size::new(w, h)), 1..6),
        width in 3u32..=8,
    ) {
        prop_assume!(items.iter().all(|i| i.w <= width));
        let heuristic = pack_strip(&items, width).unwrap().height();
        let exact = packing::exact_strip_height(&items, width, 2_000_000).unwrap();
        prop_assert!(exact.is_optimal(), "tiny instances must complete");
        let optimal = exact.height();
        // Sandwich: area/width ≤ optimal ≤ heuristic, and the tallest item
        // is a lower bound too.
        prop_assert!(optimal <= heuristic);
        let area: u64 = items.iter().map(|i| i.area()).sum();
        prop_assert!(u64::from(optimal) >= area.div_ceil(u64::from(width)));
        let tallest = items.iter().map(|i| i.h).max().unwrap();
        prop_assert!(optimal >= tallest);
    }
}
