//! `harp_load`: the service-side load generator and CI smoke client for
//! `harpd`.
//!
//! Two modes share one minimal HTTP client ([`harpd::client`]):
//!
//! * **`--smoke`** — boots a `harpd` *child process* (`--harpd <bin>`),
//!   waits for the socket, walks the whole API surface once against
//!   `scenarios/fig10_dynamic.scn` (inline body *and* named file), checks
//!   every response is 2xx and `/metrics` is valid Prometheus text,
//!   resolves the adjust response's correlation id through
//!   `/debug/trace/<tenant>` to the allocator spans it caused, pulls
//!   `/debug/health` and `/debug/flight` (optionally saving the dumps
//!   with `--artifact-dir DIR` for `harp_trace` to render), then drives
//!   the token-guarded shutdown and requires a clean (code 0) child
//!   exit. Exit status is the CI verdict — no curl, no jq.
//! * **default (gated)** — hosts an *in-process* server on a loopback
//!   port and drives it closed-loop from client threads. Each wave puts
//!   every tenant through five phases, in order:
//!
//!   1. **create** — one `POST /networks` per tenant;
//!   2. **adjustment storm** — `--adjust-rounds` rounds alternately
//!      raising and relaxing one deep link per tenant;
//!   3. **schedule queries** — `--schedule-rounds` rounds of
//!      `GET /schedule` per tenant;
//!   4. **mixed read-heavy** — `--mixed-rounds` rounds at an 8:1
//!      schedule:adjust ratio (every ninth round adjusts), the
//!      steady-state mix of a monitored deployment: reads ride the
//!      daemon's version-keyed response cache, adjustments invalidate it;
//!   5. **delete** — one `DELETE` per tenant.
//!
//!   Latencies accumulate into the shared power-of-two histogram and the
//!   run writes `BENCH_service.json`: requests/sec rates, p50/p95/p99
//!   latencies, exact request counts, and the allocator-time vs
//!   server-overhead split read back from the daemon's own
//!   `harpd.request_us` / `harpd.allocator_us` histograms.
//!
//!   Accounting reconciles exactly: `total_requests` counts every
//!   client-issued request *including* the control-plane ones (one
//!   `/metrics` scrape per wave plus the final `/shutdown`, reported as
//!   `control_requests`), and the run asserts it equals the server's own
//!   `harpd.requests_total` — nothing the daemon served goes unreported.
//!
//! Knobs (defaults in parentheses): `--networks` per wave (2048),
//! `--waves` (2), `--nodes` per network (256), `--clients` (2),
//! `--workers` (2), `--adjust-rounds` (4), `--schedule-rounds` (4),
//! `--mixed-rounds` (9); `--quick` shrinks to a seconds-long run (8
//! networks × 1 wave × 40 nodes). The defaults sweep 4096 hosted
//! networks and over a million aggregate nodes through the daemon while
//! keeping 2048 networks resident at once (~1.5 GiB peak).

use std::time::{Duration, Instant};

use harp_bench::harness::{arg_value, flag, to_json_with_sections, workspace_path, write_report};
use harp_obs::prometheus::validate_exposition;
use harpd::client::{ClientResponse, HttpClient};
use harpd::server::{Server, ServerConfig};
use harpd::state::REQUEST_US_BOUNDS;

fn parse_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg_value(key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} takes a number, got {v:?}"))
        })
        .unwrap_or(default)
}

fn main() {
    if flag("--smoke") {
        smoke();
        return;
    }
    load();
}

// ---------------------------------------------------------------- smoke

fn expect_2xx(what: &str, result: Result<ClientResponse, String>) -> ClientResponse {
    match result {
        Ok(resp) if resp.is_success() => {
            println!("smoke: {what}: {}", resp.status);
            resp
        }
        Ok(resp) => {
            eprintln!("smoke: {what}: HTTP {} — {}", resp.status, resp.body);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("smoke: {what}: transport error: {e}");
            std::process::exit(1);
        }
    }
}

/// Boots a `harpd` child and walks the API surface once. Exits non-zero
/// on the first non-2xx, invalid exposition, or unclean child exit.
fn smoke() {
    let harpd_bin = arg_value("--harpd").unwrap_or_else(|| {
        eprintln!("smoke: --harpd <path-to-binary> is required");
        std::process::exit(2);
    });
    let port = parse_or("--port", 47464u16);
    let scenario_dir = arg_value("--scenario-dir")
        .unwrap_or_else(|| workspace_path("scenarios").display().to_string());
    let token = "ci-smoke";

    let mut child = std::process::Command::new(&harpd_bin)
        .args([
            "--addr",
            "127.0.0.1",
            "--port",
            &port.to_string(),
            "--workers",
            "4",
            "--token",
            token,
            "--scenario-dir",
            &scenario_dir,
        ])
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("smoke: spawn {harpd_bin}: {e}");
            std::process::exit(2);
        });

    let addr: std::net::SocketAddr = format!("127.0.0.1:{port}").parse().expect("loopback addr");
    let ready = (0..300).any(|_| {
        std::thread::sleep(Duration::from_millis(100));
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_ok()
    });
    if !ready {
        eprintln!("smoke: harpd did not open {addr} within 30s");
        let _ = child.kill();
        std::process::exit(1);
    }

    let mut client = HttpClient::new(addr).with_timeout(Duration::from_secs(60));

    let health = expect_2xx("GET /health", client.get("/health"));
    if !health.body.contains("\"status\": \"ok\"") {
        eprintln!("smoke: /health body unexpected: {}", health.body);
        std::process::exit(1);
    }

    let metrics = expect_2xx("GET /metrics", client.get("/metrics"));
    if let Err(e) = validate_exposition(&metrics.body) {
        eprintln!("smoke: /metrics is not valid Prometheus text: {e}");
        std::process::exit(1);
    }

    // Create one network from the inline scenario body and one from the
    // checked-in name — both paths CI must keep working.
    let scn_path = std::path::Path::new(&scenario_dir).join("fig10_dynamic.scn");
    let scn = std::fs::read_to_string(&scn_path).unwrap_or_else(|e| {
        eprintln!("smoke: read {}: {e}", scn_path.display());
        std::process::exit(2);
    });
    let inline_body = format!(
        "{{\"tenant\": \"smoke-inline\", \"scenario\": \"{}\"}}",
        scn.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    );
    expect_2xx(
        "POST /networks (inline fig10_dynamic)",
        client.post("/networks", &inline_body),
    );
    expect_2xx(
        "POST /networks (named fig10_dynamic)",
        client.post(
            "/networks",
            "{\"tenant\": \"smoke-named\", \"scenario_file\": \"fig10_dynamic\"}",
        ),
    );

    let sched = expect_2xx(
        "GET /networks/smoke-inline/schedule",
        client.get("/networks/smoke-inline/schedule"),
    );
    if !sched.body.contains("\"exclusive\": true") {
        eprintln!("smoke: schedule is not collision-free: {}", sched.body);
        std::process::exit(1);
    }

    let bill = expect_2xx(
        "POST /networks/smoke-inline/adjust",
        client.post(
            "/networks/smoke-inline/adjust",
            "{\"node\": 15, \"cells\": 2}",
        ),
    );
    if !bill.body.contains("\"mgmt_messages\"") {
        eprintln!(
            "smoke: adjustment bill missing mgmt_messages: {}",
            bill.body
        );
        std::process::exit(1);
    }

    let metrics = expect_2xx("GET /metrics (after traffic)", client.get("/metrics"));
    if let Err(e) = validate_exposition(&metrics.body) {
        eprintln!("smoke: post-traffic /metrics invalid: {e}");
        std::process::exit(1);
    }
    if !metrics.body.contains("tenant=\"smoke-inline\"") {
        eprintln!("smoke: /metrics lacks per-tenant series");
        std::process::exit(1);
    }

    // The adjust's correlation id must resolve through the live trace
    // endpoint to the allocator work it caused.
    let corr = bill
        .body
        .split("\"correlation_id\": ")
        .nth(1)
        .and_then(|t| {
            t.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse::<u64>()
                .ok()
        })
        .unwrap_or_else(|| {
            eprintln!(
                "smoke: adjust response lacks a correlation id: {}",
                bill.body
            );
            std::process::exit(1);
        });
    let trace = expect_2xx(
        "GET /debug/trace/smoke-inline",
        client.get("/debug/trace/smoke-inline"),
    );
    let needle = format!("\"corr\": {corr}");
    let resolves = trace
        .body
        .split_once("\"allocator_trace\"")
        .is_some_and(|(req, alloc)| req.contains(&needle) && alloc.contains(&needle));
    if !resolves {
        eprintln!(
            "smoke: correlation id {corr} does not resolve to allocator spans: {}",
            trace.body
        );
        std::process::exit(1);
    }

    let health = expect_2xx("GET /debug/health", client.get("/debug/health"));
    if !health.body.contains("\"tenant\": \"smoke-inline\"") {
        eprintln!(
            "smoke: /debug/health lacks tenant liveness: {}",
            health.body
        );
        std::process::exit(1);
    }

    let flight = expect_2xx("GET /debug/flight", client.get("/debug/flight"));
    let doc = harp_obs::FlightDoc::parse_str(&flight.body).unwrap_or_else(|e| {
        eprintln!("smoke: /debug/flight dump does not parse: {e}");
        std::process::exit(1);
    });
    if !doc
        .events
        .iter()
        .any(|e| e.kind == "adjust" && e.corr == corr)
    {
        eprintln!("smoke: flight recorder missed the adjust: {}", flight.body);
        std::process::exit(1);
    }

    // Save the dumps for CI to render and upload as artifacts.
    if let Some(dir) = arg_value("--artifact-dir") {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("smoke: create {}: {e}", dir.display());
            std::process::exit(2);
        });
        for (name, body) in [
            ("flight.json", &flight.body),
            ("trace_smoke-inline.json", &trace.body),
            ("health.json", &health.body),
        ] {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("smoke: write {}: {e}", path.display());
                std::process::exit(2);
            }
            println!("smoke: wrote {}", path.display());
        }
    }

    expect_2xx(
        "POST /shutdown",
        client.post(&format!("/shutdown?token={token}"), ""),
    );
    let status = child.wait().unwrap_or_else(|e| {
        eprintln!("smoke: wait on harpd: {e}");
        std::process::exit(1);
    });
    if !status.success() {
        eprintln!("smoke: harpd exited uncleanly: {status}");
        std::process::exit(1);
    }
    println!("smoke: harpd drained cleanly; all checks passed");
}

// ----------------------------------------------------------------- load

#[derive(Clone, Copy)]
struct LoadConfig {
    networks_per_wave: usize,
    waves: usize,
    nodes: u32,
    clients: usize,
    workers: usize,
    adjust_rounds: usize,
    schedule_rounds: usize,
    mixed_rounds: usize,
}

/// Request-kind markers in the latency log.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Create,
    Adjust,
    Schedule,
    Delete,
}

fn scenario_body(tenant: &str, nodes: u32, seed: u64) -> String {
    // Uniform demand needs slotframe room that grows with the tree; the
    // paper's 199-slot frame fits a few hundred nodes, larger networks
    // get a prime-length 997-slot frame (same 16 channels).
    let slots = if nodes <= 256 { 199 } else { 997 };
    let scn = format!(
        "scenario {tenant}\nseed 0x{seed:X}\n[topology]\ngenerator random nodes={nodes} layers=8 max_children=4 seed=0x{seed:X} count=1\n[scheduler]\nslots {slots}\nchannels 16\n[workloads]\ndemand uniform cells=1\n"
    );
    format!(
        "{{\"tenant\": \"{tenant}\", \"scenario\": \"{}\"}}",
        scn.replace('\n', "\\n")
    )
}

struct ClientLog {
    samples: Vec<(Kind, u64)>,
    failures: u64,
}

fn timed(log: &mut ClientLog, kind: Kind, result: Result<ClientResponse, String>, start: Instant) {
    let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    match result {
        Ok(resp) if resp.is_success() => log.samples.push((kind, us)),
        Ok(resp) => {
            eprintln!("load: HTTP {}: {}", resp.status, resp.body);
            log.failures += 1;
        }
        Err(e) => {
            eprintln!("load: transport: {e}");
            log.failures += 1;
        }
    }
}

/// One client thread's share of a wave: create, storm, query, delete its
/// slice of tenants.
fn client_wave(
    addr: std::net::SocketAddr,
    cfg: LoadConfig,
    wave: usize,
    tenants: Vec<usize>,
) -> ClientLog {
    let mut client = HttpClient::new(addr).with_timeout(Duration::from_secs(120));
    let mut log = ClientLog {
        samples: Vec::new(),
        failures: 0,
    };
    let tenant_name = |i: usize| format!("w{wave}-n{i}");

    for &i in &tenants {
        let seed = 0x5EED_0000 + (wave * cfg.networks_per_wave + i) as u64;
        let body = scenario_body(&tenant_name(i), cfg.nodes, seed);
        let start = Instant::now();
        let resp = client.post("/networks", &body);
        timed(&mut log, Kind::Create, resp, start);
    }
    for round in 0..cfg.adjust_rounds {
        // Alternate raising and relaxing one deep link per tenant — the
        // adjustment storm the partition hierarchy must keep absorbing.
        let cells = if round % 2 == 0 { 2 } else { 1 };
        let body = format!("{{\"node\": 5, \"cells\": {cells}}}");
        for &i in &tenants {
            let path = format!("/networks/{}/adjust", tenant_name(i));
            let start = Instant::now();
            let resp = client.post(&path, &body);
            timed(&mut log, Kind::Adjust, resp, start);
        }
    }
    for _ in 0..cfg.schedule_rounds {
        for &i in &tenants {
            let path = format!("/networks/{}/schedule", tenant_name(i));
            let start = Instant::now();
            let resp = client.get(&path);
            timed(&mut log, Kind::Schedule, resp, start);
        }
    }
    // Mixed read-heavy phase: eight schedule queries per adjustment
    // (every ninth round adjusts). Reads are answered from the daemon's
    // version-keyed cache until the next adjustment invalidates it.
    for round in 0..cfg.mixed_rounds {
        if round % 9 == 8 {
            let cells = if (round / 9) % 2 == 0 { 3 } else { 1 };
            let body = format!("{{\"node\": 5, \"cells\": {cells}}}");
            for &i in &tenants {
                let path = format!("/networks/{}/adjust", tenant_name(i));
                let start = Instant::now();
                let resp = client.post(&path, &body);
                timed(&mut log, Kind::Adjust, resp, start);
            }
        } else {
            for &i in &tenants {
                let path = format!("/networks/{}/schedule", tenant_name(i));
                let start = Instant::now();
                let resp = client.get(&path);
                timed(&mut log, Kind::Schedule, resp, start);
            }
        }
    }
    for &i in &tenants {
        let path = format!("/networks/{}", tenant_name(i));
        let start = Instant::now();
        let resp = client.delete(&path);
        timed(&mut log, Kind::Delete, resp, start);
    }
    log
}

fn load() {
    let quick = flag("--quick");
    let cfg = LoadConfig {
        networks_per_wave: parse_or("--networks", if quick { 8 } else { 2048 }),
        waves: parse_or("--waves", if quick { 1 } else { 2 }),
        nodes: parse_or("--nodes", if quick { 40 } else { 256 }),
        clients: parse_or("--clients", 2),
        workers: parse_or("--workers", 2),
        adjust_rounds: parse_or("--adjust-rounds", 4),
        schedule_rounds: parse_or("--schedule-rounds", 4),
        mixed_rounds: parse_or("--mixed-rounds", 9),
    };

    let server = Server::bind(ServerConfig::loopback(
        cfg.workers,
        "load-token",
        &workspace_path("scenarios").display().to_string(),
    ))
    .expect("bind loopback server");
    let addr = server.local_addr().expect("local addr");
    let server_thread = std::thread::spawn(move || server.run());

    println!(
        "harp_load: {} wave(s) x {} networks x {} nodes against {addr} ({} clients, {} workers)",
        cfg.waves, cfg.networks_per_wave, cfg.nodes, cfg.clients, cfg.workers
    );

    let start = Instant::now();
    let mut samples: Vec<(Kind, u64)> = Vec::new();
    let mut failures = 0u64;
    let mut metrics_bytes = 0usize;
    let mut control = HttpClient::new(addr).with_timeout(Duration::from_secs(120));
    for wave in 0..cfg.waves {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let tenants: Vec<usize> = (0..cfg.networks_per_wave)
                    .filter(|i| i % cfg.clients == c)
                    .collect();
                std::thread::spawn(move || client_wave(addr, cfg, wave, tenants))
            })
            .collect();
        for handle in handles {
            let log = handle.join().expect("client thread");
            samples.extend(log.samples);
            failures += log.failures;
        }
        // One scrape per wave: the exposition must stay valid under load.
        let scrape = control.get("/metrics").expect("scrape /metrics");
        validate_exposition(&scrape.body).expect("exposition stays valid under load");
        metrics_bytes = scrape.body.len();
    }
    println!("harp_load: last /metrics scrape was {metrics_bytes} bytes");
    let elapsed = start.elapsed();

    let shutdown = control
        .post("/shutdown?token=load-token", "")
        .expect("shutdown");
    assert!(shutdown.is_success(), "shutdown refused: {}", shutdown.body);
    let summary = server_thread.join().expect("server drains");

    // Fold the latency log into the shared power-of-two histogram for
    // interpolated percentiles, overall and per request kind.
    let mut registry = harp_obs::MetricsRegistry::new(true);
    let all = registry.histogram("load.request_us", REQUEST_US_BOUNDS);
    let create = registry.histogram("load.create_us", REQUEST_US_BOUNDS);
    let adjust = registry.histogram("load.adjust_us", REQUEST_US_BOUNDS);
    let schedule = registry.histogram("load.schedule_us", REQUEST_US_BOUNDS);
    for &(kind, us) in &samples {
        registry.observe(all, us);
        match kind {
            Kind::Create => registry.observe(create, us),
            Kind::Adjust => registry.observe(adjust, us),
            Kind::Schedule => registry.observe(schedule, us),
            Kind::Delete => {}
        }
    }
    let snap = registry.snapshot();
    let ns = |name: &str, q: f64| {
        snap.histograms
            .get(name)
            .map_or(0.0, |h| h.percentile(q) as f64 * 1000.0)
    };
    let count = |kind: Kind| samples.iter().filter(|&&(k, _)| k == kind).count();

    let total_networks = cfg.networks_per_wave * cfg.waves;
    // Control-plane requests the loop above issued outside the latency
    // log: one /metrics scrape per wave plus the final /shutdown. They
    // count toward total_requests so the client-side tally reconciles
    // exactly with the server's harpd.requests_total.
    let control_requests = cfg.waves as u64 + 1;
    let total_requests = samples.len() as u64 + failures + control_requests;
    let secs = elapsed.as_secs_f64().max(1e-9);
    let creates = count(Kind::Create);
    let adjusts = count(Kind::Adjust);
    let schedules = count(Kind::Schedule);
    let mean_ns = snap
        .histograms
        .get("load.request_us")
        .map_or(0.0, |h| h.mean() * 1000.0);

    // Allocator-time vs server-overhead split, from the daemon's own
    // histograms: harpd.request_us covers every request end to end,
    // harpd.allocator_us only the time spent inside the allocator (cache
    // hits contribute nothing). The difference of the sums is what the
    // server itself added — parsing, routing, locking, encoding.
    let daemon_sum_ns = |name: &str| {
        summary
            .metrics
            .histograms
            .get(name)
            .map_or(0.0, |h| h.sum as f64 * 1000.0)
    };
    let daemon_p99_ns = |name: &str| {
        summary
            .metrics
            .histograms
            .get(name)
            .map_or(0.0, |h| h.percentile(0.99) as f64 * 1000.0)
    };
    let total_server_ns = daemon_sum_ns("harpd.request_us");
    let total_allocator_ns = daemon_sum_ns("harpd.allocator_us");

    let metrics: Vec<(&str, f64)> = vec![
        ("networks", total_networks as f64),
        ("concurrent_networks", cfg.networks_per_wave as f64),
        ("nodes_per_network", f64::from(cfg.nodes)),
        (
            "aggregate_nodes",
            total_networks as f64 * f64::from(cfg.nodes),
        ),
        ("total_requests", total_requests as f64),
        ("create_requests", creates as f64),
        ("adjust_requests", adjusts as f64),
        ("schedule_requests", schedules as f64),
        ("control_requests", control_requests as f64),
        ("failed_requests", failures as f64),
        ("client_threads", cfg.clients as f64),
        ("server_workers", cfg.workers as f64),
        ("requests_per_sec", total_requests as f64 / secs),
        ("creates_per_sec", creates as f64 / secs),
        ("adjusts_per_sec", adjusts as f64 / secs),
        ("schedules_per_sec", schedules as f64 / secs),
        ("mean_request_ns", mean_ns),
        ("p50_request_ns", ns("load.request_us", 0.50)),
        ("p95_request_ns", ns("load.request_us", 0.95)),
        ("p99_request_ns", ns("load.request_us", 0.99)),
        ("p99_create_ns", ns("load.create_us", 0.99)),
        ("p99_adjust_ns", ns("load.adjust_us", 0.99)),
        ("p99_schedule_ns", ns("load.schedule_us", 0.99)),
        ("total_server_ns", total_server_ns),
        ("total_allocator_ns", total_allocator_ns),
        (
            "total_overhead_ns",
            (total_server_ns - total_allocator_ns).max(0.0),
        ),
        ("p99_daemon_request_ns", daemon_p99_ns("harpd.request_us")),
        (
            "p99_daemon_allocator_ns",
            daemon_p99_ns("harpd.allocator_us"),
        ),
    ];

    for (name, value) in &metrics {
        println!("  {name:<28} {value:.3}");
    }
    assert_eq!(failures, 0, "load run saw {failures} failed requests");
    assert_eq!(
        summary.networks, 0,
        "every wave deletes its networks; none may leak"
    );
    let served = summary.metrics.counter("harpd.requests_total").unwrap_or(0);
    assert_eq!(
        total_requests, served,
        "client accounting ({total_requests}) must reconcile with the \
         server's harpd.requests_total ({served})"
    );

    let report = to_json_with_sections(&[], &metrics, &[("obs", summary.metrics.to_json())]);
    write_report("BENCH_service.json", &report);
}
