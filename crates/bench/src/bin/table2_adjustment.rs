//! Table II: partition-adjustment overhead for a selected set of events at
//! different layers of the 50-node testbed network.
//!
//! Each event raises one subtree component (by raising a link demand under
//! it) and reports: involved nodes, layers crossed, HARP messages
//! exchanged, elapsed time in seconds, and slotframes — the same columns as
//! the paper's Table II. Absolute values depend on the stand-in topology;
//! the shape to check is that deeper/larger events involve more nodes,
//! layers, messages and time.
//!
//! Writes `BENCH_table2.json` at the workspace root: one gated row per
//! event plus a trace sample merging all six instrumented adjustments —
//! six `adjust` spans at different depths, the canonical input for the
//! `harp_trace` flame view.
//!
//! Run with `cargo run --release -p harp-bench --bin table2_adjustment`.

use harp_bench::harness::{rows_json, to_json_with_sections, write_report};
use harp_bench::{measure_harp_adjustment_traced, par_map};
use harp_obs::{spans_to_json, MetricsSnapshot, SpanEvent};
use tsch_sim::{Link, NodeId, SlotframeConfig};

fn main() {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    // The testbed workload: one echo task per node at 1 pkt/slotframe, so
    // r(e) equals the child-side subtree size in both directions.
    let reqs = workloads::aggregated_echo_requirements(&tree, tsch_sim::Rate::per_slotframe(1));

    // Events in the spirit of the paper's Table II: demand increases of
    // varying size at links of every depth (the paper's node ids belong to
    // its own testbed layout and do not transfer). Raising r(e) of a link
    // whose child is node N at depth d grows component C_{parent(N), d}.
    let events: [(Link, u32); 6] = [
        (Link::up(NodeId(1)), 2),
        (Link::up(NodeId(14)), 2),
        (Link::up(NodeId(5)), 3),
        (Link::up(NodeId(17)), 2),
        (Link::up(NodeId(33)), 2),
        (Link::up(NodeId(45)), 2),
    ];

    println!("# Table II — partition adjustment overhead for selected events");
    println!(
        "{:<30} {:>6} {:>7} {:>5} {:>8} {:>4}",
        "Event", "Nodes", "Layers", "Msg.", "Time(s)", "SF"
    );
    // Each event replays the static phase from scratch, so the rows are
    // independent: measure them in parallel, print in event order.
    let results = par_map(&events, |_, &(link, delta)| {
        let old = reqs.get(link);
        let new_cells = old + delta;
        let parent = tree.parent(link.child).expect("non-root");
        let label = format!(
            "C_{{{},{}}}: r(up N{}) {}->{}",
            parent.0,
            tree.layer_of_link(link),
            link.child.0,
            old,
            new_cells
        );
        match measure_harp_adjustment_traced(&tree, &reqs, config, link, new_cells) {
            Some((s, trace)) => {
                let text = format!(
                    "{:<30} {:>6} {:>7} {:>5} {:>8.2} {:>4}",
                    label,
                    s.involved_nodes,
                    s.layers_touched,
                    s.mgmt_messages,
                    s.seconds,
                    s.slotframes
                );
                let row = (
                    format!(
                        "C{}_L{}_N{}",
                        parent.0,
                        tree.layer_of_link(link),
                        link.child.0
                    ),
                    vec![
                        ("involved_nodes", s.involved_nodes as f64),
                        ("layers_touched", s.layers_touched as f64),
                        ("mgmt_messages", s.mgmt_messages as f64),
                        ("seconds", s.seconds),
                        ("slotframes", s.slotframes as f64),
                    ],
                );
                // Keep the adjustment spans only: the six identical static
                // phases would otherwise drown the interesting part.
                let spans: Vec<SpanEvent> =
                    trace.into_iter().filter(|s| s.name == "adjust").collect();
                (text, Some(row), spans)
            }
            None => (format!("{label:<30} infeasible"), None, Vec::new()),
        }
    });
    let mut rows = Vec::new();
    let mut spans: Vec<SpanEvent> = Vec::new();
    for (text, row, event_spans) in results {
        println!("{text}");
        rows.extend(row);
        spans.extend(event_spans);
    }
    println!("{}", harp_bench::obs_footer());

    let mut snap = MetricsSnapshot::default();
    snap.add_counters(packing::obs::totals());
    snap.add_counters(workloads::obs::totals());
    let total = spans.len() as u64;
    let json = to_json_with_sections(
        &[],
        &[("bench_threads", tsch_sim::bench_threads() as f64)],
        &[
            ("rows", rows_json(&rows)),
            ("obs", snap.to_json()),
            ("trace_sample", spans_to_json(spans.iter(), total)),
        ],
    );
    write_report("BENCH_table2.json", &json);
}
