//! Table II: partition-adjustment overhead for a selected set of events at
//! different layers of the 50-node testbed network.
//!
//! The experiment itself is the checked-in `scenarios/table2_adjustment.scn`
//! (one `demand_step` per Table II event) replayed through the shared
//! scenario runner — this binary is a thin wrapper kept for CI and muscle
//! memory. Equivalent invocation:
//! `harp_sim --scenario scenarios/table2_adjustment.scn`.
//!
//! Writes `BENCH_table2.json` at the workspace root.

use harp_bench::harness::flag;
use harp_bench::scenario_run::{load_scenario_file, run_scenario, scenario_dir, RunOptions};

fn main() {
    let scenario = load_scenario_file(&scenario_dir().join("table2_adjustment.scn"))
        .expect("checked-in scenario parses");
    let opts = RunOptions {
        quick: flag("--quick"),
        ..RunOptions::default()
    };
    run_scenario(&scenario, &opts)
        .expect("scenario runs")
        .emit();
}
