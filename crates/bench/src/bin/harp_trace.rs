//! `harp_trace` — renders a recorded span trace into human- and
//! tool-readable views: a flamegraph-style text view, the collapsed-stack
//! format understood by inferno / `flamegraph.pl`, Chrome trace-event JSON
//! (load it at `chrome://tracing` or in Perfetto), a slotframe-utilization
//! heatmap, and an adjustment-storm report.
//!
//! ```text
//! harp_trace [INPUT.json] [options]
//!   INPUT.json        report with a `trace_sample` section, a span dump
//!                     ({"spans": [...]}), a bare span array, or a harpd
//!                     flight-recorder dump ({"events": [...]}, as served
//!                     by /debug/flight — incident wrappers included)
//!                     (default: BENCH_trace_sample.json at the repo root)
//!   --live            ignore INPUT; run an instrumented 50-node static
//!                     phase + one deep adjustment and render its trace
//!   --view VIEW       all | flame | collapsed | chrome | heatmap | storms
//!                     (default: all)
//!   --out-dir DIR     write <stem>.flame.txt / .collapsed.txt /
//!                     .chrome.json / .heatmap.txt / .storms.txt into DIR
//!                     instead of printing to stdout
//!   --slot-us N       microseconds per slot for the Chrome export
//!                     (default: 10000, the paper's 10 ms slots)
//!   --storm-k K       minimum distinct nodes whose adjustment spans must
//!                     overlap to count as a storm (default: 3)
//! ```
//!
//! Every view is a pure function of the input spans, so re-rendering a
//! committed trace is byte-identical — CI relies on that.

use harp_obs::flame::{
    chrome_trace, collapsed_stacks, detect_storms, storm_report, text_flame, utilization_heatmap,
    TraceDoc,
};
use std::process::ExitCode;

/// Heatmap width in character columns.
const HEATMAP_COLS: usize = 64;

struct Options {
    input: Option<String>,
    live: bool,
    view: String,
    out_dir: Option<String>,
    slot_us: u64,
    storm_k: usize,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        input: None,
        live: false,
        view: "all".to_owned(),
        out_dir: None,
        slot_us: 10_000,
        storm_k: 3,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--live" => opts.live = true,
            "--view" => opts.view = value("--view")?,
            "--out-dir" => opts.out_dir = Some(value("--out-dir")?),
            "--slot-us" => {
                opts.slot_us = value("--slot-us")?
                    .parse()
                    .map_err(|e| format!("--slot-us: {e}"))?;
            }
            "--storm-k" => {
                opts.storm_k = value("--storm-k")?
                    .parse()
                    .map_err(|e| format!("--storm-k: {e}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => {
                if opts.input.replace(other.to_owned()).is_some() {
                    return Err("at most one input file".to_owned());
                }
            }
        }
    }
    match opts.view.as_str() {
        "all" | "flame" | "collapsed" | "chrome" | "heatmap" | "storms" => Ok(opts),
        v => Err(format!(
            "unknown view {v} (expected all|flame|collapsed|chrome|heatmap|storms)"
        )),
    }
}

/// Parses either a span trace or a harpd flight-recorder dump. A flight
/// dump (`{"events": [...]}` or an incident wrapper) folds onto trace
/// spans — one zero-width span per event, tenant as layer — so every view
/// (flame, heatmap, storms, chrome) renders service incidents unchanged.
fn parse_trace_or_flight(text: &str) -> Result<TraceDoc, String> {
    if let Ok(flight) = harp_obs::FlightDoc::parse_str(text) {
        return Ok(TraceDoc {
            spans: flight.to_trace_spans(),
            total_recorded: flight.total_recorded,
            dropped: flight.dropped,
        });
    }
    TraceDoc::parse_str(text)
}

/// Default input: the committed trace sample at the workspace root.
fn default_input() -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../../BENCH_trace_sample.json"),
        Err(_) => std::path::PathBuf::from("BENCH_trace_sample.json"),
    }
}

/// Runs an instrumented static phase plus one deep adjustment on the
/// 50-node testbed topology and returns the recorded trace.
fn live_trace() -> TraceDoc {
    use tsch_sim::{Link, NodeId, SlotframeConfig};
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let reqs = workloads::aggregated_echo_requirements(&tree, tsch_sim::Rate::per_slotframe(1));
    let mut net = harp_core::HarpNetwork::new(
        tree,
        config,
        &reqs,
        harp_core::SchedulingPolicy::RateMonotonic,
    );
    net.enable_observability(2048);
    net.run_static().expect("testbed workload is feasible");
    let link = Link::up(NodeId(45));
    let new_cells = reqs.get(link) + 2;
    net.adjust_and_settle(net.now(), link, new_cells)
        .expect("adjustment resolves");
    TraceDoc::from_events(net.obs().spans.iter())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("harp_trace: {e}");
            return ExitCode::from(2);
        }
    };

    let (doc, stem) = if opts.live {
        (live_trace(), "live".to_owned())
    } else {
        let path = opts
            .input
            .as_ref()
            .map_or_else(default_input, std::path::PathBuf::from);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("harp_trace: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let doc = match parse_trace_or_flight(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("harp_trace: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let stem = path
            .file_stem()
            .map_or_else(|| "trace".to_owned(), |s| s.to_string_lossy().into_owned());
        (doc, stem)
    };

    let spans = &doc.spans;
    let want = |v: &str| opts.view == "all" || opts.view == v;
    let mut outputs: Vec<(&str, String)> = Vec::new();
    if want("flame") {
        outputs.push(("flame.txt", text_flame(spans)));
    }
    if want("collapsed") {
        outputs.push(("collapsed.txt", collapsed_stacks(spans)));
    }
    if want("chrome") {
        outputs.push(("chrome.json", chrome_trace(spans, opts.slot_us)));
    }
    if want("heatmap") {
        outputs.push(("heatmap.txt", utilization_heatmap(spans, HEATMAP_COLS)));
    }
    if want("storms") {
        let storms = detect_storms(spans, opts.storm_k);
        outputs.push(("storms.txt", storm_report(&storms, opts.storm_k)));
    }

    eprintln!("# {}", doc.coverage_banner());
    match &opts.out_dir {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("harp_trace: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
            for (suffix, content) in &outputs {
                let path = dir.join(format!("{stem}.{suffix}"));
                if let Err(e) = std::fs::write(&path, content) {
                    eprintln!("harp_trace: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!("# wrote {}", path.display());
            }
        }
        None => {
            for (i, (suffix, content)) in outputs.iter().enumerate() {
                if opts.view == "all" {
                    if i > 0 {
                        println!();
                    }
                    println!("== {stem}.{suffix} ==");
                }
                print!("{content}");
                if !content.ends_with('\n') {
                    println!();
                }
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        parse_args(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flags_and_positional_input() {
        let o = opts(&[
            "in.json",
            "--view",
            "chrome",
            "--slot-us",
            "500",
            "--storm-k",
            "2",
            "--out-dir",
            "d",
        ])
        .unwrap();
        assert_eq!(o.input.as_deref(), Some("in.json"));
        assert_eq!(o.view, "chrome");
        assert_eq!(o.slot_us, 500);
        assert_eq!(o.storm_k, 2);
        assert_eq!(o.out_dir.as_deref(), Some("d"));
        assert!(!o.live);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(opts(&["--view", "nope"]).is_err());
        assert!(opts(&["--slot-us"]).is_err());
        assert!(opts(&["--frobnicate"]).is_err());
        assert!(opts(&["a.json", "b.json"]).is_err());
    }

    #[test]
    fn flight_dumps_fold_onto_trace_views() {
        let mut recorder = harp_obs::FlightRecorder::new(8);
        recorder.record(harp_obs::FlightEvent {
            seq: 0,
            at: 120,
            kind: "adjust",
            tenant: "t1".to_owned(),
            corr: 7,
            node: 5,
            detail: "cells=2".to_owned(),
            magnitude: 2,
        });
        let doc = parse_trace_or_flight(&recorder.to_json(8)).expect("flight dump parses");
        assert_eq!(doc.spans.len(), 1);
        assert_eq!(doc.spans[0].layer, "t1");
        assert_eq!(doc.spans[0].corr, 7);
        // The span dump shape still parses through the same entry point.
        let trace = parse_trace_or_flight(
            "{\"total_recorded\": 1, \"dropped\": 0, \"spans\": [{\"name\": \"x\", \
             \"layer\": \"harp\", \"node\": 1, \"depth\": 0, \"start_asn\": 0, \
             \"end_asn\": 1, \"detail\": 0}]}",
        )
        .expect("span dump parses");
        assert_eq!(trace.spans.len(), 1);
    }

    #[test]
    fn live_trace_produces_spans() {
        let doc = live_trace();
        assert!(!doc.spans.is_empty());
        assert!(doc.spans.iter().any(|s| s.name == "adjust"));
        assert!(doc.spans.iter().any(|s| s.name == "static"));
    }
}
