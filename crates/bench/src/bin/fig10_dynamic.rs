//! Fig. 10: end-to-end latency of the observed node while its data rate
//! steps 1 → 1.5 → 3 packets/slotframe.
//!
//! The control plane (HARP nodes + management plane) and the data plane
//! (slot-level simulator) run in lockstep. As on the testbed, the observed
//! node's partition starts with idle headroom cells, so the first rate step
//! is absorbed by a purely local schedule update, while the second step
//! overflows the partition and triggers a partition-adjustment escalation —
//! visible as a longer latency excursion before the network settles again.
//!
//! Writes `BENCH_fig10.json` at the workspace root: the latency timeline as
//! gated rows plus a merged control-/data-plane trace sample in which the
//! rate-step escalation shows up as overlapping `change`/`adjust` spans
//! (`harp_trace BENCH_fig10.json --view storms --storm-k 2` finds them).
//!
//! Run with `cargo run --release -p harp-bench --bin fig10_dynamic`.

use harp_bench::harness::{rows_json, to_json_with_sections, write_report};
use harp_bench::run_lockstep;
use harp_core::{HarpNetwork, SchedulingPolicy};
use harp_obs::merged_trace_json;
use tsch_sim::{Asn, Direction, Link, Rate, SimulatorBuilder, SlotframeConfig};
use workloads::{fig10_observed_node, uplink_demand_after_change};

fn main() {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let observed = fig10_observed_node();
    let base_rate = Rate::per_slotframe(1);

    // Static phase with +1 headroom on every link of the observed node's
    // path (the testbed's partitions had idle cells; §VI-C).
    let mut padded = workloads::aggregated_echo_requirements(&tree, base_rate);
    let base = padded.clone();
    for hop in tree.path_to_root(observed).windows(2) {
        for link in [Link::up(hop[0]), Link::down(hop[0])] {
            padded.set(link, padded.get(link) + 1);
        }
    }
    let mut net = HarpNetwork::new(
        tree.clone(),
        config,
        &padded,
        SchedulingPolicy::RateMonotonic,
    );
    net.enable_observability(2048);
    net.run_static().expect("feasible static phase");
    // Release the headroom: partitions keep their size, schedules shrink to
    // the real demand. (Local case — no management messages.)
    for (link, cells) in base.iter() {
        if padded.get(link) != cells {
            net.request_change(net.now(), link, cells)
                .expect("local decrease");
        }
    }
    net.run_until_quiescent().expect("decreases settle");
    assert!(net.schedule().is_exclusive());

    // Data plane.
    let net_offset = net.now().0;
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(net.schedule().clone())
        .seed(0xF10)
        .observability(256);
    for task in workloads::echo_task_per_node(&tree, base_rate) {
        builder = builder.task(task).expect("valid task");
    }
    let mut sim = builder.build();
    let observed_task =
        workloads::task_id_of(&tree, observed).expect("observed is not the gateway");

    let phase = |sim: &mut tsch_sim::Simulator, net: &mut HarpNetwork, frames: u64| {
        run_lockstep(sim, net, net_offset, frames * u64::from(config.slots));
    };

    // Phase 1: steady state at 1 pkt/slotframe.
    phase(&mut sim, &mut net, 30);

    // Phase 2: rate 1.5 — absorbed by the headroom (local schedule update).
    let steps = workloads::fig10_rate_steps(observed);
    sim.set_task_rate(observed_task, steps[0].new_rate)
        .expect("task exists");
    apply_demand_change(
        &tree,
        &mut net,
        &mut sim,
        observed,
        base_rate,
        steps[0].new_rate,
    );
    phase(&mut sim, &mut net, 30);

    // Phase 3: rate 3 — overflows the partition, escalates.
    sim.set_task_rate(observed_task, steps[1].new_rate)
        .expect("task exists");
    apply_demand_change(
        &tree,
        &mut net,
        &mut sim,
        observed,
        base_rate,
        steps[1].new_rate,
    );
    phase(&mut sim, &mut net, 40);

    // Report: average latency of the observed node per slotframe.
    println!("# Fig. 10 — e2e latency of node {} over time", observed.0);
    println!("# rate steps at slotframe 30 (1 -> 1.5) and 60 (1.5 -> 3)");
    println!("{:>10} {:>12}", "slotframe", "latency(s)");
    let slot_s = f64::from(config.slot_duration_us) / 1e6;
    let timeline = sim.stats().latency_timeline(observed, config.slots);
    for &(frame, mean_slots) in &timeline {
        println!("{frame:>10} {:>12.3}", mean_slots * slot_s);
    }
    println!(
        "# schedule exclusive throughout: {}",
        sim.schedule().is_exclusive()
    );
    println!("{}", harp_bench::obs_footer());

    // Gated report: the timeline itself as rows (seeded, deterministic),
    // delivery totals, and the merged trace. The rate steps appear in the
    // trace as `change` spans on the observed node's path; the phase-3
    // escalation is the storm `harp_trace --view storms` reports.
    let rows: Vec<(String, Vec<(&'static str, f64)>)> = timeline
        .iter()
        .map(|&(frame, mean_slots)| {
            (
                format!("sf{frame:03}"),
                vec![("mean_latency_slots", mean_slots)],
            )
        })
        .collect();
    let stats = sim.stats();
    let metrics: Vec<(&str, f64)> = vec![
        ("generated", stats.generated as f64),
        ("delivered", stats.deliveries.len() as f64),
        ("collisions", stats.collisions as f64),
        ("losses", stats.losses as f64),
        ("bench_threads", tsch_sim::bench_threads() as f64),
    ];
    let mut snap = net.metrics_snapshot();
    snap.add_counters(packing::obs::totals());
    snap.add_counters(workloads::obs::totals());
    let trace = merged_trace_json(&[&net.obs().spans, &sim.obs().spans], 96);
    let json = to_json_with_sections(
        &[],
        &metrics,
        &[
            ("rows", rows_json(&rows)),
            ("obs", snap.to_json()),
            ("trace_sample", trace),
        ],
    );
    write_report("BENCH_fig10.json", &json);
}

/// Recomputes the demand of every link on the observed node's path for the
/// new rate and injects the changes into the control plane.
fn apply_demand_change(
    tree: &tsch_sim::Tree,
    net: &mut HarpNetwork,
    sim: &mut tsch_sim::Simulator,
    observed: tsch_sim::NodeId,
    base_rate: Rate,
    new_rate: Rate,
) {
    let now = Asn(net.now().0.max(sim.now().0));
    let ups = uplink_demand_after_change(tree, observed, base_rate, new_rate);
    let mut changes: Vec<(Link, u32)> = ups.clone();
    // Echo traffic: downlinks mirror uplinks.
    changes.extend(ups.iter().map(|&(l, c)| {
        (
            Link {
                child: l.child,
                direction: Direction::Down,
            },
            c,
        )
    }));
    for (link, cells) in changes {
        let ops = net
            .request_change(now, link, cells)
            .expect("feasible change");
        for op in &ops {
            harp_core::apply_op(sim.schedule_mut(), op).expect("consistent ops");
        }
    }
}
