//! Fig. 10: end-to-end latency of the observed node while its data rate
//! steps 1 → 1.5 → 3 packets/slotframe.
//!
//! The experiment itself is the checked-in `scenarios/fig10_dynamic.scn`
//! (topology, headroom, rate steps, report shape) replayed through the
//! shared scenario runner — this binary is a thin wrapper kept for CI and
//! muscle memory. Equivalent invocation:
//! `harp_sim --scenario scenarios/fig10_dynamic.scn`.
//!
//! Writes `BENCH_fig10.json` at the workspace root.

use harp_bench::harness::flag;
use harp_bench::scenario_run::{load_scenario_file, run_scenario, scenario_dir, RunOptions};

fn main() {
    let scenario = load_scenario_file(&scenario_dir().join("fig10_dynamic.scn"))
        .expect("checked-in scenario parses");
    let opts = RunOptions {
        quick: flag("--quick"),
        ..RunOptions::default()
    };
    run_scenario(&scenario, &opts)
        .expect("scenario runs")
        .emit();
}
