//! `harp_sim` — run any declarative scenario file through the shared
//! runner.
//!
//! ```text
//! harp_sim --scenario scenarios/mgmt_loss.scn [--seed 42] [--quick] \
//!          [--threads N] [--flight dump.json]
//! ```
//!
//! `--flight` writes the run's flight-recorder dump (fault firings, rate
//! steps, replicate outcomes, detected adjustment storms on the ASN
//! timeline) for `harp_trace` to render; available for `timeline` and
//! `replicates` scenarios, and byte-identical across runs and `--threads`
//! values.
//!
//! The scenario file declares topology, scheduler, workload, fault
//! schedule and report shape (grammar in `DESIGN.md` §14); the runner
//! replays it deterministically — the same scenario and seed produce a
//! byte-identical report on every run and for every `--threads` value.
//! `--seed` overrides the file's seed; `--quick` shrinks topology sweeps
//! to their `quick_count` (the CI smoke setting).

use harp_bench::harness::{arg_value, flag};
use harp_bench::scenario_run::{load_scenario_file, run_scenario, RunOptions};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: harp_sim --scenario <file.scn> [--seed <n>] [--quick] [--threads <n>] [--flight <out.json>]";

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let Some(path) = arg_value("--scenario") else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let seed = match arg_value("--seed") {
        Some(v) => match parse_u64(&v) {
            Some(n) => Some(n),
            None => {
                eprintln!("error: invalid --seed `{v}`");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let threads = match arg_value("--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!("error: invalid --threads `{v}`");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let opts = RunOptions {
        quick: flag("--quick"),
        seed,
        threads,
    };
    let scenario = match load_scenario_file(Path::new(&path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_scenario(&scenario, &opts) {
        Ok(output) => {
            output.emit();
            if let Some(path) = arg_value("--flight") {
                let Some(flight) = &output.flight else {
                    eprintln!(
                        "error: --flight needs a `timeline` or `replicates` scenario; \
                         this mode records no event timeline"
                    );
                    return ExitCode::FAILURE;
                };
                if let Err(e) = std::fs::write(&path, flight) {
                    eprintln!("error: write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("# wrote flight dump {path}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
