//! Fig. 11(b): schedule-collision probability vs number of channels.
//!
//! Same 100 topologies as Fig. 11(a); the data rate is fixed at 3
//! packets/slotframe while the channel budget shrinks from 16 to 2 (and 1,
//! beyond the paper, to show HARP's wrap-around degradation point in our
//! demand model). The paper's shape: baselines degrade sharply as channels
//! vanish; HARP stays at zero until the slotframe physically cannot hold
//! the demand, then rises slightly but keeps dominating.
//!
//! Writes `BENCH_fig11b.json` at the workspace root: one gated row per
//! (rate, channels) point with every scheduler's collision probability,
//! plus a synthetic sweep trace on a virtual clock (layer `bench`, depth =
//! channel count) for `harp_trace`.
//!
//! Run with `cargo run --release -p harp-bench --bin fig11b_collision_channels`.

use harp_bench::harness::{rows_json, to_json_with_sections, write_report};
use harp_bench::{average_collision_probability, pct};
use harp_obs::{spans_to_json, MetricsSnapshot, SpanEvent, NO_NODE};
use schedulers::{
    AliceScheduler, HarpScheduler, LdsfScheduler, MsfScheduler, RandomScheduler, Scheduler,
};
use tsch_sim::SlotframeConfig;

fn main() {
    let topologies = workloads::fig11_topologies();
    let schedulers: [&dyn Scheduler; 5] = [
        &RandomScheduler,
        &MsfScheduler,
        &AliceScheduler,
        &LdsfScheduler,
        &HarpScheduler::default(),
    ];
    let mut rows: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    let mut spans: Vec<SpanEvent> = Vec::new();
    let mut step = 0u64;
    // The paper sweeps at rate 3. Our composition packs tighter than the
    // testbed implementation, so at rate 3 HARP stays collision-free even
    // on one channel; the rate-6 sweep below exposes the same
    // starvation-induced degradation the paper reports below 4 channels.
    for rate in [3u32, 6] {
        println!("# Fig. 11(b) — collision probability vs number of channels (rate {rate})");
        println!(
            "# {} topologies, 50 nodes, 5 layers, 199 slots",
            topologies.len()
        );
        print!("{:>8}", "channels");
        for s in &schedulers {
            print!(" {:>8}", s.name());
        }
        println!();

        for channels in [16u16, 12, 8, 6, 4, 3, 2, 1] {
            let config = SlotframeConfig::paper_default()
                .with_channels(channels)
                .expect("nonzero channel count");
            print!("{channels:>8}");
            let mut fields: Vec<(&'static str, f64)> = Vec::new();
            for (si, s) in schedulers.iter().enumerate() {
                let p = average_collision_probability(*s, &topologies, rate, config);
                print!(" {:>8}", pct(p));
                fields.push((s.name(), p));
                let start = step * 1000 + si as u64 * 150;
                spans.push(SpanEvent {
                    name: s.name(),
                    layer: "bench",
                    node: NO_NODE,
                    depth: u32::from(channels),
                    start_asn: start,
                    end_asn: start + 149,
                    detail: (p * 1e6).round() as i64,
                    corr: 0,
                });
            }
            println!();
            rows.push((format!("r{rate}c{channels:02}"), fields));
            step += 1;
        }
        println!();
    }
    println!("{}", harp_bench::obs_footer());

    let mut snap = MetricsSnapshot::default();
    snap.add_counters(workloads::obs::totals());
    snap.add_counters(schedulers::obs::totals());
    let total = spans.len() as u64;
    let json = to_json_with_sections(
        &[],
        &[("bench_threads", tsch_sim::bench_threads() as f64)],
        &[
            ("rows", rows_json(&rows)),
            ("obs", snap.to_json()),
            ("trace_sample", spans_to_json(spans.iter(), total)),
        ],
    );
    write_report("BENCH_fig11b.json", &json);
}
