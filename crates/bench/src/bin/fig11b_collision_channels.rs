//! Fig. 11(b): schedule-collision probability vs number of channels.
//!
//! Same 100 topologies as Fig. 11(a); the data rate is fixed at 3
//! packets/slotframe while the channel budget shrinks from 16 to 2 (and 1,
//! beyond the paper, to show HARP's wrap-around degradation point in our
//! demand model). The paper's shape: baselines degrade sharply as channels
//! vanish; HARP stays at zero until the slotframe physically cannot hold
//! the demand, then rises slightly but keeps dominating.
//!
//! Run with `cargo run --release -p harp-bench --bin fig11b_collision_channels`.

use harp_bench::{average_collision_probability, pct};
use schedulers::{
    AliceScheduler, HarpScheduler, LdsfScheduler, MsfScheduler, RandomScheduler, Scheduler,
};
use tsch_sim::SlotframeConfig;

fn main() {
    let topologies = workloads::fig11_topologies();
    let schedulers: [&dyn Scheduler; 5] = [
        &RandomScheduler,
        &MsfScheduler,
        &AliceScheduler,
        &LdsfScheduler,
        &HarpScheduler::default(),
    ];
    // The paper sweeps at rate 3. Our composition packs tighter than the
    // testbed implementation, so at rate 3 HARP stays collision-free even
    // on one channel; the rate-6 sweep below exposes the same
    // starvation-induced degradation the paper reports below 4 channels.
    for rate in [3u32, 6] {
        println!("# Fig. 11(b) — collision probability vs number of channels (rate {rate})");
        println!(
            "# {} topologies, 50 nodes, 5 layers, 199 slots",
            topologies.len()
        );
        print!("{:>8}", "channels");
        for s in &schedulers {
            print!(" {:>8}", s.name());
        }
        println!();

        for channels in [16u16, 12, 8, 6, 4, 3, 2, 1] {
            let config = SlotframeConfig::paper_default()
                .with_channels(channels)
                .expect("nonzero channel count");
            print!("{channels:>8}");
            for s in &schedulers {
                let p = average_collision_probability(*s, &topologies, rate, config);
                print!(" {:>8}", pct(p));
            }
            println!();
        }
        println!();
    }
    println!("{}", harp_bench::obs_footer());
}
