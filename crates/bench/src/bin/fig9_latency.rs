//! Fig. 9: per-node average end-to-end latency in the static 50-node
//! network.
//!
//! One echo task per node at 1 packet/slotframe (2 s period, as on the
//! testbed); HARP's distributed static phase builds the schedule; the data
//! plane then runs for 30 simulated minutes with a 0.97 per-link PDR to
//! reproduce the environmental-loss outliers the paper reports. The shape
//! to check: latencies are bounded by roughly one slotframe (1.99 s), with
//! loss-induced spikes at nodes many hops from the gateway.
//!
//! Two variants are printed: the exact-fit allocation with drop-on-loss
//! (the headline table), and a loss-provisioned allocation
//! (`r'(e) = ceil(r(e)/PDR)`) that sustains link-layer retransmissions —
//! closer to how the physical testbed stayed stable. The variants are
//! independent simulations and run on separate worker threads; their output
//! blocks are assembled off-line and printed in a fixed order, so the
//! report is byte-identical to a serial run.
//!
//! Writes `BENCH_fig9.json` at the workspace root: per-layer latency rows,
//! deterministic delivery metrics, an observability snapshot, and a merged
//! control-plane + data-plane trace sample (render it with `harp_trace`).
//!
//! Run with `cargo run --release -p harp-bench --bin fig9_latency`.

use harp_bench::harness::{rows_json, to_json_with_sections, write_report};
use harp_core::{HarpNetwork, SchedulingPolicy};
use harp_obs::{merged_trace_json, SpanRing};
use std::fmt::Write as _;
use tsch_sim::{LinkQuality, Rate, SimulatorBuilder, SlotframeConfig};

/// One variant's printable block plus its report fragments.
struct VariantOut {
    text: String,
    rows: Vec<(String, Vec<(&'static str, f64)>)>,
    metrics: Vec<(&'static str, f64)>,
    rings: Vec<SpanRing>,
}

fn exact_fit_report(slotframes: u64) -> VariantOut {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let rate = Rate::per_slotframe(1);
    let reqs = workloads::aggregated_echo_requirements(&tree, rate);
    let mut out = String::new();

    // Distributed static phase.
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.enable_observability(1024);
    let static_report = net.run_static().expect("the testbed workload is feasible");
    assert!(
        net.schedule().is_exclusive(),
        "HARP schedules never collide"
    );
    writeln!(
        out,
        "# static phase: {} mgmt msgs, {} cell msgs, {:.2} s",
        static_report.mgmt_messages,
        static_report.cell_messages,
        static_report.elapsed_seconds(config)
    )
    .unwrap();

    // 0.99 per-link PDR, drop on loss (no link-layer retransmission): the
    // partitions run at exactly full utilisation, so any retransmission
    // permanently displaces a later packet and queueing delay accumulates
    // for the whole 30 minutes. Dropping reproduces the paper's picture —
    // latency bounded by ~one slotframe with loss showing up as missing
    // samples at nodes many hops from the gateway.
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(net.schedule().clone())
        .quality(LinkQuality::uniform(0.99).expect("valid pdr"))
        .max_retries(0)
        .seed(0xF19)
        .observability(256);
    for task in workloads::echo_task_per_node(&tree, rate) {
        builder = builder.task(task).expect("valid task");
    }
    let mut sim = builder.build();
    sim.run_slotframes(slotframes);

    let stats = sim.stats();
    writeln!(
        out,
        "# {} slotframes, generated {}, delivered {}, collisions {}, losses {}",
        slotframes,
        stats.generated,
        stats.deliveries.len(),
        stats.collisions,
        stats.losses
    )
    .unwrap();
    writeln!(
        out,
        "{:>4} {:>5} {:>9} {:>9} {:>9} {:>7}",
        "node", "layer", "mean(s)", "p95(s)", "max(s)", "samples"
    )
    .unwrap();
    // Nodes sorted by ascending layer, as in the figure.
    let mut nodes: Vec<_> = tree.nodes().skip(1).collect();
    nodes.sort_by_key(|&n| (tree.depth(n), n));
    for node in nodes {
        let s = stats.latency_summary(node);
        let slot_s = f64::from(config.slot_duration_us) / 1e6;
        writeln!(
            out,
            "{:>4} {:>5} {:>9.3} {:>9.3} {:>9.3} {:>7}",
            node.0,
            tree.depth(node),
            s.mean * slot_s,
            config.slots_to_seconds(s.p95),
            config.slots_to_seconds(s.max),
            s.count
        )
        .unwrap();
    }
    // Per-layer rows for the gated report (latency in slots — seeded, so
    // deterministic; seconds would just rescale by the slot duration).
    let rows = (1..=tree.layers())
        .map(|layer| (format!("exact_L{layer}"), layer_row(&tree, stats, layer)))
        .collect();
    let metrics = vec![
        ("exact_generated", stats.generated as f64),
        ("exact_delivered", stats.deliveries.len() as f64),
        ("exact_collisions", stats.collisions as f64),
        ("exact_losses", stats.losses as f64),
        ("static_mgmt_messages", static_report.mgmt_messages as f64),
        ("static_cell_messages", static_report.cell_messages as f64),
    ];
    let rings = vec![net.obs().spans.clone(), sim.obs().spans.clone()];
    VariantOut {
        text: out,
        rows,
        metrics,
        rings,
    }
}

/// Mean latency (slots) and sample count over one layer's nodes.
fn layer_row(
    tree: &tsch_sim::Tree,
    stats: &tsch_sim::SimStats,
    layer: u32,
) -> Vec<(&'static str, f64)> {
    let mut sum = 0.0;
    let mut samples = 0usize;
    let mut nodes = 0usize;
    for node in tree.nodes_at_depth(layer) {
        let s = stats.latency_summary(node);
        if s.count > 0 {
            sum += s.mean;
            samples += s.count;
            nodes += 1;
        }
    }
    let mean_slots = if nodes > 0 { sum / nodes as f64 } else { 0.0 };
    vec![
        ("mean_latency_slots", mean_slots),
        ("samples", samples as f64),
    ]
}

fn provisioned_report(slotframes: u64) -> VariantOut {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let rate = Rate::per_slotframe(1);
    let reqs = workloads::aggregated_echo_requirements(&tree, rate);
    let mut out = String::new();

    // Variant: loss-provisioned allocation with retransmissions enabled.
    let quality = LinkQuality::uniform(0.99).expect("valid pdr");
    let provisioned = reqs.provisioned_for_loss(&quality);
    let mut net = HarpNetwork::new(
        tree.clone(),
        config,
        &provisioned,
        SchedulingPolicy::RateMonotonic,
    );
    net.enable_observability(1024);
    net.run_static().expect("provisioned demand still fits");
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(net.schedule().clone())
        .quality(quality)
        .max_retries(8)
        .seed(0xF19)
        .observability(256);
    for task in workloads::echo_task_per_node(&tree, rate) {
        builder = builder.task(task).expect("valid task");
    }
    let mut sim = builder.build();
    sim.run_slotframes(slotframes);
    let stats = sim.stats();
    let slot_s = f64::from(config.slot_duration_us) / 1e6;
    writeln!(
        out,
        "\n# provisioned variant (ceil(r/PDR) cells, 8 retries): delivered {}/{}          ({} losses absorbed)",
        stats.deliveries.len(),
        stats.generated,
        stats.losses
    )
    .unwrap();
    let mut layer_means: Vec<(u32, f64, usize)> = Vec::new();
    for layer in 1..=tree.layers() {
        let mut sum = 0.0;
        let mut n = 0usize;
        for node in tree.nodes_at_depth(layer) {
            let s = stats.latency_summary(node);
            if s.count > 0 {
                sum += s.mean * slot_s;
                n += 1;
            }
        }
        layer_means.push((layer, if n > 0 { sum / n as f64 } else { 0.0 }, n));
    }
    writeln!(out, "{:>5} {:>12} {:>6}", "layer", "mean lat(s)", "nodes").unwrap();
    for (layer, mean, n) in layer_means {
        writeln!(out, "{layer:>5} {mean:>12.3} {n:>6}").unwrap();
    }
    let rows = (1..=tree.layers())
        .map(|layer| (format!("prov_L{layer}"), layer_row(&tree, stats, layer)))
        .collect();
    let metrics = vec![
        ("prov_generated", stats.generated as f64),
        ("prov_delivered", stats.deliveries.len() as f64),
        ("prov_losses", stats.losses as f64),
    ];
    let rings = vec![net.obs().spans.clone(), sim.obs().spans.clone()];
    VariantOut {
        text: out,
        rows,
        metrics,
        rings,
    }
}

fn main() {
    let config = SlotframeConfig::paper_default();
    // Data plane: 30 minutes = ~905 slotframes of 1.99 s.
    let minutes = 30u64;
    let slotframes = (minutes * 60 * 1_000_000) / (u64::from(config.slots) * 10_000);

    let variants: [fn(u64) -> VariantOut; 2] = [exact_fit_report, provisioned_report];
    let blocks = harp_bench::par_map(&variants, |_, variant| variant(slotframes));
    for block in &blocks {
        print!("{}", block.text);
    }
    println!("{}", harp_bench::obs_footer());

    // Assemble the gated report: rows + metrics from both variants, the
    // library-counter snapshot, and a merged trace across all four rings
    // (control plane + data plane of each variant).
    let mut rows: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    let mut metrics: Vec<(&str, f64)> = Vec::new();
    for block in &blocks {
        rows.extend(block.rows.iter().cloned());
        metrics.extend(block.metrics.iter().copied());
    }
    metrics.push(("bench_threads", tsch_sim::bench_threads() as f64));
    let mut snap = harp_obs::MetricsSnapshot::default();
    harp_bench::add_all_library_counters(&mut snap);
    let rings: Vec<&SpanRing> = blocks.iter().flat_map(|b| b.rings.iter()).collect();
    let json = to_json_with_sections(
        &[],
        &metrics,
        &[
            ("rows", rows_json(&rows)),
            ("obs", snap.to_json()),
            ("trace_sample", merged_trace_json(&rings, 64)),
        ],
    );
    write_report("BENCH_fig9.json", &json);
}
