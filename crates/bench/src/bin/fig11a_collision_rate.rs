//! Fig. 11(a): schedule-collision probability vs per-node data rate.
//!
//! 100 random 50-node, 5-layer topologies; slotframe 199 × 16; every link
//! demands `rate` cells; four schedulers compared. The paper's shape:
//! Random/MSF/LDSF grow roughly linearly with the rate, HARP stays at zero.
//!
//! Run with `cargo run --release -p harp-bench --bin fig11a_collision_rate`.

use harp_bench::{average_collision_probability, pct};
use schedulers::{
    AliceScheduler, HarpScheduler, LdsfScheduler, MsfScheduler, RandomScheduler, Scheduler,
};
use tsch_sim::SlotframeConfig;

fn main() {
    let topologies = workloads::fig11_topologies();
    let config = SlotframeConfig::paper_default();
    let schedulers: [&dyn Scheduler; 5] = [
        &RandomScheduler,
        &MsfScheduler,
        &AliceScheduler,
        &LdsfScheduler,
        &HarpScheduler::default(),
    ];

    println!("# Fig. 11(a) — collision probability vs data rate");
    println!(
        "# {} topologies, 50 nodes, 5 layers, {} slots x {} channels",
        topologies.len(),
        config.slots,
        config.channels
    );
    print!("{:>4}", "rate");
    for s in &schedulers {
        print!(" {:>8}", s.name());
    }
    println!(" {:>12}", "total_cells");

    for rate in 1..=8u32 {
        print!("{rate:>4}");
        for s in &schedulers {
            let p = average_collision_probability(*s, &topologies, rate, config);
            print!(" {:>8}", pct(p));
        }
        // 49 uplinks per topology.
        println!(" {:>12}", 49 * rate);
    }
    println!("{}", harp_bench::obs_footer());
}
