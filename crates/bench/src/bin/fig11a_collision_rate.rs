//! Fig. 11(a): schedule-collision probability vs per-node data rate.
//!
//! 100 random 50-node, 5-layer topologies; slotframe 199 × 16; every link
//! demands `rate` cells; four schedulers compared. The paper's shape:
//! Random/MSF/LDSF grow roughly linearly with the rate, HARP stays at zero.
//!
//! Writes `BENCH_fig11a.json` at the workspace root: one gated row per
//! rate with every scheduler's collision probability, plus a synthetic
//! sweep trace (one span per sweep cell on a virtual clock — layer
//! `bench`, depth = rate) so `harp_trace` can show where the sweep spent
//! its slots.
//!
//! Run with `cargo run --release -p harp-bench --bin fig11a_collision_rate`.

use harp_bench::harness::{rows_json, to_json_with_sections, write_report};
use harp_bench::{average_collision_probability, pct};
use harp_obs::{spans_to_json, MetricsSnapshot, SpanEvent, NO_NODE};
use schedulers::{
    AliceScheduler, HarpScheduler, LdsfScheduler, MsfScheduler, RandomScheduler, Scheduler,
};
use tsch_sim::SlotframeConfig;

fn main() {
    let topologies = workloads::fig11_topologies();
    let config = SlotframeConfig::paper_default();
    let schedulers: [&dyn Scheduler; 5] = [
        &RandomScheduler,
        &MsfScheduler,
        &AliceScheduler,
        &LdsfScheduler,
        &HarpScheduler::default(),
    ];

    println!("# Fig. 11(a) — collision probability vs data rate");
    println!(
        "# {} topologies, 50 nodes, 5 layers, {} slots x {} channels",
        topologies.len(),
        config.slots,
        config.channels
    );
    print!("{:>4}", "rate");
    for s in &schedulers {
        print!(" {:>8}", s.name());
    }
    println!(" {:>12}", "total_cells");

    let mut rows: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    let mut spans: Vec<SpanEvent> = Vec::new();
    for rate in 1..=8u32 {
        print!("{rate:>4}");
        let mut fields: Vec<(&'static str, f64)> = Vec::new();
        for (si, s) in schedulers.iter().enumerate() {
            let p = average_collision_probability(*s, &topologies, rate, config);
            print!(" {:>8}", pct(p));
            fields.push((s.name(), p));
            // One span per sweep cell on a virtual clock: 1000 "slots" per
            // rate step, one lane per scheduler, depth carries the rate.
            let start = u64::from(rate - 1) * 1000 + si as u64 * 150;
            spans.push(SpanEvent {
                name: s.name(),
                layer: "bench",
                node: NO_NODE,
                depth: rate,
                start_asn: start,
                end_asn: start + 149,
                detail: (p * 1e6).round() as i64,
                corr: 0,
            });
        }
        fields.push(("total_cells", f64::from(49 * rate)));
        println!(" {:>12}", 49 * rate);
        rows.push((format!("rate{rate}"), fields));
    }
    println!("{}", harp_bench::obs_footer());

    let mut snap = MetricsSnapshot::default();
    snap.add_counters(workloads::obs::totals());
    snap.add_counters(schedulers::obs::totals());
    let total = spans.len() as u64;
    let json = to_json_with_sections(
        &[],
        &[("bench_threads", tsch_sim::bench_threads() as f64)],
        &[
            ("rows", rows_json(&rows)),
            ("obs", snap.to_json()),
            ("trace_sample", spans_to_json(spans.iter(), total)),
        ],
    );
    write_report("BENCH_fig11a.json", &json);
}
