//! Scale study: event-engine throughput and conflict-storage footprint at
//! 1k / 10k / 100k / 1M nodes, plus the sharded-execution speedup.
//!
//! Each size runs the [`workloads::scale_scenario`] — 16 grafted fanout-4
//! subtrees, a 199-slot × 16-channel slotframe, and a conflict-free
//! schedule confined to per-subtree slot ranges — first on the monolithic
//! event-driven engine, then sharded per depth-1 subtree on the full
//! [`bench_threads`] worker pool. Both runs use streaming stats, so memory
//! stays flat no matter how many packets flow. Sizes below
//! [`SERIAL_FALLBACK_THRESHOLD`] nodes per shard skip the fork-join
//! machinery entirely and run one serial engine, so the sharded path never
//! loses to the dense one.
//!
//! The headline metric is `active_cell_slots_per_sec`: throughput
//! normalized to the number of *active cells* — scheduled (cell, link)
//! assignments, i.e. per-slotframe transmission opportunities. (Distinct
//! cells would undercount: non-conflicting links share cells, and the
//! sharing density grows with size.) The event engine touches only slots
//! whose scheduled links hold traffic, so this rate stays flat (±25%,
//! asserted here) from 1k to 1M nodes while the raw slots/sec
//! necessarily falls with schedule density. The monolithic run executes
//! with observability enabled and asserts the engine's `sim.idle_wakeups`
//! counter stays zero — the calendar never woke a slot with no traffic.
//!
//! Writes `BENCH_scale.json` at the workspace root: one gated row per
//! size with the raw and per-active-cell rates, the CSR conflict-storage
//! bytes, the idle-wakeup count, and the deterministic traffic counts.
//!
//! Run with `cargo run --release -p harp-bench --bin fig_scale`; pass
//! `--smoke` for the CI debug-assertions pass (10k nodes, 2 slotframes,
//! no report).

use harp_bench::harness::{rows_json, to_json_with_sections, write_report};
use harp_obs::MetricsSnapshot;
use tsch_sim::{
    bench_threads, LinkQuality, ShardOptions, ShardedSimulator, Simulator, SimulatorBuilder,
    StatsMode,
};
use workloads::{scale_scenario, ScaleScenario, SCALE_SIZES};

/// Below this mean shard size the sharded run drops to one serial engine:
/// fork-join overhead beats the parallel win on small shards, and the
/// gate requires `sharded_speedup >= 1.0` on every row.
const SERIAL_FALLBACK_THRESHOLD: usize = 4_000;

/// Per-node budget on CSR conflict storage. The dense matrix needed
/// `(2n)^2` bytes (~37 GiB at 100k); the CSR rows grow linearly, so a
/// fixed per-node allowance covers every row including 1M.
const CONFLICT_BYTES_PER_NODE: usize = 256;

/// The ±bound on per-active-cell throughput across rows, as a ratio to
/// the geometric mean of all rows (flat-cost acceptance criterion).
const FLATNESS_TOLERANCE: f64 = 0.25;

/// Untimed slotframes run before the measured window. Until the packet
/// pipeline fills (one frame per route hop, ~10 frames at 1M nodes) each
/// frame first-touches fresh queue and stats memory; that page-fault
/// storm costs up to ~100× the steady-state frame and would swamp the
/// measurement.
const WARMUP_FRAMES: u64 = 20;

/// Timed slotframes per measurement round.
const FRAMES_PER_ROUND: u64 = 200;

/// Measurement rounds. Each round times every size back to back (dense
/// then sharded), so slow drift in host CPU speed — minutes-scale
/// throttling on shared machines — hits all sizes alike instead of
/// inflating whichever row happened to run first; the per-size medians
/// across rounds are what the flatness check and the speedups compare.
const ROUNDS: usize = 7;

fn scenario_seed(nodes: u32) -> u64 {
    0x5CA1_E000 | u64::from(nodes)
}

/// Row label: `scale_1k` … `scale_1m`.
fn row_label(nodes: u32) -> String {
    if nodes >= 1_000_000 {
        format!("scale_{}m", nodes / 1_000_000)
    } else if nodes >= 1_000 {
        format!("scale_{}k", nodes / 1_000)
    } else {
        format!("scale_{nodes}")
    }
}

/// One size's live engines plus the rates sampled so far.
struct SizeRun {
    scenario: ScaleScenario,
    dense: Simulator,
    sharded: ShardedSimulator,
    dense_rates: Vec<f64>,
    /// Per-round sharded/dense ratio (adjacent in time, so drift cancels).
    speedups: Vec<f64>,
}

/// Median of `samples` (mean of the middle pair for even counts).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Builds and warms both engines for one size. The dense engine runs
/// with observability on, so the idle-wakeup counter is live.
fn build_size(nodes: u32, threads: usize, warmup: u64) -> SizeRun {
    let scenario = scale_scenario(nodes, scenario_seed(nodes));
    let mut builder = SimulatorBuilder::new(scenario.tree.clone(), scenario.config)
        .schedule(scenario.schedule.clone())
        .stats_mode(StatsMode::Streaming)
        .observability(16);
    for task in &scenario.tasks {
        builder = builder.task(task.clone()).expect("unique task ids");
    }
    let mut dense = builder.build();
    dense.run_slotframes(warmup);

    // On a single worker the fork-join pool cannot win — sharding is the
    // serial engine's work plus per-shard frame overhead — so the
    // fallback threshold goes to "always" and the row honestly reports
    // the structural speedup of 1.0.
    let threshold = if threads <= 1 {
        usize::MAX
    } else {
        SERIAL_FALLBACK_THRESHOLD
    };
    let mut sharded = ShardedSimulator::try_new(
        &scenario.tree,
        scenario.config,
        &scenario.schedule,
        &LinkQuality::perfect(),
        scenario_seed(nodes),
        &scenario.tasks,
        ShardOptions {
            trace_capacity: 0,
            stats_mode: StatsMode::Streaming,
            serial_fallback_threshold: threshold,
        },
    )
    .expect("scale scenario shards by construction");
    sharded.run_slotframes_with_threads(warmup, threads);
    SizeRun {
        scenario,
        dense,
        sharded,
        dense_rates: Vec::new(),
        speedups: Vec::new(),
    }
}

/// Times one engine chunk, returning slots per second.
fn timed_frames<F: FnOnce()>(frames: u64, slots: u32, run: F) -> f64 {
    let start = std::time::Instant::now();
    run();
    (frames * u64::from(slots)) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let smoke = harp_bench::harness::flag("--smoke");
    let (sizes, rounds, frames, warmup): (&[u32], usize, u64, u64) = if smoke {
        (&[10_000], 1, 2, 2)
    } else {
        (&SCALE_SIZES, ROUNDS, FRAMES_PER_ROUND, WARMUP_FRAMES)
    };
    let threads = bench_threads();

    println!("# Scale study — event engine, dense vs sharded, streaming stats");
    println!(
        "# {rounds} round(s) x {frames} slotframes per size, interleaved; \
         sharded on {threads} threads"
    );

    // Build and warm every size up front, then interleave the timed
    // rounds across sizes (see [`ROUNDS`] for why).
    let mut runs: Vec<SizeRun> = sizes
        .iter()
        .map(|&nodes| build_size(nodes, threads, warmup))
        .collect();
    for _ in 0..rounds {
        for run in &mut runs {
            let slots = run.scenario.config.slots;
            let dense = &mut run.dense;
            let dense_rate = timed_frames(frames, slots, || dense.run_slotframes(frames));
            let sharded = &mut run.sharded;
            let shard_rate = timed_frames(frames, slots, || {
                sharded.run_slotframes_with_threads(frames, threads);
            });
            run.dense_rates.push(dense_rate);
            run.speedups.push(shard_rate / dense_rate);
        }
    }

    println!(
        "{:>8} {:>14} {:>8} {:>8} {:>14} {:>14} {:>14} {:>8} {:>10}",
        "nodes",
        "conflict_B",
        "active",
        "distinct",
        "slots/s",
        "cell_slots/s",
        "shard_slots/s",
        "speedup",
        "delivered"
    );
    let mut rows = Vec::new();
    let mut flatness: Vec<(u32, f64)> = Vec::new();
    for run in runs {
        let nodes = run.scenario.tree.len() as u32;
        let active_cells = run.scenario.schedule.assignment_count();
        let distinct_cells = run.scenario.schedule.active_cells();
        let slots = run.scenario.config.slots;
        let conflict_bytes = run.dense.conflict_storage_bytes();
        let conflict_entries = run.dense.conflict_entries();
        let conflict_limit = nodes as usize * CONFLICT_BYTES_PER_NODE;
        assert!(
            conflict_bytes < conflict_limit,
            "conflict storage {conflict_bytes} B exceeds the {conflict_limit} B budget \
             at {nodes} nodes"
        );
        let idle_wakeups = run
            .dense
            .metrics_snapshot()
            .counter("sim.idle_wakeups")
            .unwrap_or(0);
        assert_eq!(
            idle_wakeups, 0,
            "the event calendar woke an idle slot at {nodes} nodes"
        );
        let dense_stats = run.dense.into_stats();
        assert_eq!(
            dense_stats.collisions, 0,
            "the scale schedule is conflict-free"
        );
        let shard_stats = run.sharded.stats();
        assert_eq!(
            shard_stats.delivered(),
            dense_stats.delivered(),
            "sharded delivery count must match the dense engine"
        );

        let dense_rate = median(&run.dense_rates);
        // Same normalization as SimStats::active_cell_slots_per_sec, but
        // over the measured rounds only (stats.run_time includes warmup).
        let cell_rate = dense_rate * active_cells as f64 / f64::from(slots);
        let shard_rate = dense_rate * median(&run.speedups);
        // A fallback row *is* the monolithic engine — the ratio of two
        // timings of identical work is noise, so report the structural
        // value.
        let speedup = if run.sharded.is_fallback() {
            1.0
        } else {
            median(&run.speedups)
        };

        println!(
            "{:>8} {:>14} {:>8} {:>8} {:>14.0} {:>14.0} {:>14.0} {:>8.2} {:>10}",
            nodes,
            conflict_bytes,
            active_cells,
            distinct_cells,
            dense_rate,
            cell_rate,
            shard_rate,
            speedup,
            dense_stats.delivered()
        );

        flatness.push((nodes, cell_rate));
        rows.push((
            row_label(nodes),
            vec![
                ("nodes", f64::from(nodes)),
                ("conflict_bytes", conflict_bytes as f64),
                ("conflict_entries", conflict_entries as f64),
                ("active_cells", active_cells as f64),
                ("distinct_cells", distinct_cells as f64),
                ("slots_per_sec", dense_rate),
                ("active_cell_slots_per_sec", cell_rate),
                ("sharded_slots_per_sec", shard_rate),
                ("sharded_speedup", speedup),
                ("idle_wakeups", idle_wakeups as f64),
                ("delivered", dense_stats.delivered() as f64),
                ("collisions", dense_stats.collisions as f64),
                ("queue_drops", dense_stats.queue_drops as f64),
            ],
        ));
    }

    // Flat-cost criterion: every row's per-active-cell rate within
    // ±FLATNESS_TOLERANCE of the geometric mean across rows.
    if flatness.len() > 1 {
        let log_mean = flatness.iter().map(|(_, r)| r.ln()).sum::<f64>() / flatness.len() as f64;
        let mean = log_mean.exp();
        for &(nodes, rate) in &flatness {
            let ratio = rate / mean;
            assert!(
                (1.0 - FLATNESS_TOLERANCE..=1.0 + FLATNESS_TOLERANCE).contains(&ratio),
                "per-active-cell rate at {nodes} nodes ({rate:.0}/s) is {ratio:.2}x the \
                 geometric mean ({mean:.0}/s), outside ±{FLATNESS_TOLERANCE}"
            );
        }
        println!("# active-cell rate flat within ±{FLATNESS_TOLERANCE} of {mean:.0}/s");
    }
    println!("{}", harp_bench::obs_footer());

    if smoke {
        println!("smoke mode: report not written");
        return;
    }
    let mut snap = MetricsSnapshot::default();
    snap.add_counters(workloads::obs::totals());
    let json = to_json_with_sections(
        &[],
        &[("bench_threads", threads as f64)],
        &[("rows", rows_json(&rows)), ("obs", snap.to_json())],
    );
    write_report("BENCH_scale.json", &json);
}
