//! Scale study: dense-engine throughput and conflict-storage footprint at
//! 1k / 10k / 100k nodes, plus the sharded-execution speedup.
//!
//! Each size runs the [`workloads::scale_scenario`] — 16 grafted fanout-4
//! subtrees, a 199-slot × 16-channel slotframe, and a conflict-free
//! schedule confined to per-subtree slot ranges — first on the monolithic
//! dense engine, then sharded per depth-1 subtree on two worker threads
//! (capped low so the gated speedup is stable on small CI runners). Both
//! runs use streaming stats, so memory stays flat no matter how many
//! packets flow.
//!
//! Writes `BENCH_scale.json` at the workspace root: one gated row per
//! size with the slots/sec rate, the CSR conflict-storage bytes (the
//! scale proxy that replaced the dense `(2n)^2` matrix), and the
//! deterministic traffic counts.
//!
//! Run with `cargo run --release -p harp-bench --bin fig_scale`; pass
//! `--smoke` for the CI debug-assertions pass (10k nodes, 2 slotframes,
//! no report).

use harp_bench::harness::{rows_json, to_json_with_sections, write_report};
use harp_obs::MetricsSnapshot;
use tsch_sim::{
    LinkQuality, ShardOptions, ShardedSimulator, SimStats, Simulator, SimulatorBuilder, StatsMode,
};
use workloads::{scale_scenario, ScaleScenario};

/// Shard workers for the gated speedup: two, even on wider machines, so
/// the committed ratio does not depend on the runner's core count.
const SHARD_THREADS: usize = 2;

/// The acceptance bound on CSR conflict storage at every size (the dense
/// matrix needed ~37 GiB at 100k nodes).
const CONFLICT_BYTES_LIMIT: usize = 64 << 20;

fn scenario_seed(nodes: u32) -> u64 {
    0x5CA1E000 | u64::from(nodes)
}

fn dense_run(scenario: &ScaleScenario, frames: u64) -> (Simulator, f64) {
    let mut builder = SimulatorBuilder::new(scenario.tree.clone(), scenario.config)
        .schedule(scenario.schedule.clone())
        .stats_mode(StatsMode::Streaming);
    for task in &scenario.tasks {
        builder = builder.task(task.clone()).expect("unique task ids");
    }
    let mut sim = builder.build();
    sim.run_slotframes(frames);
    let rate = sim.stats().slots_per_sec();
    (sim, rate)
}

fn sharded_run(scenario: &ScaleScenario, frames: u64, threads: usize) -> (SimStats, f64) {
    let mut sharded = ShardedSimulator::try_new(
        &scenario.tree,
        scenario.config,
        &scenario.schedule,
        &LinkQuality::perfect(),
        scenario_seed(scenario.tree.len() as u32),
        &scenario.tasks,
        ShardOptions {
            trace_capacity: 0,
            stats_mode: StatsMode::Streaming,
        },
    )
    .expect("scale scenario shards by construction");
    sharded.run_slotframes_with_threads(frames, threads);
    let stats = sharded.stats();
    let rate = stats.slots_per_sec();
    (stats, rate)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, frames): (&[u32], u64) = if smoke {
        (&[10_000], 2)
    } else {
        (&[1_000, 10_000, 100_000], 200)
    };

    println!("# Scale study — dense vs sharded engine, streaming stats");
    println!("# {frames} slotframes per size; sharded on {SHARD_THREADS} threads");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "nodes",
        "conflict_B",
        "entries",
        "slots/s",
        "shard_slots/s",
        "speedup",
        "delivered",
        "collisions"
    );

    let mut rows = Vec::new();
    for &nodes in sizes {
        let scenario = scale_scenario(nodes, scenario_seed(nodes));
        let (dense, dense_rate) = dense_run(&scenario, frames);
        let stats = dense.stats();
        let conflict_bytes = dense.conflict_storage_bytes();
        let conflict_entries = dense.conflict_entries();
        assert!(
            conflict_bytes < CONFLICT_BYTES_LIMIT,
            "conflict storage {conflict_bytes} B exceeds the {CONFLICT_BYTES_LIMIT} B budget"
        );
        assert_eq!(stats.collisions, 0, "the scale schedule is conflict-free");

        let (shard_stats, shard_rate) = sharded_run(&scenario, frames, SHARD_THREADS);
        assert_eq!(
            shard_stats.delivered(),
            stats.delivered(),
            "sharded delivery count must match the dense engine"
        );
        let speedup = shard_rate / dense_rate;

        println!(
            "{:>8} {:>14} {:>14} {:>14.0} {:>14.0} {:>8.2} {:>10} {:>10}",
            nodes,
            conflict_bytes,
            conflict_entries,
            dense_rate,
            shard_rate,
            speedup,
            stats.delivered(),
            stats.collisions
        );

        let label = if nodes >= 1_000 {
            format!("scale_{}k", nodes / 1_000)
        } else {
            format!("scale_{nodes}")
        };
        rows.push((
            label,
            vec![
                ("nodes", f64::from(nodes)),
                ("conflict_bytes", conflict_bytes as f64),
                ("conflict_entries", conflict_entries as f64),
                ("slots_per_sec", dense_rate),
                ("sharded_slots_per_sec", shard_rate),
                ("sharded_speedup", speedup),
                ("delivered", stats.delivered() as f64),
                ("collisions", stats.collisions as f64),
                ("queue_drops", stats.queue_drops as f64),
            ],
        ));
    }
    println!("{}", harp_bench::obs_footer());

    if smoke {
        println!("smoke mode: report not written");
        return;
    }
    let mut snap = MetricsSnapshot::default();
    snap.add_counters(workloads::obs::totals());
    let json = to_json_with_sections(
        &[],
        &[("shard_threads", SHARD_THREADS as f64)],
        &[("rows", rows_json(&rows)), ("obs", snap.to_json())],
    );
    write_report("BENCH_scale.json", &json);
}
