//! Fig. 12: dynamic schedule/partition adjustment overhead per layer,
//! APaS (centralized) vs HARP.
//!
//! 81-node, 10-layer topologies. After the static phase, each node's demand
//! is raised and the management packets needed to absorb the change are
//! counted. The paper's shape: APaS costs `3l − 1` packets for a node at
//! layer `l` (grows linearly with depth); HARP's cost is small and roughly
//! flat because most requests resolve at the parent.
//!
//! Writes `BENCH_fig12.json` at the workspace root: one gated row per
//! layer, plus a trace sample from one instrumented adjustment per layer
//! (the `adjust` spans carry the layer depth, so the flame view shows how
//! deep each escalation reached).
//!
//! Run with `cargo run --release -p harp-bench --bin fig12_overhead`.

use harp_bench::harness::{rows_json, to_json_with_sections, write_report};
use harp_bench::{mean, measure_harp_adjustment, measure_harp_adjustment_traced, par_map};
use harp_core::Requirements;
use harp_obs::{spans_to_json, MetricsSnapshot, SpanEvent};
use schedulers::{apas_adjustment_packets, sixtop_transaction_packets, ApasNetwork};
use tsch_sim::{Asn, Direction, Link, SlotframeConfig, Tree};

/// Per-link demand used for the static phase (low, so adjustments have
/// room to resolve below the gateway, as in the paper's setup).
fn base_requirements(tree: &Tree) -> Requirements {
    workloads::uniform_link_requirements(tree, 1)
}

fn main() {
    let config = SlotframeConfig::paper_default();
    let topologies = workloads::fig12_topologies(10);

    println!("# Fig. 12 — adjustment overhead (management packets) per layer");
    println!(
        "# {} topologies, 81 nodes, 10 layers; demand of one uplink 1 -> 2",
        topologies.len()
    );
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10}",
        "layer", "apas", "harp", "harp_max", "msf_6p"
    );

    // Every (layer, topology, node) measurement replays the static phase
    // from scratch, so the layers are independent: sweep them in parallel
    // and print the rows in layer order.
    let layers: Vec<u32> = (1..=10).collect();
    let per_layer = par_map(&layers, |_, &layer| {
        let mut apas_samples = Vec::new();
        let mut harp_samples = Vec::new();
        let mut spans: Vec<SpanEvent> = Vec::new();
        for (ti, tree) in topologies.iter().enumerate() {
            // Sample up to three nodes at this layer per topology.
            let nodes = tree.nodes_at_depth(layer);
            for (ni, &node) in nodes.iter().take(3).enumerate() {
                let mut apas = ApasNetwork::new(tree.clone(), config);
                apas_samples.push(apas.adjust(Asn(0), node).packets as f64);

                let link = Link {
                    child: node,
                    direction: Direction::Up,
                };
                // The first sample of each layer runs instrumented and
                // contributes its protocol spans to the trace sample;
                // observability never changes the measured numbers.
                if ti == 0 && ni == 0 {
                    if let Some((sample, trace)) = measure_harp_adjustment_traced(
                        tree,
                        &base_requirements(tree),
                        config,
                        link,
                        2,
                    ) {
                        harp_samples.push(sample.mgmt_messages as f64);
                        spans.extend(trace.iter().filter(|s| s.name == "adjust"));
                    }
                } else if let Some(sample) =
                    measure_harp_adjustment(tree, &base_requirements(tree), config, link, 2)
                {
                    harp_samples.push(sample.mgmt_messages as f64);
                }
            }
        }
        let harp_max = harp_samples.iter().copied().fold(0.0f64, f64::max);
        debug_assert!(
            (mean(&apas_samples) - apas_adjustment_packets(layer) as f64).abs() < 1e-9,
            "APaS measurement must match the 3l-1 formula"
        );
        // MSF adds cells with one 6P pair at any depth — flat and minimal,
        // but with no collision protection (the Fig. 11 trade-off).
        let text = format!(
            "{:>5} {:>10.2} {:>10.2} {:>10.0} {:>10}",
            layer,
            mean(&apas_samples),
            mean(&harp_samples),
            harp_max,
            sixtop_transaction_packets()
        );
        let fields: Vec<(&'static str, f64)> = vec![
            ("apas_packets", mean(&apas_samples)),
            ("harp_messages", mean(&harp_samples)),
            ("harp_max", harp_max),
            ("msf_6p", sixtop_transaction_packets() as f64),
        ];
        (text, (format!("L{layer:02}"), fields), spans)
    });
    let mut rows = Vec::new();
    let mut spans = Vec::new();
    for (text, row, layer_spans) in per_layer {
        println!("{text}");
        rows.push(row);
        spans.extend(layer_spans);
    }
    println!("{}", harp_bench::obs_footer());

    let mut snap = MetricsSnapshot::default();
    harp_bench::add_all_library_counters(&mut snap);
    let total = spans.len() as u64;
    let json = to_json_with_sections(
        &[],
        &[("bench_threads", tsch_sim::bench_threads() as f64)],
        &[
            ("rows", rows_json(&rows)),
            ("obs", snap.to_json()),
            ("trace_sample", spans_to_json(spans.iter(), total)),
        ],
    );
    write_report("BENCH_fig12.json", &json);
}
