//! Ablation report for the design choices DESIGN.md calls out:
//!
//! 1. best-fit skyline vs shelf packers vs the exact optimum (solution
//!    quality on composition-shaped workloads);
//! 2. the two-pass SPP mapping of Alg. 1 vs stopping after pass 1
//!    (channel waste);
//! 3. Alg. 2's neighbour-first adjustment vs an immediate full repack
//!    (partitions moved = messages sent).
//!
//! Run with `cargo run --release -p harp-bench --bin ablation_report`.

use harp_bench::{mean, par_map};
use harp_core::{adjust_partition, compose_components, ResourceComponent};
use packing::shelf::{pack_strip_ffdh, pack_strip_nfdh};
use packing::{exact_strip_height, pack_into, pack_strip, Rect, Size};
use tsch_sim::{NodeId, SplitMix64};

fn components(n: usize, seed: u64) -> Vec<Size> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| Size::new(1 + rng.next_below(4) as u32, 1 + rng.next_below(8) as u32))
        .collect()
}

fn main() {
    println!("# Ablation 1 — packer quality on composition workloads");
    println!("# (strip width 16 channels; heights relative to the exact optimum)");
    println!(
        "{:>3} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "n", "exact", "skyline", "ffdh", "nfdh", "solved"
    );
    for &n in &[4usize, 6, 8] {
        let instances = 40;
        // The exact solver dominates this sweep; spread the seeds across
        // cores and fold the per-seed tuples back in seed order.
        let seeds: Vec<u64> = (0..instances).collect();
        let samples = par_map(&seeds, |_, &seed| {
            let items = components(n, seed);
            let e = exact_strip_height(&items, 16, 3_000_000).unwrap();
            (
                e.is_optimal(),
                f64::from(e.height()),
                f64::from(pack_strip(&items, 16).unwrap().height()),
                f64::from(pack_strip_ffdh(&items, 16).unwrap().height()),
                f64::from(pack_strip_nfdh(&items, 16).unwrap().height()),
            )
        });
        let solved = samples.iter().filter(|s| s.0).count();
        let exact_h: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let sky: Vec<f64> = samples.iter().map(|s| s.2).collect();
        let ffdh: Vec<f64> = samples.iter().map(|s| s.3).collect();
        let nfdh: Vec<f64> = samples.iter().map(|s| s.4).collect();
        println!(
            "{n:>3} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>6}/{instances}",
            mean(&exact_h),
            mean(&sky),
            mean(&ffdh),
            mean(&nfdh),
            solved
        );
    }

    println!("\n# Ablation 2 — Alg. 1 second pass (channel extent saved)");
    println!(
        "{:>3} {:>14} {:>14} {:>8}",
        "n", "one-pass ch", "two-pass ch", "saved"
    );
    for &n in &[4usize, 8, 16, 32] {
        let seeds: Vec<u64> = (100..140).collect();
        let samples = par_map(&seeds, |_, &seed| {
            let comps: Vec<(NodeId, ResourceComponent)> = components(n, seed)
                .into_iter()
                .enumerate()
                .map(|(i, s)| (NodeId(i as u32), ResourceComponent::new(s.h, s.w)))
                .collect();
            let two_pass = compose_components(&comps, 16, 1).unwrap().composite();
            let items: Vec<Size> = comps
                .iter()
                .map(|(_, c)| c.as_size_channel_major())
                .collect();
            let p = pack_strip(&items, 16).unwrap();
            let one_pass_channels = p.placements().iter().map(Rect::right).max().unwrap_or(0);
            (f64::from(one_pass_channels), f64::from(two_pass.channels))
        });
        let one: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let two: Vec<f64> = samples.iter().map(|s| s.1).collect();
        println!(
            "{n:>3} {:>14.2} {:>14.2} {:>8.2}",
            mean(&one),
            mean(&two),
            mean(&one) - mean(&two)
        );
    }

    println!("\n# Ablation 3 — Alg. 2 vs full repack (partitions moved per adjustment)");
    println!("{:>9} {:>10} {:>12}", "siblings", "alg2", "full repack");
    for &n in &[4usize, 8, 12] {
        let seeds: Vec<u64> = (200..240).collect();
        let samples = par_map(&seeds, |_, &seed| {
            let mut rng = SplitMix64::new(seed);
            // Sibling rows spaced with one idle slot between them.
            let parent = Rect::from_xywh(0, 0, 8 * n as u32, 2);
            let mut children = Vec::new();
            let mut x = 0;
            for i in 0..n as u32 {
                let w = 2 + rng.next_below(4) as u32;
                children.push((NodeId(i), Rect::from_xywh(x, 0, w, 1)));
                x += w + 1;
            }
            let grown =
                ResourceComponent::row(children[0].1.width() + 2 + rng.next_below(4) as u32);
            let alg2 = adjust_partition(parent, &children, NodeId(0), grown)
                .unwrap()
                .map(|outcome| outcome.moved_count() as f64);
            let sizes: Vec<Size> = children
                .iter()
                .map(|&(id, r)| {
                    if id == NodeId(0) {
                        grown.as_size()
                    } else {
                        r.size
                    }
                })
                .collect();
            let repack = pack_into(&sizes, parent.size).unwrap().map(|placements| {
                placements
                    .iter()
                    .zip(&children)
                    .filter(|(new, (_, old))| **new != *old)
                    .count() as f64
            });
            (alg2, repack)
        });
        let alg2_moved: Vec<f64> = samples.iter().filter_map(|s| s.0).collect();
        let repack_moved: Vec<f64> = samples.iter().filter_map(|s| s.1).collect();
        println!(
            "{n:>9} {:>10.2} {:>12.2}",
            mean(&alg2_moved),
            mean(&repack_moved)
        );
    }
    println!("{}", harp_bench::obs_footer());
}
