//! CI perf-regression gate: diffs fresh benchmark reports against their
//! committed baselines and exits nonzero when any value falls outside the
//! documented tolerances (see [`harp_bench::gate`] for the tolerance
//! rationale).
//!
//! Two invocation forms:
//!
//! ```sh
//! # Explicit pairs (ad-hoc use):
//! bench_check <baseline.json> <fresh.json> [<baseline2> <fresh2> ...]
//!
//! # Manifest-driven (what CI runs): every report registered in
//! # crates/bench/bench_manifest.txt, baselines under --baseline-dir,
//! # fresh reports in the working directory.
//! bench_check --manifest crates/bench/bench_manifest.txt --baseline-dir /tmp/bench-baselines
//! ```
//!
//! Typical CI flow:
//!
//! ```sh
//! mkdir -p /tmp/bench-baselines
//! grep -vE '^\s*(#|$)' crates/bench/bench_manifest.txt \
//!   | xargs -I{} cp {} /tmp/bench-baselines/                            # snapshot
//! cargo bench -p harp-bench --bench simulator                           # regenerate...
//! cargo run -p harp-bench --bin bench_check -- \
//!   --manifest crates/bench/bench_manifest.txt --baseline-dir /tmp/bench-baselines
//! ```

use harp_bench::gate::{
    adjust_hot_check_str, compare_report_strs, manifest_files, scale_check_str,
};
use std::process::ExitCode;

const USAGE: &str = "usage: bench_check <baseline.json> <fresh.json> [<baseline2> <fresh2> ...]\n       bench_check --manifest <manifest.txt> --baseline-dir <dir>";

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Resolves the (baseline, fresh) path pairs to gate, from either form.
fn pairs(args: &[String]) -> Result<Vec<(String, String)>, String> {
    if let Some(manifest_path) = arg_value(args, "--manifest") {
        let baseline_dir = arg_value(args, "--baseline-dir")
            .ok_or_else(|| "--manifest requires --baseline-dir <dir>".to_owned())?;
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read manifest {manifest_path}: {e}"))?;
        let files = manifest_files(&text);
        if files.is_empty() {
            return Err(format!("manifest {manifest_path} lists no reports"));
        }
        Ok(files
            .into_iter()
            .map(|f| {
                let name = std::path::Path::new(&f)
                    .file_name()
                    .map_or_else(|| f.clone(), |n| n.to_string_lossy().into_owned());
                (format!("{baseline_dir}/{name}"), f)
            })
            .collect())
    } else if !args.is_empty() {
        let chunks = args.chunks_exact(2);
        if !chunks.remainder().is_empty() {
            return Err(USAGE.to_owned());
        }
        Ok(chunks.map(|p| (p[0].clone(), p[1].clone())).collect())
    } else {
        Err(USAGE.to_owned())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pairs = match pairs(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let mut total_violations = 0usize;
    for (baseline_path, fresh_path) in &pairs {
        let read =
            |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
        let result = read(baseline_path)
            .and_then(|b| read(fresh_path).map(|f| (b, f)))
            .and_then(|(b, f)| {
                let mut v = compare_report_strs(&b, &f)?;
                // The scale report additionally carries absolute
                // invariants (zero idle wakeups, speedup floor, flat
                // per-active-cell cost) checked on the fresh report alone.
                if fresh_path.contains("scale") {
                    v.extend(scale_check_str(&f)?);
                }
                // The adjustment-hot-path report pins rate flatness
                // across network sizes the same way.
                if fresh_path.contains("adjust_hot") {
                    v.extend(adjust_hot_check_str(&f)?);
                }
                Ok(v)
            });
        match result {
            Ok(violations) if violations.is_empty() => {
                println!("# bench_check: OK  {baseline_path} vs {fresh_path}");
            }
            Ok(violations) => {
                println!(
                    "# bench_check: {} violation(s)  {baseline_path} vs {fresh_path}",
                    violations.len()
                );
                for v in &violations {
                    println!("  REGRESSION {v}");
                }
                total_violations += violations.len();
            }
            Err(e) => {
                eprintln!("bench_check: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if total_violations > 0 {
        eprintln!("bench_check: FAILED with {total_violations} violation(s)");
        ExitCode::FAILURE
    } else {
        println!("# bench_check: all reports within tolerance");
        ExitCode::SUCCESS
    }
}
