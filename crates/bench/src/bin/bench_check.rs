//! CI perf-regression gate: diffs fresh benchmark reports against their
//! committed baselines and exits nonzero when any value falls outside the
//! documented tolerances (see [`harp_bench::gate`] for the tolerance
//! rationale).
//!
//! Usage: `bench_check <baseline.json> <fresh.json> [<baseline2> <fresh2> ...]`
//!
//! Typical CI flow:
//!
//! ```sh
//! cp BENCH_simulator.json /tmp/baseline_sim.json
//! cargo bench -p harp-bench --bench simulator        # rewrites BENCH_simulator.json
//! cargo run -p harp-bench --bin bench_check -- /tmp/baseline_sim.json BENCH_simulator.json
//! ```

use harp_bench::gate::{compare_report_strs, scale_check_str};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: bench_check <baseline.json> <fresh.json> [<baseline2> <fresh2> ...]");
        return ExitCode::from(2);
    }

    let mut total_violations = 0usize;
    for pair in args.chunks(2) {
        let [baseline_path, fresh_path] = pair else {
            eprintln!("usage: bench_check <baseline.json> <fresh.json> [<baseline2> <fresh2> ...]");
            return ExitCode::from(2);
        };
        let read =
            |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
        let result = read(baseline_path)
            .and_then(|b| read(fresh_path).map(|f| (b, f)))
            .and_then(|(b, f)| {
                let mut v = compare_report_strs(&b, &f)?;
                // The scale report additionally carries absolute
                // invariants (zero idle wakeups, speedup floor, flat
                // per-active-cell cost) checked on the fresh report alone.
                if fresh_path.contains("scale") {
                    v.extend(scale_check_str(&f)?);
                }
                Ok(v)
            });
        match result {
            Ok(violations) if violations.is_empty() => {
                println!("# bench_check: OK  {baseline_path} vs {fresh_path}");
            }
            Ok(violations) => {
                println!(
                    "# bench_check: {} violation(s)  {baseline_path} vs {fresh_path}",
                    violations.len()
                );
                for v in &violations {
                    println!("  REGRESSION {v}");
                }
                total_violations += violations.len();
            }
            Err(e) => {
                eprintln!("bench_check: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if total_violations > 0 {
        eprintln!("bench_check: FAILED with {total_violations} violation(s)");
        ExitCode::FAILURE
    } else {
        println!("# bench_check: all reports within tolerance");
        ExitCode::SUCCESS
    }
}
