//! Adjustment hot path at scale: is a settle as local as Algorithm 2?
//!
//! HARP's partition adjustment (§V, Alg. 2) touches only the nodes on the
//! path from the changed link toward the gateway, so its cost should track
//! the *escalation depth*, never the network size. The allocator's rollback
//! machinery is the part of the implementation where that locality is
//! easiest to lose: a clone-everything snapshot costs `O(nodes)` per
//! adjustment and turns the constant-depth algorithm into a linear one.
//! This benchmark pins the fix — the undo journal of first-touch
//! before-images — by timing the *same* adjustment (same link, same depth,
//! same demand delta) on 1k, 10k and 100k-node networks and asserting the
//! rate stays flat.
//!
//! Construction, per size:
//!
//! * a seeded [`workloads::TopologyConfig`] tree with exactly
//!   [`ADJUST_DEPTH`] layers. The generator lays a backbone chain first, so
//!   `NodeId(1..=ADJUST_DEPTH)` sit at depths `1..=ADJUST_DEPTH` in every
//!   tree regardless of the node count — the adjusted link is pinned to the
//!   same depth on every row;
//! * sparse, path-routed demand: [`SOURCES`] depth-[`ADJUST_DEPTH`] nodes
//!   each contribute one uplink cell along their whole path to the gateway.
//!   Uniform per-node demand would overflow the 199×16 slotframe long
//!   before 100k nodes; routed demand keeps every size feasible while
//!   still exercising multi-hop interfaces on the adjusted path;
//! * the timed loop alternates the cell requirement of
//!   `Link::up(NodeId(ADJUST_DEPTH))` between [`SWING_HIGH`] and 1. The
//!   first raise (warmup) escalates through the whole
//!   [`ADJUST_DEPTH`]-deep chain of resource interfaces; the parent then
//!   retains the slack (§V releases locally), so every *timed*
//!   adjustment is the steady-state transaction: journal the touched
//!   node and rows, move `SWING_HIGH - 1` cells in the parent's
//!   partition, emit the schedule ops, settle the confirming cell
//!   message. Rollback never fires — the journal cost measured is the
//!   pure bookkeeping overhead the old snapshot paid as `O(nodes)`.
//!
//! Rounds interleave the sizes (1k, 10k, 100k, 1k, ...) so minutes-scale
//! host throttling hits all rows alike; the per-size medians across rounds
//! feed the report. The gate checks `adjusts_per_sec` against the
//! geometric mean across rows with the same ±25% flatness tolerance the
//! engine-scale study uses ([`harp_bench::gate::adjust_hot_checks`]), plus
//! the usual relative tolerances against the committed baseline.
//!
//! Writes `BENCH_adjust_hot.json` at the workspace root. `--quick` runs a
//! shrunk matrix and prints the report to stdout without writing it, so a
//! validation run can never overwrite the committed baseline.

use harp_bench::harness::{flag, rows_json, to_json_with_sections, write_report};
use harp_core::{AllocatorHandle, Requirements, SchedulingPolicy};
use std::collections::BTreeMap;
use std::time::Instant;
use tsch_sim::{Link, NodeId, SlotframeConfig};
use workloads::TopologyConfig;

/// Depth of the adjusted link — and of the tree, so the escalation chain
/// is as long as the topology allows and identical on every row.
const ADJUST_DEPTH: u32 = 8;

/// Demand sources: nodes at [`ADJUST_DEPTH`] whose gateway paths carry one
/// uplink cell each. Eight paths keep the busiest link (the backbone's
/// first hop, where paths merge) far below the slotframe bound.
const SOURCES: usize = 8;

/// High point of the alternating demand swing. The first raise escalates
/// to the gateway (warmup); after that the parent retains the slack — §V
/// releases locally — so every timed adjustment moves `SWING_HIGH - 1`
/// cells through the parent's partition, the schedule rows and the undo
/// journal without further escalation. The batch makes the measured work
/// deterministic and large enough to dominate per-tree structural noise
/// (the parent's child count differs between seeded topologies).
const SWING_HIGH: u32 = 33;

/// Untimed adjustments before the first measured round: they trigger the
/// one-time escalation that provisions the slack and warm allocator-side
/// lazy state (interface maps, journal buffers) on every row.
const WARMUP_ADJUSTS: usize = 16;

/// Timed adjustments per round per size; even, so the alternating swing
/// contributes the same raise/lower mix to every round.
const ADJUSTS_PER_ROUND: usize = 64;

/// Measurement rounds; the per-size median across rounds is reported.
const ROUNDS: usize = 7;

fn sizes(quick: bool) -> Vec<(&'static str, u32)> {
    if quick {
        vec![("1k", 1_000), ("4k", 4_000)]
    } else {
        vec![("1k", 1_000), ("10k", 10_000), ("100k", 100_000)]
    }
}

fn scenario_seed(nodes: u32) -> u64 {
    0xADBE_0000 | u64::from(nodes)
}

/// One size's converged allocator plus its sampled rates.
struct SizeRun {
    label: &'static str,
    nodes: u32,
    handle: AllocatorHandle,
    /// Next cell count for the alternating adjustment ([`SWING_HIGH`] or
    /// 1); carried across rounds so every adjustment is a real change.
    next_cells: u32,
    rates: Vec<f64>,
    mean_ns: Vec<f64>,
}

impl SizeRun {
    /// Runs `count` alternating adjustments, asserting each settles.
    fn adjust_burst(&mut self, count: usize) {
        let link = Link::up(NodeId(ADJUST_DEPTH));
        for _ in 0..count {
            self.handle
                .adjust(link, self.next_cells)
                .expect("the alternating swing fits the provisioned slack");
            self.next_cells = if self.next_cells == 1 { SWING_HIGH } else { 1 };
        }
    }
}

/// Builds the tree, routes the sparse demand and converges the allocator.
fn build_size(label: &'static str, nodes: u32) -> SizeRun {
    let tree = TopologyConfig {
        nodes,
        layers: ADJUST_DEPTH,
        max_children: 64,
    }
    .generate(scenario_seed(nodes));
    let deep: Vec<NodeId> = tree
        .nodes()
        .filter(|&v| tree.depth(v) == ADJUST_DEPTH)
        .take(SOURCES)
        .collect();
    assert!(
        deep.contains(&NodeId(ADJUST_DEPTH)),
        "backbone chain must place NodeId({ADJUST_DEPTH}) at depth {ADJUST_DEPTH}"
    );
    assert_eq!(deep.len(), SOURCES, "not enough depth-{ADJUST_DEPTH} nodes");
    let mut demand: BTreeMap<Link, u32> = BTreeMap::new();
    for &source in &deep {
        for hop in tree.path_to_root(source) {
            if hop != tree.root() {
                *demand.entry(Link::up(hop)).or_insert(0) += 1;
            }
        }
    }
    let mut reqs = Requirements::new();
    for (&link, &cells) in &demand {
        reqs.set(link, cells);
    }
    let handle = AllocatorHandle::converge(
        tree,
        SlotframeConfig::paper_default(),
        &reqs,
        SchedulingPolicy::RateMonotonic,
    )
    .expect("sparse routed demand fits the paper slotframe at every size");
    SizeRun {
        label,
        nodes,
        handle,
        next_cells: SWING_HIGH,
        rates: Vec::new(),
        mean_ns: Vec::new(),
    }
}

/// Median of `samples` (mean of the middle pair for even counts).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn main() {
    let quick = flag("--quick");
    let rounds = if quick { 3 } else { ROUNDS };
    let adjusts_per_round = if quick { 16 } else { ADJUSTS_PER_ROUND };

    let mut runs: Vec<SizeRun> = sizes(quick)
        .into_iter()
        .map(|(label, nodes)| {
            eprintln!("# adjust_hot: building {label} ({nodes} nodes)");
            let mut run = build_size(label, nodes);
            run.adjust_burst(WARMUP_ADJUSTS);
            run
        })
        .collect();

    // Protocol traffic per adjustment is deterministic; snapshot the
    // totals here so the timed window alone defines the per-adjust
    // averages. Steady-state mgmt is zero by construction (no further
    // escalation); the cell messages prove the settles are real.
    let traffic_before: Vec<(u64, u64)> = runs
        .iter()
        .map(|r| {
            (
                r.handle.mgmt_messages_total(),
                r.handle.cell_messages_total(),
            )
        })
        .collect();

    for round in 0..rounds {
        for run in &mut runs {
            let start = Instant::now();
            run.adjust_burst(adjusts_per_round);
            let elapsed = start.elapsed();
            #[allow(clippy::cast_precision_loss)]
            let per_adjust_ns = elapsed.as_nanos() as f64 / adjusts_per_round as f64;
            run.mean_ns.push(per_adjust_ns);
            run.rates.push(1e9 / per_adjust_ns);
        }
        eprintln!("# adjust_hot: round {}/{rounds} done", round + 1);
    }

    let mut rows: Vec<(String, Vec<(&str, f64)>)> = Vec::new();
    for (run, &(mgmt_before, cells_before)) in runs.iter().zip(&traffic_before) {
        let timed_adjusts = (rounds * adjusts_per_round) as u64;
        #[allow(clippy::cast_precision_loss)]
        let per_adjust = |total: u64, before: u64| (total - before) as f64 / timed_adjusts as f64;
        rows.push((
            run.label.to_owned(),
            vec![
                ("nodes", f64::from(run.nodes)),
                ("adjust_depth", f64::from(ADJUST_DEPTH)),
                ("mean_adjust_ns", median(&run.mean_ns)),
                ("adjusts_per_sec", median(&run.rates)),
                (
                    "mgmt_messages_per_adjust",
                    per_adjust(run.handle.mgmt_messages_total(), mgmt_before),
                ),
                (
                    "cell_messages_per_adjust",
                    per_adjust(run.handle.cell_messages_total(), cells_before),
                ),
            ],
        ));
    }

    #[allow(clippy::cast_precision_loss)]
    let metrics: Vec<(&str, f64)> = vec![
        ("rounds", rounds as f64),
        ("adjusts_per_round", adjusts_per_round as f64),
        ("warmup_adjusts", WARMUP_ADJUSTS as f64),
        ("demand_sources", SOURCES as f64),
    ];
    let json = to_json_with_sections(&[], &metrics, &[("rows", rows_json(&rows))]);
    if quick {
        // Never overwrite the committed baseline with quick-run numbers.
        println!("{json}");
    } else {
        write_report("BENCH_adjust_hot.json", &json);
    }
}
