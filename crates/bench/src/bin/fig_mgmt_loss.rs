//! Management-frame loss sweep: static-phase convergence and adjustment
//! overhead vs the per-hop PDR of the control channel.
//!
//! The paper's testbed measures HARP over a real (imperfect) channel; this
//! experiment quantifies what loss costs the control plane. For each PDR in
//! {1.0, 0.99, 0.95, 0.9, 0.8}, seeded 50-node topologies run the full
//! static phase and one dynamic adjustment over a [`Lossy`] transport with
//! CoAP-style reliability, counting convergence time (slotframes),
//! management messages, retransmissions, ACKs and channel drops. The
//! PDR 1.0 row must match the ideal-channel baseline exactly, with zero
//! retransmissions — the reliability sublayer is free when the channel is.
//!
//! Run with `cargo run --release -p harp-bench --bin fig_mgmt_loss`;
//! pass `--quick` for a two-topology smoke run (CI). Writes
//! `BENCH_mgmt_loss.json` at the workspace root.

use harp_bench::harness::write_report;
use harp_bench::{mean, par_map};
use harp_core::{HarpNetwork, ProtocolReport, SchedulingPolicy};
use tsch_sim::{Link, Lossy, SlotframeConfig, Tree};
use workloads::TopologyConfig;

const PDRS: [f64; 5] = [1.0, 0.99, 0.95, 0.9, 0.8];

struct Sample {
    static_report: ProtocolReport,
    adjust_report: ProtocolReport,
}

/// One full run — static phase plus one deep adjustment — over `transport`.
fn run_one(tree: &Tree, config: SlotframeConfig, pdr: f64, seed: u64) -> Sample {
    let reqs = workloads::uniform_link_requirements(tree, 1);
    let mut net = if pdr >= 1.0 {
        HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic)
    } else {
        HarpNetwork::with_transport(
            tree.clone(),
            config,
            &reqs,
            SchedulingPolicy::RateMonotonic,
            Box::new(Lossy::uniform(pdr, seed).expect("valid pdr")),
        )
    };
    let static_report = net.run_static().expect("static phase converges");

    // One adjustment at the deepest populated layer: demand 1 → 2.
    let deepest = tree.nodes().map(|v| tree.depth(v)).max().unwrap_or(1);
    let node = (1..=deepest)
        .rev()
        .find_map(|d| tree.nodes_at_depth(d).first().copied())
        .expect("non-trivial tree");
    let adjust_report = net
        .adjust_and_settle(net.now(), Link::up(node), 2)
        .expect("adjustment resolves");
    Sample {
        static_report,
        adjust_report,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let topologies = if quick { 2 } else { 10 };
    let config = SlotframeConfig::paper_default();
    let trees = TopologyConfig::paper_50_node().generate_batch(0x10EF, topologies);

    println!("# Management-frame loss sweep — static phase + one adjustment");
    println!("# {topologies} seeded 50-node topologies per PDR");
    println!(
        "{:>6} {:>9} {:>9} {:>7} {:>7} {:>8} {:>9} {:>9}",
        "pdr", "st_frames", "st_msgs", "retx", "drops", "acks", "adj_msgs", "adj_frames"
    );

    // Each (pdr, topology) cell is independent; sweep them in parallel.
    let jobs: Vec<(usize, usize)> = (0..PDRS.len())
        .flat_map(|p| (0..trees.len()).map(move |t| (p, t)))
        .collect();
    let samples = par_map(&jobs, |_, &(p, t)| {
        let seed = 0xA5ED_0000_u64 + ((p as u64) << 8) + t as u64;
        run_one(&trees[t], config, PDRS[p], seed)
    });

    // The PDR 1.0 row runs the ideal channel; a Lossy transport at the same
    // PDR must be indistinguishable: same report, zero retransmissions.
    for ideal in samples.iter().take(trees.len()) {
        // The first trees.len() jobs are the pdr 1.0 column.
        assert_eq!(
            ideal.static_report.retransmissions, 0,
            "ideal channel must need no retransmissions"
        );
        assert_eq!(ideal.static_report.dropped, 0);
    }
    let obs_snapshot;
    let trace_sample;
    {
        // Explicit equivalence check on one topology: Lossy at PDR 1.0
        // (every chance() draw succeeds) vs the Reliable fast path. The
        // ideal run doubles as the sweep's observability probe: metrics
        // recording must not perturb the protocol (the comparison against
        // the uninstrumented Lossy run below proves it run-for-run).
        let reqs = workloads::uniform_link_requirements(&trees[0], 1);
        let mut ideal = HarpNetwork::new(
            trees[0].clone(),
            config,
            &reqs,
            SchedulingPolicy::RateMonotonic,
        );
        ideal.enable_observability(1024);
        let ideal_report = ideal.run_static().unwrap();
        let mut lossy = HarpNetwork::with_transport(
            trees[0].clone(),
            config,
            &reqs,
            SchedulingPolicy::RateMonotonic,
            Box::new(Lossy::uniform(1.0, 7).unwrap()),
        );
        let lossy_report = lossy.run_static().unwrap();
        // The one permitted difference: under Lossy the reliability
        // sublayer is engaged, so ACKs flow (piggybacked, free). Timing,
        // message counts and the schedule itself must be identical.
        let mut comparable = lossy_report.clone();
        comparable.acks = ideal_report.acks;
        assert_eq!(
            ideal_report, comparable,
            "Lossy at PDR 1.0 must match the ideal channel exactly"
        );
        assert_eq!(lossy_report.retransmissions, 0);
        assert_eq!(lossy_report.dropped, 0);
        let a: Vec<_> = ideal.schedule().iter_links().collect();
        let b: Vec<_> = lossy.schedule().iter_links().collect();
        assert_eq!(a, b, "schedules must be identical at PDR 1.0");
        let mut snap = ideal.metrics_snapshot();
        snap.add_counters(packing::obs::totals());
        snap.add_counters(workloads::obs::totals());
        obs_snapshot = snap;
        trace_sample = ideal.obs().spans.to_json(32);
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"topologies\": {topologies},\n"));
    json.push_str(&format!(
        "  \"metrics\": {{\"bench_threads\": {}}},\n",
        tsch_sim::bench_threads()
    ));
    json.push_str("  \"rows\": [\n");
    for (p, &pdr) in PDRS.iter().enumerate() {
        let rows: Vec<&Sample> = samples
            .iter()
            .zip(&jobs)
            .filter(|(_, &(jp, _))| jp == p)
            .map(|(s, _)| s)
            .collect();
        let st_frames = mean(
            &rows
                .iter()
                .map(|s| s.static_report.slotframes(config) as f64)
                .collect::<Vec<_>>(),
        );
        let st_msgs = mean(
            &rows
                .iter()
                .map(|s| (s.static_report.mgmt_messages + s.static_report.cell_messages) as f64)
                .collect::<Vec<_>>(),
        );
        let retx = mean(
            &rows
                .iter()
                .map(|s| s.static_report.retransmissions as f64)
                .collect::<Vec<_>>(),
        );
        let drops = mean(
            &rows
                .iter()
                .map(|s| s.static_report.dropped as f64)
                .collect::<Vec<_>>(),
        );
        let acks = mean(
            &rows
                .iter()
                .map(|s| s.static_report.acks as f64)
                .collect::<Vec<_>>(),
        );
        let adj_msgs = mean(
            &rows
                .iter()
                .map(|s| (s.adjust_report.mgmt_messages + s.adjust_report.cell_messages) as f64)
                .collect::<Vec<_>>(),
        );
        let adj_frames = mean(
            &rows
                .iter()
                .map(|s| s.adjust_report.slotframes(config) as f64)
                .collect::<Vec<_>>(),
        );
        println!(
            "{pdr:>6.2} {st_frames:>9.2} {st_msgs:>9.2} {retx:>7.2} {drops:>7.2} {acks:>8.2} {adj_msgs:>9.2} {adj_frames:>10.2}"
        );
        let sep = if p + 1 < PDRS.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"pdr\": {pdr}, \"static_slotframes\": {st_frames:.3}, \
             \"static_messages\": {st_msgs:.3}, \"retransmissions\": {retx:.3}, \
             \"dropped\": {drops:.3}, \"acks\": {acks:.3}, \
             \"adjust_messages\": {adj_msgs:.3}, \"adjust_slotframes\": {adj_frames:.3}}}{sep}\n"
        ));
    }
    json.push_str("  ],\n  \"obs\": ");
    json.push_str(&obs_snapshot.to_json());
    json.push_str(",\n  \"trace_sample\": ");
    json.push_str(&trace_sample);
    json.push_str("\n}\n");
    println!("{}", harp_bench::obs_footer());

    write_report("BENCH_mgmt_loss.json", &json);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_run_converges_on_one_topology() {
        let tree = TopologyConfig::paper_50_node().generate(3);
        let sample = run_one(&tree, SlotframeConfig::paper_default(), 0.9, 42);
        assert!(sample.static_report.mgmt_messages > 0);
        assert!(sample.adjust_report.elapsed_slots() > 0);
    }
}
