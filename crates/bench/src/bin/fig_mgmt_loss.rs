//! Management-frame loss sweep: static-phase convergence and adjustment
//! overhead vs the per-hop PDR of the control channel.
//!
//! The experiment itself is the checked-in `scenarios/mgmt_loss.scn`
//! (topology batch, PDR list, the deepest-link adjustment) replayed
//! through the shared scenario runner — this binary is a thin wrapper
//! kept for CI and muscle memory. Equivalent invocation:
//! `harp_sim --scenario scenarios/mgmt_loss.scn [--quick]`.
//!
//! Writes `BENCH_mgmt_loss.json` at the workspace root; `--quick` runs the
//! two-topology smoke batch (CI).

use harp_bench::harness::flag;
use harp_bench::scenario_run::{load_scenario_file, run_scenario, scenario_dir, RunOptions};

fn main() {
    let scenario = load_scenario_file(&scenario_dir().join("mgmt_loss.scn"))
        .expect("checked-in scenario parses");
    let opts = RunOptions {
        quick: flag("--quick"),
        ..RunOptions::default()
    };
    run_scenario(&scenario, &opts)
        .expect("scenario runs")
        .emit();
}
