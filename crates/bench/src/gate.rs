//! The CI perf-regression gate: compares a freshly produced benchmark
//! report against the committed baseline and reports tolerance violations.
//!
//! Keys are classified by name, because the two committed reports mix
//! quantities with very different stability:
//!
//! * **Wall-clock timings** (`mean_ns` of each benchmark) vary wildly
//!   across CI machines — the gate only catches catastrophic slowdowns,
//!   allowing up to [`TIME_SLOWDOWN`]× the baseline.
//! * **Rates** (`*per_sec`) are timings inverted: fresh may drop to
//!   `1/TIME_SLOWDOWN` of the baseline before the gate trips.
//! * **Ratios** (`*speedup*`) divide two timings taken on the *same*
//!   machine, so they are far more stable: fresh must stay above
//!   [`SPEEDUP_FLOOR`] of the baseline.
//! * **Deterministic counts** (everything else: message counts,
//!   slotframes, retransmissions — all derived from seeded runs) must
//!   match to [`COUNT_REL_TOL`]; a drift here is a behaviour change, not
//!   noise.
//!
//! Benchmarks or rows present in the baseline but missing from the fresh
//! report are violations (a silently dropped benchmark must not pass the
//! gate); *new* keys in the fresh report are fine. The `iters`/`total_ns`
//! fields and embedded `obs`/`trace_sample` sections are ignored: they
//! describe how the measurement ran, not how fast the code is.

use harp_obs::json::{parse, Json};
use std::fmt;

/// A fresh timing may be up to this many times the baseline (4× = 300%
/// slower) before the gate trips. Generous on purpose: shared CI runners
/// routinely jitter by 2×; a real regression from an accidental
/// `O(n²)` or a de-vectorised hot loop overshoots 4× easily.
pub const TIME_SLOWDOWN: f64 = 4.0;

/// A fresh speedup ratio must stay above this fraction of the baseline.
pub const SPEEDUP_FLOOR: f64 = 0.5;

/// Relative tolerance for deterministic counts (floating-point formatting
/// headroom only).
pub const COUNT_REL_TOL: f64 = 1e-3;

/// How a key is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Absolute wall-clock time in nanoseconds: higher is worse.
    TimeNs,
    /// A throughput rate: lower is worse.
    Rate,
    /// A same-machine timing ratio: lower is worse, tighter bound.
    Speedup,
    /// A deterministic quantity: any drift is a violation.
    Count,
    /// Not compared at all.
    Ignored,
}

/// Classifies a metric key by name.
#[must_use]
pub fn classify(key: &str) -> Kind {
    if key == "iters"
        || key == "total_ns"
        || key == "obs"
        || key == "trace_sample"
        || key == "bench_threads"
    {
        // `bench_threads` records the machine's resolved worker count —
        // provenance, not performance, and different on every runner.
        Kind::Ignored
    } else if key.ends_with("_ns") {
        Kind::TimeNs
    } else if key.ends_with("per_sec") {
        Kind::Rate
    } else if key.contains("speedup") {
        Kind::Speedup
    } else {
        Kind::Count
    }
}

/// One tolerance violation found by [`compare_reports`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Where the value lives, e.g. `benchmarks[dense_sim...].mean_ns`.
    pub key: String,
    /// The committed baseline value (`None` when the fresh report is
    /// missing the key entirely).
    pub baseline: Option<f64>,
    /// The fresh value (`None` when missing).
    pub fresh: Option<f64>,
    /// Human-readable statement of the violated bound.
    pub limit: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let num = |v: &Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "missing".to_owned(),
        };
        write!(
            f,
            "{}: baseline {} -> fresh {} ({})",
            self.key,
            num(&self.baseline),
            num(&self.fresh),
            self.limit
        )
    }
}

fn check(key: String, baseline: f64, fresh: f64, out: &mut Vec<Violation>) {
    let violation = |limit: String| Violation {
        key: key.clone(),
        baseline: Some(baseline),
        fresh: Some(fresh),
        limit,
    };
    match classify(key.rsplit('.').next().unwrap_or(&key)) {
        Kind::Ignored => {}
        Kind::TimeNs => {
            if fresh > baseline * TIME_SLOWDOWN {
                out.push(violation(format!(
                    "allowed at most {TIME_SLOWDOWN}x slower"
                )));
            }
        }
        Kind::Rate => {
            if fresh < baseline / TIME_SLOWDOWN {
                out.push(violation(format!(
                    "allowed to drop to 1/{TIME_SLOWDOWN} of baseline"
                )));
            }
        }
        Kind::Speedup => {
            if fresh < baseline * SPEEDUP_FLOOR {
                out.push(violation(format!(
                    "must stay above {SPEEDUP_FLOOR} of baseline"
                )));
            }
        }
        Kind::Count => {
            let scale = baseline.abs().max(1.0);
            if (fresh - baseline).abs() > scale * COUNT_REL_TOL {
                out.push(violation(format!(
                    "deterministic value drifted beyond {COUNT_REL_TOL:e} relative"
                )));
            }
        }
    }
}

fn missing(key: String, baseline: Option<f64>, out: &mut Vec<Violation>) {
    out.push(Violation {
        key,
        baseline,
        fresh: None,
        limit: "present in baseline but missing from fresh report".to_owned(),
    });
}

/// Returns entries of a JSON array keyed by the string field `name_key`
/// (for `benchmarks`) or the numeric field rendered as text (for `rows`).
fn entry_label(entry: &Json, name_key: &str) -> Option<String> {
    match entry.get(name_key)? {
        Json::Str(s) => Some(s.clone()),
        Json::Num(n) => Some(format!("{n}")),
        _ => None,
    }
}

fn compare_keyed_array(
    section: &str,
    name_key: &str,
    baseline: &[Json],
    fresh: &[Json],
    out: &mut Vec<Violation>,
) {
    for b in baseline {
        let Some(label) = entry_label(b, name_key) else {
            continue;
        };
        let Some(f) = fresh
            .iter()
            .find(|e| entry_label(e, name_key).as_deref() == Some(&label))
        else {
            missing(format!("{section}[{label}]"), None, out);
            continue;
        };
        let Some(fields) = b.as_obj() else { continue };
        for (k, bv) in fields {
            if k == name_key || classify(k) == Kind::Ignored {
                continue;
            }
            let Some(bnum) = bv.as_f64() else { continue };
            match f.get(k).and_then(Json::as_f64) {
                Some(fnum) => check(format!("{section}[{label}].{k}"), bnum, fnum, out),
                None => missing(format!("{section}[{label}].{k}"), Some(bnum), out),
            }
        }
    }
}

/// Picks the label field for a `rows` array: experiment reports label rows
/// with a `name` field; the original `BENCH_mgmt_loss.json` keys rows by
/// their numeric `pdr` sweep point instead.
fn rows_label_key(rows: &[Json]) -> &'static str {
    let has = |k: &str| rows.first().is_some_and(|r| r.get(k).is_some());
    if has("name") {
        "name"
    } else {
        "pdr"
    }
}

/// Compares a baseline report against a fresh one. Both are whole JSON
/// documents in any committed shape (`BENCH_simulator.json` with
/// `benchmarks` + `metrics`, `BENCH_mgmt_loss.json` with `pdr`-keyed
/// `rows`, or the `BENCH_fig*.json` experiment reports with `name`-keyed
/// `rows`).
#[must_use]
pub fn compare_reports(baseline: &Json, fresh: &Json) -> Vec<Violation> {
    let mut out = Vec::new();
    let arr = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_arr).map(<[Json]>::to_vec);

    if let Some(base) = arr(baseline, "benchmarks") {
        let fresh_arr = arr(fresh, "benchmarks").unwrap_or_default();
        compare_keyed_array("benchmarks", "name", &base, &fresh_arr, &mut out);
    }
    if let Some(base) = arr(baseline, "rows") {
        let fresh_arr = arr(fresh, "rows").unwrap_or_default();
        let key = rows_label_key(&base);
        compare_keyed_array("rows", key, &base, &fresh_arr, &mut out);
    }
    if let Some(Json::Obj(base)) = baseline.get("metrics") {
        let empty = Vec::new();
        let fresh_metrics = match fresh.get("metrics") {
            Some(Json::Obj(m)) => m,
            _ => &empty,
        };
        for (k, bv) in base {
            if classify(k) == Kind::Ignored {
                continue;
            }
            let Some(bnum) = bv.as_f64() else { continue };
            let found = fresh_metrics
                .iter()
                .find(|(fk, _)| fk == k)
                .and_then(|(_, v)| v.as_f64());
            match found {
                Some(fnum) => check(format!("metrics.{k}"), bnum, fnum, &mut out),
                None => missing(format!("metrics.{k}"), Some(bnum), &mut out),
            }
        }
    }
    out
}

/// The scale report's per-active-cell rate must stay within this ratio
/// of the geometric mean across rows (the flat-cost acceptance bound).
pub const SCALE_FLATNESS_TOLERANCE: f64 = 0.25;

/// Invariants specific to `BENCH_scale.json`, checked on the *fresh*
/// report alone (they hold by construction, not relative to a baseline):
///
/// * `idle_wakeups` is zero on every row — the event calendar never woke
///   a slot without traffic;
/// * `sharded_speedup` is at least `1.0` on every row — the serial
///   fallback guarantees sharding never loses to the dense engine;
/// * `active_cell_slots_per_sec` stays within
///   [`SCALE_FLATNESS_TOLERANCE`] of the geometric mean across rows —
///   per-active-cell cost is flat in the node count.
#[must_use]
pub fn scale_checks(fresh: &Json) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(rows) = fresh.get("rows").and_then(Json::as_arr) else {
        missing("rows".to_owned(), None, &mut out);
        return out;
    };
    let mut rates: Vec<(String, f64)> = Vec::new();
    for row in rows {
        let label = entry_label(row, "name").unwrap_or_else(|| "?".to_owned());
        let field = |k: &str| row.get(k).and_then(Json::as_f64);
        if let Some(wakeups) = field("idle_wakeups") {
            if wakeups != 0.0 {
                out.push(Violation {
                    key: format!("rows[{label}].idle_wakeups"),
                    baseline: Some(0.0),
                    fresh: Some(wakeups),
                    limit: "event calendar must never wake an idle slot".to_owned(),
                });
            }
        }
        if let Some(speedup) = field("sharded_speedup") {
            if speedup < 1.0 {
                out.push(Violation {
                    key: format!("rows[{label}].sharded_speedup"),
                    baseline: Some(1.0),
                    fresh: Some(speedup),
                    limit: "sharded run must never lose to the dense engine".to_owned(),
                });
            }
        }
        if let Some(rate) = field("active_cell_slots_per_sec") {
            rates.push((label, rate));
        }
    }
    if rates.len() > 1 && rates.iter().all(|&(_, r)| r > 0.0) {
        let mean = (rates.iter().map(|(_, r)| r.ln()).sum::<f64>() / rates.len() as f64).exp();
        for (label, rate) in rates {
            let ratio = rate / mean;
            if !(1.0 - SCALE_FLATNESS_TOLERANCE..=1.0 + SCALE_FLATNESS_TOLERANCE).contains(&ratio) {
                out.push(Violation {
                    key: format!("rows[{label}].active_cell_slots_per_sec"),
                    baseline: Some(mean),
                    fresh: Some(rate),
                    limit: format!(
                        "per-active-cell rate must stay within \
                         ±{SCALE_FLATNESS_TOLERANCE} of the geometric mean"
                    ),
                });
            }
        }
    }
    out
}

/// [`scale_checks`] on a report string.
///
/// # Errors
///
/// Returns the parse error message if the document is not valid JSON.
pub fn scale_check_str(fresh: &str) -> Result<Vec<Violation>, String> {
    let f = parse(fresh).map_err(|e| format!("fresh: {e}"))?;
    Ok(scale_checks(&f))
}

/// Invariants specific to `BENCH_adjust_hot.json`, checked on the *fresh*
/// report alone: `adjusts_per_sec` must stay within
/// [`SCALE_FLATNESS_TOLERANCE`] of the geometric mean across rows. The
/// rows time the same fixed-depth adjustment on 1k–100k-node networks, so
/// any size-dependence in the rate is an `O(nodes)` residue on the
/// adjustment hot path — exactly what the undo-journal rollback removed
/// (the legacy path cloned every node and the whole schedule per
/// adjustment).
#[must_use]
pub fn adjust_hot_checks(fresh: &Json) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(rows) = fresh.get("rows").and_then(Json::as_arr) else {
        missing("rows".to_owned(), None, &mut out);
        return out;
    };
    let mut rates: Vec<(String, f64)> = Vec::new();
    for row in rows {
        let label = entry_label(row, "name").unwrap_or_else(|| "?".to_owned());
        if let Some(rate) = row.get("adjusts_per_sec").and_then(Json::as_f64) {
            rates.push((label, rate));
        }
    }
    if rates.len() < 2 || rates.iter().any(|&(_, r)| r <= 0.0) {
        missing("rows[*].adjusts_per_sec".to_owned(), None, &mut out);
        return out;
    }
    let mean = (rates.iter().map(|(_, r)| r.ln()).sum::<f64>() / rates.len() as f64).exp();
    for (label, rate) in rates {
        let ratio = rate / mean;
        if !(1.0 - SCALE_FLATNESS_TOLERANCE..=1.0 + SCALE_FLATNESS_TOLERANCE).contains(&ratio) {
            out.push(Violation {
                key: format!("rows[{label}].adjusts_per_sec"),
                baseline: Some(mean),
                fresh: Some(rate),
                limit: format!(
                    "adjustment rate must stay within \
                     ±{SCALE_FLATNESS_TOLERANCE} of the geometric mean \
                     across network sizes"
                ),
            });
        }
    }
    out
}

/// [`adjust_hot_checks`] on a report string.
///
/// # Errors
///
/// Returns the parse error message if the document is not valid JSON.
pub fn adjust_hot_check_str(fresh: &str) -> Result<Vec<Violation>, String> {
    let f = parse(fresh).map_err(|e| format!("fresh: {e}"))?;
    Ok(adjust_hot_checks(&f))
}

/// Parses two report strings and compares them.
///
/// # Errors
///
/// Returns the parse error message (with which input failed) if either
/// document is not valid JSON.
pub fn compare_report_strs(baseline: &str, fresh: &str) -> Result<Vec<Violation>, String> {
    let b = parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let f = parse(fresh).map_err(|e| format!("fresh: {e}"))?;
    Ok(compare_reports(&b, &f))
}

/// Parses a bench manifest (`crates/bench/bench_manifest.txt`): one
/// workspace-relative report file per line, `#` comments and blank lines
/// ignored. The manifest is the single registry of gated reports — CI's
/// snapshot step and `bench_check --manifest` both consume it, so a
/// report is registered exactly once.
#[must_use]
pub fn manifest_files(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
      "benchmarks": [
        {"name": "dense", "iters": 982, "total_ns": 200107149, "mean_ns": 200000.0},
        {"name": "slow", "iters": 10, "total_ns": 1, "mean_ns": 1000000.0}
      ],
      "metrics": {
        "dense_speedup_vs_reference": 6.8,
        "dense_slots_per_sec": 13000000.0
      }
    }"#;

    fn fresh_with(dense_ns: f64, speedup: f64, rate: f64) -> String {
        format!(
            r#"{{
              "benchmarks": [
                {{"name": "dense", "iters": 5, "total_ns": 9, "mean_ns": {dense_ns}}},
                {{"name": "slow", "iters": 5, "total_ns": 9, "mean_ns": 1100000.0}}
              ],
              "metrics": {{
                "dense_speedup_vs_reference": {speedup},
                "dense_slots_per_sec": {rate}
              }}
            }}"#
        )
    }

    #[test]
    fn identical_reports_pass() {
        let v = compare_report_strs(BASELINE, BASELINE).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn noise_within_tolerance_passes() {
        // 2x slower timing, 20% lower speedup, 30% lower rate: all noise.
        let fresh = fresh_with(400_000.0, 5.5, 9_000_000.0);
        let v = compare_report_strs(BASELINE, &fresh).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn synthetic_slowdown_beyond_tolerance_trips() {
        // 5x the baseline mean_ns: beyond TIME_SLOWDOWN.
        let fresh = fresh_with(1_000_000.0, 6.8, 13_000_000.0);
        let v = compare_report_strs(BASELINE, &fresh).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].key, "benchmarks[dense].mean_ns");
        assert!(v[0].to_string().contains("4x slower"));
    }

    #[test]
    fn rate_collapse_trips() {
        let fresh = fresh_with(200_000.0, 6.8, 2_000_000.0);
        let v = compare_report_strs(BASELINE, &fresh).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].key, "metrics.dense_slots_per_sec");
    }

    #[test]
    fn speedup_collapse_trips() {
        let fresh = fresh_with(200_000.0, 2.0, 13_000_000.0);
        let v = compare_report_strs(BASELINE, &fresh).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].key, "metrics.dense_speedup_vs_reference");
    }

    #[test]
    fn missing_benchmark_trips() {
        let fresh = r#"{"benchmarks": [], "metrics": {}}"#;
        let v = compare_report_strs(BASELINE, fresh).unwrap();
        assert!(v.iter().any(|x| x.key == "benchmarks[dense]"));
        assert!(v.iter().any(|x| x.key == "metrics.dense_slots_per_sec"));
    }

    #[test]
    fn new_keys_in_fresh_are_fine() {
        let fresh = r#"{
          "benchmarks": [
            {"name": "dense", "mean_ns": 200000.0},
            {"name": "slow", "mean_ns": 1000000.0},
            {"name": "brand_new", "mean_ns": 5.0}
          ],
          "metrics": {
            "dense_speedup_vs_reference": 6.8,
            "dense_slots_per_sec": 13000000.0,
            "extra_metric": 42.0
          },
          "obs": {"counters": {"sim.slots": 1}}
        }"#;
        let v = compare_report_strs(BASELINE, fresh).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn deterministic_rows_are_strict() {
        let base = r#"{"rows": [
            {"pdr": 1, "static_messages": 139.0, "retransmissions": 0.0}
        ]}"#;
        let drifted = r#"{"rows": [
            {"pdr": 1, "static_messages": 141.0, "retransmissions": 0.0}
        ]}"#;
        let v = compare_report_strs(base, drifted).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].key, "rows[1].static_messages");
        // Identical rows pass.
        assert!(compare_report_strs(base, base).unwrap().is_empty());
    }

    #[test]
    fn name_keyed_rows_use_name_label() {
        let base = r#"{"rows": [
            {"name": "sf0", "slotframes": 12.0, "mean_latency_slots": 3.5}
        ]}"#;
        let drifted = r#"{"rows": [
            {"name": "sf0", "slotframes": 13.0, "mean_latency_slots": 3.5}
        ]}"#;
        let v = compare_report_strs(base, drifted).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].key, "rows[sf0].slotframes");
        assert!(compare_report_strs(base, base).unwrap().is_empty());
    }

    #[test]
    fn committed_baselines_self_compare_clean() {
        // Every report the manifest registers must exist, parse, and
        // self-compare empty — the manifest and the committed artefacts
        // cannot drift apart.
        let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("bench_manifest.txt");
        let files = manifest_files(&std::fs::read_to_string(&manifest).unwrap());
        assert!(files.len() >= 13, "manifest lists the gated reports");
        for file in files {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../")
                .join(&file);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("manifest entry {file} unreadable: {e}"));
            let v = compare_report_strs(&text, &text).unwrap();
            assert!(v.is_empty(), "{file}: {v:?}");
        }
    }

    #[test]
    fn manifest_parser_skips_comments_and_blanks() {
        let files = manifest_files("# registry\n\nBENCH_a.json\n  BENCH_b.json  \n# tail\n");
        assert_eq!(files, vec!["BENCH_a.json", "BENCH_b.json"]);
    }

    #[test]
    fn bench_threads_metric_is_ignored() {
        let base = r#"{"metrics": {"bench_threads": 2.0, "x_per_sec": 100.0}}"#;
        let fresh = r#"{"metrics": {"bench_threads": 64.0, "x_per_sec": 100.0}}"#;
        assert!(compare_report_strs(base, fresh).unwrap().is_empty());
    }

    #[test]
    fn scale_checks_accept_flat_zero_wakeup_rows() {
        let fresh = r#"{"rows": [
            {"name": "scale_1k", "idle_wakeups": 0.0, "sharded_speedup": 1.0,
             "active_cell_slots_per_sec": 95000.0},
            {"name": "scale_1m", "idle_wakeups": 0.0, "sharded_speedup": 2.1,
             "active_cell_slots_per_sec": 105000.0}
        ]}"#;
        assert!(scale_check_str(fresh).unwrap().is_empty());
    }

    #[test]
    fn scale_checks_trip_on_wakeups_slowdown_and_drift() {
        let fresh = r#"{"rows": [
            {"name": "scale_1k", "idle_wakeups": 3.0, "sharded_speedup": 0.9,
             "active_cell_slots_per_sec": 100000.0},
            {"name": "scale_1m", "idle_wakeups": 0.0, "sharded_speedup": 1.5,
             "active_cell_slots_per_sec": 20000.0}
        ]}"#;
        let v = scale_check_str(fresh).unwrap();
        assert!(v.iter().any(|x| x.key == "rows[scale_1k].idle_wakeups"));
        assert!(v.iter().any(|x| x.key == "rows[scale_1k].sharded_speedup"));
        assert!(v
            .iter()
            .any(|x| x.key == "rows[scale_1m].active_cell_slots_per_sec"));
    }

    #[test]
    fn adjust_hot_checks_accept_flat_rates() {
        let fresh = r#"{"rows": [
            {"name": "1k", "adjusts_per_sec": 110000.0},
            {"name": "10k", "adjusts_per_sec": 95000.0},
            {"name": "100k", "adjusts_per_sec": 105000.0}
        ]}"#;
        assert!(adjust_hot_check_str(fresh).unwrap().is_empty());
    }

    #[test]
    fn adjust_hot_checks_trip_on_size_dependent_rates() {
        // A 10x fall from 1k to 100k is the O(nodes) signature the gate
        // exists to catch; only the drifted rows are named.
        let fresh = r#"{"rows": [
            {"name": "1k", "adjusts_per_sec": 100000.0},
            {"name": "10k", "adjusts_per_sec": 33000.0},
            {"name": "100k", "adjusts_per_sec": 10000.0}
        ]}"#;
        let v = adjust_hot_check_str(fresh).unwrap();
        assert!(v.iter().any(|x| x.key == "rows[1k].adjusts_per_sec"));
        assert!(v.iter().any(|x| x.key == "rows[100k].adjusts_per_sec"));
        assert!(!v.iter().any(|x| x.key == "rows[10k].adjusts_per_sec"));
    }

    #[test]
    fn adjust_hot_checks_demand_usable_rows() {
        // No rows section, a single row, and a zero rate are all reported
        // as missing data rather than silently passing.
        for fresh in [
            r#"{"metrics": {"rounds": 7.0}}"#,
            r#"{"rows": [{"name": "1k", "adjusts_per_sec": 100000.0}]}"#,
            r#"{"rows": [
                {"name": "1k", "adjusts_per_sec": 0.0},
                {"name": "10k", "adjusts_per_sec": 100000.0}
            ]}"#,
        ] {
            assert_eq!(adjust_hot_check_str(fresh).unwrap().len(), 1, "{fresh}");
        }
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(compare_report_strs("{", "{}").is_err());
        assert!(compare_report_strs("{}", "nope").is_err());
    }
}
