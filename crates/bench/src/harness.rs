//! A small self-contained micro-benchmark harness.
//!
//! The workspace builds offline, so the `[[bench]]` targets cannot pull in
//! an external harness crate; this module provides the few pieces they
//! need: warmed-up, time-budgeted measurement loops and a plain JSON
//! report writer (consumed by `BENCH_simulator.json`).
//!
//! Timing uses a doubling batch schedule against a wall-clock budget
//! (`HARP_BENCH_BUDGET_MS`, default 200 ms per benchmark), which keeps a
//! full bench run in seconds while still amortising timer overhead for
//! nanosecond-scale bodies.

use std::time::{Duration, Instant};

/// One benchmark's timing result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name, as reported.
    pub name: String,
    /// Iterations actually executed (excluding warm-up).
    pub iters: u64,
    /// Total wall-clock time over all iterations.
    pub total: Duration,
}

impl Measurement {
    /// Mean wall-clock nanoseconds per iteration.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.total.as_nanos() as f64 / self.iters as f64
        }
    }

    /// Iterations per second.
    #[must_use]
    pub fn per_sec(&self) -> f64 {
        let ns = self.mean_ns();
        if ns > 0.0 {
            1e9 / ns
        } else {
            0.0
        }
    }

    /// One formatted report line (name, mean time, rate).
    #[must_use]
    pub fn report(&self) -> String {
        format!(
            "{:<44} {:>12} {:>14} iters {}",
            self.name,
            format_ns(self.mean_ns()),
            format!("{:.1}/s", self.per_sec()),
            self.iters
        )
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Per-benchmark time budget: `HARP_BENCH_BUDGET_MS` or 200 ms.
#[must_use]
pub fn budget() -> Duration {
    let ms = std::env::var("HARP_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// Times `f` until the budget elapses (doubling batches, two warm-up
/// runs) and returns the measurement.
pub fn measure<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    for _ in 0..2 {
        std::hint::black_box(f());
    }
    let budget = budget();
    let mut iters = 0u64;
    let mut batch = 1u64;
    let start = Instant::now();
    let total = loop {
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        iters += batch;
        let elapsed = start.elapsed();
        if elapsed >= budget {
            break elapsed;
        }
        batch = batch.saturating_mul(2);
    };
    Measurement {
        name: name.to_owned(),
        iters,
        total,
    }
}

/// Like [`measure`], but runs `setup` untimed before every timed
/// `routine` call — the equivalent of criterion's `iter_batched` for
/// routines that consume fresh state (a built simulator, a converged
/// network) whose construction should not pollute the measurement.
///
/// Iterates until the *timed* portion reaches the budget, with a wall
/// clock cap of four budgets so expensive setups cannot stall the run.
pub fn measure_with_setup<S, R>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> R,
) -> Measurement {
    for _ in 0..2 {
        std::hint::black_box(routine(setup()));
    }
    let budget = budget();
    let mut iters = 0u64;
    let mut timed = Duration::ZERO;
    let wall = Instant::now();
    while timed < budget && wall.elapsed() < budget * 4 {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        timed += start.elapsed();
        std::hint::black_box(out);
        iters += 1;
    }
    Measurement {
        name: name.to_owned(),
        iters,
        total: timed,
    }
}

/// Renders measurements plus scalar metrics as a JSON document.
///
/// The shape is stable for downstream tooling:
/// `{"benchmarks": [{"name", "iters", "total_ns", "mean_ns"}...],
///   "metrics": {...}}`.
#[must_use]
pub fn to_json(measurements: &[Measurement], metrics: &[(&str, f64)]) -> String {
    to_json_with_sections(measurements, metrics, &[])
}

/// [`to_json`] with extra top-level sections, each a key plus an
/// already-rendered JSON value (e.g. an observability snapshot from
/// [`harp_obs::MetricsSnapshot::to_json`] or a span-ring dump). The gate
/// ([`crate::gate`]) ignores sections it does not classify, so reports may
/// grow new sections without breaking old baselines.
#[must_use]
pub fn to_json_with_sections(
    measurements: &[Measurement],
    metrics: &[(&str, f64)],
    sections: &[(&str, String)],
) -> String {
    let mut out = String::from("{\n");
    if !measurements.is_empty() {
        out.push_str("  \"benchmarks\": [\n");
        for (i, m) in measurements.iter().enumerate() {
            let sep = if i + 1 < measurements.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"total_ns\": {}, \"mean_ns\": {:.1}}}{sep}\n",
                escape(&m.name),
                m.iters,
                m.total.as_nanos(),
                m.mean_ns()
            ));
        }
        out.push_str("  ],\n");
    }
    out.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let sep = if i + 1 < metrics.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": {value:.3}{sep}\n", escape(name)));
    }
    out.push_str("  }");
    for (name, rendered) in sections {
        out.push_str(&format!(",\n  \"{}\": {rendered}", escape(name)));
    }
    out.push_str("\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a `rows` section: an array of objects each labelled with a
/// `name` field followed by its numeric fields, in the given order. The
/// gate keys row comparison on `name`, so labels must be unique within a
/// report and stable across runs.
#[must_use]
pub fn rows_json(rows: &[(String, Vec<(&str, f64)>)]) -> String {
    let mut out = String::from("[\n");
    for (i, (name, fields)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!("    {{\"name\": \"{}\"", escape(name)));
        for (k, v) in fields {
            out.push_str(&format!(", \"{}\": {v:.3}", escape(k)));
        }
        out.push_str(&format!("}}{sep}\n"));
    }
    out.push_str("  ]");
    out
}

/// Resolves a path against the workspace root: relative to this crate's
/// manifest when run under cargo, else the working directory. Reports,
/// committed baselines and the `scenarios/` directory all live there.
#[must_use]
pub fn workspace_path(rel: &str) -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../../").join(rel),
        Err(_) => std::path::PathBuf::from(rel),
    }
}

/// True when `name` appears among the process arguments — the experiment
/// binaries' shared convention for flags like `--quick`.
#[must_use]
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Value of a `--key value` argument pair, if present.
#[must_use]
pub fn arg_value(key: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == key {
            return args.next();
        }
    }
    None
}

/// Writes a report file at the workspace root (see [`workspace_path`]) and
/// prints where it went.
///
/// # Panics
///
/// Panics when the file cannot be written — a bench run whose report
/// silently vanishes would let the CI gate pass on stale data.
pub fn write_report(file_name: &str, contents: &str) {
    let path = workspace_path(file_name);
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {file_name}: {e}"));
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut calls = 0u64;
        let m = measure("noop", || calls += 1);
        assert_eq!(m.name, "noop");
        assert!(m.iters > 0);
        assert_eq!(calls, m.iters + 2, "two warm-up calls are not counted");
        assert!(m.total >= budget());
        assert!(m.mean_ns() > 0.0);
        assert!(m.per_sec() > 0.0);
    }

    #[test]
    fn measure_with_setup_times_routine_only() {
        let mut setups = 0u64;
        let m = measure_with_setup(
            "setup",
            || {
                setups += 1;
                7u64
            },
            |x| x * 2,
        );
        assert!(m.iters > 0);
        assert_eq!(setups, m.iters + 2, "one setup per routine call");
    }

    #[test]
    fn json_report_is_well_formed() {
        let ms = vec![
            Measurement {
                name: "a".into(),
                iters: 10,
                total: Duration::from_micros(5),
            },
            Measurement {
                name: "b\"x".into(),
                iters: 1,
                total: Duration::from_nanos(7),
            },
        ];
        let json = to_json(&ms, &[("speedup", 2.5), ("rate", 100.0)]);
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"b\\\"x\""));
        assert!(json.contains("\"speedup\": 2.500"));
        assert!(json.contains("\"rate\": 100.000"));
        // Balanced braces/brackets as a cheap structural check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_measurements_omit_benchmarks_section() {
        let json = to_json_with_sections(&[], &[("x", 1.0)], &[("rows", "[\n  ]".into())]);
        assert!(!json.contains("\"benchmarks\""));
        assert!(json.contains("\"x\": 1.000"));
        assert!(json.contains("\"rows\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn rows_json_labels_and_orders_fields() {
        let rows = vec![
            ("sf0".to_owned(), vec![("a", 1.0), ("b", 2.5)]),
            ("sf\"1".to_owned(), vec![("a", 3.0)]),
        ];
        let json = rows_json(&rows);
        assert!(json.contains("{\"name\": \"sf0\", \"a\": 1.000, \"b\": 2.500},"));
        assert!(json.contains("{\"name\": \"sf\\\"1\", \"a\": 3.000}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with(" s"));
    }
}
