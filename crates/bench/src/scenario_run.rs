//! Scenario execution: the shared runner behind `harp_sim` and the
//! converted experiment binaries.
//!
//! [`run_scenario`] dispatches on the scenario's report mode:
//!
//! * `timeline` — control and data plane in lockstep with rate steps
//!   applied at their frames (the Fig. 10 shape);
//! * `pdr_sweep` — static phase + one adjustment per control-channel PDR
//!   over the topology batch (the management-loss shape);
//! * `adjustments` — one measured partition adjustment per `demand_step`
//!   (the Table II shape);
//! * `replicates` — independently seeded data-plane runs under the
//!   scenario's fault plan, one row each;
//! * `churn` — sequential `reparent` events on a converged control plane,
//!   one row each.
//!
//! Determinism: every random draw derives from the scenario seed (or the
//! `--seed` override) — replicate seeds come from a [`SplitMix64`] stream,
//! sweeps fan out through [`par_map_with_threads`], which is byte-identical
//! across thread counts, and reports render through the same JSON writers
//! as the bespoke binaries did. A converted experiment therefore reproduces
//! its committed `BENCH_*` baseline byte for byte, and any scenario+seed
//! pair replays identically across runs and `--threads` settings. Every
//! data-plane run also re-pins the engine's `idle_wakeups == 0` invariant,
//! fault windows included.

use crate::harness::{rows_json, to_json_with_sections, workspace_path, write_report};
use crate::{measure_harp_adjustment_traced, run_lockstep};
use harp_core::{HarpNetwork, ProtocolReport, SchedulingPolicy};
use harp_obs::flame::{detect_storms, TraceSpan};
use harp_obs::{
    merged_trace_json, spans_to_json, FlightEvent, FlightRecorder, MetricsSnapshot, SpanEvent,
    NO_FLIGHT_NODE,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use tsch_sim::{
    bench_threads, mean, par_map_with_threads, Asn, Direction, Link, Lossy, NodeId, Rate,
    SimulatorBuilder, SlotframeConfig, SplitMix64, Tree,
};
use workloads::scenario_dsl::{parse_scenario, DemandModel, ReportMode, Scenario};

/// Runner knobs that come from the command line, not the scenario file.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Shrink sweeps to their `quick_count` (the CI smoke setting).
    pub quick: bool,
    /// Overrides the scenario's seed.
    pub seed: Option<u64>,
    /// Worker threads for parallel sweeps (default: [`bench_threads`]).
    /// Results are byte-identical for any value.
    pub threads: Option<usize>,
}

/// What a scenario run produced.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Human-readable run log (the converted binaries' stdout tables).
    pub stdout: String,
    /// The rendered report document.
    pub json: String,
    /// Report file name from the `[report]` section, if any.
    pub file: Option<String>,
    /// Flight-recorder dump of the run (ASN timebase): fault-plan
    /// firings, mode-specific events and detected adjustment storms.
    /// `None` for modes without an event timeline (sweeps, churn).
    /// A pure function of scenario + seed: byte-identical across runs
    /// and `--threads` values.
    pub flight: Option<String>,
}

impl RunOutput {
    /// Prints the run log and writes the report file when the scenario
    /// names one.
    pub fn emit(&self) {
        print!("{}", self.stdout);
        println!("{}", crate::obs_footer());
        if let Some(file) = &self.file {
            write_report(file, &self.json);
        }
    }
}

/// The checked-in scenario directory at the workspace root.
#[must_use]
pub fn scenario_dir() -> PathBuf {
    workspace_path("scenarios")
}

/// Reads and parses a scenario file, prefixing diagnostics with the path.
///
/// # Errors
///
/// The I/O or parse failure as `"<path>: line L, column C: ..."`.
pub fn load_scenario_file(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_scenario(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Executes a scenario and renders its report.
///
/// # Errors
///
/// A message when the scenario does not fit its report mode (e.g. a
/// `timeline` without echo demand) or references nodes/links/tasks the
/// topology does not have.
///
/// # Panics
///
/// Panics when the control plane rejects the scenario mid-run (infeasible
/// adjustment) — scenarios, like the binaries before them, are expected to
/// be feasible.
pub fn run_scenario(scenario: &Scenario, opts: &RunOptions) -> Result<RunOutput, String> {
    let seed = opts.seed.unwrap_or(scenario.seed);
    let threads = opts.threads.unwrap_or_else(bench_threads);
    let json_file = scenario.report.file.clone();
    let (stdout, json, flight) = match scenario.report.mode {
        ReportMode::Timeline { node } => run_timeline(scenario, node, seed, opts)?,
        ReportMode::PdrSweep => {
            let (out, json) = run_pdr_sweep(scenario, seed, opts, threads)?;
            (out, json, None)
        }
        ReportMode::Adjustments => {
            let (out, json) = run_adjustments(scenario, opts, threads)?;
            (out, json, None)
        }
        ReportMode::Replicates { repeats } => {
            run_replicates(scenario, repeats, seed, opts, threads)?
        }
        ReportMode::Churn => {
            let (out, json) = run_churn(scenario, opts)?;
            (out, json, None)
        }
    };
    Ok(RunOutput {
        stdout,
        json,
        file: json_file,
        flight,
    })
}

/// Renders the flight dump of a scenario run: the fault plan's firings,
/// mode-specific `extra` events and adjustment storms detected over
/// `spans`, merged onto one ASN timeline. Nothing here touches a clock or
/// an RNG, so the dump is byte-identical across runs and thread counts.
fn scenario_flight(
    scenario: &Scenario,
    plan: &tsch_sim::FaultPlan,
    spans: &[TraceSpan],
    extra: Vec<FlightEvent>,
) -> String {
    let mut events: Vec<FlightEvent> = plan
        .events()
        .iter()
        .map(|&(at, action)| FlightEvent {
            seq: 0,
            at: at.0,
            kind: action.kind(),
            tenant: scenario.name.clone(),
            corr: 0,
            node: action.node().map_or(NO_FLIGHT_NODE, |n| i64::from(n.0)),
            detail: String::new(),
            magnitude: 0,
        })
        .collect();
    events.extend(extra);
    for storm in detect_storms(spans, 3) {
        events.push(FlightEvent {
            seq: 0,
            at: storm.start_asn,
            kind: "storm",
            tenant: scenario.name.clone(),
            corr: 0,
            node: NO_FLIGHT_NODE,
            detail: format!("nodes={} bill={}", storm.nodes.len(), storm.bill),
            magnitude: storm.span_count as i64,
        });
    }
    // Stable by ASN: events sharing a slot keep plan/extra/storm order.
    events.sort_by_key(|e| e.at);
    let count = events.len().max(1);
    let mut recorder = FlightRecorder::new(count);
    for event in events {
        recorder.record(event);
    }
    recorder.to_json(count)
}

fn single_tree(scenario: &Scenario, opts: &RunOptions) -> Tree {
    scenario
        .trees(opts.quick)
        .into_iter()
        .next()
        .expect("every topology spec yields at least one tree")
}

/// `timeline node=N`: lockstep control/data planes, rate steps applied at
/// their frames, per-slotframe latency rows of the observed node.
fn run_timeline(
    scenario: &Scenario,
    node: u32,
    seed: u64,
    opts: &RunOptions,
) -> Result<(String, String, Option<String>), String> {
    let tree = single_tree(scenario, opts);
    let config = scenario.slotframe_config()?;
    let observed = NodeId(node);
    if observed.index() >= tree.len() || observed == tree.root() {
        return Err(format!(
            "timeline observes node {node}, which is not a non-root tree node"
        ));
    }
    let DemandModel::Echo(base_rate) = scenario.workload.demand else {
        return Err("`mode timeline` needs `demand echo` (rate steps change echo tasks)".into());
    };

    // Static phase, with the declared headroom padded onto the node's path
    // and then released (partitions keep their size, schedules shrink).
    let base = scenario.requirements(&tree);
    let mut padded = base.clone();
    if let Some(h) = scenario.workload.headroom {
        for hop in tree.path_to_root(NodeId(h.node)).windows(2) {
            for link in [Link::up(hop[0]), Link::down(hop[0])] {
                padded.set(link, padded.get(link) + h.cells);
            }
        }
    }
    let mut net = HarpNetwork::new(
        tree.clone(),
        config,
        &padded,
        SchedulingPolicy::RateMonotonic,
    );
    net.enable_observability(2048);
    net.run_static().map_err(|e| format!("static phase: {e}"))?;
    for (link, cells) in base.iter() {
        if padded.get(link) != cells {
            net.request_change(net.now(), link, cells)
                .expect("local decrease");
        }
    }
    net.run_until_quiescent().expect("decreases settle");
    assert!(net.schedule().is_exclusive());

    // Data plane, with the scenario's fault plan compiled in.
    let net_offset = net.now().0;
    let fault_plan = scenario.data_fault_plan(&tree)?;
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(net.schedule().clone())
        .seed(seed)
        .observability(256)
        .fault_plan(fault_plan.clone());
    for task in scenario.tasks(&tree) {
        builder = builder.task(task).expect("valid task");
    }
    let mut sim = builder.build();

    let mut steps = scenario.workload.rate_steps.clone();
    steps.sort_by_key(|s| s.at_frame); // stable: file order within a frame
    let mut frame = 0u64;
    for step in &steps {
        if step.at_frame > scenario.frames {
            return Err(format!(
                "rate_step at frame {} is past the run",
                step.at_frame
            ));
        }
        run_lockstep(
            &mut sim,
            &mut net,
            net_offset,
            (step.at_frame - frame) * u64::from(config.slots),
        );
        frame = step.at_frame;
        let stepped = NodeId(step.node);
        let task = workloads::task_id_of(&tree, stepped)
            .ok_or_else(|| format!("rate_step names node {}, which has no task", step.node))?;
        sim.set_task_rate(task, step.rate).expect("task exists");
        apply_demand_change(&tree, &mut net, &mut sim, stepped, base_rate, step.rate);
    }
    run_lockstep(
        &mut sim,
        &mut net,
        net_offset,
        (scenario.frames - frame) * u64::from(config.slots),
    );
    assert_eq!(sim.idle_wakeups(), 0, "the slot calendar never idles");

    // Report: average latency of the observed node per slotframe.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} — e2e latency of node {} over time",
        scenario.name, observed.0
    );
    for step in &steps {
        let _ = writeln!(
            out,
            "# rate step at slotframe {}: node {} -> {}",
            step.at_frame, step.node, step.rate
        );
    }
    let _ = writeln!(out, "{:>10} {:>12}", "slotframe", "latency(s)");
    let slot_s = f64::from(config.slot_duration_us) / 1e6;
    let timeline = sim.stats().latency_timeline(observed, config.slots);
    for &(frame, mean_slots) in &timeline {
        let _ = writeln!(out, "{frame:>10} {:>12.3}", mean_slots * slot_s);
    }
    let _ = writeln!(
        out,
        "# schedule exclusive throughout: {}",
        sim.schedule().is_exclusive()
    );

    let rows: Vec<(String, Vec<(&'static str, f64)>)> = timeline
        .iter()
        .map(|&(frame, mean_slots)| {
            (
                format!("sf{frame:03}"),
                vec![("mean_latency_slots", mean_slots)],
            )
        })
        .collect();
    let stats = sim.stats();
    let metrics: Vec<(&str, f64)> = vec![
        ("generated", stats.generated as f64),
        ("delivered", stats.deliveries.len() as f64),
        ("collisions", stats.collisions as f64),
        ("losses", stats.losses as f64),
        ("bench_threads", bench_threads() as f64),
    ];
    let mut snap = net.metrics_snapshot();
    crate::add_library_counters(&mut snap);
    let trace = merged_trace_json(&[&net.obs().spans, &sim.obs().spans], 96);
    let json = to_json_with_sections(
        &[],
        &metrics,
        &[
            ("rows", rows_json(&rows)),
            ("obs", snap.to_json()),
            ("trace_sample", trace),
        ],
    );

    // Flight dump: fault firings, rate steps and adjustment storms on the
    // run's ASN timeline.
    let rate_events: Vec<FlightEvent> = steps
        .iter()
        .map(|step| FlightEvent {
            seq: 0,
            at: step.at_frame * u64::from(config.slots),
            kind: "rate_step",
            tenant: scenario.name.clone(),
            corr: 0,
            node: i64::from(step.node),
            detail: format!("{}", step.rate),
            magnitude: 0,
        })
        .collect();
    let storm_spans: Vec<TraceSpan> = net
        .obs()
        .spans
        .iter()
        .chain(sim.obs().spans.iter())
        .map(TraceSpan::from_event)
        .collect();
    let flight = scenario_flight(scenario, &fault_plan, &storm_spans, rate_events);
    Ok((out, json, Some(flight)))
}

/// Recomputes the demand of every link on the stepped node's path for the
/// new rate and injects the changes into the control plane (echo traffic:
/// downlinks mirror uplinks).
fn apply_demand_change(
    tree: &Tree,
    net: &mut HarpNetwork,
    sim: &mut tsch_sim::Simulator,
    stepped: NodeId,
    base_rate: Rate,
    new_rate: Rate,
) {
    let now = Asn(net.now().0.max(sim.now().0));
    let ups = workloads::uplink_demand_after_change(tree, stepped, base_rate, new_rate);
    let mut changes: Vec<(Link, u32)> = ups.clone();
    changes.extend(ups.iter().map(|&(l, c)| {
        (
            Link {
                child: l.child,
                direction: Direction::Down,
            },
            c,
        )
    }));
    for (link, cells) in changes {
        let ops = net
            .request_change(now, link, cells)
            .expect("feasible change");
        for op in &ops {
            harp_core::apply_op(sim.schedule_mut(), op).expect("consistent ops");
        }
    }
}

struct SweepSample {
    static_report: ProtocolReport,
    adjust_report: ProtocolReport,
}

/// One full control-plane run — static phase plus the scenario's first
/// `demand_step` as an adjustment — over a channel with the given PDR.
fn sweep_one(
    scenario: &Scenario,
    tree: &Tree,
    config: SlotframeConfig,
    pdr: f64,
    seed: u64,
) -> SweepSample {
    let reqs = scenario.requirements(tree);
    let mut net = if pdr >= 1.0 {
        HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic)
    } else {
        HarpNetwork::with_transport(
            tree.clone(),
            config,
            &reqs,
            SchedulingPolicy::RateMonotonic,
            Box::new(Lossy::uniform(pdr, seed).expect("valid pdr")),
        )
    };
    let static_report = net.run_static().expect("static phase converges");
    let step = scenario.workload.demand_steps[0];
    let link = step.link.resolve(tree).expect("validated before the sweep");
    let adjust_report = net
        .adjust_and_settle(net.now(), link, reqs.get(link) + step.delta)
        .expect("adjustment resolves");
    SweepSample {
        static_report,
        adjust_report,
    }
}

/// `pdr_sweep`: the management-loss experiment — per control-channel PDR,
/// averaged static-phase and adjustment overheads over the topology batch.
fn run_pdr_sweep(
    scenario: &Scenario,
    seed: u64,
    opts: &RunOptions,
    threads: usize,
) -> Result<(String, String), String> {
    let trees = scenario.trees(opts.quick);
    let topologies = trees.len();
    let config = scenario.slotframe_config()?;
    let pdrs = &scenario.scheduler.control_pdrs;
    // Resolve the adjustment once per tree up front so a bad selector is a
    // diagnostic, not a worker panic.
    for tree in &trees {
        scenario.demand_step_events(tree)?;
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} — static phase + one adjustment per control PDR",
        scenario.name
    );
    let _ = writeln!(out, "# {topologies} topologies per PDR");
    let _ = writeln!(
        out,
        "{:>6} {:>9} {:>9} {:>7} {:>7} {:>8} {:>9} {:>9}",
        "pdr", "st_frames", "st_msgs", "retx", "drops", "acks", "adj_msgs", "adj_frames"
    );

    // Each (pdr, topology) cell is independent; sweep them in parallel.
    let jobs: Vec<(usize, usize)> = (0..pdrs.len())
        .flat_map(|p| (0..trees.len()).map(move |t| (p, t)))
        .collect();
    let samples = par_map_with_threads(&jobs, threads, |_, &(p, t)| {
        let job_seed = seed + ((p as u64) << 8) + t as u64;
        sweep_one(scenario, &trees[t], config, pdrs[p], job_seed)
    });

    // Ideal-channel columns must never retransmit or drop.
    for (sample, &(p, _)) in samples.iter().zip(&jobs) {
        if pdrs[p] >= 1.0 {
            assert_eq!(
                sample.static_report.retransmissions, 0,
                "ideal channel must need no retransmissions"
            );
            assert_eq!(sample.static_report.dropped, 0);
        }
    }
    let (obs_snapshot, trace_sample) = sweep_equivalence_probe(scenario, &trees[0], config);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"topologies\": {topologies},");
    let _ = writeln!(
        json,
        "  \"metrics\": {{\"bench_threads\": {}}},",
        bench_threads()
    );
    json.push_str("  \"rows\": [\n");
    for (p, &pdr) in pdrs.iter().enumerate() {
        let rows: Vec<&SweepSample> = samples
            .iter()
            .zip(&jobs)
            .filter(|(_, &(jp, _))| jp == p)
            .map(|(s, _)| s)
            .collect();
        let col =
            |f: &dyn Fn(&SweepSample) -> f64| mean(&rows.iter().map(|s| f(s)).collect::<Vec<_>>());
        let st_frames = col(&|s| s.static_report.slotframes(config) as f64);
        let st_msgs =
            col(&|s| (s.static_report.mgmt_messages + s.static_report.cell_messages) as f64);
        let retx = col(&|s| s.static_report.retransmissions as f64);
        let drops = col(&|s| s.static_report.dropped as f64);
        let acks = col(&|s| s.static_report.acks as f64);
        let adj_msgs =
            col(&|s| (s.adjust_report.mgmt_messages + s.adjust_report.cell_messages) as f64);
        let adj_frames = col(&|s| s.adjust_report.slotframes(config) as f64);
        let _ = writeln!(
            out,
            "{pdr:>6.2} {st_frames:>9.2} {st_msgs:>9.2} {retx:>7.2} {drops:>7.2} {acks:>8.2} {adj_msgs:>9.2} {adj_frames:>10.2}"
        );
        let sep = if p + 1 < pdrs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"pdr\": {pdr}, \"static_slotframes\": {st_frames:.3}, \
             \"static_messages\": {st_msgs:.3}, \"retransmissions\": {retx:.3}, \
             \"dropped\": {drops:.3}, \"acks\": {acks:.3}, \
             \"adjust_messages\": {adj_msgs:.3}, \"adjust_slotframes\": {adj_frames:.3}}}{sep}"
        );
    }
    json.push_str("  ],\n  \"obs\": ");
    json.push_str(&obs_snapshot.to_json());
    json.push_str(",\n  \"trace_sample\": ");
    json.push_str(&trace_sample);
    json.push_str("\n}\n");
    Ok((out, json))
}

/// Explicit equivalence check on one topology: [`Lossy`] at PDR 1.0
/// (every `chance()` draw succeeds) vs the ideal fast path must agree on
/// everything but piggybacked ACKs. The instrumented ideal run doubles as
/// the sweep's observability probe — the comparison proves metrics
/// recording does not perturb the protocol.
fn sweep_equivalence_probe(
    scenario: &Scenario,
    tree: &Tree,
    config: SlotframeConfig,
) -> (MetricsSnapshot, String) {
    let reqs = scenario.requirements(tree);
    let mut ideal = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    ideal.enable_observability(1024);
    let ideal_report = ideal.run_static().unwrap();
    let mut lossy = HarpNetwork::with_transport(
        tree.clone(),
        config,
        &reqs,
        SchedulingPolicy::RateMonotonic,
        Box::new(Lossy::uniform(1.0, 7).unwrap()),
    );
    let lossy_report = lossy.run_static().unwrap();
    let mut comparable = lossy_report.clone();
    comparable.acks = ideal_report.acks;
    assert_eq!(
        ideal_report, comparable,
        "Lossy at PDR 1.0 must match the ideal channel exactly"
    );
    assert_eq!(lossy_report.retransmissions, 0);
    assert_eq!(lossy_report.dropped, 0);
    let a: Vec<_> = ideal.schedule().iter_links().collect();
    let b: Vec<_> = lossy.schedule().iter_links().collect();
    assert_eq!(a, b, "schedules must be identical at PDR 1.0");
    let mut snap = ideal.metrics_snapshot();
    crate::add_library_counters(&mut snap);
    (snap, ideal.obs().spans.to_json(32))
}

/// `adjustments`: one measured partition adjustment per `demand_step` on a
/// freshly converged network (the Table II shape).
fn run_adjustments(
    scenario: &Scenario,
    opts: &RunOptions,
    threads: usize,
) -> Result<(String, String), String> {
    let tree = single_tree(scenario, opts);
    let config = scenario.slotframe_config()?;
    let reqs = scenario.requirements(&tree);
    let events = scenario.demand_step_events(&tree)?;

    let mut out = String::new();
    let _ = writeln!(out, "# {} — partition adjustment overhead", scenario.name);
    let _ = writeln!(
        out,
        "{:<30} {:>6} {:>7} {:>5} {:>8} {:>4}",
        "Event", "Nodes", "Layers", "Msg.", "Time(s)", "SF"
    );
    // Each event replays the static phase from scratch, so the rows are
    // independent: measure them in parallel, print in event order.
    let results = par_map_with_threads(&events, threads, |_, ev| {
        let old = reqs.get(ev.link);
        let new_cells = old + ev.delta;
        let parent = tree.parent(ev.link.child).expect("non-root");
        let label = format!(
            "C_{{{},{}}}: r(up N{}) {}->{}",
            parent.0,
            tree.layer_of_link(ev.link),
            ev.link.child.0,
            old,
            new_cells
        );
        match measure_harp_adjustment_traced(&tree, &reqs, config, ev.link, new_cells) {
            Some((s, trace)) => {
                let text = format!(
                    "{:<30} {:>6} {:>7} {:>5} {:>8.2} {:>4}",
                    label,
                    s.involved_nodes,
                    s.layers_touched,
                    s.mgmt_messages,
                    s.seconds,
                    s.slotframes
                );
                let row = (
                    format!(
                        "C{}_L{}_N{}",
                        parent.0,
                        tree.layer_of_link(ev.link),
                        ev.link.child.0
                    ),
                    vec![
                        ("involved_nodes", s.involved_nodes as f64),
                        ("layers_touched", s.layers_touched as f64),
                        ("mgmt_messages", s.mgmt_messages as f64),
                        ("seconds", s.seconds),
                        ("slotframes", s.slotframes as f64),
                    ],
                );
                // Keep the adjustment spans only: the identical static
                // phases would otherwise drown the interesting part.
                let spans: Vec<SpanEvent> =
                    trace.into_iter().filter(|s| s.name == "adjust").collect();
                (text, Some(row), spans)
            }
            None => (format!("{label:<30} infeasible"), None, Vec::new()),
        }
    });
    let mut rows = Vec::new();
    let mut spans: Vec<SpanEvent> = Vec::new();
    for (text, row, event_spans) in results {
        let _ = writeln!(out, "{text}");
        rows.extend(row);
        spans.extend(event_spans);
    }

    let mut snap = MetricsSnapshot::default();
    crate::add_library_counters(&mut snap);
    let total = spans.len() as u64;
    let json = to_json_with_sections(
        &[],
        &[("bench_threads", bench_threads() as f64)],
        &[
            ("rows", rows_json(&rows)),
            ("obs", snap.to_json()),
            ("trace_sample", spans_to_json(spans.iter(), total)),
        ],
    );
    Ok((out, json))
}

/// `replicates repeats=R`: independently seeded data-plane runs under the
/// scenario's fault plan, one row per replicate. The schedule comes from
/// one static phase; each replicate re-runs the data plane with a seed
/// drawn from the scenario seed's [`SplitMix64`] stream.
fn run_replicates(
    scenario: &Scenario,
    repeats: u32,
    seed: u64,
    opts: &RunOptions,
    threads: usize,
) -> Result<(String, String, Option<String>), String> {
    let tree = single_tree(scenario, opts);
    let config = scenario.slotframe_config()?;
    let reqs = scenario.requirements(&tree);
    let plan = scenario.data_fault_plan(&tree)?;
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().map_err(|e| format!("static phase: {e}"))?;
    let schedule = net.schedule().clone();

    let mut rng = SplitMix64::new(seed);
    let rep_seeds: Vec<u64> = (0..repeats).map(|_| rng.next_u64()).collect();
    let rows = par_map_with_threads(&rep_seeds, threads, |i, &rep_seed| {
        let mut builder = SimulatorBuilder::new(tree.clone(), config)
            .schedule(schedule.clone())
            .seed(rep_seed)
            .fault_plan(plan.clone());
        for task in scenario.tasks(&tree) {
            builder = builder.task(task).expect("valid task");
        }
        let mut sim = builder.build();
        sim.run_slotframes(scenario.frames);
        assert_eq!(
            sim.idle_wakeups(),
            0,
            "fault windows never break the calendar"
        );
        let stats = sim.stats();
        (
            format!("rep{i:02}"),
            vec![
                ("generated", stats.generated as f64),
                ("delivered", stats.delivered() as f64),
                ("losses", stats.losses as f64),
                ("collisions", stats.collisions as f64),
                ("queue_drops", stats.queue_drops as f64),
                ("faults_fired", sim.faults_fired() as f64),
                ("queued", sim.queued_packets() as f64),
            ],
        )
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} — {repeats} fault-plan replicates over {} frames",
        scenario.name, scenario.frames
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>10} {:>8} {:>8} {:>7}",
        "rep", "generated", "delivered", "losses", "qdrops", "faults"
    );
    for (name, fields) in &rows {
        let v = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map_or(0.0, |(_, v)| *v)
        };
        let _ = writeln!(
            out,
            "{name:>6} {:>10} {:>10} {:>8} {:>8} {:>7}",
            v("generated"),
            v("delivered"),
            v("losses"),
            v("queue_drops"),
            v("faults_fired")
        );
    }

    let mut snap = MetricsSnapshot::default();
    crate::add_library_counters(&mut snap);
    let metrics: Vec<(&str, f64)> = vec![
        ("replicates", f64::from(repeats)),
        ("frames", scenario.frames as f64),
        ("fault_events", plan.len() as f64),
        ("bench_threads", bench_threads() as f64),
    ];
    let json = to_json_with_sections(
        &[],
        &metrics,
        &[("rows", rows_json(&rows)), ("obs", snap.to_json())],
    );

    // Flight dump: the shared fault plan plus one end-of-run event per
    // replicate. `par_map_with_threads` returns rows in input order, so
    // the dump is identical for every `--threads` value.
    let end_asn = scenario.frames * u64::from(config.slots);
    let replicate_events: Vec<FlightEvent> = rows
        .iter()
        .map(|(name, fields)| {
            let delivered = fields
                .iter()
                .find(|(k, _)| *k == "delivered")
                .map_or(0.0, |(_, v)| *v);
            FlightEvent {
                seq: 0,
                at: end_asn,
                kind: "replicate",
                tenant: scenario.name.clone(),
                corr: 0,
                node: NO_FLIGHT_NODE,
                detail: name.clone(),
                magnitude: delivered as i64,
            }
        })
        .collect();
    let flight = scenario_flight(scenario, &plan, &[], replicate_events);
    Ok((out, json, Some(flight)))
}

/// `churn`: sequential mobile-node churn on a converged control plane —
/// each `reparent` fault re-attaches a leaf and reports the protocol cost.
fn run_churn(scenario: &Scenario, opts: &RunOptions) -> Result<(String, String), String> {
    let tree = single_tree(scenario, opts);
    let config = scenario.slotframe_config()?;
    let reqs = scenario.requirements(&tree);
    let events = scenario.reparent_events();
    if events.is_empty() {
        return Err("`mode churn` needs at least one `reparent` fault".into());
    }
    for &(_, node, to) in &events {
        let leaf = NodeId(node);
        if leaf.index() >= tree.len() || NodeId(to).index() >= tree.len() {
            return Err(format!(
                "reparent names node {node} or {to} outside the tree"
            ));
        }
        if !tree.is_leaf(leaf) {
            return Err(format!("reparent node {node} is not a leaf"));
        }
    }
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.enable_observability(1024);
    net.run_static().map_err(|e| format!("static phase: {e}"))?;

    let mut out = String::new();
    let _ = writeln!(out, "# {} — sequential reparent churn", scenario.name);
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>7} {:>5} {:>4}",
        "Event", "Nodes", "Layers", "Msg.", "SF"
    );
    let mut rows = Vec::new();
    for (i, &(at_frame, node, to)) in events.iter().enumerate() {
        let at = Asn(net.now().0.max(at_frame * u64::from(config.slots)));
        let report = net
            .reparent_leaf(at, NodeId(node), NodeId(to))
            .map_err(|e| format!("reparent node {node} under {to}: {e}"))?;
        let label = format!("ev{i}_N{node}_to{to}");
        let _ = writeln!(
            out,
            "{label:<16} {:>6} {:>7} {:>5} {:>4}",
            report.involved_nodes.len(),
            report.layers.len(),
            report.mgmt_messages + report.cell_messages,
            report.slotframes(config)
        );
        rows.push((
            label,
            vec![
                ("involved_nodes", report.involved_nodes.len() as f64),
                ("layers_touched", report.layers.len() as f64),
                ("mgmt_messages", report.mgmt_messages as f64),
                ("cell_messages", report.cell_messages as f64),
                ("slotframes", report.slotframes(config) as f64),
            ],
        ));
    }

    let mut snap = net.metrics_snapshot();
    crate::add_library_counters(&mut snap);
    let metrics: Vec<(&str, f64)> = vec![
        ("churn_events", events.len() as f64),
        ("bench_threads", bench_threads() as f64),
    ];
    let trace = net.obs().spans.to_json(64);
    let json = to_json_with_sections(
        &[],
        &metrics,
        &[
            ("rows", rows_json(&rows)),
            ("obs", snap.to_json()),
            ("trace_sample", trace),
        ],
    );
    Ok((out, json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::TopologyConfig;

    #[test]
    fn lossy_sweep_converges_on_one_topology() {
        let scenario = parse_scenario(
            "scenario s\n[workloads]\ndemand uniform cells=1\ndemand_step link=deepest delta=1\n\
             [report]\nmode pdr_sweep\n",
        )
        .unwrap();
        let tree = TopologyConfig::paper_50_node().generate(3);
        let sample = sweep_one(&scenario, &tree, SlotframeConfig::paper_default(), 0.9, 42);
        assert!(sample.static_report.mgmt_messages > 0);
        assert!(sample.adjust_report.elapsed_slots() > 0);
    }

    #[test]
    fn timeline_rejects_non_echo_demand() {
        let scenario = parse_scenario(
            "scenario s\n[workloads]\ndemand uniform cells=1\n[report]\nmode timeline node=5\n",
        )
        .unwrap();
        let err = run_scenario(&scenario, &RunOptions::default()).unwrap_err();
        assert!(err.contains("echo"), "got: {err}");
    }
}
