//! Shared experiment machinery for the HARP reproduction harness.
//!
//! Each table and figure of the paper's evaluation has a binary in
//! `src/bin/` that prints the same rows/series the paper reports; the
//! common sweep logic lives here so the binaries stay declarative and the
//! logic itself is unit-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod harness;
pub mod scenario_run;

use harp_core::{HarpNetwork, Requirements, SchedulingPolicy};
use schedulers::Scheduler;
use tsch_sim::{Asn, GlobalInterference, Link, SlotframeConfig, Tree};

pub use tsch_sim::mean;

pub use tsch_sim::{bench_threads, par_map, par_map_with_threads};

/// Average schedule-collision probability of one scheduler over a batch of
/// topologies, with every *uplink* demanding `cells_per_link` cells — the
/// inner loop of Fig. 11. (Uplink-only sensor traffic: at rate 8 the demand
/// almost exactly fills the paper's 199-slot slotframe, which is the regime
/// the paper sweeps; adding downlinks would make rate ≥ 5 physically
/// unschedulable for any collision-free scheduler.)
///
/// Collisions are counted under the *global* model (any two links sharing a
/// cell collide), which is the paper's notion of a schedule collision.
#[must_use]
pub fn average_collision_probability(
    scheduler: &dyn Scheduler,
    topologies: &[Tree],
    cells_per_link: u32,
    config: SlotframeConfig,
) -> f64 {
    let probabilities: Vec<f64> = par_map(topologies, |i, tree| {
        let reqs = workloads::uniform_uplink_requirements(tree, cells_per_link);
        let schedule = scheduler.build_schedule(tree, &reqs, config, i as u64);
        schedule
            .collision_report(tree, &GlobalInterference)
            .collision_probability()
    });
    mean(&probabilities)
}

/// One measured HARP adjustment: messages and timing for raising one link's
/// demand on a converged network (a Table II row / Fig. 12 sample).
#[derive(Debug, Clone, PartialEq)]
pub struct AdjustmentSample {
    /// The adjusted link.
    pub link: Link,
    /// The link's layer.
    pub layer: u32,
    /// Management messages exchanged.
    pub mgmt_messages: u64,
    /// Nodes that participated.
    pub involved_nodes: usize,
    /// Distinct layers named in PUT messages.
    pub layers_touched: usize,
    /// Wall time of the adjustment in seconds.
    pub seconds: f64,
    /// Wall time in whole slotframes.
    pub slotframes: u64,
}

/// Runs HARP's static phase on `tree` and then measures one adjustment that
/// raises `link`'s requirement to `new_cells`.
///
/// Returns `None` if the adjustment is infeasible (slotframe overflow).
#[must_use]
pub fn measure_harp_adjustment(
    tree: &Tree,
    requirements: &Requirements,
    config: SlotframeConfig,
    link: Link,
    new_cells: u32,
) -> Option<AdjustmentSample> {
    let mut net = HarpNetwork::new(
        tree.clone(),
        config,
        requirements,
        SchedulingPolicy::RateMonotonic,
    );
    net.run_static().ok()?;
    let report = net.adjust_and_settle(net.now(), link, new_cells).ok()?;
    Some(AdjustmentSample {
        link,
        layer: tree.layer_of_link(link),
        mgmt_messages: report.mgmt_messages,
        involved_nodes: report.involved_nodes.len(),
        layers_touched: report.layers.len(),
        seconds: report.elapsed_seconds(config),
        slotframes: report.slotframes(config),
    })
}

/// [`measure_harp_adjustment`] with span capture: runs the same static
/// phase + adjustment on an observability-enabled network and also returns
/// the recorded protocol spans (static run, the adjustment itself, and any
/// cascaded layer work), for the `trace_sample` section of the experiment
/// reports. The sample itself is unchanged — observability never alters
/// protocol behaviour.
#[must_use]
pub fn measure_harp_adjustment_traced(
    tree: &Tree,
    requirements: &Requirements,
    config: SlotframeConfig,
    link: Link,
    new_cells: u32,
) -> Option<(AdjustmentSample, Vec<harp_obs::SpanEvent>)> {
    let mut net = HarpNetwork::new(
        tree.clone(),
        config,
        requirements,
        SchedulingPolicy::RateMonotonic,
    );
    net.enable_observability(1024);
    net.run_static().ok()?;
    let report = net.adjust_and_settle(net.now(), link, new_cells).ok()?;
    let sample = AdjustmentSample {
        link,
        layer: tree.layer_of_link(link),
        mgmt_messages: report.mgmt_messages,
        involved_nodes: report.involved_nodes.len(),
        layers_touched: report.layers.len(),
        seconds: report.elapsed_seconds(config),
        slotframes: report.slotframes(config),
    };
    let spans: Vec<harp_obs::SpanEvent> = net.obs().spans.iter().copied().collect();
    Some((sample, spans))
}

/// Folds the process-wide packing and workloads counters into a snapshot —
/// the `obs` section boilerplate every experiment report shares.
pub fn add_library_counters(snap: &mut tsch_sim::MetricsSnapshot) {
    snap.add_counters(packing::obs::totals());
    snap.add_counters(workloads::obs::totals());
}

/// [`add_library_counters`] plus the scheduler counters — for experiments
/// that exercise the pluggable schedulers (Fig. 9, Fig. 12).
pub fn add_all_library_counters(snap: &mut tsch_sim::MetricsSnapshot) {
    add_library_counters(snap);
    snap.add_counters(schedulers::obs::totals());
}

/// Formats a probability as a percentage with two decimals.
#[must_use]
pub fn pct(p: f64) -> String {
    format!("{:6.2}%", p * 100.0)
}

/// One-line stdout footer summarising the process-wide library counters
/// (packing, workloads, schedulers) — appended by the experiment binaries
/// so a CI log shows how much algorithmic work each figure cost.
#[must_use]
pub fn obs_footer() -> String {
    let mut parts = Vec::new();
    for (name, v) in packing::obs::totals()
        .into_iter()
        .chain(workloads::obs::totals())
        .chain(schedulers::obs::totals())
    {
        if v > 0 {
            parts.push(format!("{name}={v}"));
        }
    }
    if parts.is_empty() {
        "# metrics: (none)".to_owned()
    } else {
        format!("# metrics: {}", parts.join(" "))
    }
}

/// Advances a HARP control plane and a data-plane simulator in lockstep for
/// `slots` slots, applying control-plane schedule changes to the simulator
/// the moment they take effect at the nodes.
///
/// `net_offset` maps simulator time to the control plane's clock (the
/// static phase consumed control-plane time before the data plane started).
///
/// # Panics
///
/// Panics if the control plane rejects a message (infeasible adjustment)
/// mid-run — experiments construct feasible scenarios.
pub fn run_lockstep(
    sim: &mut tsch_sim::Simulator,
    net: &mut HarpNetwork,
    net_offset: u64,
    slots: u64,
) {
    for _ in 0..slots {
        sim.step_slot();
        let ops = net
            .step(Asn(sim.now().0 + net_offset))
            .expect("feasible scenario");
        for op in &ops {
            harp_core::apply_op(sim.schedule_mut(), op).expect("collision-free ops");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedulers::{HarpScheduler, RandomScheduler};
    use workloads::TopologyConfig;

    #[test]
    fn mean_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn bench_threads_is_positive() {
        assert!(bench_threads() >= 1);
    }

    #[test]
    fn parallel_collision_sweep_is_identical_to_serial() {
        // The acceptance bar for the parallel layer: fanning a sweep out
        // across threads must not change a single bit of the result.
        let topologies = TopologyConfig::paper_50_node().generate_batch(3, 4);
        let cfg = SlotframeConfig::paper_default();
        let scheduler = RandomScheduler;
        let serial: Vec<f64> = topologies
            .iter()
            .enumerate()
            .map(|(i, tree)| {
                let reqs = workloads::uniform_uplink_requirements(tree, 3);
                scheduler
                    .build_schedule(tree, &reqs, cfg, i as u64)
                    .collision_report(tree, &GlobalInterference)
                    .collision_probability()
            })
            .collect();
        let expected = mean(&serial);
        let got = average_collision_probability(&scheduler, &topologies, 3, cfg);
        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "bit-exact across thread counts"
        );
    }

    #[test]
    fn collision_sweep_orders_harp_below_random() {
        let topologies = TopologyConfig::paper_50_node().generate_batch(7, 5);
        let cfg = SlotframeConfig::paper_default();
        let harp = average_collision_probability(&HarpScheduler::default(), &topologies, 3, cfg);
        let random = average_collision_probability(&RandomScheduler, &topologies, 3, cfg);
        assert_eq!(harp, 0.0);
        assert!(random > 0.0);
    }

    #[test]
    fn adjustment_sample_layer_matches_tree() {
        let tree = workloads::testbed_50_node_tree();
        let reqs = workloads::uniform_link_requirements(&tree, 1);
        let cfg = SlotframeConfig::paper_default();
        let link = Link::up(tsch_sim::NodeId(45)); // a layer-5 leaf
        let sample = measure_harp_adjustment(&tree, &reqs, cfg, link, 2).unwrap();
        assert_eq!(sample.layer, 5);
        assert!(sample.mgmt_messages >= 1 || sample.involved_nodes >= 1);
        assert!(sample.slotframes >= 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.00%");
    }
}
