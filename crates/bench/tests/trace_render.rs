//! Renders the committed trace artefacts through the `harp_trace` views
//! and pins the acceptance properties: every committed report's
//! `trace_sample` parses, every view renders byte-identically across
//! repeated renders (pure functions of the trace), and the Chrome export
//! validates as a JSON array of complete events.

use harp_obs::flame::{chrome_trace, collapsed_stacks, text_flame, utilization_heatmap, TraceDoc};
use harp_obs::json::{parse, Json};

/// Workspace-root files expected to carry a renderable trace.
const TRACE_FILES: [&str; 8] = [
    "BENCH_trace_sample.json",
    "BENCH_simulator.json",
    "BENCH_mgmt_loss.json",
    "BENCH_fig9.json",
    "BENCH_fig10.json",
    "BENCH_fig11a.json",
    "BENCH_fig11b.json",
    "BENCH_table2.json",
];

fn read_root(file: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../")
        .join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {file}: {e}"))
}

#[test]
fn every_committed_trace_renders_deterministically() {
    for file in TRACE_FILES {
        let doc = TraceDoc::parse_str(&read_root(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(!doc.spans.is_empty(), "{file}: empty trace sample");

        // Pure functions of the spans: two renders must agree byte-for-byte.
        for _ in 0..2 {
            assert_eq!(collapsed_stacks(&doc.spans), collapsed_stacks(&doc.spans));
            assert_eq!(
                chrome_trace(&doc.spans, 10_000),
                chrome_trace(&doc.spans, 10_000)
            );
            assert_eq!(text_flame(&doc.spans), text_flame(&doc.spans));
            assert_eq!(
                utilization_heatmap(&doc.spans, 64),
                utilization_heatmap(&doc.spans, 64)
            );
        }

        // The flame header and the collapsed masses agree on the total.
        let total: u64 = doc
            .spans
            .iter()
            .map(harp_obs::flame::TraceSpan::slot_mass)
            .sum();
        let collapsed_total: u64 = collapsed_stacks(&doc.spans)
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(collapsed_total, total, "{file}: fold lost mass");
    }
}

#[test]
fn committed_chrome_exports_are_complete_event_arrays() {
    for file in TRACE_FILES {
        let doc = TraceDoc::parse_str(&read_root(file)).unwrap();
        let chrome = chrome_trace(&doc.spans, 10_000);
        let parsed = parse(&chrome).unwrap_or_else(|e| panic!("{file}: chrome export: {e}"));
        let events = parsed
            .as_arr()
            .unwrap_or_else(|| panic!("{file}: not an array"));
        assert_eq!(events.len(), doc.spans.len(), "{file}: event count");
        let mut last_ts = f64::MIN;
        for e in events {
            assert_eq!(
                e.get("ph").and_then(Json::as_str),
                Some("X"),
                "{file}: incomplete event"
            );
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            assert!(ts >= last_ts, "{file}: events out of ts order");
            last_ts = ts;
            assert!(e.get("dur").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(e.get("pid").and_then(Json::as_f64).unwrap() >= 0.0);
        }
    }
}

#[test]
fn truncation_accounting_survives_the_report_round_trip() {
    // The simulator bench writes its ring with a render limit; the parsed
    // doc must state the truncation rather than silently posing as the
    // whole run.
    let doc = TraceDoc::parse_str(&read_root("BENCH_simulator.json")).unwrap();
    assert_eq!(
        doc.total_recorded,
        doc.spans.len() as u64 + doc.dropped,
        "spans + dropped must account for every recorded span"
    );
    if doc.dropped > 0 {
        assert!(doc.coverage_banner().contains("TRUNCATED"));
    }
}
