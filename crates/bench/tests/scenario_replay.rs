//! Replay determinism: the same scenario file and seed must produce
//! byte-identical output — across repeated runs, across `--threads`
//! settings, and with fault windows active mid-run.
//!
//! Two layers of coverage:
//!
//! * end to end through the `harp_sim` binary (fresh process each run, so
//!   stdout, the report file and the process-wide counter footer are all
//!   compared byte for byte);
//! * in-process through [`run_scenario`], where the `obs` section is
//!   masked out (library counters are process-cumulative by design, so a
//!   second run in the same process legitimately reports larger totals).

use harp_bench::scenario_run::{load_scenario_file, run_scenario, scenario_dir, RunOptions};
use std::path::PathBuf;
use std::process::Command;
use workloads::scenario_dsl::parse_scenario;

/// A fault-heavy replicates scenario: every window is inside the run, so
/// a replay that mishandles fault state cannot accidentally pass.
const FAULTY_REPLICATES: &str = "\
scenario replay_probe
seed 0xBEEF
frames 30

[topology]
generator testbed50

[workloads]
demand echo rate=1

[faults]
crash node=7 at_frame=5 restart_frame=12
pdr_window link=up:9 from_frame=6 frames=8 pdr=0.5
partition subtree=3 at_frame=20 frames=4
burst node=21 at_frame=4 packets=10

[report]
";

/// Drops the `obs` section from a rendered report, keeping metrics, rows
/// and the trace sample intact.
fn without_obs(json: &str) -> String {
    let Some(start) = json.find("\"obs\":") else {
        return json.to_owned();
    };
    let end = json[start..]
        .find("\"trace_sample\"")
        .map_or(json.len(), |i| start + i);
    format!("{}{}", &json[..start], &json[end..])
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../")
}

/// Runs the `harp_sim` binary on `scenario_path` and returns its stdout
/// plus the bytes of the report it wrote.
fn run_harp_sim(
    scenario_path: &std::path::Path,
    seed: u64,
    threads: usize,
    report: &str,
) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_harp_sim"))
        .args([
            "--scenario",
            &scenario_path.display().to_string(),
            "--seed",
            &seed.to_string(),
            "--threads",
            &threads.to_string(),
        ])
        .env("CARGO_MANIFEST_DIR", env!("CARGO_MANIFEST_DIR"))
        .env("HARP_BENCH_THREADS", "3") // pin the env-derived metric
        .output()
        .expect("harp_sim spawns");
    assert!(
        out.status.success(),
        "harp_sim failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let json = std::fs::read_to_string(workspace_root().join(report)).expect("report written");
    (stdout, json)
}

#[test]
fn harp_sim_replays_byte_identically_across_runs_and_threads() {
    let dir = std::env::temp_dir().join("harp_scenario_replay_test");
    std::fs::create_dir_all(&dir).unwrap();
    let scn = dir.join("replay_probe.scn");
    let report = "target/replay_probe.json";
    std::fs::write(
        &scn,
        format!("{FAULTY_REPLICATES}file {report}\nmode replicates repeats=3\n"),
    )
    .unwrap();

    let (stdout_a, json_a) = run_harp_sim(&scn, 5, 1, report);
    let (stdout_b, json_b) = run_harp_sim(&scn, 5, 1, report);
    assert_eq!(stdout_a, stdout_b, "same seed, same threads: same bytes");
    assert_eq!(json_a, json_b);

    let (stdout_c, json_c) = run_harp_sim(&scn, 5, 4, report);
    assert_eq!(stdout_a, stdout_c, "thread count must not leak into output");
    assert_eq!(json_a, json_c);

    // The comparison must have happened under live fault pressure: all
    // nine lowered events (crash 2, pdr_window 2, partition 4, burst 1)
    // fire inside every replicate's 30 frames.
    assert!(json_a.contains("\"fault_events\": 9.000"), "got: {json_a}");
    assert!(json_a.contains("\"faults_fired\": 9.000"), "got: {json_a}");
}

#[test]
fn timeline_replays_byte_identically_under_fault_windows() {
    let scenario = parse_scenario(
        "scenario timeline_replay
seed 0x7E57
frames 12

[workloads]
demand echo rate=1
rate_step node=15 at_frame=6 rate=2

[faults]
crash node=7 at_frame=4 restart_frame=8
pdr_window link=up:15 from_frame=3 frames=5 pdr=0.6

[report]
mode timeline node=15
",
    )
    .unwrap();
    let opts = RunOptions {
        seed: Some(11),
        ..RunOptions::default()
    };
    let a = run_scenario(&scenario, &opts).unwrap();
    let b = run_scenario(&scenario, &opts).unwrap();
    assert_eq!(a.stdout, b.stdout);
    assert_eq!(without_obs(&a.json), without_obs(&b.json));
}

#[test]
fn flight_dump_is_byte_identical_across_runs_and_threads() {
    let scenario = parse_scenario(
        "scenario flight_probe
seed 0xF117
frames 30

[topology]
generator testbed50

[workloads]
demand echo rate=1

[faults]
crash node=7 at_frame=5 restart_frame=12
pdr_window link=up:9 from_frame=6 frames=8 pdr=0.5
burst node=21 at_frame=4 packets=10

[report]
mode replicates repeats=3
",
    )
    .unwrap();
    let run = |threads: usize| {
        run_scenario(
            &scenario,
            &RunOptions {
                seed: Some(9),
                threads: Some(threads),
                ..RunOptions::default()
            },
        )
        .unwrap()
        .flight
        .expect("replicates mode records a flight dump")
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a, b, "same seed, same threads: same flight bytes");
    let c = run(4);
    assert_eq!(a, c, "thread count must not leak into the flight dump");

    // The dump parses and carries the plan's firings on the ASN timebase.
    let doc = harp_obs::FlightDoc::parse_str(&a).expect("flight dump parses");
    assert!(doc.events.iter().any(|e| e.kind == "node_down"), "{a}");
    assert!(doc.events.iter().any(|e| e.kind == "task_burst"), "{a}");
    assert_eq!(
        doc.events.iter().filter(|e| e.kind == "replicate").count(),
        3,
        "{a}"
    );
    assert!(
        doc.events.windows(2).all(|w| w[0].at <= w[1].at),
        "events are time-ordered: {a}"
    );
}

#[test]
fn timeline_flight_dump_records_faults_and_rate_steps() {
    let scenario = parse_scenario(
        "scenario timeline_flight
seed 0x7E57
frames 12

[workloads]
demand echo rate=1
rate_step node=15 at_frame=6 rate=2

[faults]
crash node=7 at_frame=4 restart_frame=8

[report]
mode timeline node=15
",
    )
    .unwrap();
    let opts = RunOptions {
        seed: Some(11),
        ..RunOptions::default()
    };
    let a = run_scenario(&scenario, &opts).unwrap();
    let b = run_scenario(&scenario, &opts).unwrap();
    let flight_a = a.flight.expect("timeline mode records a flight dump");
    assert_eq!(
        flight_a,
        b.flight.unwrap(),
        "flight replays byte-identically"
    );
    let doc = harp_obs::FlightDoc::parse_str(&flight_a).expect("parses");
    assert!(doc
        .events
        .iter()
        .any(|e| e.kind == "node_down" && e.node == 7));
    assert!(doc
        .events
        .iter()
        .any(|e| e.kind == "node_up" && e.node == 7));
    assert!(
        doc.events
            .iter()
            .any(|e| e.kind == "rate_step" && e.node == 15),
        "{flight_a}"
    );
    assert!(
        doc.events.iter().all(|e| e.tenant == "timeline_flight"),
        "every event carries the scenario tag: {flight_a}"
    );
}

#[test]
fn pdr_sweep_is_thread_count_invariant() {
    let scenario = load_scenario_file(&scenario_dir().join("mgmt_loss.scn"))
        .expect("checked-in scenario parses");
    let run = |threads: usize| {
        run_scenario(
            &scenario,
            &RunOptions {
                quick: true,
                threads: Some(threads),
                ..RunOptions::default()
            },
        )
        .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.stdout, four.stdout);
    assert_eq!(without_obs(&one.json), without_obs(&four.json));
}

#[test]
fn seed_override_changes_the_replay() {
    let scenario =
        parse_scenario(&format!("{FAULTY_REPLICATES}mode replicates repeats=2\n")).unwrap();
    let run = |seed: u64| {
        run_scenario(
            &scenario,
            &RunOptions {
                seed: Some(seed),
                threads: Some(2),
                ..RunOptions::default()
            },
        )
        .unwrap()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(
        without_obs(&a.json),
        without_obs(&b.json),
        "the PDR window makes replicate stats seed-dependent"
    );
}
