//! Packing-substrate benchmarks and the packer ablation.
//!
//! DESIGN.md calls out the choice of the best-fit skyline heuristic over
//! simpler shelf packers (FFDH/NFDH). This bench measures both runtime and
//! — via the reported strip heights printed once per size — solution
//! quality on workloads shaped like HARP compositions.

use harp_bench::harness::measure;
use packing::shelf::{pack_strip_ffdh, pack_strip_nfdh};
use packing::{pack_strip, FreeSpace, Rect, Size};
use std::hint::black_box;
use tsch_sim::SplitMix64;

/// Deterministic random components shaped like per-subtree rows and small
/// composites.
fn component_set(n: usize, seed: u64) -> Vec<Size> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let slots = 1 + rng.next_below(12) as u32;
            let channels = 1 + rng.next_below(4) as u32;
            Size::new(channels, slots) // channel-major, as in Alg. 1 pass 1
        })
        .collect()
}

fn bench_strip_packers() {
    for &n in &[8usize, 32, 128] {
        let items = component_set(n, 7);
        // Print the quality comparison once per size (ablation data).
        let sky = pack_strip(&items, 16).unwrap().height();
        let ffdh = pack_strip_ffdh(&items, 16).unwrap().height();
        let nfdh = pack_strip_nfdh(&items, 16).unwrap().height();
        println!("# ablation n={n}: heights skyline={sky} ffdh={ffdh} nfdh={nfdh}");

        let m = measure(&format!("strip_packing/skyline/{n}"), || {
            pack_strip(black_box(&items), 16).unwrap()
        });
        println!("{}", m.report());
        let m = measure(&format!("strip_packing/ffdh/{n}"), || {
            pack_strip_ffdh(black_box(&items), 16).unwrap()
        });
        println!("{}", m.report());
        let m = measure(&format!("strip_packing/nfdh/{n}"), || {
            pack_strip_nfdh(black_box(&items), 16).unwrap()
        });
        println!("{}", m.report());
    }
}

fn bench_freespace() {
    let m = measure("freespace/occupy_then_place_40", || {
        let mut fs = FreeSpace::new(Size::new(199, 16));
        let mut rng = SplitMix64::new(3);
        for _ in 0..40 {
            let x = rng.next_below(180) as u32;
            let y = rng.next_below(14) as u32;
            fs.occupy(Rect::from_xywh(x, y, 1 + rng.next_below(8) as u32, 1));
        }
        black_box(fs.place(Size::new(6, 1)))
    });
    println!("{}", m.report());
}

fn main() {
    bench_strip_packers();
    bench_freespace();
}
