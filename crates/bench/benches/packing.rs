//! Packing-substrate benchmarks and the packer ablation.
//!
//! DESIGN.md calls out the choice of the best-fit skyline heuristic over
//! simpler shelf packers (FFDH/NFDH). This bench measures both runtime and
//! — via the reported strip heights printed once at startup — solution
//! quality on workloads shaped like HARP compositions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packing::shelf::{pack_strip_ffdh, pack_strip_nfdh};
use packing::{pack_strip, FreeSpace, Rect, Size};
use std::hint::black_box;
use tsch_sim::SplitMix64;

/// Deterministic random components shaped like per-subtree rows and small
/// composites.
fn component_set(n: usize, seed: u64) -> Vec<Size> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let slots = 1 + rng.next_below(12) as u32;
            let channels = 1 + rng.next_below(4) as u32;
            Size::new(channels, slots) // channel-major, as in Alg. 1 pass 1
        })
        .collect()
}

fn bench_strip_packers(c: &mut Criterion) {
    let mut group = c.benchmark_group("strip_packing");
    for &n in &[8usize, 32, 128] {
        let items = component_set(n, 7);
        // Print the quality comparison once per size (ablation data).
        let sky = pack_strip(&items, 16).unwrap().height();
        let ffdh = pack_strip_ffdh(&items, 16).unwrap().height();
        let nfdh = pack_strip_nfdh(&items, 16).unwrap().height();
        println!("# ablation n={n}: heights skyline={sky} ffdh={ffdh} nfdh={nfdh}");

        group.bench_with_input(BenchmarkId::new("skyline", n), &items, |b, items| {
            b.iter(|| pack_strip(black_box(items), 16).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ffdh", n), &items, |b, items| {
            b.iter(|| pack_strip_ffdh(black_box(items), 16).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nfdh", n), &items, |b, items| {
            b.iter(|| pack_strip_nfdh(black_box(items), 16).unwrap())
        });
    }
    group.finish();
}

fn bench_freespace(c: &mut Criterion) {
    let mut group = c.benchmark_group("freespace");
    group.bench_function("occupy_then_place_40", |b| {
        b.iter(|| {
            let mut fs = FreeSpace::new(Size::new(199, 16));
            let mut rng = SplitMix64::new(3);
            for _ in 0..40 {
                let x = rng.next_below(180) as u32;
                let y = rng.next_below(14) as u32;
                fs.occupy(Rect::from_xywh(x, y, 1 + rng.next_below(8) as u32, 1));
            }
            black_box(fs.place(Size::new(6, 1)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strip_packers, bench_freespace);
criterion_main!(benches);
