//! Throughput benchmarks of the TSCH simulator and the distributed
//! protocol runner — the substrate costs behind every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_core::{HarpNetwork, SchedulingPolicy};
use std::hint::black_box;
use tsch_sim::{Rate, SimulatorBuilder, SlotframeConfig};

fn bench_data_plane(c: &mut Criterion) {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let rate = Rate::per_slotframe(1);
    let reqs = workloads::aggregated_echo_requirements(&tree, rate);
    let mut net = HarpNetwork::new(
        tree.clone(),
        config,
        &reqs,
        SchedulingPolicy::RateMonotonic,
    );
    net.run_static().unwrap();
    let schedule = net.schedule().clone();

    c.bench_function("sim_slotframe_50_nodes", |b| {
        b.iter_batched(
            || {
                let mut builder =
                    SimulatorBuilder::new(tree.clone(), config).schedule(schedule.clone());
                for task in workloads::echo_task_per_node(&tree, rate) {
                    builder = builder.task(task).unwrap();
                }
                builder.build()
            },
            |mut sim| {
                sim.run_slotframes(5);
                black_box(sim.stats().deliveries.len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_control_plane(c: &mut Criterion) {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let reqs = workloads::uniform_link_requirements(&tree, 1);

    c.bench_function("harp_static_phase_50_nodes", |b| {
        b.iter(|| {
            let mut net = HarpNetwork::new(
                tree.clone(),
                config,
                black_box(&reqs),
                SchedulingPolicy::RateMonotonic,
            );
            net.run_static().unwrap();
            black_box(net.schedule().assignment_count())
        })
    });

    c.bench_function("harp_adjustment_leaf", |b| {
        b.iter_batched(
            || {
                let mut net = HarpNetwork::new(
                    tree.clone(),
                    config,
                    &reqs,
                    SchedulingPolicy::RateMonotonic,
                );
                net.run_static().unwrap();
                net
            },
            |mut net| {
                let link = tsch_sim::Link::up(tsch_sim::NodeId(45));
                net.adjust_and_settle(net.now(), link, 2).unwrap();
                black_box(net.schedule().assignment_count())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_data_plane, bench_control_plane);
criterion_main!(benches);
