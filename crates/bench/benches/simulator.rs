//! Throughput benchmarks of the TSCH simulator and the distributed
//! protocol runner — the substrate costs behind every experiment.
//!
//! The headline comparison pits the dense-index fast path
//! (`tsch_sim::Simulator`) against the map-based engine it replaced
//! (`tsch_sim::reference::ReferenceSimulator`) on a 100-node network with
//! the paper's 199-slot, 16-channel slotframe, and writes the results —
//! including the measured speedup and the dense engine's slots/sec — to
//! `BENCH_simulator.json` in the working directory.

use harp_bench::harness::{measure, measure_with_setup, to_json_with_sections, Measurement};
use harp_core::{HarpNetwork, SchedulingPolicy};
use schedulers::{HarpScheduler, Scheduler};
use std::hint::black_box;
use tsch_sim::reference::ReferenceSimulator;
use tsch_sim::{NetworkSchedule, Rate, Simulator, SimulatorBuilder, SlotframeConfig, Task, Tree};
use workloads::TopologyConfig;

/// The dense-vs-reference scenario: 100 nodes, paper slotframe, a HARP
/// (collision-free) schedule, and an echo task on every node.
fn scenario_100_nodes() -> (Tree, SlotframeConfig, NetworkSchedule, Vec<Task>) {
    let tree = TopologyConfig {
        nodes: 100,
        layers: 6,
        max_children: 8,
    }
    .generate(42);
    let config = SlotframeConfig::paper_default();
    let reqs = workloads::uniform_link_requirements(&tree, 1);
    let schedule = HarpScheduler::default().build_schedule(&tree, &reqs, config, 0);
    let tasks = workloads::echo_task_per_node(&tree, Rate::per_slotframe(1));
    (tree, config, schedule, tasks)
}

fn build_dense(
    tree: &Tree,
    config: SlotframeConfig,
    schedule: &NetworkSchedule,
    tasks: &[Task],
) -> Simulator {
    let mut builder = SimulatorBuilder::new(tree.clone(), config).schedule(schedule.clone());
    for task in tasks {
        builder = builder.task(task.clone()).unwrap();
    }
    builder.build()
}

/// Headline numbers plus the observability artefacts of the sustained run.
struct DenseOutcome {
    speedup: f64,
    slots_per_sec: f64,
    /// Rendered metrics snapshot of the instrumented sustained run.
    obs_json: String,
    /// Rendered sample of the most recent slotframe spans.
    trace_json: String,
}

fn bench_dense_vs_reference(results: &mut Vec<Measurement>) -> DenseOutcome {
    let (tree, config, schedule, tasks) = scenario_100_nodes();
    let frames_per_iter = 10u64;

    let dense = measure_with_setup(
        "dense_sim_10_slotframes_100_nodes",
        || build_dense(&tree, config, &schedule, &tasks),
        |mut sim| {
            sim.run_slotframes(frames_per_iter);
            black_box(sim.stats().deliveries.len())
        },
    );
    let reference = measure_with_setup(
        "reference_sim_10_slotframes_100_nodes",
        || {
            ReferenceSimulator::new(
                tree.clone(),
                config,
                schedule.clone(),
                tsch_sim::LinkQuality::perfect(),
                1,
                &tasks,
            )
        },
        |mut sim| {
            sim.run_slotframes(frames_per_iter);
            black_box(sim.stats().deliveries.len())
        },
    );
    let speedup = reference.mean_ns() / dense.mean_ns();

    // Sustained dense throughput on a longer run, via the engine's own
    // timing (stats.run_time covers run_slotframes only). This run has
    // observability ON — the reported slots/sec is the *instrumented*
    // throughput, which the acceptance budget requires to stay within
    // noise of the uninstrumented engine.
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(schedule.clone())
        .observability(1024);
    for task in &tasks {
        builder = builder.task(task.clone()).unwrap();
    }
    let mut sim = builder.build();
    sim.run_slotframes(200);
    let slots_per_sec = sim.stats().slots_per_sec();
    let obs_json = sim.metrics_snapshot().to_json();
    let trace_json = sim.obs().spans.to_json(16);

    println!("{}", dense.report());
    println!("{}", reference.report());
    println!("# dense vs reference: {speedup:.2}x speedup, {slots_per_sec:.0} slots/sec dense");
    results.push(dense);
    results.push(reference);
    DenseOutcome {
        speedup,
        slots_per_sec,
        obs_json,
        trace_json,
    }
}

fn bench_data_plane(results: &mut Vec<Measurement>) {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let rate = Rate::per_slotframe(1);
    let reqs = workloads::aggregated_echo_requirements(&tree, rate);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();
    let schedule = net.schedule().clone();
    let tasks = workloads::echo_task_per_node(&tree, rate);

    let m = measure_with_setup(
        "sim_slotframe_50_nodes",
        || build_dense(&tree, config, &schedule, &tasks),
        |mut sim| {
            sim.run_slotframes(5);
            black_box(sim.stats().deliveries.len())
        },
    );
    println!("{}", m.report());
    results.push(m);
}

fn bench_control_plane(results: &mut Vec<Measurement>) {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let reqs = workloads::uniform_link_requirements(&tree, 1);

    let converged = || {
        let mut net =
            HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
        net.run_static().unwrap();
        net
    };

    let static_phase = measure("harp_static_phase_50_nodes", || {
        let net = converged();
        black_box(net.schedule().assignment_count())
    });
    println!("{}", static_phase.report());
    results.push(static_phase);

    let adjustment = measure_with_setup("harp_adjustment_leaf", converged, |mut net| {
        let link = tsch_sim::Link::up(tsch_sim::NodeId(45));
        net.adjust_and_settle(net.now(), link, 2).unwrap();
        black_box(net.schedule().assignment_count())
    });
    println!("{}", adjustment.report());
    results.push(adjustment);
}

fn main() {
    let mut results = Vec::new();
    let outcome = bench_dense_vs_reference(&mut results);
    bench_data_plane(&mut results);
    bench_control_plane(&mut results);

    let json = to_json_with_sections(
        &results,
        &[
            ("dense_speedup_vs_reference", outcome.speedup),
            ("dense_slots_per_sec", outcome.slots_per_sec),
        ],
        &[
            ("obs", outcome.obs_json.clone()),
            ("trace_sample", outcome.trace_json.clone()),
        ],
    );
    // Write to the workspace root (two levels above this crate) so the
    // report lands at a stable path regardless of cargo's bench CWD.
    let path = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../../BENCH_simulator.json"),
        Err(_) => std::path::PathBuf::from("BENCH_simulator.json"),
    };
    std::fs::write(&path, &json).expect("write benchmark report");
    println!("# wrote {}", path.display());

    // Standalone trace sample (CI uploads it as an artifact; not committed).
    let trace_path = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../../BENCH_trace_sample.json"),
        Err(_) => std::path::PathBuf::from("BENCH_trace_sample.json"),
    };
    std::fs::write(&trace_path, format!("{}\n", outcome.trace_json)).expect("write trace sample");
    println!("# wrote {}", trace_path.display());
}
