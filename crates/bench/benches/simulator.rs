//! Throughput benchmarks of the TSCH simulator and the distributed
//! protocol runner — the substrate costs behind every experiment.
//!
//! The headline comparison pits the dense-index fast path
//! (`tsch_sim::Simulator`) against the map-based engine it replaced
//! (`tsch_sim::reference::ReferenceSimulator`) on a 100-node network with
//! the paper's 199-slot, 16-channel slotframe, and writes the results —
//! including the measured speedup and the dense engine's slots/sec — to
//! `BENCH_simulator.json` in the working directory.

use harp_bench::harness::{measure, measure_with_setup, to_json_with_sections, Measurement};
use harp_core::{HarpNetwork, SchedulingPolicy};
use packing::{exact_strip_height, pack_strip, FreeSpace, Size};
use schedulers::{HarpScheduler, Scheduler};
use std::hint::black_box;
use tsch_sim::reference::ReferenceSimulator;
use tsch_sim::{
    NetworkSchedule, Rate, Simulator, SimulatorBuilder, SlotframeConfig, SplitMix64, Task, Tree,
};
use workloads::TopologyConfig;

/// The dense-vs-reference scenario: 100 nodes, paper slotframe, a HARP
/// (collision-free) schedule, and an echo task on every node.
fn scenario_100_nodes() -> (Tree, SlotframeConfig, NetworkSchedule, Vec<Task>) {
    let tree = TopologyConfig {
        nodes: 100,
        layers: 6,
        max_children: 8,
    }
    .generate(42);
    let config = SlotframeConfig::paper_default();
    let reqs = workloads::uniform_link_requirements(&tree, 1);
    let schedule = HarpScheduler::default().build_schedule(&tree, &reqs, config, 0);
    let tasks = workloads::echo_task_per_node(&tree, Rate::per_slotframe(1));
    (tree, config, schedule, tasks)
}

fn build_dense(
    tree: &Tree,
    config: SlotframeConfig,
    schedule: &NetworkSchedule,
    tasks: &[Task],
) -> Simulator {
    let mut builder = SimulatorBuilder::new(tree.clone(), config).schedule(schedule.clone());
    for task in tasks {
        builder = builder.task(task.clone()).unwrap();
    }
    builder.build()
}

/// Headline numbers plus the observability artefacts of the sustained run.
struct DenseOutcome {
    speedup: f64,
    slots_per_sec: f64,
    /// Rendered metrics snapshot of the instrumented sustained run.
    obs_json: String,
    /// Rendered sample of the most recent slotframe spans.
    trace_json: String,
}

fn bench_dense_vs_reference(results: &mut Vec<Measurement>) -> DenseOutcome {
    let (tree, config, schedule, tasks) = scenario_100_nodes();
    let frames_per_iter = 10u64;

    let dense = measure_with_setup(
        "dense_sim_10_slotframes_100_nodes",
        || build_dense(&tree, config, &schedule, &tasks),
        |mut sim| {
            sim.run_slotframes(frames_per_iter);
            black_box(sim.stats().deliveries.len())
        },
    );
    let reference = measure_with_setup(
        "reference_sim_10_slotframes_100_nodes",
        || {
            ReferenceSimulator::new(
                tree.clone(),
                config,
                schedule.clone(),
                tsch_sim::LinkQuality::perfect(),
                1,
                &tasks,
            )
        },
        |mut sim| {
            sim.run_slotframes(frames_per_iter);
            black_box(sim.stats().deliveries.len())
        },
    );
    let speedup = reference.mean_ns() / dense.mean_ns();

    // Sustained dense throughput on a longer run, via the engine's own
    // timing (stats.run_time covers run_slotframes only). This run has
    // observability ON — the reported slots/sec is the *instrumented*
    // throughput, which the acceptance budget requires to stay within
    // noise of the uninstrumented engine.
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(schedule.clone())
        .observability(1024);
    for task in &tasks {
        builder = builder.task(task.clone()).unwrap();
    }
    let mut sim = builder.build();
    sim.run_slotframes(200);
    let slots_per_sec = sim.stats().slots_per_sec();
    let obs_json = sim.metrics_snapshot().to_json();
    let trace_json = sim.obs().spans.to_json(16);

    println!("{}", dense.report());
    println!("{}", reference.report());
    println!("# dense vs reference: {speedup:.2}x speedup, {slots_per_sec:.0} slots/sec dense");
    results.push(dense);
    results.push(reference);
    DenseOutcome {
        speedup,
        slots_per_sec,
        obs_json,
        trace_json,
    }
}

fn bench_data_plane(results: &mut Vec<Measurement>) {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let rate = Rate::per_slotframe(1);
    let reqs = workloads::aggregated_echo_requirements(&tree, rate);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();
    let schedule = net.schedule().clone();
    let tasks = workloads::echo_task_per_node(&tree, rate);

    let m = measure_with_setup(
        "sim_slotframe_50_nodes",
        || build_dense(&tree, config, &schedule, &tasks),
        |mut sim| {
            sim.run_slotframes(5);
            black_box(sim.stats().deliveries.len())
        },
    );
    println!("{}", m.report());
    results.push(m);
}

fn bench_control_plane(results: &mut Vec<Measurement>) {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let reqs = workloads::uniform_link_requirements(&tree, 1);

    let converged = || {
        let mut net =
            HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
        net.run_static().unwrap();
        net
    };

    let static_phase = measure("harp_static_phase_50_nodes", || {
        let net = converged();
        black_box(net.schedule().assignment_count())
    });
    println!("{}", static_phase.report());
    results.push(static_phase);

    let adjustment = measure_with_setup("harp_adjustment_leaf", converged, |mut net| {
        let link = tsch_sim::Link::up(tsch_sim::NodeId(45));
        net.adjust_and_settle(net.now(), link, 2).unwrap();
        black_box(net.schedule().assignment_count())
    });
    println!("{}", adjustment.report());
    results.push(adjustment);
}

/// Strip width for the packing-quality instances (all item sides fit).
const QUALITY_WIDTH: u32 = 12;

/// Node budget for the exact search — ≤8-rect instances finish well
/// inside it, so every baseline below is a proven optimum.
const QUALITY_BUDGET: u64 = 5_000_000;

/// Seeded ≤8-rect instances for the heuristic-vs-exact comparison.
fn quality_instances() -> Vec<Vec<Size>> {
    let mut rng = SplitMix64::new(0x9AC4_71FA);
    (0..24)
        .map(|_| {
            let n = 5 + rng.next_below(4) as usize;
            (0..n)
                .map(|_| Size::new(1 + rng.next_below(6) as u32, 1 + rng.next_below(6) as u32))
                .collect()
        })
        .collect()
}

/// Minimal strip height at which greedy MaxRects places every item:
/// scans up from the area/tallest-item lower bound. Any height it
/// succeeds at is a feasible packing, so the ratio to the exact optimum
/// is a true quality factor (≥ 1).
fn maxrects_strip_height(items: &[Size], width: u32) -> u32 {
    let area: u64 = items.iter().map(|s| s.area()).sum();
    let tallest = items.iter().map(|s| s.h).max().unwrap_or(0);
    let total_h: u32 = items.iter().map(|s| s.h).sum();
    let lower = u32::try_from(area.div_ceil(u64::from(width))).expect("small instance");
    let mut h = lower.max(tallest);
    while h <= total_h {
        if FreeSpace::new(Size::new(width, h))
            .place_all(items)
            .is_some()
        {
            return h;
        }
        h += 1;
    }
    unreachable!("stacking all items vertically always fits")
}

/// Heuristic-vs-exact packing quality on seeded small instances — the
/// ROADMAP "packing exactness" metric. All values are deterministic
/// (seeded instances, proven optima), so the gate holds them to count
/// tolerance.
fn packing_quality_metrics() -> Vec<(&'static str, f64)> {
    let instances = quality_instances();
    let mut skyline_factors = Vec::with_capacity(instances.len());
    let mut maxrects_factors = Vec::with_capacity(instances.len());
    for items in &instances {
        let exact = exact_strip_height(items, QUALITY_WIDTH, QUALITY_BUDGET).unwrap();
        assert!(exact.is_optimal(), "budget too small for {items:?}");
        let optimal = f64::from(exact.height());
        let skyline = f64::from(pack_strip(items, QUALITY_WIDTH).unwrap().height());
        let maxrects = f64::from(maxrects_strip_height(items, QUALITY_WIDTH));
        skyline_factors.push(skyline / optimal);
        maxrects_factors.push(maxrects / optimal);
    }
    let worst = |v: &[f64]| v.iter().copied().fold(1.0f64, f64::max);
    vec![
        ("skyline_quality_mean", harp_bench::mean(&skyline_factors)),
        ("skyline_quality_worst", worst(&skyline_factors)),
        ("maxrects_quality_mean", harp_bench::mean(&maxrects_factors)),
        ("maxrects_quality_worst", worst(&maxrects_factors)),
    ]
}

fn main() {
    let mut results = Vec::new();
    let outcome = bench_dense_vs_reference(&mut results);
    bench_data_plane(&mut results);
    bench_control_plane(&mut results);
    let quality = packing_quality_metrics();
    for (name, value) in &quality {
        println!("# {name}: {value:.3}");
    }

    let mut metrics = vec![
        ("dense_speedup_vs_reference", outcome.speedup),
        ("dense_slots_per_sec", outcome.slots_per_sec),
        ("bench_threads", tsch_sim::bench_threads() as f64),
    ];
    metrics.extend(quality);

    let json = to_json_with_sections(
        &results,
        &metrics,
        &[
            ("obs", outcome.obs_json.clone()),
            ("trace_sample", outcome.trace_json.clone()),
        ],
    );
    // Write to the workspace root (two levels above this crate) so the
    // report lands at a stable path regardless of cargo's bench CWD.
    let path = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../../BENCH_simulator.json"),
        Err(_) => std::path::PathBuf::from("BENCH_simulator.json"),
    };
    std::fs::write(&path, &json).expect("write benchmark report");
    println!("# wrote {}", path.display());

    // Standalone trace sample (CI uploads it as an artifact; not committed).
    let trace_path = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../../BENCH_trace_sample.json"),
        Err(_) => std::path::PathBuf::from("BENCH_trace_sample.json"),
    };
    std::fs::write(&trace_path, format!("{}\n", outcome.trace_json)).expect("write trace sample");
    println!("# wrote {}", trace_path.display());
}
