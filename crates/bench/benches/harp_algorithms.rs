//! Benchmarks of HARP's algorithms plus the design-choice ablations of
//! DESIGN.md: the two-pass SPP mapping of Alg. 1 (vs stopping after pass 1)
//! and the neighbour-first adjustment of Alg. 2 (vs an immediate full
//! repack).

use harp_bench::harness::measure;
use harp_core::{
    adjust_partition, allocate_partitions, build_interfaces, compose_components, generate_schedule,
    Requirements, ResourceComponent, SchedulingPolicy,
};
use packing::{pack_into, pack_strip, Rect, Size};
use std::hint::black_box;
use tsch_sim::{Direction, SlotframeConfig, SplitMix64, Tree};
use workloads::TopologyConfig;

fn random_components(n: usize, seed: u64) -> Vec<(tsch_sim::NodeId, ResourceComponent)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            (
                tsch_sim::NodeId(i as u32),
                ResourceComponent::new(1 + rng.next_below(10) as u32, 1 + rng.next_below(3) as u32),
            )
        })
        .collect()
}

fn bench_compose() {
    for &n in &[4usize, 16, 64] {
        let comps = random_components(n, 11);
        // Ablation: channel extent with and without the second SPP pass.
        let two_pass = compose_components(&comps, 16, 1).unwrap().composite();
        let one_pass = {
            let items: Vec<Size> = comps
                .iter()
                .map(|(_, c)| c.as_size_channel_major())
                .collect();
            let p = pack_strip(&items, 16).unwrap();
            let channels = p.placements().iter().map(Rect::right).max().unwrap_or(0);
            ResourceComponent::new(p.height(), channels)
        };
        println!(
            "# ablation n={n}: two-pass {two_pass} vs one-pass {one_pass} (channels saved: {})",
            one_pass.channels.saturating_sub(two_pass.channels)
        );
        let m = measure(&format!("compose/alg1_two_pass/{n}"), || {
            compose_components(black_box(&comps), 16, 1).unwrap()
        });
        println!("{}", m.report());
    }
}

fn testbed_inputs() -> (Tree, Requirements, SlotframeConfig) {
    let tree = workloads::testbed_50_node_tree();
    let reqs = workloads::aggregated_echo_requirements(&tree, tsch_sim::Rate::per_slotframe(1));
    (tree, reqs, SlotframeConfig::paper_default())
}

fn bench_static_pipeline() {
    let (tree50, reqs50, config) = testbed_inputs();
    let tree81 = TopologyConfig::paper_81_node().generate(1);
    let reqs81 = workloads::uniform_link_requirements(&tree81, 1);

    for (name, tree, reqs) in [
        ("testbed_50", &tree50, &reqs50),
        ("deep_81", &tree81, &reqs81),
    ] {
        let m = measure(&format!("static_pipeline/interfaces/{name}"), || {
            build_interfaces(black_box(tree), black_box(reqs), Direction::Up, 16).unwrap()
        });
        println!("{}", m.report());
        let m = measure(&format!("static_pipeline/full_schedule/{name}"), || {
            let up = build_interfaces(tree, reqs, Direction::Up, config.channels).unwrap();
            let down = build_interfaces(tree, reqs, Direction::Down, config.channels).unwrap();
            let table = allocate_partitions(tree, &up, &down, config).unwrap();
            generate_schedule(tree, reqs, &table, SchedulingPolicy::RateMonotonic).unwrap()
        });
        println!("{}", m.report());
    }
}

fn bench_adjustment() {
    // A partly fragmented parent partition with 12 sibling rows.
    let parent = Rect::from_xywh(0, 0, 60, 4);
    let mut children = Vec::new();
    let mut x = 0;
    for i in 0..12u32 {
        let w = 3 + (i % 3);
        children.push((tsch_sim::NodeId(i), Rect::from_xywh(x, i % 3, w, 1)));
        x += w + 1;
    }
    let grown = ResourceComponent::row(9);

    // Ablation data: moved-partition counts, Alg. 2 vs immediate repack.
    let alg2_moved = adjust_partition(parent, &children, tsch_sim::NodeId(0), grown)
        .unwrap()
        .map(|o| o.moved_count())
        .unwrap_or(usize::MAX);
    let repack_moved = {
        let sizes: Vec<Size> = children
            .iter()
            .map(|&(n, r)| {
                if n == tsch_sim::NodeId(0) {
                    grown.as_size()
                } else {
                    r.size
                }
            })
            .collect();
        match pack_into(&sizes, parent.size).unwrap() {
            Some(placements) => placements
                .iter()
                .zip(&children)
                .filter(|(new, (_, old))| **new != *old)
                .count(),
            None => usize::MAX,
        }
    };
    println!("# ablation: Alg.2 moves {alg2_moved} partitions, full repack moves {repack_moved}");

    let m = measure("adjustment/alg2_neighbour_first", || {
        adjust_partition(
            black_box(parent),
            black_box(&children),
            tsch_sim::NodeId(0),
            grown,
        )
        .unwrap()
    });
    println!("{}", m.report());
    let m = measure("adjustment/full_repack", || {
        let sizes: Vec<Size> = children
            .iter()
            .map(|&(n, r)| {
                if n == tsch_sim::NodeId(0) {
                    grown.as_size()
                } else {
                    r.size
                }
            })
            .collect();
        pack_into(black_box(&sizes), parent.size).unwrap()
    });
    println!("{}", m.report());
}

fn main() {
    bench_compose();
    bench_static_pipeline();
    bench_adjustment();
}
