//! Slotframe-time trace spans.
//!
//! A span is an interval of simulated time — stamped with its start and end
//! ASN — labelled with the subsystem ("layer") that produced it, the node it
//! concerns (or [`NO_NODE`] for network-wide events), the node's tree depth
//! (the HARP layer the event folds into) and a free-form integer detail
//! (messages exchanged, cells moved, transmissions attempted).
//! Spans land in a bounded ring so steady-state recording never allocates
//! unboundedly; experiments keep the tail that explains *why* the run ended
//! the way it did.

use core::fmt;
use std::collections::VecDeque;

/// Sentinel node id for network-wide spans.
pub const NO_NODE: u32 = u32::MAX;

/// Correlation id meaning "not caused by any tracked request".
pub const NO_CORRELATION: u64 = 0;

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// What happened (e.g. `"slotframe"`, `"adjust"`, `"retx"`).
    pub name: &'static str,
    /// Which subsystem recorded it (e.g. `"sim"`, `"transport"`, `"harp"`).
    pub layer: &'static str,
    /// The node concerned, or [`NO_NODE`].
    pub node: u32,
    /// Tree depth of the node concerned (the HARP layer the event belongs
    /// to); 0 for network-wide events and the gateway.
    pub depth: u32,
    /// First ASN of the interval.
    pub start_asn: u64,
    /// Last ASN of the interval (inclusive; equal to `start_asn` for
    /// instantaneous events).
    pub end_asn: u64,
    /// Free-form magnitude (messages, cells, attempts, ...).
    pub detail: i64,
    /// Correlation id stitching this span to the request that caused it
    /// ([`NO_CORRELATION`] when recorded outside any request scope).
    pub corr: u64,
}

impl SpanEvent {
    /// The span's length in slots.
    #[must_use]
    pub fn duration_slots(&self) -> u64 {
        self.end_asn.saturating_sub(self.start_asn)
    }

    /// The span's *mass* in slots: the number of slots the inclusive
    /// interval covers (`end - start + 1`). Flame folding aggregates mass,
    /// so instantaneous events still weigh one slot.
    #[must_use]
    pub fn slot_mass(&self) -> u64 {
        self.end_asn.saturating_sub(self.start_asn) + 1
    }

    /// Renders this span as one JSON object (the element shape of
    /// [`SpanRing::to_json`]). The `corr` field is emitted only when the
    /// span belongs to a request scope, so traces recorded outside any
    /// request (every batch experiment) keep their exact byte shape.
    #[must_use]
    pub fn to_json(&self) -> String {
        let corr = if self.corr == NO_CORRELATION {
            String::new()
        } else {
            format!(", \"corr\": {}", self.corr)
        };
        format!(
            "{{\"name\": \"{}\", \"layer\": \"{}\", \"node\": {}, \"depth\": {}, \"start_asn\": {}, \"end_asn\": {}, \"detail\": {}{corr}}}",
            self.name,
            self.layer,
            if self.node == NO_NODE { -1 } else { i64::from(self.node) },
            self.depth,
            self.start_asn,
            self.end_asn,
            self.detail,
        )
    }
}

impl fmt::Display for SpanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}] {}/{}",
            self.start_asn, self.end_asn, self.layer, self.name
        )?;
        if self.node != NO_NODE {
            write!(f, " N{}@L{}", self.node, self.depth)?;
        }
        write!(f, " detail={}", self.detail)?;
        if self.corr != NO_CORRELATION {
            write!(f, " corr={}", self.corr)?;
        }
        Ok(())
    }
}

/// Renders a batch of spans as a self-describing JSON object:
/// `{"total_recorded": T, "dropped": D, "spans": [...]}`, where `dropped`
/// counts spans recorded but *not* present in the array (evicted by a ring
/// bound or cut by a render limit) — so a truncated trace can never be
/// mistaken for a complete one.
#[must_use]
pub fn spans_to_json<'a, I>(events: I, total_recorded: u64) -> String
where
    I: IntoIterator<Item = &'a SpanEvent>,
{
    let mut body = String::new();
    let mut rendered = 0u64;
    for e in events {
        if rendered > 0 {
            body.push_str(", ");
        }
        body.push_str(&e.to_json());
        rendered += 1;
    }
    let dropped = total_recorded.saturating_sub(rendered);
    format!("{{\"total_recorded\": {total_recorded}, \"dropped\": {dropped}, \"spans\": [{body}]}}")
}

/// A bounded ring buffer of spans (capacity 0 disables recording).
#[derive(Debug, Clone, Default)]
pub struct SpanRing {
    events: VecDeque<SpanEvent>,
    capacity: usize,
    total_recorded: u64,
}

impl SpanRing {
    /// A ring keeping the most recent `capacity` spans.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_recorded: 0,
        }
    }

    /// Records one span, evicting the oldest when full.
    #[inline]
    pub fn record(&mut self, event: SpanEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.total_recorded += 1;
    }

    /// The retained spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter()
    }

    /// Retained spans from one subsystem.
    pub fn for_layer(&self, layer: &'static str) -> impl Iterator<Item = &SpanEvent> + '_ {
        self.events.iter().filter(move |e| e.layer == layer)
    }

    /// Retained spans with one name.
    pub fn named(&self, name: &'static str) -> impl Iterator<Item = &SpanEvent> + '_ {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Number of retained spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total spans ever recorded (including evicted ones).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Clears the retained spans (the total keeps counting).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders up to `limit` of the most recent spans as a JSON object
    /// `{"total_recorded", "dropped", "spans"}` — `dropped` states how many
    /// recorded spans the output does *not* contain (ring evictions plus
    /// the render limit), so consumers can tell a truncated trace from a
    /// complete one.
    #[must_use]
    pub fn to_json(&self, limit: usize) -> String {
        let skip = self.events.len().saturating_sub(limit);
        spans_to_json(self.events.iter().skip(skip), self.total_recorded)
    }
}

/// Merges the retained spans of several rings into one JSON trace document
/// (same shape as [`SpanRing::to_json`]), ordered by `(start_asn, end_asn,
/// layer, name, node)` so the merge is deterministic regardless of ring
/// order. The union's `total_recorded` is the sum over the rings, so the
/// `dropped` count carries across the merge.
#[must_use]
pub fn merged_trace_json(rings: &[&SpanRing], limit: usize) -> String {
    let mut all: Vec<&SpanEvent> = rings.iter().flat_map(|r| r.iter()).collect();
    all.sort_by_key(|e| (e.start_asn, e.end_asn, e.layer, e.name, e.node));
    let skip = all.len().saturating_sub(limit);
    let total: u64 = rings.iter().map(|r| r.total_recorded()).sum();
    spans_to_json(all.into_iter().skip(skip), total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, layer: &'static str, start: u64) -> SpanEvent {
        SpanEvent {
            name,
            layer,
            node: 2,
            depth: 3,
            start_asn: start,
            end_asn: start + 5,
            detail: 7,
            corr: NO_CORRELATION,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = SpanRing::new(2);
        for i in 0..4 {
            r.record(ev("a", "sim", i));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_recorded(), 4);
        let starts: Vec<u64> = r.iter().map(|e| e.start_asn).collect();
        assert_eq!(starts, vec![2, 3]);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut r = SpanRing::new(0);
        r.record(ev("a", "sim", 0));
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 0);
    }

    #[test]
    fn filters_by_layer_and_name() {
        let mut r = SpanRing::new(8);
        r.record(ev("a", "sim", 0));
        r.record(ev("b", "transport", 1));
        r.record(ev("a", "harp", 2));
        assert_eq!(r.for_layer("sim").count(), 1);
        assert_eq!(r.named("a").count(), 2);
    }

    #[test]
    fn display_duration_and_mass() {
        let e = ev("adjust", "harp", 100);
        assert_eq!(e.duration_slots(), 5);
        assert_eq!(e.slot_mass(), 6);
        assert_eq!(e.to_string(), "[100..105] harp/adjust N2@L3 detail=7");
        let net = SpanEvent { node: NO_NODE, ..e };
        assert_eq!(net.to_string(), "[100..105] harp/adjust detail=7");
        let point = SpanEvent { end_asn: 100, ..e };
        assert_eq!(point.slot_mass(), 1);
    }

    #[test]
    fn json_keeps_most_recent_limit_and_counts_dropped() {
        let mut r = SpanRing::new(8);
        for i in 0..5 {
            r.record(ev("a", "sim", i));
        }
        let json = r.to_json(2);
        let parsed = crate::json::parse(&json).unwrap();
        assert_eq!(
            parsed
                .get("total_recorded")
                .and_then(crate::json::Json::as_f64),
            Some(5.0)
        );
        assert_eq!(
            parsed.get("dropped").and_then(crate::json::Json::as_f64),
            Some(3.0),
            "2 rendered of 5 recorded -> 3 dropped"
        );
        let arr = parsed
            .get("spans")
            .and_then(crate::json::Json::as_arr)
            .unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("start_asn").and_then(crate::json::Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            arr[0].get("depth").and_then(crate::json::Json::as_f64),
            Some(3.0)
        );
        // NO_NODE serialises as -1.
        let mut r2 = SpanRing::new(2);
        r2.record(SpanEvent {
            node: NO_NODE,
            ..ev("a", "sim", 0)
        });
        let parsed = crate::json::parse(&r2.to_json(10)).unwrap();
        let spans = parsed
            .get("spans")
            .and_then(crate::json::Json::as_arr)
            .unwrap();
        assert_eq!(
            spans[0].get("node").and_then(crate::json::Json::as_f64),
            Some(-1.0)
        );
        assert_eq!(
            parsed.get("dropped").and_then(crate::json::Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn eviction_counts_as_dropped_even_without_limit() {
        let mut r = SpanRing::new(2);
        for i in 0..6 {
            r.record(ev("a", "sim", i));
        }
        let parsed = crate::json::parse(&r.to_json(100)).unwrap();
        assert_eq!(
            parsed
                .get("total_recorded")
                .and_then(crate::json::Json::as_f64),
            Some(6.0)
        );
        assert_eq!(
            parsed.get("dropped").and_then(crate::json::Json::as_f64),
            Some(4.0)
        );
    }

    #[test]
    fn merged_trace_orders_by_time_across_rings() {
        let mut a = SpanRing::new(8);
        let mut b = SpanRing::new(8);
        a.record(ev("a", "sim", 10));
        b.record(ev("b", "harp", 0));
        b.record(ev("c", "harp", 20));
        let json = merged_trace_json(&[&a, &b], 100);
        let parsed = crate::json::parse(&json).unwrap();
        let spans = parsed
            .get("spans")
            .and_then(crate::json::Json::as_arr)
            .unwrap();
        let starts: Vec<f64> = spans
            .iter()
            .map(|s| {
                s.get("start_asn")
                    .and_then(crate::json::Json::as_f64)
                    .unwrap()
            })
            .collect();
        assert_eq!(starts, vec![0.0, 10.0, 20.0]);
        assert_eq!(
            parsed
                .get("total_recorded")
                .and_then(crate::json::Json::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn correlation_serialises_only_when_set() {
        let anon = ev("a", "sim", 0);
        assert!(!anon.to_json().contains("corr"), "{}", anon.to_json());
        assert!(!anon.to_string().contains("corr"));
        let scoped = SpanEvent { corr: 42, ..anon };
        assert!(
            scoped.to_json().ends_with("\"corr\": 42}"),
            "{}",
            scoped.to_json()
        );
        assert!(scoped.to_string().ends_with("corr=42"));
        let parsed = crate::json::parse(&scoped.to_json()).unwrap();
        assert_eq!(
            parsed.get("corr").and_then(crate::json::Json::as_f64),
            Some(42.0)
        );
    }

    #[test]
    fn clear_keeps_total() {
        let mut r = SpanRing::new(4);
        r.record(ev("a", "sim", 0));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 1);
    }
}
