//! Trace analysis: folding [`SpanRing`](crate::SpanRing) dumps into
//! renderable views.
//!
//! PR 3 left the span ring readable only as raw JSON; this module is the
//! instrument built on top of it. A trace — the `"trace_sample"` section of
//! any `BENCH_*.json`, or a live ring — folds into:
//!
//! * a **text flame view** ([`text_flame`]): span-slot mass aggregated per
//!   `layer/name`, per node and per tree depth, with proportional bars —
//!   adjustment storms and retransmission bursts legible at a glance;
//! * **collapsed stacks** ([`collapsed_stacks`]): the
//!   `frame;frame;frame count` format consumed by inferno /
//!   `flamegraph.pl`;
//! * **Chrome trace events** ([`chrome_trace`]): a JSON array of complete
//!   (`"ph": "X"`) events loadable in `chrome://tracing` / Perfetto —
//!   node → pid (shifted by one so the network-wide pseudo-node is pid 0),
//!   layer → tid (lexicographic rank), ASN → microseconds via the slot
//!   duration;
//! * a **slotframe-utilization heatmap** ([`utilization_heatmap`]): span
//!   mass per (layer × time-bucket), text-rendered with a density ramp;
//! * an **adjustment-storm report** ([`detect_storms`], [`storm_report`]):
//!   windows where adjustment-class spans from at least `k` distinct nodes
//!   overlap in slotframe time, with the cell/message bill each storm ran
//!   up.
//!
//! Every renderer is deterministic: aggregation uses ordered maps, ties
//! break on explicit keys, and no wall clock or randomness is involved —
//! the same trace bytes always produce the same view bytes.

use crate::json::Json;
use crate::span::{SpanEvent, NO_NODE};
use std::collections::BTreeMap;

/// Span names that count as *adjustment-class* for storm detection: the
/// runner's settled adjustments and the raw change requests experiments
/// inject mid-run.
pub const ADJUSTMENT_SPAN_NAMES: &[&str] = &["adjust", "change"];

/// One span as read back from a trace document (owned strings — the
/// `&'static str` labels of [`SpanEvent`] do not survive parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// What happened (`"slotframe"`, `"adjust"`, ...).
    pub name: String,
    /// The subsystem that recorded it (`"sim"`, `"transport"`, `"harp"`).
    pub layer: String,
    /// Node id, or -1 for network-wide spans.
    pub node: i64,
    /// Tree depth of the node (0 for network-wide spans and the gateway).
    pub depth: u32,
    /// First ASN of the interval.
    pub start_asn: u64,
    /// Last ASN of the interval (inclusive).
    pub end_asn: u64,
    /// Free-form magnitude (messages, cells, attempts, ...).
    pub detail: i64,
    /// Correlation id of the request that caused the span (0 when the span
    /// was recorded outside any request scope, and for old traces).
    pub corr: u64,
}

impl TraceSpan {
    /// The span's mass in slots (inclusive interval length; an
    /// instantaneous event weighs one slot).
    #[must_use]
    pub fn slot_mass(&self) -> u64 {
        self.end_asn.saturating_sub(self.start_asn) + 1
    }

    /// Stable node label: `"net"` for network-wide spans, else `"N<id>"`.
    #[must_use]
    pub fn node_label(&self) -> String {
        if self.node < 0 {
            "net".to_owned()
        } else {
            format!("N{}", self.node)
        }
    }

    /// Converts a live [`SpanEvent`] (no JSON round-trip needed).
    #[must_use]
    pub fn from_event(e: &SpanEvent) -> Self {
        Self {
            name: e.name.to_owned(),
            layer: e.layer.to_owned(),
            node: if e.node == NO_NODE {
                -1
            } else {
                i64::from(e.node)
            },
            depth: e.depth,
            start_asn: e.start_asn,
            end_asn: e.end_asn,
            detail: e.detail,
            corr: e.corr,
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("span missing numeric field {key:?}"))
        };
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("span missing string field {key:?}"))
        };
        let start_asn = num("start_asn")? as u64;
        let end_asn = num("end_asn")? as u64;
        if end_asn < start_asn {
            return Err(format!("span interval inverted: {start_asn}..{end_asn}"));
        }
        Ok(Self {
            name: text("name")?,
            layer: text("layer")?,
            node: num("node")? as i64,
            // Traces written before spans carried tree depth fold into
            // depth 0 rather than failing.
            depth: v.get("depth").and_then(Json::as_f64).unwrap_or(0.0) as u32,
            start_asn,
            end_asn,
            detail: num("detail")? as i64,
            // Absent in traces written before request-scoped tracing.
            corr: v.get("corr").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        })
    }
}

/// A parsed trace: the spans plus the ring's truncation accounting.
#[derive(Debug, Clone, Default)]
pub struct TraceDoc {
    /// The retained spans, in document order.
    pub spans: Vec<TraceSpan>,
    /// Spans ever recorded by the producing ring (0 when the source format
    /// predates the accounting).
    pub total_recorded: u64,
    /// Spans recorded but absent from `spans` (ring evictions plus render
    /// limits). A nonzero value means the trace is a *tail*, not the whole
    /// run.
    pub dropped: u64,
}

impl TraceDoc {
    /// Extracts a trace from any of the shapes the workspace writes:
    ///
    /// * a whole benchmark report with a `"trace_sample"` section,
    /// * a standalone `{"total_recorded", "dropped", "spans": [...]}`
    ///   object (the [`SpanRing::to_json`](crate::SpanRing::to_json)
    ///   shape),
    /// * a bare JSON array of spans (the pre-accounting format).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/malformed field when the
    /// document holds no recognisable trace.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        if let Some(section) = doc.get("trace_sample") {
            return Self::from_json(section);
        }
        let (spans_json, total, dropped) = if let Some(arr) = doc.as_arr() {
            (arr, None, None)
        } else if let Some(spans) = doc.get("spans").and_then(Json::as_arr) {
            (
                spans,
                doc.get("total_recorded").and_then(Json::as_f64),
                doc.get("dropped").and_then(Json::as_f64),
            )
        } else {
            return Err(
                "no trace found: expected a span array, a {\"spans\": [...]} object, \
                 or a report with a \"trace_sample\" section"
                    .to_owned(),
            );
        };
        let spans = spans_json
            .iter()
            .map(TraceSpan::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let total_recorded = total.unwrap_or(spans.len() as f64) as u64;
        Ok(Self {
            dropped: dropped.unwrap_or(0.0) as u64,
            total_recorded,
            spans,
        })
    }

    /// Parses a trace from raw text (see [`TraceDoc::from_json`]).
    ///
    /// # Errors
    ///
    /// Propagates JSON and shape errors as messages.
    pub fn parse_str(text: &str) -> Result<Self, String> {
        let doc = crate::json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc)
    }

    /// Builds a trace from live span events (no serialisation round-trip).
    #[must_use]
    pub fn from_events<'a, I: IntoIterator<Item = &'a SpanEvent>>(events: I) -> Self {
        let spans: Vec<TraceSpan> = events.into_iter().map(TraceSpan::from_event).collect();
        Self {
            total_recorded: spans.len() as u64,
            dropped: 0,
            spans,
        }
    }

    /// One-line provenance banner: how much of the run this trace holds.
    #[must_use]
    pub fn coverage_banner(&self) -> String {
        if self.dropped == 0 {
            format!("complete trace: {} spans", self.spans.len())
        } else {
            format!(
                "TRUNCATED trace: {} of {} recorded spans retained ({} dropped by the ring bound)",
                self.spans.len(),
                self.total_recorded,
                self.dropped
            )
        }
    }
}

/// Folds spans into the collapsed-stack format consumed by inferno /
/// `flamegraph.pl`: one `layer;name;node mass` line per distinct stack,
/// lexicographically sorted. Mass is span-slots ([`TraceSpan::slot_mass`]),
/// so the x-axis of the rendered flamegraph is simulated time, not sample
/// counts.
#[must_use]
pub fn collapsed_stacks(spans: &[TraceSpan]) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let stack = format!("{};{};{}", s.layer, s.name, s.node_label());
        *folded.entry(stack).or_insert(0) += s.slot_mass();
    }
    let mut out = String::new();
    for (stack, mass) in folded {
        out.push_str(&format!("{stack} {mass}\n"));
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders spans as a Chrome trace-event JSON array (loadable in
/// `chrome://tracing` and Perfetto): every span becomes one complete
/// (`"ph": "X"`) event with
///
/// * `pid` = node id + 1 (the network-wide pseudo-node is pid 0),
/// * `tid` = the layer's lexicographic rank among the layers present,
/// * `ts`/`dur` = ASN × `slot_us` (slot duration in microseconds — 10000
///   for the paper's 10 ms slots),
/// * `cat` = layer, and `args` carrying the raw node/depth/detail.
///
/// Events are sorted by `(ts, pid, tid, name)`; the output is a pure JSON
/// array of complete events, nothing else, so it validates structurally by
/// parsing and checking every element's `"ph"`.
#[must_use]
pub fn chrome_trace(spans: &[TraceSpan], slot_us: u64) -> String {
    let mut layers: Vec<&str> = spans.iter().map(|s| s.layer.as_str()).collect();
    layers.sort_unstable();
    layers.dedup();
    let tid_of = |layer: &str| layers.binary_search(&layer).unwrap_or(0);

    let mut ordered: Vec<&TraceSpan> = spans.iter().collect();
    ordered.sort_by(|a, b| {
        (a.start_asn, a.node, tid_of(&a.layer), &a.name).cmp(&(
            b.start_asn,
            b.node,
            tid_of(&b.layer),
            &b.name,
        ))
    });

    let mut out = String::from("[");
    for (i, s) in ordered.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{\"node\": {}, \"depth\": {}, \"detail\": {}}}}}",
            escape(&s.name),
            escape(&s.layer),
            s.start_asn * slot_us,
            s.slot_mass() * slot_us,
            s.node + 1,
            tid_of(&s.layer),
            s.node,
            s.depth,
            s.detail,
        ));
    }
    out.push_str("]\n");
    out
}

/// One aggregated flame row: label plus accumulated slot mass.
fn fold_by<F: Fn(&TraceSpan) -> String>(spans: &[TraceSpan], key: F) -> Vec<(String, u64)> {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        *folded.entry(key(s)).or_insert(0) += s.slot_mass();
    }
    let mut rows: Vec<(String, u64)> = folded.into_iter().collect();
    // Heaviest first; ties break on the label (already unique).
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

const BAR_WIDTH: u64 = 40;

fn render_rows(out: &mut String, title: &str, rows: &[(String, u64)]) {
    let max = rows.iter().map(|r| r.1).max().unwrap_or(0).max(1);
    let label_width = rows.iter().map(|r| r.0.len()).max().unwrap_or(0).max(8);
    out.push_str(&format!("## {title}\n"));
    for (label, mass) in rows {
        let bar = "#".repeat((mass * BAR_WIDTH / max).max(1) as usize);
        out.push_str(&format!("{label:<label_width$} {mass:>10} {bar}\n"));
    }
    out.push('\n');
}

/// The flamegraph-style text view: span-slot mass aggregated per
/// `layer/name`, per node, and per tree depth, each section sorted
/// heaviest-first with proportional `#` bars. The one view that needs no
/// external tool — adjustment storms show up as heavy `harp/adjust` rows
/// and retransmission bursts as heavy `transport/retx` rows.
#[must_use]
pub fn text_flame(spans: &[TraceSpan]) -> String {
    let total: u64 = spans.iter().map(TraceSpan::slot_mass).sum();
    let mut out = format!(
        "# flame view: {} spans, {} span-slots total\n\n",
        spans.len(),
        total
    );
    if spans.is_empty() {
        return out;
    }
    render_rows(
        &mut out,
        "by layer/name (span-slots)",
        &fold_by(spans, |s| format!("{}/{}", s.layer, s.name)),
    );
    render_rows(
        &mut out,
        "by node (span-slots)",
        &fold_by(spans, TraceSpan::node_label),
    );
    render_rows(
        &mut out,
        "by tree depth (span-slots)",
        &fold_by(spans, |s| format!("L{}", s.depth)),
    );
    out
}

/// Density ramp for the heatmap, lightest to heaviest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders slotframe utilization as a (layer × time-bucket) text heatmap:
/// the trace's ASN range is split into `cols` equal buckets, each span's
/// mass is distributed over the buckets it overlaps (integer slot overlap,
/// no fractional attribution), and each cell renders a ramp character
/// scaled by the heaviest cell. Row order is lexicographic by layer.
#[must_use]
pub fn utilization_heatmap(spans: &[TraceSpan], cols: usize) -> String {
    let cols = cols.max(1);
    if spans.is_empty() {
        return "# heatmap: empty trace\n".to_owned();
    }
    let lo = spans.iter().map(|s| s.start_asn).min().unwrap_or(0);
    let hi = spans.iter().map(|s| s.end_asn).max().unwrap_or(0);
    let range = hi - lo + 1;
    let bucket_slots = range.div_ceil(cols as u64).max(1);
    let cols = range.div_ceil(bucket_slots) as usize;

    let mut rows: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for s in spans {
        let cells = rows
            .entry(s.layer.as_str())
            .or_insert_with(|| vec![0; cols]);
        let first = ((s.start_asn - lo) / bucket_slots) as usize;
        let last = ((s.end_asn - lo) / bucket_slots) as usize;
        for (b, cell) in cells.iter_mut().enumerate().take(last + 1).skip(first) {
            let b_start = lo + b as u64 * bucket_slots;
            let b_end = b_start + bucket_slots - 1;
            let overlap = s.end_asn.min(b_end) - s.start_asn.max(b_start) + 1;
            *cell += overlap;
        }
    }
    let max_cell = rows
        .values()
        .flat_map(|cells| cells.iter().copied())
        .max()
        .unwrap_or(0)
        .max(1);
    let label_width = rows.keys().map(|k| k.len()).max().unwrap_or(5).max(5);

    let mut out = format!(
        "# utilization heatmap: ASN {lo}..{hi}, {bucket_slots} slots/bucket, peak {max_cell} span-slots/cell\n"
    );
    for (layer, cells) in &rows {
        out.push_str(&format!("{layer:>label_width$} |"));
        for &mass in cells {
            let idx = if mass == 0 {
                0
            } else {
                // Nonzero mass never renders as blank: clamp up to '.'.
                (((mass * (RAMP.len() as u64 - 1)) / max_cell) as usize).max(1)
            };
            out.push(RAMP[idx] as char);
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:>label_width$} ^ASN {lo} (each column = {bucket_slots} slots)\n",
        ""
    ));
    out
}

/// One detected adjustment storm: a maximal window where adjustment-class
/// spans from at least `k` distinct nodes overlapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Storm {
    /// First ASN of the window.
    pub start_asn: u64,
    /// Last ASN of the window (inclusive).
    pub end_asn: u64,
    /// Distinct nodes whose adjustment spans touch the window, ascending.
    pub nodes: Vec<i64>,
    /// Adjustment-class spans overlapping the window.
    pub span_count: usize,
    /// The storm's bill: the summed `detail` of the overlapping spans
    /// (messages for `adjust` spans, cells for `change` spans).
    pub bill: i64,
}

/// Finds maximal windows where adjustment-class spans
/// ([`ADJUSTMENT_SPAN_NAMES`]) from at least `k` distinct nodes are
/// simultaneously active. A sweep over interval boundaries tracks the set
/// of active nodes; a window opens when the distinct count reaches `k` and
/// closes when it falls below. Returns storms in time order.
#[must_use]
pub fn detect_storms(spans: &[TraceSpan], k: usize) -> Vec<Storm> {
    let k = k.max(1);
    let adjusting: Vec<&TraceSpan> = spans
        .iter()
        .filter(|s| ADJUSTMENT_SPAN_NAMES.contains(&s.name.as_str()))
        .collect();
    if adjusting.is_empty() {
        return Vec::new();
    }
    // Boundary sweep: +1 at start_asn, -1 just past end_asn. Starts sort
    // before ends at the same ASN so touching intervals count as
    // overlapping for the slot they share.
    let mut bounds: Vec<(u64, i8, i64)> = Vec::with_capacity(adjusting.len() * 2);
    for s in &adjusting {
        bounds.push((s.start_asn, 0, s.node));
        bounds.push((s.end_asn + 1, 1, s.node));
    }
    bounds.sort_unstable();

    let mut active: BTreeMap<i64, usize> = BTreeMap::new();
    let mut open_at: Option<u64> = None;
    let mut windows: Vec<(u64, u64)> = Vec::new();
    for (asn, kind, node) in bounds {
        if kind == 0 {
            *active.entry(node).or_insert(0) += 1;
            if active.len() >= k && open_at.is_none() {
                open_at = Some(asn);
            }
        } else {
            if let Some(n) = active.get_mut(&node) {
                *n -= 1;
                if *n == 0 {
                    active.remove(&node);
                }
            }
            if active.len() < k {
                if let Some(start) = open_at.take() {
                    windows.push((start, asn - 1));
                }
            }
        }
    }
    if let Some(start) = open_at {
        let end = adjusting.iter().map(|s| s.end_asn).max().unwrap_or(start);
        windows.push((start, end));
    }

    windows
        .into_iter()
        .map(|(start, end)| {
            let overlapping: Vec<&&TraceSpan> = adjusting
                .iter()
                .filter(|s| s.start_asn <= end && s.end_asn >= start)
                .collect();
            let mut nodes: Vec<i64> = overlapping.iter().map(|s| s.node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            Storm {
                start_asn: start,
                end_asn: end,
                nodes,
                span_count: overlapping.len(),
                bill: overlapping.iter().map(|s| s.detail).sum(),
            }
        })
        .collect()
}

/// Renders a storm list as a text report (one block per storm, plus a
/// headline count). `k` is echoed so the report is self-describing.
#[must_use]
pub fn storm_report(storms: &[Storm], k: usize) -> String {
    let mut out = format!(
        "# adjustment storms (>= {k} nodes with overlapping adjustment spans): {}\n",
        storms.len()
    );
    for (i, s) in storms.iter().enumerate() {
        let nodes: Vec<String> = s.nodes.iter().map(|n| format!("N{n}")).collect();
        out.push_str(&format!(
            "storm {}: ASN {}..{} ({} slots), {} spans from {} nodes [{}], bill {}\n",
            i,
            s.start_asn,
            s.end_asn,
            s.end_asn - s.start_asn + 1,
            s.span_count,
            s.nodes.len(),
            nodes.join(" "),
            s.bill,
        ));
    }
    out
}

/// Total span-slot mass of a trace — the conserved quantity every fold
/// must preserve (the property tests pin this).
#[must_use]
pub fn total_mass(spans: &[TraceSpan]) -> u64 {
    spans.iter().map(TraceSpan::slot_mass).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        name: &str,
        layer: &str,
        node: i64,
        depth: u32,
        start: u64,
        end: u64,
        detail: i64,
    ) -> TraceSpan {
        TraceSpan {
            name: name.to_owned(),
            layer: layer.to_owned(),
            node,
            depth,
            start_asn: start,
            end_asn: end,
            detail,
            corr: 0,
        }
    }

    #[test]
    fn parses_all_three_source_shapes() {
        let bare = r#"[{"name": "a", "layer": "sim", "node": -1, "start_asn": 0, "end_asn": 4, "detail": 2}]"#;
        let doc = TraceDoc::parse_str(bare).unwrap();
        assert_eq!(doc.spans.len(), 1);
        assert_eq!(doc.dropped, 0);
        assert_eq!(doc.spans[0].depth, 0, "missing depth defaults to 0");

        let object = r#"{"total_recorded": 9, "dropped": 8, "spans": [
            {"name": "a", "layer": "sim", "node": 3, "depth": 2, "start_asn": 5, "end_asn": 5, "detail": 1}]}"#;
        let doc = TraceDoc::parse_str(object).unwrap();
        assert_eq!((doc.total_recorded, doc.dropped), (9, 8));
        assert_eq!(doc.spans[0].depth, 2);
        assert!(doc.coverage_banner().contains("TRUNCATED"));
        assert!(doc.coverage_banner().contains("8 dropped"));

        let report = format!(r#"{{"metrics": {{}}, "trace_sample": {object}}}"#);
        let doc = TraceDoc::parse_str(&report).unwrap();
        assert_eq!(doc.spans.len(), 1);

        assert!(TraceDoc::parse_str("{}").is_err());
        assert!(TraceDoc::parse_str(r#"{"spans": [{"name": "x"}]}"#).is_err());
    }

    #[test]
    fn rejects_inverted_intervals() {
        let bad = r#"[{"name": "a", "layer": "sim", "node": 0, "start_asn": 9, "end_asn": 3, "detail": 0}]"#;
        assert!(TraceDoc::parse_str(bad).unwrap_err().contains("inverted"));
    }

    #[test]
    fn collapsed_stacks_aggregate_and_sort() {
        let spans = vec![
            span("slotframe", "sim", -1, 0, 0, 198, 4),
            span("slotframe", "sim", -1, 0, 199, 397, 4),
            span("adjust", "harp", 7, 2, 50, 249, 12),
        ];
        let out = collapsed_stacks(&spans);
        assert_eq!(out, "harp;adjust;N7 200\nsim;slotframe;net 398\n");
    }

    #[test]
    fn chrome_trace_is_a_json_array_of_complete_events() {
        let spans = vec![
            span("adjust", "harp", 7, 2, 50, 249, 12),
            span("slotframe", "sim", -1, 0, 0, 198, 4),
        ];
        let out = chrome_trace(&spans, 10_000);
        let parsed = crate::json::parse(&out).unwrap();
        let events = parsed.as_arr().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        }
        // Sorted by ts: the slotframe span starts first.
        assert_eq!(events[0].get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(
            events[0].get("pid").and_then(Json::as_f64),
            Some(0.0),
            "network-wide span maps to pid 0"
        );
        assert_eq!(
            events[0].get("dur").and_then(Json::as_f64),
            Some(199.0 * 10_000.0)
        );
        assert_eq!(events[1].get("pid").and_then(Json::as_f64), Some(8.0));
        // tid = lexicographic rank of the layer: harp=0, sim=1.
        assert_eq!(events[1].get("tid").and_then(Json::as_f64), Some(0.0));
        assert_eq!(events[0].get("tid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("depth"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn text_flame_sections_and_mass() {
        let spans = vec![
            span("slotframe", "sim", -1, 0, 0, 198, 4),
            span("adjust", "harp", 7, 2, 50, 249, 12),
        ];
        let out = text_flame(&spans);
        assert!(out.contains("2 spans, 399 span-slots total"));
        assert!(out.contains("by layer/name"));
        assert!(out.contains("sim/slotframe"));
        assert!(out.contains("by node"));
        assert!(out.contains("N7"));
        assert!(out.contains("by tree depth"));
        assert!(out.contains("L2"));
        assert_eq!(
            text_flame(&[]),
            "# flame view: 0 spans, 0 span-slots total\n\n"
        );
    }

    #[test]
    fn heatmap_buckets_preserve_row_mass() {
        let spans = vec![
            span("slotframe", "sim", -1, 0, 0, 99, 1),
            span("retx", "transport", 3, 1, 90, 109, 1),
        ];
        let out = utilization_heatmap(&spans, 10);
        assert!(out.starts_with("# utilization heatmap: ASN 0..109"));
        let sim_row = out.lines().find(|l| l.contains("sim |")).unwrap();
        let transport_row = out.lines().find(|l| l.contains("transport |")).unwrap();
        // The sim span covers buckets 0..=9 of 11 slots: the first cells are
        // saturated, the tail blank.
        assert!(sim_row.contains('@'));
        assert!(transport_row.chars().filter(|&c| c != ' ').count() > 2);
        assert_eq!(utilization_heatmap(&[], 10), "# heatmap: empty trace\n");
    }

    #[test]
    fn storm_detection_finds_overlap_windows() {
        let spans = vec![
            span("adjust", "harp", 1, 1, 0, 99, 10),
            span("adjust", "harp", 2, 2, 50, 149, 20),
            span("adjust", "harp", 3, 3, 140, 239, 30),
            span("slotframe", "sim", -1, 0, 0, 999, 0),
        ];
        // k=2: nodes 1+2 overlap at 50..99, nodes 2+3 at 140..149.
        let storms = detect_storms(&spans, 2);
        assert_eq!(storms.len(), 2);
        assert_eq!((storms[0].start_asn, storms[0].end_asn), (50, 99));
        assert_eq!(storms[0].nodes, vec![1, 2]);
        assert_eq!(storms[0].bill, 30);
        assert_eq!((storms[1].start_asn, storms[1].end_asn), (140, 149));
        assert_eq!(storms[1].nodes, vec![2, 3]);
        assert_eq!(storms[1].bill, 50);
        // k=3: never three distinct nodes at once.
        assert!(detect_storms(&spans, 3).is_empty());
        // The report renders deterministically.
        let report = storm_report(&storms, 2);
        assert!(report.contains("adjustment storms (>= 2 nodes"));
        assert!(report.contains("storm 0: ASN 50..99 (50 slots)"));
        assert!(report.contains("[N1 N2]"));
    }

    #[test]
    fn storm_window_still_open_at_trace_end_is_closed() {
        let spans = vec![
            span("adjust", "harp", 1, 1, 0, 100, 1),
            span("change", "harp", 2, 2, 40, 100, 2),
        ];
        let storms = detect_storms(&spans, 2);
        assert_eq!(storms.len(), 1);
        assert_eq!((storms[0].start_asn, storms[0].end_asn), (40, 100));
        assert_eq!(storms[0].bill, 3, "change spans count toward the bill");
    }

    #[test]
    fn folding_preserves_total_mass() {
        let spans = vec![
            span("a", "x", 1, 1, 0, 10, 0),
            span("b", "x", 2, 1, 5, 5, 0),
            span("a", "y", -1, 0, 100, 199, 0),
        ];
        let total = total_mass(&spans);
        let collapsed: u64 = collapsed_stacks(&spans)
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(collapsed, total);
    }
}
