//! Minimal JSON value parser (consumer side of the observability layer).
//!
//! The workspace emits JSON with hand-rolled writers; this module is the
//! matching reader, used by the `bench_check` CI gate to diff fresh
//! benchmark reports against committed baselines, and by tests validating
//! that emitted snapshots round-trip. It is a strict-enough recursive
//! descent parser over the subset the workspace produces (full JSON minus
//! exotic number forms), with byte offsets in errors and a depth limit.

use core::fmt;

/// A parsed JSON value.
///
/// Numbers are kept as `f64` — every number the benchmark reports emit fits
/// (counters stay far below 2^53) and the gate compares percentages anyway.
/// Objects preserve insertion order; lookup is linear, which is fine at
/// report sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants or missing key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &'static [u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: decode when paired, replace
                            // when lone (benchmark reports never emit them).
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(code) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(u32::from(code)).unwrap_or('\u{FFFD}')
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are guaranteed valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        core::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = (code << 4) | u16::from(digit);
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"benchmarks": [{"name": "sim", "mean_ns": 132130.0}],
                      "metrics": {"dense_speedup_vs_reference": 6.867}}"#;
        let v = parse(doc).unwrap();
        let benches = v.get("benchmarks").and_then(Json::as_arr).unwrap();
        assert_eq!(benches[0].get("name").and_then(Json::as_str), Some("sim"));
        assert_eq!(
            benches[0].get("mean_ns").and_then(Json::as_f64),
            Some(132130.0)
        );
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("dense_speedup_vs_reference"))
                .and_then(Json::as_f64),
            Some(6.867)
        );
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"abc", "1 2", "{,}", "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        let err = parse("[1,]").unwrap_err();
        assert!(err.offset > 0);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn accessors_return_none_on_wrong_variant() {
        let v = parse("[1]").unwrap();
        assert!(v.get("x").is_none());
        assert!(v.as_f64().is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_bool().is_none());
        assert!(v.as_obj().is_none());
        assert_eq!(v.as_arr().map(<[Json]>::len), Some(1));
    }
}
