//! Minimal JSON value parser and writer (both sides of the workspace's
//! hand-rolled JSON).
//!
//! The reader is a strict-enough recursive descent parser over the subset
//! the workspace produces (full JSON minus exotic number forms), with
//! byte offsets in errors and a depth limit; `bench_check` uses it to
//! diff fresh benchmark reports against committed baselines. The writer
//! side is [`JsonBuf`] — an append-only assembly buffer over a reusable
//! `Vec<u8>` — plus the shared string-escaping helpers
//! ([`escape_json`], [`escape_json_into`]) every producer in the
//! workspace funnels through, so escaping rules live in exactly one
//! place.

use core::fmt;

/// Appends the JSON string-escape of `s` (no surrounding quotes) to a
/// byte buffer: `\\`, `\"`, the whitespace escapes, `\u00XX` for other
/// control characters; non-ASCII passes through as UTF-8.
pub fn escape_json_into(out: &mut Vec<u8>, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.extend_from_slice(b"\\\\"),
            '"' => out.extend_from_slice(b"\\\""),
            '\n' => out.extend_from_slice(b"\\n"),
            '\r' => out.extend_from_slice(b"\\r"),
            '\t' => out.extend_from_slice(b"\\t"),
            c if c.is_control() => {
                const HEX: &[u8; 16] = b"0123456789abcdef";
                let v = c as u32;
                out.extend_from_slice(b"\\u");
                out.push(HEX[((v >> 12) & 0xf) as usize]);
                out.push(HEX[((v >> 8) & 0xf) as usize]);
                out.push(HEX[((v >> 4) & 0xf) as usize]);
                out.push(HEX[(v & 0xf) as usize]);
            }
            c => {
                let mut utf8 = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut utf8).as_bytes());
            }
        }
    }
}

/// The JSON string-escape of `s` as an owned `String` (no quotes) — the
/// convenience form of [`escape_json_into`] for one-off callers.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = Vec::with_capacity(s.len());
    escape_json_into(&mut out, s);
    String::from_utf8(out).expect("escaping valid UTF-8 yields valid UTF-8")
}

/// An append-only JSON assembly buffer over a reusable allocation.
///
/// Response builders that used to chain `format!` (one fresh `String` per
/// fragment) instead write straight into a pooled `Vec<u8>`: take a
/// buffer with [`JsonBuf::reuse`], append raw structure and escaped
/// values, and hand the bytes back with [`JsonBuf::into_bytes`]. The type
/// adds no structural validation — it is a typed cursor, and the emitters
/// stay responsible for balanced braces, exactly like the workspace's
/// other hand-rolled writers.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: Vec<u8>,
}

impl JsonBuf {
    /// An empty buffer with a fresh allocation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a recycled allocation: contents are cleared, capacity kept.
    #[must_use]
    pub fn reuse(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { out: buf }
    }

    /// Appends a raw fragment verbatim (structure: braces, keys you know
    /// are escape-free, separators).
    pub fn raw(&mut self, fragment: &str) -> &mut Self {
        self.out.extend_from_slice(fragment.as_bytes());
        self
    }

    /// Appends `s` as a quoted, escaped JSON string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.out.push(b'"');
        escape_json_into(&mut self.out, s);
        self.out.push(b'"');
        self
    }

    /// Appends an unsigned integer.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        let mut v = v;
        loop {
            i -= 1;
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        self.out.extend_from_slice(&digits[i..]);
        self
    }

    /// Appends a signed integer.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        if v < 0 {
            self.out.push(b'-');
        }
        self.u64(v.unsigned_abs())
    }

    /// Appends `true`/`false`.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.raw(if v { "true" } else { "false" })
    }

    /// Appends a float with `decimals` fractional digits (the fixed-point
    /// form every report in the workspace uses).
    pub fn fixed(&mut self, v: f64, decimals: usize) -> &mut Self {
        use std::io::Write as _;
        let _ = write!(&mut self.out, "{v:.decimals$}");
        self
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// The assembled document, surrendering the allocation (return it to
    /// the pool after the response is written).
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }
}

/// A parsed JSON value.
///
/// Numbers are kept as `f64` — every number the benchmark reports emit fits
/// (counters stay far below 2^53) and the gate compares percentages anyway.
/// Objects preserve insertion order; lookup is linear, which is fine at
/// report sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants or missing key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &'static [u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: decode when paired, replace
                            // when lone (benchmark reports never emit them).
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(code) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(u32::from(code)).unwrap_or('\u{FFFD}')
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are guaranteed valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        core::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = (code << 4) | u16::from(digit);
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"benchmarks": [{"name": "sim", "mean_ns": 132130.0}],
                      "metrics": {"dense_speedup_vs_reference": 6.867}}"#;
        let v = parse(doc).unwrap();
        let benches = v.get("benchmarks").and_then(Json::as_arr).unwrap();
        assert_eq!(benches[0].get("name").and_then(Json::as_str), Some("sim"));
        assert_eq!(
            benches[0].get("mean_ns").and_then(Json::as_f64),
            Some(132130.0)
        );
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("dense_speedup_vs_reference"))
                .and_then(Json::as_f64),
            Some(6.867)
        );
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"abc", "1 2", "{,}", "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        let err = parse("[1,]").unwrap_err();
        assert!(err.offset > 0);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn accessors_return_none_on_wrong_variant() {
        let v = parse("[1]").unwrap();
        assert!(v.get("x").is_none());
        assert!(v.as_f64().is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_bool().is_none());
        assert!(v.as_obj().is_none());
        assert_eq!(v.as_arr().map(<[Json]>::len), Some(1));
    }

    #[test]
    fn escape_covers_controls_quotes_and_non_ascii() {
        // Backslash, quote and the named whitespace escapes.
        assert_eq!(escape_json(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(
            escape_json("line\nfeed\ttab\rret"),
            "line\\nfeed\\ttab\\rret"
        );
        // Other control characters take the \u00xx form.
        assert_eq!(escape_json("\u{0}\u{1f}\u{7f}"), "\\u0000\\u001f\\u007f");
        // Non-ASCII passes through as UTF-8, unescaped.
        assert_eq!(escape_json("köln→東京"), "köln→東京");
        // Everything escape_json emits must round-trip through our own
        // parser back to the original string.
        for original in [
            "plain",
            "with \"quotes\" and \\slashes\\",
            "ctrl \u{1} \u{8} \u{b} mixed \t\n\r",
            "émoji 🦀 and \u{9f} control",
            "",
        ] {
            let doc = format!("\"{}\"", escape_json(original));
            assert_eq!(
                parse(&doc).unwrap(),
                Json::Str(original.to_owned()),
                "round-trip failed for {original:?}"
            );
        }
    }

    #[test]
    fn json_buf_assembles_and_reuses_allocations() {
        let mut b = JsonBuf::new();
        assert!(b.is_empty());
        b.raw("{\"name\": ")
            .string("a \"b\"\n")
            .raw(", \"n\": ")
            .u64(12345)
            .raw(", \"neg\": ")
            .i64(-7)
            .raw(", \"ok\": ")
            .bool(true)
            .raw(", \"f\": ")
            .fixed(1.5, 3)
            .raw("}");
        let bytes = b.into_bytes();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert_eq!(
            text,
            "{\"name\": \"a \\\"b\\\"\\n\", \"n\": 12345, \"neg\": -7, \"ok\": true, \"f\": 1.500}"
        );
        let doc = parse(&text).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(12345.0));
        assert_eq!(doc.get("neg").and_then(Json::as_f64), Some(-7.0));

        // Reuse keeps the allocation, drops the contents.
        let cap = bytes.capacity();
        let mut reused = JsonBuf::reuse(bytes);
        assert!(reused.is_empty());
        reused.u64(0).u64(u64::MAX);
        let out = reused.into_bytes();
        assert_eq!(out, b"018446744073709551615");
        assert!(out.capacity() >= cap.min(out.len()));

        assert_eq!(
            {
                let mut b = JsonBuf::new();
                b.i64(i64::MIN);
                String::from_utf8(b.into_bytes()).unwrap()
            },
            i64::MIN.to_string()
        );
    }
}
