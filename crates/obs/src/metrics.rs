//! The metrics registry: counters, gauges and histograms keyed by static
//! names, with stable-JSON snapshots.
//!
//! Handles ([`CounterId`] &c.) are dense indices handed out at registration,
//! so the record path is one bounds-checked array access plus an integer
//! add — cheap enough for the simulator's slot loop. A disabled registry
//! still hands out handles (instrumentation code stays branch-free at the
//! call site) but every record call returns after one flag test.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Power-of-two bucket bounds for slot-latency histograms, `1..=2^20`
/// (inclusive upper bounds; one implicit overflow bucket above).
///
/// Shared by the simulator's metrics histogram and the streaming stats
/// collector so both resolve percentiles over the same ladder. The top
/// bound covers a packet sitting queued for a million slots — beyond any
/// latency the experiments produce — so real observations never land in
/// the overflow bucket, where percentile estimates degrade to the max.
pub const LATENCY_SLOT_BOUNDS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131_072,
    262_144, 524_288, 1_048_576,
];

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone)]
struct Histogram {
    name: &'static str,
    /// Ascending inclusive upper bounds; one implicit overflow bucket above.
    bounds: &'static [u64],
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// A registry of named metrics owned by one instrumented component.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<Histogram>,
}

impl MetricsRegistry {
    /// Creates a registry; a disabled one records nothing and snapshots
    /// empty.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Whether record calls are live.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or finds) a counter. Registration is idempotent per name.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|&(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|&(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name, 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram over `bounds` (ascending inclusive
    /// upper bucket bounds; values above the last bound land in an implicit
    /// overflow bucket).
    pub fn histogram(&mut self, name: &'static str, bounds: &'static [u64]) -> HistogramId {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
        if let Some(i) = self.histograms.iter().position(|h| h.name == name) {
            return HistogramId(i);
        }
        self.histograms.push(Histogram {
            name,
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `by` to a counter (no-op while disabled).
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        if !self.enabled {
            return;
        }
        self.counters[id.0].1 += by;
    }

    /// Sets a gauge to `value` (no-op while disabled).
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        if !self.enabled {
            return;
        }
        self.gauges[id.0].1 = value;
    }

    /// Raises a gauge to `value` if it is higher (high-water marks).
    #[inline]
    pub fn set_max(&mut self, id: GaugeId, value: f64) {
        if !self.enabled {
            return;
        }
        let slot = &mut self.gauges[id.0].1;
        if value > *slot {
            *slot = value;
        }
    }

    /// Records one histogram observation (no-op while disabled).
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        if !self.enabled {
            return;
        }
        let h = &mut self.histograms[id.0];
        let bucket = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        h.counts[bucket] += 1;
        h.count += 1;
        h.sum += u128::from(value);
        h.min = h.min.min(value);
        h.max = h.max.max(value);
    }

    /// The current value of a counter (0 while disabled).
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Snapshots every metric into an owned, name-sorted view. Empty for a
    /// disabled registry.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        if !self.enabled {
            return snap;
        }
        for &(name, v) in &self.counters {
            snap.counters.insert(name.to_owned(), v);
        }
        for &(name, v) in &self.gauges {
            snap.gauges.insert(name.to_owned(), v);
        }
        for h in &self.histograms {
            snap.histograms.insert(
                h.name.to_owned(),
                HistogramSnapshot {
                    bounds: h.bounds.to_vec(),
                    counts: h.counts.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0 } else { h.min },
                    max: h.max,
                },
            );
        }
        snap
    }
}

/// One histogram's frozen state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds (ascending).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u128,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`), linearly interpolated within the
    /// bucket holding rank `ceil(q * count)`: observations in a bucket are
    /// assumed uniform over `(lower, upper]`, so a rank `k` of `n` resolves
    /// to `lower + width * k / n` (integer arithmetic), clamped into the
    /// exactly-recorded `[min, max]`. Overflow-bucket ranks interpolate up
    /// to `max`. An empty histogram reports 0. Deterministic.
    ///
    /// Without interpolation, every quantile collapses to its bucket's
    /// upper bound — with exponentially spaced bounds that overstates p50
    /// by up to 2x and makes p50/p95/p99 indistinguishable whenever the
    /// distribution fits a single bucket.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            let below = cumulative;
            cumulative += n;
            if cumulative >= rank {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(&le) => le,
                    None => self.max,
                };
                let width = upper.saturating_sub(lower);
                let into = rank - below; // 1..=n
                let est = lower + (u128::from(width) * u128::from(into) / u128::from(n)) as u64;
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A frozen, name-sorted view of a registry (or a merge of several).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up one counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Looks up one gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Folds `other` into `self`: counters add, gauges keep the maximum
    /// (they carry high-water marks when merged across runs), histograms
    /// add bucket-wise when the bounds agree (otherwise only the aggregate
    /// count/sum/min/max fold in).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            let e = self.gauges.entry(name.clone()).or_insert(f64::MIN);
            if v > *e {
                *e = v;
            }
        }
        for (name, h) in &other.histograms {
            let e = self.histograms.entry(name.clone()).or_default();
            if e.count == 0 {
                *e = h.clone();
                continue;
            }
            if e.bounds == h.bounds {
                for (a, b) in e.counts.iter_mut().zip(&h.counts) {
                    *a += b;
                }
            }
            e.min = if h.count == 0 {
                e.min
            } else {
                e.min.min(h.min)
            };
            e.max = e.max.max(h.max);
            e.count += h.count;
            e.sum += h.sum;
        }
    }

    /// Adds a batch of externally collected counter totals (e.g. the
    /// process-wide [`StaticCounter`]s of the library crates).
    pub fn add_counters<I: IntoIterator<Item = (&'static str, u64)>>(&mut self, totals: I) {
        for (name, v) in totals {
            *self.counters.entry(name.to_owned()).or_insert(0) += v;
        }
    }

    /// Renders the snapshot as a stable (name-sorted) JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {v}", escape(name)));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", escape(name), fmt_f64(*v)));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                fmt_f64(h.mean()),
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99),
            ));
            for (j, &n) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                match h.bounds.get(j) {
                    Some(&le) => out.push_str(&format!("{{\"le\": {le}, \"n\": {n}}}")),
                    None => out.push_str(&format!("{{\"le\": \"inf\", \"n\": {n}}}")),
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Formats an `f64` as a JSON-valid number (non-finite values become 0).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on an integral f64 prints without a fraction, which is still
        // valid JSON; nothing more to do.
        s
    } else {
        "0".to_owned()
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A process-wide counter for library crates with no instance to own a
/// registry (packing calls, topology generations). Relaxed atomics: totals
/// are exact, ordering across threads is not observable.
#[derive(Debug)]
pub struct StaticCounter(AtomicU64);

impl StaticCounter {
    /// A zeroed counter (usable in `static` items).
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `by`.
    #[inline]
    pub fn add(&self, by: u64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    /// The total so far.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for StaticCounter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let mut r = MetricsRegistry::new(true);
        let a = r.counter("a");
        let a2 = r.counter("a");
        assert_eq!(a, a2);
        r.inc(a, 2);
        r.inc(a2, 3);
        assert_eq!(r.counter_value(a), 5);
        assert_eq!(r.snapshot().counter("a"), Some(5));
    }

    #[test]
    fn disabled_registry_snapshots_empty() {
        let mut r = MetricsRegistry::new(false);
        let c = r.counter("a");
        let g = r.gauge("g");
        let h = r.histogram("h", &[1, 2]);
        r.inc(c, 1);
        r.set(g, 4.0);
        r.observe(h, 1);
        assert!(r.snapshot().is_empty());
        assert_eq!(r.counter_value(c), 0);
    }

    #[test]
    fn gauges_set_and_set_max() {
        let mut r = MetricsRegistry::new(true);
        let g = r.gauge("g");
        r.set(g, 2.0);
        r.set_max(g, 1.0);
        assert_eq!(r.snapshot().gauge("g"), Some(2.0));
        r.set_max(g, 7.5);
        assert_eq!(r.snapshot().gauge("g"), Some(7.5));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut r = MetricsRegistry::new(true);
        let h = r.histogram("lat", &[10, 100]);
        for v in [1, 10, 11, 1000] {
            r.observe(h, v);
        }
        let snap = r.snapshot();
        let hs = &snap.histograms["lat"];
        assert_eq!(hs.counts, vec![2, 1, 1]);
        assert_eq!((hs.count, hs.min, hs.max), (4, 1, 1000));
        assert_eq!(hs.sum, 1022);
        assert_eq!(hs.mean(), 255.5);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let mut r = MetricsRegistry::new(true);
        let h = r.histogram("lat", &[10, 100, 1000]);
        // 90 observations <= 10, 9 in (10, 100], 1 in (1000, inf).
        for _ in 0..90 {
            r.observe(h, 5);
        }
        for _ in 0..9 {
            r.observe(h, 50);
        }
        r.observe(h, 5000);
        let snap = r.snapshot();
        let hs = &snap.histograms["lat"];
        // Rank 50 of 90 in (0, 10]: 10 * 50 / 90 = 5 — the true value,
        // where bucket-bound resolution would report 10.
        assert_eq!(hs.percentile(0.50), 5);
        // Rank 95 is the 5th of 9 in (10, 100]: 10 + 90 * 5 / 9 = 60.
        assert_eq!(hs.percentile(0.95), 60);
        // Rank 99 is the last of that bucket: its upper bound.
        assert_eq!(hs.percentile(0.99), 100);
        // The tail lands in the overflow bucket: report the exact max.
        assert_eq!(hs.percentile(1.0), 5000);
        // Empty histogram: all zeros.
        assert_eq!(HistogramSnapshot::default().percentile(0.95), 0);
        // Single observation: every quantile is that observation's bucket,
        // clamped into the [min, max] range actually seen.
        let mut r2 = MetricsRegistry::new(true);
        let h2 = r2.histogram("one", &[64]);
        r2.observe(h2, 7);
        let s2 = r2.snapshot();
        assert_eq!(s2.histograms["one"].percentile(0.5), 7);
    }

    #[test]
    fn snapshot_json_includes_percentiles() {
        let mut r = MetricsRegistry::new(true);
        let h = r.histogram("lat", &[10, 100]);
        for v in [1, 2, 3, 50] {
            r.observe(h, v);
        }
        let json = r.snapshot().to_json();
        let parsed = crate::json::parse(&json).expect("valid JSON");
        let hist = parsed.get("histograms").and_then(|h| h.get("lat")).unwrap();
        assert_eq!(
            hist.get("p50").and_then(crate::json::Json::as_f64),
            Some(6.0),
            "rank 2 of 3 in (0, 10] interpolates to 6"
        );
        assert_eq!(
            hist.get("p95").and_then(crate::json::Json::as_f64),
            Some(50.0),
            "p95 interpolates past 50 but clamps to the observed max"
        );
        assert_eq!(
            hist.get("p99").and_then(crate::json::Json::as_f64),
            Some(50.0)
        );
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let mut r = MetricsRegistry::new(true);
        r.histogram("h", &[1]);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["h"].min, 0);
        assert_eq!(snap.histograms["h"].mean(), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new(true);
        let c = a.counter("c");
        let h = a.histogram("h", &[5]);
        a.inc(c, 1);
        a.observe(h, 3);
        let mut snap = a.snapshot();
        let mut b = MetricsRegistry::new(true);
        let c2 = b.counter("c");
        let h2 = b.histogram("h", &[5]);
        let g = b.gauge("g");
        b.inc(c2, 4);
        b.observe(h2, 9);
        b.set(g, 2.0);
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.gauge("g"), Some(2.0));
        let hs = &snap.histograms["h"];
        assert_eq!(hs.counts, vec![1, 1]);
        assert_eq!((hs.count, hs.min, hs.max), (2, 3, 9));
    }

    #[test]
    fn add_counters_folds_static_totals() {
        let mut snap = MetricsSnapshot::default();
        snap.add_counters([("pack.calls", 3), ("pack.calls", 2)]);
        assert_eq!(snap.counter("pack.calls"), Some(5));
    }

    #[test]
    fn snapshot_json_is_stable_and_parseable() {
        let mut r = MetricsRegistry::new(true);
        let c = r.counter("z.count");
        let c2 = r.counter("a.count");
        let g = r.gauge("g");
        let h = r.histogram("h", &[2]);
        r.inc(c, 1);
        r.inc(c2, 2);
        r.set(g, 1.5);
        r.observe(h, 1);
        r.observe(h, 3);
        let json = r.snapshot().to_json();
        // Name-sorted: "a.count" precedes "z.count".
        assert!(json.find("a.count").unwrap() < json.find("z.count").unwrap());
        let parsed = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("a.count"))
                .and_then(crate::json::Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|g| g.get("g"))
                .and_then(crate::json::Json::as_f64),
            Some(1.5)
        );
    }

    #[test]
    fn static_counter_accumulates() {
        static C: StaticCounter = StaticCounter::new();
        C.add(2);
        C.add(3);
        assert!(C.get() >= 5);
    }

    #[test]
    fn fmt_f64_guards_non_finite() {
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(3.0), "3");
    }
}
