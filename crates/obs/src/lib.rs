//! Zero-dependency observability layer for the HARP reproduction.
//!
//! Every quantitative claim in the paper — convergence slotframes,
//! adjustment overhead, collision-free schedules — needs a durable way to
//! be *seen* while the system runs and to be *guarded* in CI. This crate
//! provides the three pieces the rest of the workspace wires in:
//!
//! * a [`MetricsRegistry`] of counters, gauges and histograms keyed by
//!   static names, snapshotting to stable JSON ([`MetricsSnapshot`]);
//! * slotframe-time trace spans ([`SpanRing`], [`SpanEvent`]) — ring-buffered
//!   events stamped with start/end ASN and per-node / per-layer labels;
//! * process-wide [`StaticCounter`]s for library crates with no instance
//!   state to hang a registry off (packing calls, topology generations).
//!
//! Instrumented components own an [`Obs`] handle. Observability is **off by
//! default**: a disabled handle costs one well-predicted branch per record
//! call and produces empty snapshots, so simulations are byte-identical
//! with and without it (the acceptance bar of the observability PR).
//!
//! The [`json`] module is the consumer side: a minimal JSON value parser
//! used by the `bench_check` CI gate to diff fresh benchmark reports
//! against committed baselines.
//!
//! # Examples
//!
//! ```
//! use harp_obs::Obs;
//!
//! let mut obs = Obs::enabled(64);
//! let tx = obs.metrics.counter("sim.tx_attempts");
//! obs.metrics.inc(tx, 3);
//! obs.span("slotframe", "sim", harp_obs::NO_NODE, 0, 0, 199, 3);
//! let snap = obs.metrics.snapshot();
//! assert_eq!(snap.counter("sim.tx_attempts"), Some(3));
//! assert_eq!(obs.spans.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flame;
pub mod flight;
pub mod json;
mod metrics;
pub mod prometheus;
mod span;

pub use flight::{FlightDoc, FlightEvent, FlightRecorder, NO_FLIGHT_NODE};
pub use metrics::{
    CounterId, GaugeId, HistogramId, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    StaticCounter, LATENCY_SLOT_BOUNDS,
};
pub use span::{merged_trace_json, spans_to_json, SpanEvent, SpanRing, NO_CORRELATION, NO_NODE};

/// One observability handle: a metrics registry plus a span ring.
///
/// Components that can be observed (the simulator, the control plane, the
/// HARP runner) own one of these; callers enable it at construction or via
/// the component's `enable_observability` hook.
#[derive(Debug, Clone)]
pub struct Obs {
    /// Named counters / gauges / histograms.
    pub metrics: MetricsRegistry,
    /// Ring buffer of slotframe-time spans.
    pub spans: SpanRing,
    /// Ambient correlation id stamped onto every span recorded while set
    /// ([`NO_CORRELATION`] outside any request scope).
    corr: u64,
}

impl Obs {
    /// An enabled handle retaining the most recent `span_capacity` spans.
    #[must_use]
    pub fn enabled(span_capacity: usize) -> Self {
        Self {
            metrics: MetricsRegistry::new(true),
            spans: SpanRing::new(span_capacity),
            corr: NO_CORRELATION,
        }
    }

    /// A disabled handle: registrations still hand out ids, every record
    /// call is a cheap early return, snapshots are empty.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            metrics: MetricsRegistry::new(false),
            spans: SpanRing::new(0),
            corr: NO_CORRELATION,
        }
    }

    /// Sets the ambient correlation id: every span recorded until the next
    /// call (or [`Obs::clear_correlation`]) carries it, stitching the span
    /// to the request that caused it. Pass [`NO_CORRELATION`] to clear.
    pub fn set_correlation(&mut self, corr: u64) {
        self.corr = corr;
    }

    /// Clears the ambient correlation id (back to anonymous recording).
    pub fn clear_correlation(&mut self) {
        self.corr = NO_CORRELATION;
    }

    /// The ambient correlation id ([`NO_CORRELATION`] when unset).
    #[must_use]
    pub fn correlation(&self) -> u64 {
        self.corr
    }

    /// Whether metric recording is live.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }

    /// Records one span (no-op while disabled). `depth` is the tree depth
    /// of the node concerned — the HARP layer the event folds into in flame
    /// views — and 0 for network-wide events.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        name: &'static str,
        layer: &'static str,
        node: u32,
        depth: u32,
        start_asn: u64,
        end_asn: u64,
        detail: i64,
    ) {
        self.spans.record(SpanEvent {
            name,
            layer,
            node,
            depth,
            start_asn,
            end_asn,
            detail,
            corr: self.corr,
        });
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let mut obs = Obs::disabled();
        let c = obs.metrics.counter("x");
        obs.metrics.inc(c, 9);
        obs.span("s", "l", NO_NODE, 0, 0, 1, 0);
        assert!(!obs.is_enabled());
        assert!(obs.metrics.snapshot().is_empty());
        assert!(obs.spans.is_empty());
    }

    #[test]
    fn enabled_handle_records() {
        let mut obs = Obs::enabled(4);
        assert!(obs.is_enabled());
        let c = obs.metrics.counter("x");
        obs.metrics.inc(c, 2);
        obs.span("s", "l", 3, 1, 10, 20, -1);
        assert_eq!(obs.metrics.snapshot().counter("x"), Some(2));
        assert_eq!(obs.spans.iter().next().unwrap().duration_slots(), 10);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Obs::default().is_enabled());
    }

    #[test]
    fn ambient_correlation_stamps_spans_while_set() {
        let mut obs = Obs::enabled(4);
        obs.span("before", "l", NO_NODE, 0, 0, 0, 0);
        obs.set_correlation(7);
        obs.span("inside", "l", NO_NODE, 0, 1, 1, 0);
        obs.clear_correlation();
        obs.span("after", "l", NO_NODE, 0, 2, 2, 0);
        let corrs: Vec<u64> = obs.spans.iter().map(|e| e.corr).collect();
        assert_eq!(corrs, vec![NO_CORRELATION, 7, NO_CORRELATION]);
        assert_eq!(obs.correlation(), NO_CORRELATION);
    }
}
