//! Prometheus text-format encoding of [`MetricsSnapshot`]s.
//!
//! The `harpd` daemon serves its `/metrics` endpoint straight from the
//! in-tree metrics registry; this module renders one or more snapshots —
//! each tagged with a label set such as `tenant="plant7"` — in the
//! [Prometheus text exposition format] (version 0.0.4), the same
//! hand-rolled-writer philosophy as the JSON modules.
//!
//! Mapping:
//!
//! * counters → `# TYPE <name> counter` samples;
//! * gauges → `# TYPE <name> gauge` samples;
//! * histograms → `# TYPE <name> histogram` with cumulative
//!   `<name>_bucket{le="..."}` samples, `<name>_sum` and `<name>_count`,
//!   plus derived `<name>_p50` / `<name>_p95` / `<name>_p99` gauges so the
//!   percentiles the repo's reports quote are scrapeable without PromQL
//!   `histogram_quantile`.
//!
//! Metric names are sanitised to the Prometheus charset (`[a-zA-Z0-9_:]`,
//! non-digit first char): the registry's `harp.adjustments` becomes
//! `harp_adjustments`. A `TYPE` line is emitted once per metric name even
//! when many label groups carry it.
//!
//! [`validate_exposition`] is the consumer-side check used by the HTTP
//! loopback tests and the `harp_load --smoke` CI client: it rejects
//! malformed sample lines, label syntax, duplicate series and samples of
//! undeclared histogram types.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One label set attached to every series of a snapshot: `(key, value)`
/// pairs, rendered in the given order.
pub type Labels = Vec<(String, String)>;

/// Sanitises a registry metric name into the Prometheus charset: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is
/// prefixed with `_`.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escapes a label value (`\` → `\\`, `"` → `\"`, newline → `\n`).
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(&v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

#[derive(Default)]
struct Family<'a> {
    /// The first registry name that sanitised to this family (shown as the
    /// HELP text so a scrape maps back to the in-tree metric).
    source: Option<&'a str>,
    counters: Vec<(&'a Labels, u64)>,
    gauges: Vec<(&'a Labels, f64)>,
    histograms: Vec<(&'a Labels, &'a HistogramSnapshot)>,
}

impl<'a> Family<'a> {
    fn of<'m>(families: &'m mut BTreeMap<String, Family<'a>>, name: &'a str) -> &'m mut Family<'a> {
        let family = families.entry(sanitize_name(name)).or_default();
        family.source.get_or_insert(name);
        family
    }
}

/// Renders snapshots as one Prometheus text document.
///
/// `groups` pairs a label set with the snapshot it applies to; the daemon
/// passes its own registry with no labels plus one group per tenant with
/// `tenant="<id>"`. Series are ordered by sanitised metric name and, within
/// a name, by group order, so the output is stable for a given input.
#[must_use]
pub fn render_exposition(groups: &[(Labels, MetricsSnapshot)]) -> String {
    // Fold every group into per-name families so each TYPE header is
    // emitted exactly once even when many tenants share a metric name.
    let mut families: BTreeMap<String, Family<'_>> = BTreeMap::new();
    for (labels, snap) in groups {
        for (name, &v) in &snap.counters {
            Family::of(&mut families, name).counters.push((labels, v));
        }
        for (name, &v) in &snap.gauges {
            Family::of(&mut families, name).gauges.push((labels, v));
        }
        for (name, h) in &snap.histograms {
            Family::of(&mut families, name).histograms.push((labels, h));
        }
    }

    let mut out = String::new();
    for (name, family) in &families {
        let source = family.source.unwrap_or("");
        let _ = writeln!(out, "# HELP {name} registry metric {source}");
        if !family.counters.is_empty() {
            let _ = writeln!(out, "# TYPE {name} counter");
            for (labels, v) in &family.counters {
                let _ = writeln!(out, "{name}{} {v}", render_labels(labels, None));
            }
        }
        if !family.gauges.is_empty() {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (labels, v) in &family.gauges {
                let _ = writeln!(
                    out,
                    "{name}{} {}",
                    render_labels(labels, None),
                    fmt_value(*v)
                );
            }
        }
        if !family.histograms.is_empty() {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (labels, h) in &family.histograms {
                let mut cumulative = 0u64;
                for (i, &n) in h.counts.iter().enumerate() {
                    cumulative += n;
                    let le = match h.bounds.get(i) {
                        Some(&b) => format!("{b}"),
                        None => "+Inf".to_owned(),
                    };
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cumulative}",
                        render_labels(labels, Some(("le", le)))
                    );
                }
                let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels, None), h.sum);
                let _ = writeln!(
                    out,
                    "{name}_count{} {}",
                    render_labels(labels, None),
                    h.count
                );
            }
            // Derived percentile gauges, one family per quantile.
            for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                let _ = writeln!(out, "# HELP {name}_{suffix} {suffix} of {source}");
                let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
                for (labels, h) in &family.histograms {
                    let _ = writeln!(
                        out,
                        "{name}_{suffix}{} {}",
                        render_labels(labels, None),
                        h.percentile(q)
                    );
                }
            }
        }
    }
    out
}

/// Checks a Prometheus text document for structural validity: every
/// non-comment line must be `name[{labels}] value`, names must fit the
/// Prometheus charset, label values must be well-quoted, histogram
/// `_bucket`/`_sum`/`_count` samples must follow a `histogram` TYPE
/// declaration, and no series (name + label set) may repeat.
///
/// # Errors
///
/// A message naming the first offending line (1-based).
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    // Families whose sample block has started, and the family the previous
    // sample belonged to — used to reject declarations arriving after their
    // samples and families split across the document.
    let mut sampled: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut current_family: Option<String> = None;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let err = |msg: &str| Err(format!("line {lineno}: {msg}: {line}"));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            // Only HELP/TYPE comments carry structure.
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return err("malformed TYPE line");
                };
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return err("unknown metric type");
                }
                if sampled.contains(name) {
                    return err("TYPE declared after samples of its family");
                }
                if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                    return err("duplicate TYPE declaration");
                }
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let Some(name) = decl.split_whitespace().next() else {
                    return err("malformed HELP line");
                };
                if sampled.contains(name) {
                    return err("HELP declared after samples of its family");
                }
                if !helps.insert(name.to_owned()) {
                    return err("duplicate HELP declaration");
                }
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        let (series, value) = match line.rfind(' ') {
            Some(pos) => (&line[..pos], &line[pos + 1..]),
            None => return err("sample line without value"),
        };
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return err("unparseable sample value");
        }
        let name = match series.find('{') {
            Some(brace) => {
                if !series.ends_with('}') {
                    return err("unterminated label set");
                }
                validate_labels(&series[brace + 1..series.len() - 1])
                    .map_err(|m| format!("line {lineno}: {m}: {line}"))?;
                &series[..brace]
            }
            None => series,
        };
        if name.is_empty() || !name.chars().enumerate().all(|(j, c)| is_name_char(c, j)) {
            return err("invalid metric name");
        }
        // A histogram sample must belong to a declared histogram family;
        // the `_bucket`/`_sum`/`_count` samples fold into that family for
        // the contiguity check below.
        let mut family = name;
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if types.get(base).is_some_and(|k| k == "histogram") {
                    if suffix == "_bucket" && !series.contains("le=\"") {
                        return err("histogram bucket without le label");
                    }
                    family = base;
                    break;
                }
            }
        }
        // All samples of one family must form a single contiguous block:
        // re-entering a family whose block already ended means HELP/TYPE no
        // longer precede every one of its samples.
        if current_family.as_deref() != Some(family) {
            if sampled.contains(family) {
                return err("metric family samples are not contiguous");
            }
            sampled.insert(family.to_owned());
            current_family = Some(family.to_owned());
        }
        if !seen.insert(series.to_owned()) {
            return err("duplicate series");
        }
    }
    Ok(())
}

fn is_name_char(c: char, index: usize) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (index > 0 && c.is_ascii_digit())
}

fn validate_labels(body: &str) -> Result<(), String> {
    // Labels render as k="v" pairs joined by commas; values may contain
    // escaped quotes/backslashes, so split on quote state, not commas.
    let mut rest = body;
    loop {
        let Some(eq) = rest.find('=') else {
            return Err("label pair without '='".into());
        };
        let key = &rest[..eq];
        if key.is_empty() || !key.chars().enumerate().all(|(j, c)| is_name_char(c, j)) {
            return Err(format!("invalid label name '{key}'"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err("label value must be quoted".into());
        }
        let mut escaped = false;
        let mut close = None;
        for (j, c) in after.char_indices().skip(1) {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(j);
                break;
            }
        }
        let Some(close) = close else {
            return Err("unterminated label value".into());
        };
        rest = &after[close + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| "expected ',' between labels".to_owned())?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut r = MetricsRegistry::new(true);
        let c = r.counter("harp.adjustments");
        let g = r.gauge("harpd.networks");
        let h = r.histogram("harpd.request_us", &[10, 100]);
        r.inc(c, 7);
        r.set(g, 3.0);
        r.observe(h, 5);
        r.observe(h, 50);
        r.observe(h, 5000);
        r.snapshot()
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let text = render_exposition(&[(Vec::new(), sample_snapshot())]);
        assert!(text.contains("# TYPE harp_adjustments counter\nharp_adjustments 7\n"));
        assert!(text.contains("# TYPE harpd_networks gauge\nharpd_networks 3\n"));
        assert!(text.contains("harpd_request_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("harpd_request_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("harpd_request_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("harpd_request_us_sum 5055"));
        assert!(text.contains("harpd_request_us_count 3"));
        assert!(text.contains("# TYPE harpd_request_us_p99 gauge"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn tenant_labels_share_one_type_header() {
        let groups = vec![
            (
                vec![("tenant".to_owned(), "a".to_owned())],
                sample_snapshot(),
            ),
            (
                vec![("tenant".to_owned(), "b\"x".to_owned())],
                sample_snapshot(),
            ),
        ];
        let text = render_exposition(&groups);
        assert_eq!(text.matches("# TYPE harp_adjustments counter").count(), 1);
        assert!(text.contains("harp_adjustments{tenant=\"a\"} 7"));
        assert!(text.contains("harp_adjustments{tenant=\"b\\\"x\"} 7"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn empty_groups_render_empty() {
        let text = render_exposition(&[]);
        assert!(text.is_empty());
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("harp.mgmt-messages"), "harp_mgmt_messages");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_exposition("no_value_here\n").is_err());
        assert!(validate_exposition("bad name 1\n").is_err());
        assert!(validate_exposition("x{unterminated 1\n").is_err());
        assert!(validate_exposition("x{k=unquoted} 1\n").is_err());
        assert!(validate_exposition("x{k=\"open} 1\n").is_err());
        assert!(
            validate_exposition("x 1\nx 1\n").is_err(),
            "duplicate series"
        );
        assert!(validate_exposition("# TYPE h histogram\nh_bucket 1\n").is_err());
        assert!(validate_exposition("# TYPE x widget\n").is_err());
        assert!(validate_exposition("# TYPE x gauge\n# TYPE x gauge\n").is_err());
    }

    #[test]
    fn validator_rejects_declarations_after_samples() {
        let late_type = "x 1\n# TYPE x gauge\nx{t=\"a\"} 2\n";
        assert!(
            validate_exposition(late_type)
                .unwrap_err()
                .contains("TYPE declared after samples"),
            "a TYPE line must precede every sample of its family"
        );
        let late_help = "x 1\n# HELP x about x\n";
        assert!(validate_exposition(late_help)
            .unwrap_err()
            .contains("HELP declared after samples"));
        assert!(validate_exposition("# HELP x a\n# HELP x b\n")
            .unwrap_err()
            .contains("duplicate HELP"));
    }

    #[test]
    fn validator_rejects_split_families() {
        // `a`'s samples are interrupted by `b`: the second `a` block no
        // longer sits under `a`'s declarations.
        let split = "a{t=\"1\"} 1\nb 2\na{t=\"2\"} 3\n";
        assert!(
            validate_exposition(split)
                .unwrap_err()
                .contains("not contiguous"),
            "family blocks must be contiguous"
        );
        // Histogram `_bucket`/`_sum`/`_count` samples are one family and
        // may follow each other freely within the block.
        let histogram = "# TYPE h histogram\n\
                         h_bucket{le=\"1\",tenant=\"a\"} 1\n\
                         h_sum{tenant=\"a\"} 1\n\
                         h_count{tenant=\"a\"} 1\n\
                         h_bucket{le=\"1\",tenant=\"b\"} 2\n\
                         h_sum{tenant=\"b\"} 2\n\
                         h_count{tenant=\"b\"} 2\n";
        validate_exposition(histogram).unwrap();
    }

    #[test]
    fn help_lines_precede_every_family() {
        let text = render_exposition(&[(Vec::new(), sample_snapshot())]);
        assert!(
            text.contains("# HELP harp_adjustments registry metric harp.adjustments\n# TYPE harp_adjustments counter\n"),
            "{text}"
        );
        assert!(
            text.contains("# HELP harpd_request_us_p99 p99 of harpd.request_us\n"),
            "{text}"
        );
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn validator_accepts_escaped_labels_and_inf() {
        let doc = "# TYPE h histogram\n\
                   h_bucket{le=\"10\",tenant=\"a\\\"b\"} 1\n\
                   h_bucket{le=\"+Inf\",tenant=\"a\\\"b\"} 2\n\
                   h_sum{tenant=\"a\\\"b\"} 12\n\
                   h_count{tenant=\"a\\\"b\"} 2\n\
                   free_form 1.5\n";
        validate_exposition(doc).unwrap();
    }
}
