//! Always-on flight recorder: a bounded ring of recent structured events
//! for post-mortem debugging of a live service.
//!
//! Metrics answer "how much", spans answer "where did the time go"; the
//! flight recorder answers "what happened in the last N events before this
//! incident". It records discrete, tagged occurrences — requests served,
//! fault-plan actions fired, storm-detector windows, retransmission bursts
//! — each stamped with a caller-supplied timestamp (`at`), an optional
//! tenant, and the correlation id of the request that caused it. The ring
//! never allocates past its capacity, so it is cheap enough to leave on in
//! production, and eviction is accounted (`dropped`) so a dump can never be
//! mistaken for a complete history.
//!
//! When something trips — the adjustment-storm detector fires, or a request
//! breaches the latency SLO — [`FlightRecorder::trip`] freezes the ring
//! *as it was at that moment* into an incident snapshot. Later events keep
//! recording into the live ring, but the frozen dump preserves the lead-up
//! to the first breach for `/debug/flight?incident`.
//!
//! Determinism: the recorder never reads a wall clock or RNG — every
//! timestamp comes from the caller (µs-since-boot in `harpd`, ASN in the
//! scenario runner), so a seeded scenario produces byte-identical dumps
//! across runs and thread counts (pinned by `flight_determinism`).

use std::collections::VecDeque;

/// Node id meaning "no specific node" in a [`FlightEvent`].
pub const NO_FLIGHT_NODE: i64 = -1;

/// One recorded occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number, assigned by the recorder (1-based).
    pub seq: u64,
    /// Caller-supplied timestamp: µs since service start for daemon
    /// events, ASN for simulation events.
    pub at: u64,
    /// Event class (`"request"`, `"fault"`, `"storm"`, `"retx"`,
    /// `"slo_breach"`, ...).
    pub kind: &'static str,
    /// Tenant the event belongs to (empty for service-wide events).
    pub tenant: String,
    /// Correlation id of the causing request (0 outside request scope).
    pub corr: u64,
    /// Node concerned, or [`NO_FLIGHT_NODE`].
    pub node: i64,
    /// Free-form label (route, fault action, storm window, ...).
    pub detail: String,
    /// Free-form magnitude (latency µs, cells moved, span count, ...).
    pub magnitude: i64,
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl FlightEvent {
    /// Renders the event as one JSON object (the element shape of
    /// [`FlightRecorder::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"at\": {}, \"kind\": \"{}\", \"tenant\": \"{}\", \"corr\": {}, \"node\": {}, \"detail\": \"{}\", \"magnitude\": {}}}",
            self.seq,
            self.at,
            escape(self.kind),
            escape(&self.tenant),
            self.corr,
            self.node,
            escape(&self.detail),
            self.magnitude,
        )
    }
}

/// A frozen incident snapshot: the ring as it stood when the first trip
/// fired, plus why it fired.
#[derive(Debug, Clone)]
struct Incident {
    reason: String,
    at_seq: u64,
    dump: String,
}

/// The bounded event ring (capacity 0 disables recording entirely).
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    seq: u64,
    trips: u64,
    incident: Option<Incident>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            seq: 0,
            trips: 0,
            incident: None,
        }
    }

    /// Records one event, assigning its sequence number and evicting the
    /// oldest when full. The caller's `seq` field is overwritten.
    pub fn record(&mut self, mut event: FlightEvent) {
        if self.capacity == 0 {
            return;
        }
        self.seq += 1;
        event.seq = self.seq;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// Total events ever recorded (including evicted ones).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.seq
    }

    /// Events recorded but no longer retained (ring eviction).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.seq - self.events.len() as u64
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// How many times [`FlightRecorder::trip`] has fired.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Renders up to `limit` of the most recent events as
    /// `{"total_recorded", "dropped", "trips", "events": [...]}` —
    /// `dropped` counts events absent from the output (eviction plus the
    /// render limit), so a tail is never mistaken for the whole history.
    #[must_use]
    pub fn to_json(&self, limit: usize) -> String {
        let skip = self.events.len().saturating_sub(limit);
        let mut body = String::new();
        let mut rendered = 0u64;
        for e in self.events.iter().skip(skip) {
            if rendered > 0 {
                body.push_str(", ");
            }
            body.push_str(&e.to_json());
            rendered += 1;
        }
        let dropped = self.seq.saturating_sub(rendered);
        format!(
            "{{\"total_recorded\": {}, \"dropped\": {dropped}, \"trips\": {}, \"events\": [{body}]}}",
            self.seq, self.trips,
        )
    }

    /// Trips the recorder: freezes the current ring into an incident
    /// snapshot tagged with `reason`. Only the **first** trip freezes (the
    /// lead-up to the first breach is the post-mortem that matters); later
    /// trips are counted but do not overwrite it. Returns whether this
    /// call created the snapshot.
    pub fn trip(&mut self, reason: &str) -> bool {
        self.trips += 1;
        if self.incident.is_some() {
            return false;
        }
        self.incident = Some(Incident {
            reason: reason.to_owned(),
            at_seq: self.seq,
            dump: self.to_json(self.capacity.max(self.events.len())),
        });
        true
    }

    /// The frozen incident as `{"reason", "tripped_at_seq", "dump"}`, or
    /// `None` if nothing has tripped yet.
    #[must_use]
    pub fn incident_json(&self) -> Option<String> {
        self.incident.as_ref().map(|i| {
            format!(
                "{{\"reason\": \"{}\", \"tripped_at_seq\": {}, \"dump\": {}}}",
                escape(&i.reason),
                i.at_seq,
                i.dump,
            )
        })
    }

    /// Discards the frozen incident so the next trip freezes again.
    pub fn clear_incident(&mut self) {
        self.incident = None;
    }
}

/// One event as read back from a dump (owned strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFlightEvent {
    /// Sequence number in the producing recorder.
    pub seq: u64,
    /// Caller-supplied timestamp (µs or ASN — see [`FlightEvent::at`]).
    pub at: u64,
    /// Event class.
    pub kind: String,
    /// Tenant tag (empty for service-wide events).
    pub tenant: String,
    /// Correlation id (0 outside request scope).
    pub corr: u64,
    /// Node concerned, or [`NO_FLIGHT_NODE`].
    pub node: i64,
    /// Free-form label.
    pub detail: String,
    /// Free-form magnitude.
    pub magnitude: i64,
}

/// A parsed flight-recorder dump: events plus truncation accounting.
#[derive(Debug, Clone, Default)]
pub struct FlightDoc {
    /// The retained events, in dump order (oldest first).
    pub events: Vec<ParsedFlightEvent>,
    /// Events ever recorded by the producing recorder.
    pub total_recorded: u64,
    /// Events recorded but absent from `events`.
    pub dropped: u64,
    /// Trip count of the producing recorder.
    pub trips: u64,
}

impl FlightDoc {
    /// Parses a dump produced by [`FlightRecorder::to_json`], or an
    /// incident wrapper produced by [`FlightRecorder::incident_json`]
    /// (the nested `"dump"` is unwrapped).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn parse_str(text: &str) -> Result<Self, String> {
        let doc = crate::json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc)
    }

    /// See [`FlightDoc::parse_str`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(doc: &crate::json::Json) -> Result<Self, String> {
        use crate::json::Json;
        if let Some(dump) = doc.get("dump") {
            return Self::from_json(dump);
        }
        let arr = doc
            .get("events")
            .and_then(Json::as_arr)
            .ok_or_else(|| "flight dump missing \"events\" array".to_owned())?;
        let num = |v: &Json, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("flight event missing numeric field {key:?}"))
        };
        let text = |v: &Json, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("flight event missing string field {key:?}"))
        };
        let mut events = Vec::with_capacity(arr.len());
        for v in arr {
            events.push(ParsedFlightEvent {
                seq: num(v, "seq")? as u64,
                at: num(v, "at")? as u64,
                kind: text(v, "kind")?,
                tenant: text(v, "tenant")?,
                corr: num(v, "corr")? as u64,
                node: num(v, "node")? as i64,
                detail: text(v, "detail")?,
                magnitude: num(v, "magnitude")? as i64,
            });
        }
        let top = |key: &str| doc.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        Ok(Self {
            total_recorded: if doc.get("total_recorded").is_some() {
                top("total_recorded")
            } else {
                events.len() as u64
            },
            dropped: top("dropped"),
            trips: top("trips"),
            events,
        })
    }

    /// Folds the events into [`TraceSpan`](crate::flame::TraceSpan)s so the
    /// existing flame/heatmap/storm machinery renders a flight dump: each
    /// event becomes an instantaneous span named by its kind, laid on a
    /// per-tenant layer (`"service"` for untagged events), with the
    /// magnitude as detail.
    #[must_use]
    pub fn to_trace_spans(&self) -> Vec<crate::flame::TraceSpan> {
        self.events
            .iter()
            .map(|e| crate::flame::TraceSpan {
                name: e.kind.clone(),
                layer: if e.tenant.is_empty() {
                    "service".to_owned()
                } else {
                    e.tenant.clone()
                },
                node: e.node,
                depth: 0,
                start_asn: e.at,
                end_asn: e.at,
                detail: e.magnitude,
                corr: e.corr,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(at: u64, kind: &'static str, tenant: &str) -> FlightEvent {
        FlightEvent {
            seq: 0,
            at,
            kind,
            tenant: tenant.to_owned(),
            corr: 0,
            node: NO_FLIGHT_NODE,
            detail: "x".to_owned(),
            magnitude: 1,
        }
    }

    #[test]
    fn ring_evicts_and_accounts_dropped() {
        let mut r = FlightRecorder::new(2);
        for i in 0..5 {
            r.record(ev(i, "request", "t1"));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_recorded(), 5);
        assert_eq!(r.dropped(), 3);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5], "seq is assigned by the recorder");
        let doc = json::parse(&r.to_json(10)).unwrap();
        assert_eq!(doc.get("dropped").and_then(json::Json::as_f64), Some(3.0));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut r = FlightRecorder::new(0);
        r.record(ev(0, "request", ""));
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 0);
    }

    #[test]
    fn render_limit_counts_as_dropped() {
        let mut r = FlightRecorder::new(8);
        for i in 0..5 {
            r.record(ev(i, "request", ""));
        }
        let doc = json::parse(&r.to_json(2)).unwrap();
        assert_eq!(doc.get("dropped").and_then(json::Json::as_f64), Some(3.0));
        let events = doc.get("events").and_then(json::Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("at").and_then(json::Json::as_f64), Some(3.0));
    }

    #[test]
    fn first_trip_freezes_later_trips_count() {
        let mut r = FlightRecorder::new(8);
        r.record(ev(1, "request", "t1"));
        assert!(r.trip("slo p99 breach"));
        r.record(ev(2, "request", "t2"));
        assert!(!r.trip("storm"), "second trip must not overwrite");
        assert_eq!(r.trips(), 2);
        let incident = r.incident_json().unwrap();
        let doc = json::parse(&incident).unwrap();
        assert_eq!(
            doc.get("reason").and_then(json::Json::as_str),
            Some("slo p99 breach")
        );
        let dump = doc.get("dump").unwrap();
        let events = dump.get("events").and_then(json::Json::as_arr).unwrap();
        assert_eq!(events.len(), 1, "frozen before the t2 event");
        r.clear_incident();
        assert!(r.trip("again"), "cleared incident re-arms the freeze");
    }

    #[test]
    fn dump_round_trips_and_folds_to_trace_spans() {
        let mut r = FlightRecorder::new(8);
        r.record(FlightEvent {
            corr: 9,
            node: 5,
            magnitude: 42,
            ..ev(100, "adjust", "t1")
        });
        r.record(ev(200, "fault", ""));
        let doc = FlightDoc::parse_str(&r.to_json(10)).unwrap();
        assert_eq!(doc.total_recorded, 2);
        assert_eq!(doc.events[0].kind, "adjust");
        assert_eq!(doc.events[0].corr, 9);
        let spans = doc.to_trace_spans();
        assert_eq!(spans[0].layer, "t1");
        assert_eq!(
            spans[1].layer, "service",
            "untagged events fold to the service lane"
        );
        assert_eq!(spans[0].start_asn, 100);
        assert_eq!(spans[0].detail, 42);
        assert_eq!(spans[0].corr, 9);
        // The incident wrapper parses too.
        r.trip("storm");
        let doc = FlightDoc::parse_str(&r.incident_json().unwrap()).unwrap();
        assert_eq!(doc.events.len(), 2);
    }

    #[test]
    fn detail_is_escaped() {
        let mut r = FlightRecorder::new(2);
        r.record(FlightEvent {
            detail: "say \"hi\"\n".to_owned(),
            ..ev(1, "request", "")
        });
        let doc = json::parse(&r.to_json(2)).unwrap();
        let events = doc.get("events").and_then(json::Json::as_arr).unwrap();
        assert_eq!(
            events[0].get("detail").and_then(json::Json::as_str),
            Some("say \"hi\"\n")
        );
    }
}
