//! Golden-output and property tests for the trace-analysis views.
//!
//! The golden tests pin exact bytes for a deterministic span fixture: the
//! collapsed-stack and Chrome exports are consumed by external tools
//! (inferno, `chrome://tracing`), so their format is a contract, not an
//! implementation detail. The property test drives randomly generated
//! (seeded) traces through every fold and checks the invariant all of them
//! must preserve: total span-slot mass.

use harp_obs::flame::{
    chrome_trace, collapsed_stacks, detect_storms, text_flame, total_mass, utilization_heatmap,
    TraceDoc, TraceSpan,
};
use harp_obs::{spans_to_json, SpanEvent, NO_NODE};

/// The fixture: a slotframe span, two adjustments at different depths, and
/// a retransmission — one span per subsystem shape the workspace records.
fn fixture() -> Vec<SpanEvent> {
    vec![
        SpanEvent {
            name: "slotframe",
            layer: "sim",
            node: NO_NODE,
            depth: 0,
            start_asn: 0,
            end_asn: 198,
            detail: 4,
            corr: 0,
        },
        SpanEvent {
            name: "adjust",
            layer: "harp",
            node: 7,
            depth: 2,
            start_asn: 50,
            end_asn: 249,
            detail: 12,
            corr: 0,
        },
        SpanEvent {
            name: "adjust",
            layer: "harp",
            node: 12,
            depth: 3,
            start_asn: 200,
            end_asn: 299,
            detail: 6,
            corr: 0,
        },
        SpanEvent {
            name: "retx",
            layer: "transport",
            node: 12,
            depth: 3,
            start_asn: 210,
            end_asn: 210,
            detail: 1,
            corr: 0,
        },
    ]
}

fn fixture_doc() -> TraceDoc {
    TraceDoc::from_events(&fixture())
}

#[test]
fn collapsed_stacks_golden() {
    let doc = fixture_doc();
    assert_eq!(
        collapsed_stacks(&doc.spans),
        "harp;adjust;N12 100\n\
         harp;adjust;N7 200\n\
         sim;slotframe;net 199\n\
         transport;retx;N12 1\n"
    );
}

#[test]
fn chrome_trace_golden() {
    let doc = fixture_doc();
    assert_eq!(
        chrome_trace(&doc.spans, 10_000),
        "[{\"name\": \"slotframe\", \"cat\": \"sim\", \"ph\": \"X\", \"ts\": 0, \"dur\": 1990000, \"pid\": 0, \"tid\": 1, \"args\": {\"node\": -1, \"depth\": 0, \"detail\": 4}},\n \
          {\"name\": \"adjust\", \"cat\": \"harp\", \"ph\": \"X\", \"ts\": 500000, \"dur\": 2000000, \"pid\": 8, \"tid\": 0, \"args\": {\"node\": 7, \"depth\": 2, \"detail\": 12}},\n \
          {\"name\": \"adjust\", \"cat\": \"harp\", \"ph\": \"X\", \"ts\": 2000000, \"dur\": 1000000, \"pid\": 13, \"tid\": 0, \"args\": {\"node\": 12, \"depth\": 3, \"detail\": 6}},\n \
          {\"name\": \"retx\", \"cat\": \"transport\", \"ph\": \"X\", \"ts\": 2100000, \"dur\": 10000, \"pid\": 13, \"tid\": 2, \"args\": {\"node\": 12, \"depth\": 3, \"detail\": 1}}]\n"
    );
}

#[test]
fn chrome_trace_validates_as_complete_event_array() {
    let doc = fixture_doc();
    let out = chrome_trace(&doc.spans, 10_000);
    let parsed = harp_obs::json::parse(&out).expect("valid JSON");
    let events = parsed.as_arr().expect("a JSON array");
    assert_eq!(events.len(), doc.spans.len());
    for e in events {
        assert_eq!(
            e.get("ph").and_then(harp_obs::json::Json::as_str),
            Some("X"),
            "every event is complete"
        );
        for key in ["name", "cat", "ts", "dur", "pid", "tid", "args"] {
            assert!(e.get(key).is_some(), "event missing {key}");
        }
    }
}

#[test]
fn text_flame_golden() {
    let doc = fixture_doc();
    assert_eq!(
        text_flame(&doc.spans),
        "# flame view: 4 spans, 500 span-slots total\n\
         \n\
         ## by layer/name (span-slots)\n\
         harp/adjust           300 ########################################\n\
         sim/slotframe         199 ##########################\n\
         transport/retx          1 #\n\
         \n\
         ## by node (span-slots)\n\
         N7              200 ########################################\n\
         net             199 #######################################\n\
         N12             101 ####################\n\
         \n\
         ## by tree depth (span-slots)\n\
         L2              200 ########################################\n\
         L0              199 #######################################\n\
         L3              101 ####################\n\
         \n"
    );
}

#[test]
fn json_round_trip_preserves_every_fold() {
    // Serialise the fixture through the ring's JSON writer, parse it back,
    // and check that every view renders identically to the live path.
    let events = fixture();
    let json = spans_to_json(events.iter(), events.len() as u64);
    let parsed = TraceDoc::parse_str(&json).expect("ring JSON parses");
    let live = fixture_doc();
    assert_eq!(parsed.spans, live.spans);
    assert_eq!(parsed.dropped, 0);
    assert_eq!(
        collapsed_stacks(&parsed.spans),
        collapsed_stacks(&live.spans)
    );
    assert_eq!(
        chrome_trace(&parsed.spans, 10_000),
        chrome_trace(&live.spans, 10_000)
    );
    assert_eq!(text_flame(&parsed.spans), text_flame(&live.spans));
    assert_eq!(
        utilization_heatmap(&parsed.spans, 32),
        utilization_heatmap(&live.spans, 32)
    );
}

/// Minimal deterministic RNG (xorshift64*) — no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn random_spans(seed: u64, count: usize) -> Vec<TraceSpan> {
    const NAMES: [&str; 4] = ["adjust", "change", "slotframe", "retx"];
    const LAYERS: [&str; 3] = ["harp", "sim", "transport"];
    let mut rng = Rng(seed | 1);
    (0..count)
        .map(|_| {
            let start = rng.below(10_000);
            let node = if rng.below(5) == 0 {
                -1
            } else {
                rng.below(50) as i64
            };
            TraceSpan {
                name: NAMES[rng.below(NAMES.len() as u64) as usize].to_owned(),
                layer: LAYERS[rng.below(LAYERS.len() as u64) as usize].to_owned(),
                node,
                depth: rng.below(10) as u32,
                start_asn: start,
                end_asn: start + rng.below(500),
                detail: rng.below(100) as i64,
                corr: 0,
            }
        })
        .collect()
}

#[test]
fn property_folds_preserve_total_span_slot_mass() {
    for seed in [3, 0xBEEF, 0x1234_5678, u64::MAX / 7] {
        for count in [1usize, 2, 17, 128] {
            let spans = random_spans(seed, count);
            let total = total_mass(&spans);

            // Collapsed stacks: the masses sum back to the total.
            let collapsed: u64 = collapsed_stacks(&spans)
                .lines()
                .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
                .sum();
            assert_eq!(collapsed, total, "collapsed seed={seed} count={count}");

            // Chrome: durations are mass × slot_us, summed over all events.
            let slot_us = 100;
            let chrome = chrome_trace(&spans, slot_us);
            let parsed = harp_obs::json::parse(&chrome).unwrap();
            let dur_sum: f64 = parsed
                .as_arr()
                .unwrap()
                .iter()
                .map(|e| e.get("dur").and_then(harp_obs::json::Json::as_f64).unwrap())
                .sum();
            assert_eq!(
                dur_sum as u64,
                total * slot_us,
                "chrome seed={seed} count={count}"
            );

            // Heatmap: integer bucket attribution loses nothing — the cell
            // masses in the header's peak line come from the same fold; we
            // recompute via the public API by summing every layer row's
            // contribution through a 1-bucket render (the single cell then
            // holds each layer's whole mass).
            let one_col = utilization_heatmap(&spans, 1);
            assert!(one_col.starts_with("# utilization heatmap:"));

            // The flame header states the same total.
            let flame = text_flame(&spans);
            assert!(
                flame.contains(&format!("{total} span-slots total")),
                "flame seed={seed} count={count}"
            );

            // Storm detection never invents spans: each storm's span_count
            // is bounded by the adjustment-class span population.
            let adjustment_population = spans
                .iter()
                .filter(|s| ["adjust", "change"].contains(&s.name.as_str()))
                .count();
            for storm in detect_storms(&spans, 2) {
                assert!(storm.span_count <= adjustment_population);
                assert!(storm.nodes.len() >= 2);
                assert!(storm.start_asn <= storm.end_asn);
            }
        }
    }
}
