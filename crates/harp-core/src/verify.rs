//! Invariant verification: machine-checkable statements of HARP's claimed
//! properties.
//!
//! The paper's correctness argument rests on three structural invariants —
//! partition nesting, sibling isolation, and schedule exclusivity — plus
//! the latency-compliant layer ordering of the static allocation. This
//! module checks all of them over concrete artefacts and reports every
//! violation found (an empty report is the proof obligation used throughout
//! the test suites, examples and experiment binaries).

use crate::allocation::PartitionTable;
use crate::requirement::Requirements;
use core::fmt;
use tsch_sim::{Direction, Link, NetworkSchedule, NodeId, Tree};

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A cell is assigned to more than one link.
    SharedCell {
        /// The shared cell.
        cell: tsch_sim::Cell,
        /// How many links claim it.
        claimants: usize,
    },
    /// A link received fewer cells than it requires.
    Shortfall {
        /// The shortchanged link.
        link: Link,
        /// Cells required.
        required: u32,
        /// Cells granted.
        granted: usize,
    },
    /// A child's partition is not contained in its parent's at the same
    /// layer.
    NotNested {
        /// The child subtree root.
        child: NodeId,
        /// The affected layer.
        layer: u32,
        /// The direction.
        direction: Direction,
    },
    /// Two sibling subtrees' partitions overlap at a layer.
    SiblingOverlap {
        /// One sibling.
        a: NodeId,
        /// The other sibling.
        b: NodeId,
        /// The affected layer.
        layer: u32,
        /// The direction.
        direction: Direction,
    },
    /// Two nodes' scheduling areas overlap (would produce collisions).
    SchedulingAreaOverlap {
        /// One scheduling node.
        a: NodeId,
        /// The other scheduling node.
        b: NodeId,
    },
    /// The uplink compliance order is broken: a child's uplink cells do not
    /// all precede its parent's.
    UplinkOrder {
        /// The child whose area comes too late.
        child: NodeId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SharedCell { cell, claimants } => {
                write!(f, "cell {cell} assigned to {claimants} links")
            }
            Violation::Shortfall {
                link,
                required,
                granted,
            } => {
                write!(f, "{link} granted {granted} of {required} cells")
            }
            Violation::NotNested {
                child,
                layer,
                direction,
            } => {
                write!(
                    f,
                    "{child} {direction} layer {layer} partition escapes its parent"
                )
            }
            Violation::SiblingOverlap {
                a,
                b,
                layer,
                direction,
            } => {
                write!(f, "{a} and {b} overlap at {direction} layer {layer}")
            }
            Violation::SchedulingAreaOverlap { a, b } => {
                write!(f, "scheduling areas of {a} and {b} overlap")
            }
            Violation::UplinkOrder { child } => {
                write!(f, "{child} uplink cells do not precede its parent's")
            }
        }
    }
}

/// Checks a schedule for shared cells and unmet demands.
#[must_use]
pub fn verify_schedule(
    tree: &Tree,
    requirements: &Requirements,
    schedule: &NetworkSchedule,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for cell in schedule.shared_cells() {
        out.push(Violation::SharedCell {
            cell,
            claimants: schedule.links_on(cell).len(),
        });
    }
    for (link, required, granted) in
        crate::schedule_gen::unsatisfied_links(tree, requirements, schedule)
    {
        out.push(Violation::Shortfall {
            link,
            required,
            granted,
        });
    }
    out
}

/// Checks a partition table's structural invariants: nesting, sibling
/// isolation, and pairwise-disjoint scheduling areas.
#[must_use]
pub fn verify_partitions(tree: &Tree, table: &PartitionTable) -> Vec<Violation> {
    let mut out = Vec::new();
    for direction in Direction::BOTH {
        for p in table.iter().filter(|p| p.direction == direction) {
            if p.node == tree.root() || p.rect.is_empty() {
                continue;
            }
            let parent = tree.parent(p.node).expect("non-root");
            if let Some(outer) = table.get(parent, direction, p.layer) {
                if !outer.contains_rect(&p.rect) {
                    out.push(Violation::NotNested {
                        child: p.node,
                        layer: p.layer,
                        direction,
                    });
                }
            }
        }
        // Sibling isolation per layer.
        for v in tree.nodes() {
            let kids = tree.children(v);
            for (i, &a) in kids.iter().enumerate() {
                for &b in &kids[i + 1..] {
                    for layer in 1..=tree.layers() {
                        let (Some(ra), Some(rb)) = (
                            table.get(a, direction, layer),
                            table.get(b, direction, layer),
                        ) else {
                            continue;
                        };
                        if ra.overlaps(&rb) {
                            out.push(Violation::SiblingOverlap {
                                a,
                                b,
                                layer,
                                direction,
                            });
                        }
                    }
                }
            }
        }
    }
    // Scheduling areas across the whole table (both directions together).
    let mut areas: Vec<(NodeId, packing::Rect)> = Vec::new();
    for direction in Direction::BOTH {
        for v in tree.nodes() {
            if tree.is_leaf(v) {
                continue;
            }
            if let Some(area) = table.scheduling_area(tree, v, direction) {
                if !area.is_empty() {
                    areas.push((v, area));
                }
            }
        }
    }
    for (i, &(a, ra)) in areas.iter().enumerate() {
        for &(b, rb) in &areas[i + 1..] {
            if ra.overlaps(&rb) {
                out.push(Violation::SchedulingAreaOverlap { a, b });
            }
        }
    }
    out
}

/// Checks the uplink compliance order of a *static* allocation: every
/// non-leaf node's uplink scheduling area must end before its parent's
/// begins (deeper layers first), so packets climb the tree within one
/// slotframe. Dynamic adjustments legitimately break this — the check is
/// for static allocations and for quantifying post-adjustment drift.
#[must_use]
pub fn verify_uplink_compliance(tree: &Tree, table: &PartitionTable) -> Vec<Violation> {
    let mut out = Vec::new();
    for v in tree.nodes().skip(1) {
        if tree.is_leaf(v) {
            continue;
        }
        let parent = tree.parent(v).expect("non-root");
        let (Some(child_area), Some(parent_area)) = (
            table.scheduling_area(tree, v, Direction::Up),
            table.scheduling_area(tree, parent, Direction::Up),
        ) else {
            continue;
        };
        if child_area.is_empty() || parent_area.is_empty() {
            continue;
        }
        if child_area.right() > parent_area.left() {
            out.push(Violation::UplinkOrder { child: v });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allocate_partitions, build_interfaces, generate_schedule, SchedulingPolicy};
    use tsch_sim::{Cell, SlotframeConfig};

    fn fig1_artifacts() -> (Tree, Requirements, PartitionTable, NetworkSchedule) {
        let tree = Tree::paper_fig1_example();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
            reqs.set(Link::down(v), tree.subtree_size(v));
        }
        let cfg = SlotframeConfig::paper_default();
        let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let table = allocate_partitions(&tree, &up, &down, cfg).unwrap();
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        (tree, reqs, table, schedule)
    }

    #[test]
    fn static_artifacts_pass_all_checks() {
        let (tree, reqs, table, schedule) = fig1_artifacts();
        assert!(verify_schedule(&tree, &reqs, &schedule).is_empty());
        assert!(verify_partitions(&tree, &table).is_empty());
        assert!(verify_uplink_compliance(&tree, &table).is_empty());
    }

    #[test]
    fn shared_cell_detected() {
        let (tree, reqs, _, mut schedule) = fig1_artifacts();
        // Force a duplicate: assign an existing cell to another link too.
        let (link, cells) = schedule
            .iter_links()
            .map(|(l, c)| (l, c.to_vec()))
            .next()
            .unwrap();
        let other = Link::up(NodeId(11));
        assert_ne!(link, other);
        schedule.assign(cells[0], other).unwrap();
        let violations = verify_schedule(&tree, &reqs, &schedule);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::SharedCell { claimants: 2, .. })));
    }

    #[test]
    fn shortfall_detected() {
        let (tree, reqs, _, mut schedule) = fig1_artifacts();
        schedule.unassign_link(Link::up(NodeId(9)));
        let violations = verify_schedule(&tree, &reqs, &schedule);
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::Shortfall { link, .. } if *link == Link::up(NodeId(9))
        )));
    }

    #[test]
    fn broken_nesting_detected() {
        let (tree, _, mut table, _) = fig1_artifacts();
        // Move node 7's layer-3 partition outside node 3's.
        table.set(
            NodeId(7),
            Direction::Up,
            3,
            packing::Rect::from_xywh(190, 0, 2, 1),
        );
        let violations = verify_partitions(&tree, &table);
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::NotNested {
                child: NodeId(7),
                layer: 3,
                ..
            }
        )));
    }

    #[test]
    fn sibling_overlap_detected() {
        let (tree, _, mut table, _) = fig1_artifacts();
        let rect = table.get(NodeId(7), Direction::Up, 3).unwrap();
        table.set(NodeId(8), Direction::Up, 3, rect);
        let violations = verify_partitions(&tree, &table);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::SiblingOverlap { layer: 3, .. })));
    }

    #[test]
    fn broken_compliance_detected() {
        let (tree, _, mut table, _) = fig1_artifacts();
        // Put node 7's (deeper) scheduling row after the gateway's.
        let gw_area = table
            .scheduling_area(&tree, tree.root(), Direction::Up)
            .unwrap();
        table.set(
            NodeId(7),
            Direction::Up,
            3,
            packing::Rect::from_xywh(gw_area.right() + 1, 0, 2, 1),
        );
        let violations = verify_uplink_compliance(&tree, &table);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::UplinkOrder { child: NodeId(7) })));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::SharedCell {
            cell: Cell::new(3, 1),
            claimants: 2,
        };
        assert!(v.to_string().contains("2 links"));
        let v = Violation::Shortfall {
            link: Link::up(NodeId(4)),
            required: 3,
            granted: 1,
        };
        assert!(v.to_string().contains("1 of 3"));
    }
}
