//! The per-node HARP state machine.
//!
//! A [`HarpNode`] holds exactly the state a real device holds on the
//! testbed: its own neighbourhood (parent, children), the cell requirements
//! of its child links, the interfaces its children reported, the partitions
//! its parent granted, and the schedule it decided for its own links.
//! Handlers consume one [`HarpMessage`] and produce [`Effects`] — messages
//! to send to neighbours plus schedule operations that take effect at the
//! *receiving* end of a cell-assignment message (a child only uses new cells
//! once told about them, which is what gives the dynamic-adjustment
//! experiments their latency shape).

use crate::adjust::adjust_partition;
use crate::component::{ResourceComponent, ResourceInterface};
use crate::compose::{compose_components, CompositionLayout};
use crate::error::HarpError;
use crate::protocol::HarpMessage;
use crate::schedule_gen::{assign_cells_to_links, SchedulingPolicy};
use packing::{Point, Rect};
use std::collections::BTreeMap;
use tsch_sim::{Cell, Direction, Link, NodeId, SlotframeConfig, Tree};

/// A schedule change produced by the protocol, to be applied to the network
/// schedule by whoever drives the nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleOp {
    /// Replace the cells of `link` with `cells` (empty = release the link).
    SetLinkCells {
        /// The directed link whose cells change.
        link: Link,
        /// The new cell set, in transmission order.
        cells: Vec<Cell>,
    },
}

/// What a handler wants done: messages to neighbours and schedule changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// `(recipient, message)` pairs to hand to the management plane.
    pub messages: Vec<(NodeId, HarpMessage)>,
    /// Schedule operations to apply immediately (at this node).
    pub schedule_ops: Vec<ScheduleOp>,
}

impl Effects {
    /// No messages, no schedule changes.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Appends another effect set.
    pub fn merge(&mut self, other: Effects) {
        self.messages.extend(other.messages);
        self.schedule_ops.extend(other.schedule_ops);
    }

    /// Coalesces multiple `POST part` messages to the same recipient into
    /// one (a parent reports a child's partitions for both directions in a
    /// single message, as on the testbed).
    fn coalesce_post_partitions(&mut self) {
        let mut merged: Vec<(NodeId, HarpMessage)> = Vec::with_capacity(self.messages.len());
        for (to, msg) in self.messages.drain(..) {
            if let HarpMessage::PostPartitions { partitions } = &msg {
                if let Some(HarpMessage::PostPartitions {
                    partitions: existing,
                }) = merged
                    .iter_mut()
                    .find(|(t, m)| *t == to && matches!(m, HarpMessage::PostPartitions { .. }))
                    .map(|(_, m)| m)
                {
                    existing.extend(partitions.iter().copied());
                    continue;
                }
            }
            merged.push((to, msg));
        }
        self.messages = merged;
    }
}

/// Per-direction protocol state of a node.
#[derive(Debug, Clone, Default)]
struct DirState {
    /// Cell requirements `r(e)` of the links to this node's children.
    reqs: BTreeMap<NodeId, u32>,
    /// Interfaces reported by non-leaf children.
    child_interfaces: BTreeMap<NodeId, ResourceInterface>,
    /// This node's own interface, once generated.
    interface: Option<ResourceInterface>,
    /// Composition layouts per composed layer (from the static phase).
    layouts: BTreeMap<u32, CompositionLayout>,
    /// Partitions granted to this node, per layer.
    partitions: BTreeMap<u32, Rect>,
    /// Partitions this node allocated to its children, per layer.
    child_partitions: BTreeMap<u32, Vec<(NodeId, Rect)>>,
    /// Cells this node assigned to each child link.
    assignments: BTreeMap<NodeId, Vec<Cell>>,
    /// Cells granted to this node's own link by its parent (`None` until
    /// the first `CellAssignment` arrives). Tracked so a re-delivered
    /// assignment is recognisable as a duplicate.
    own_cells: Option<Vec<Cell>>,
    /// Escalated layers awaiting a bigger partition from the parent:
    /// layer → the child whose component grew.
    pending: BTreeMap<u32, NodeId>,
}

/// Plain counters of one node's dynamic-adjustment activity, aggregated by
/// the runner into its metrics snapshot.
///
/// Deliberately not an `Obs` handle: the counters travel with the node's
/// state (they are cloned with it), so a transactional rollback in
/// [`HarpNetwork::adjust_and_settle`](crate::HarpNetwork::adjust_and_settle)
/// rolls the counts of the aborted attempt back too — the snapshot only ever
/// reports work that actually happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeObsCounters {
    /// Case-1 changes absorbed in the node's own row (no mgmt messages).
    pub local_updates: u64,
    /// Case-2 escalations sent toward the gateway (`PUT intf`), including
    /// re-escalations from intermediate nodes.
    pub escalations: u64,
    /// Partition adjustments (Alg. 2) that fit locally — the feasibility
    /// test passed at this node.
    pub adjust_feasible: u64,
    /// Partition adjustments that could not fit even with a full repack —
    /// the feasibility test failed and the request escalated (or, at the
    /// gateway, overflowed the slotframe).
    pub adjust_infeasible: u64,
    /// Partition rectangles moved by successful adjustments (the
    /// communication-overhead metric Alg. 2 minimises).
    pub partitions_moved: u64,
}

impl NodeObsCounters {
    /// Folds another node's counters into this one.
    pub fn absorb(&mut self, other: &NodeObsCounters) {
        self.local_updates += other.local_updates;
        self.escalations += other.escalations;
        self.adjust_feasible += other.adjust_feasible;
        self.adjust_infeasible += other.adjust_infeasible;
        self.partitions_moved += other.partitions_moved;
    }
}

/// One HARP participant: the distributed state machine of a single device.
#[derive(Debug, Clone)]
pub struct HarpNode {
    id: NodeId,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    nonleaf_children: Vec<NodeId>,
    link_layer: u32,
    config: SlotframeConfig,
    policy: SchedulingPolicy,
    up: DirState,
    down: DirState,
    counters: NodeObsCounters,
}

impl HarpNode {
    /// Creates the node for `id`, copying its one-hop neighbourhood out of
    /// the tree (a real device learns this from RPL).
    #[must_use]
    pub fn new(tree: &Tree, id: NodeId, config: SlotframeConfig, policy: SchedulingPolicy) -> Self {
        Self {
            id,
            parent: tree.parent(id),
            children: tree.children(id).to_vec(),
            nonleaf_children: tree
                .children(id)
                .iter()
                .copied()
                .filter(|&c| !tree.is_leaf(c))
                .collect(),
            link_layer: tree.link_layer(id),
            config,
            policy,
            up: DirState::default(),
            down: DirState::default(),
            counters: NodeObsCounters::default(),
        }
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's adjustment-activity counters.
    #[must_use]
    pub fn obs_counters(&self) -> &NodeObsCounters {
        &self.counters
    }

    /// Returns `true` for the gateway.
    #[must_use]
    pub fn is_gateway(&self) -> bool {
        self.parent.is_none()
    }

    /// Returns `true` if the node has no children.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn dir(&self, d: Direction) -> &DirState {
        match d {
            Direction::Up => &self.up,
            Direction::Down => &self.down,
        }
    }

    fn dir_mut(&mut self, d: Direction) -> &mut DirState {
        match d {
            Direction::Up => &mut self.up,
            Direction::Down => &mut self.down,
        }
    }

    /// Sets the requirement of the link to `child` (static configuration).
    pub fn set_requirement(&mut self, direction: Direction, child: NodeId, cells: u32) {
        self.dir_mut(direction).reqs.insert(child, cells);
    }

    /// The node's generated interface for `direction`, if any.
    #[must_use]
    pub fn interface(&self, direction: Direction) -> Option<&ResourceInterface> {
        self.dir(direction).interface.as_ref()
    }

    /// The partition granted to this node at `layer`.
    #[must_use]
    pub fn partition(&self, direction: Direction, layer: u32) -> Option<Rect> {
        self.dir(direction).partitions.get(&layer).copied()
    }

    /// The partitions this node granted its children at `layer`.
    #[must_use]
    pub fn child_partitions(&self, direction: Direction, layer: u32) -> &[(NodeId, Rect)] {
        self.dir(direction)
            .child_partitions
            .get(&layer)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The cells this node assigned to the link toward `child`.
    #[must_use]
    pub fn assignment(&self, direction: Direction, child: NodeId) -> &[Cell] {
        self.dir(direction)
            .assignments
            .get(&child)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The current requirement of the link to `child` as this node tracks it.
    #[must_use]
    pub fn requirement(&self, direction: Direction, child: NodeId) -> u32 {
        self.dir(direction).reqs.get(&child).copied().unwrap_or(0)
    }

    // ---- topology mutation (node join / parent switch) ----

    /// Registers `child` as a new (leaf) child of this node with zero
    /// demand. Demand is added afterwards via
    /// [`HarpNode::request_change`], which triggers the partition machinery.
    pub fn adopt_child(&mut self, child: NodeId) {
        if !self.children.contains(&child) {
            self.children.push(child);
        }
        for d in Direction::BOTH {
            self.dir_mut(d).reqs.entry(child).or_insert(0);
        }
    }

    /// Marks `child` as non-leaf (it adopted a child of its own), so this
    /// node starts forwarding partition updates to it.
    pub fn promote_child(&mut self, child: NodeId) {
        if self.children.contains(&child) && !self.nonleaf_children.contains(&child) {
            self.nonleaf_children.push(child);
        }
    }

    /// Removes `child` from this node's neighbourhood, dropping its demand,
    /// interface and cell assignments. The freed cells become idle area in
    /// this node's partition (released locally, as §V prescribes for
    /// departures).
    pub fn orphan_child(&mut self, child: NodeId) {
        self.children.retain(|&c| c != child);
        self.nonleaf_children.retain(|&c| c != child);
        for d in Direction::BOTH {
            let ds = self.dir_mut(d);
            ds.reqs.remove(&child);
            ds.child_interfaces.remove(&child);
            ds.assignments.remove(&child);
            for placements in ds.child_partitions.values_mut() {
                placements.retain(|&(c, _)| c != child);
            }
        }
    }

    /// Rebinds this node's parent pointer and link layer after a parent
    /// switch (its own depth may have changed).
    pub fn set_parent(&mut self, parent: Option<NodeId>, link_layer: u32) {
        self.parent = parent;
        self.link_layer = link_layer;
    }

    /// Kicks off the static phase at this node. Nodes whose children are all
    /// leaves can generate and report their interfaces immediately; everyone
    /// else waits for `POST intf` messages.
    ///
    /// # Errors
    ///
    /// Propagates composition/allocation failures.
    pub fn bootstrap(&mut self) -> Result<Effects, HarpError> {
        if self.is_leaf() {
            return Ok(Effects::none());
        }
        self.maybe_generate_and_report()
    }

    /// Handles one protocol message from a neighbour.
    ///
    /// Handlers are **idempotent**: the transport layer may re-deliver any
    /// message (a retransmission whose original squeaked through), so each
    /// arm recognises "nothing new" and returns [`Effects::none`] instead of
    /// re-applying state or re-triggering adjustments.
    ///
    /// # Errors
    ///
    /// Propagates algorithmic failures (overflow, packing, missing state).
    pub fn handle(&mut self, from: NodeId, msg: HarpMessage) -> Result<Effects, HarpError> {
        match msg {
            HarpMessage::PostInterface { up, down } => {
                // A static-phase report is a fact about the child's subtree;
                // once this node generated its own interface, every child
                // already contributed, so a further copy is a re-delivery.
                // Storing it again would clobber dynamic (`PUT intf`)
                // updates that arrived since.
                if self.up.interface.is_some() {
                    return Ok(Effects::none());
                }
                self.up.child_interfaces.insert(from, up);
                self.down.child_interfaces.insert(from, down);
                self.maybe_generate_and_report()
            }
            HarpMessage::PostPartitions { partitions } => {
                // Every entry identical to stored state ⇒ the original of
                // this message was already processed (storage and
                // distribution happen atomically below).
                if !partitions.is_empty()
                    && partitions
                        .iter()
                        .all(|&(d, layer, rect)| self.dir(d).partitions.get(&layer) == Some(&rect))
                {
                    return Ok(Effects::none());
                }
                let mut dirs = Vec::new();
                for &(d, layer, rect) in &partitions {
                    self.dir_mut(d).partitions.insert(layer, rect);
                    if !dirs.contains(&d) {
                        dirs.push(d);
                    }
                }
                let mut fx = Effects::none();
                for d in dirs {
                    fx.merge(self.distribute_partitions(d)?);
                }
                fx.coalesce_post_partitions();
                Ok(fx)
            }
            HarpMessage::PutInterface {
                direction,
                layer,
                component,
            } => self.on_child_component_update(direction, from, layer, component),
            HarpMessage::PutPartition {
                direction,
                layer,
                rect,
            } => {
                let old = self.dir(direction).partitions.get(&layer).copied();
                // An unchanged grant with no escalation pending is a
                // re-delivery; replaying it would only recompute a layout
                // identical to the stored one.
                if old == Some(rect) && !self.dir(direction).pending.contains_key(&layer) {
                    return Ok(Effects::none());
                }
                self.dir_mut(direction).partitions.insert(layer, rect);
                self.replace_layer(direction, layer, old)
            }
            HarpMessage::CellAssignment { direction, cells } => {
                // The child starts (or stops) using the granted cells now.
                // A re-delivered assignment matches the cells already in
                // use and must not re-emit the (externally visible) op.
                let id = self.id;
                let ds = self.dir_mut(direction);
                if ds.own_cells.as_ref() == Some(&cells) {
                    return Ok(Effects::none());
                }
                ds.own_cells = Some(cells.clone());
                Ok(Effects {
                    messages: Vec::new(),
                    schedule_ops: vec![ScheduleOp::SetLinkCells {
                        link: Link {
                            child: id,
                            direction,
                        },
                        cells,
                    }],
                })
            }
        }
    }

    /// A traffic change at one of this node's child links (§V): `r(e)` of
    /// the link to `child` becomes `new_cells`. Returns the effects — either
    /// a purely local schedule update (Case 1) or a `PUT intf` escalation
    /// (Case 2).
    ///
    /// # Errors
    ///
    /// Fails if the static phase has not completed at this node, or the
    /// gateway cannot grow the slotframe allocation.
    pub fn request_change(
        &mut self,
        direction: Direction,
        child: NodeId,
        new_cells: u32,
    ) -> Result<Effects, HarpError> {
        let layer = self.link_layer;
        let id = self.id;
        let ds = self.dir_mut(direction);
        ds.reqs.insert(child, new_cells);
        let total: u32 = ds.reqs.values().sum();
        let row = ds.partitions.get(&layer).copied();
        match row {
            Some(row) if total <= row.width() * row.height() => {
                // Case 1: enough idle cells in the current partition.
                self.counters.local_updates += 1;
                self.schedule_own_row(direction)
            }
            _ => {
                // Case 2: the partition itself must grow.
                let component = ResourceComponent::row(total);
                let ds = self.dir_mut(direction);
                if let Some(iface) = ds.interface.as_mut() {
                    iface.set(layer, component);
                }
                ds.pending.insert(layer, id);
                if self.is_gateway() {
                    self.gateway_reallocate(direction, layer)
                } else {
                    self.counters.escalations += 1;
                    let parent = self.parent.expect("non-gateway has a parent");
                    Ok(Effects {
                        messages: vec![(
                            parent,
                            HarpMessage::PutInterface {
                                direction,
                                layer,
                                component,
                            },
                        )],
                        schedule_ops: Vec::new(),
                    })
                }
            }
        }
    }

    // ---- static phase internals ----

    /// Generates the interface (both directions) once every non-leaf child
    /// has reported, then reports upward — or allocates if this is the
    /// gateway.
    fn maybe_generate_and_report(&mut self) -> Result<Effects, HarpError> {
        let ready = |ds: &DirState, kids: &[NodeId]| {
            kids.iter().all(|c| ds.child_interfaces.contains_key(c))
        };
        if self.up.interface.is_some()
            || !ready(&self.up, &self.nonleaf_children)
            || !ready(&self.down, &self.nonleaf_children)
        {
            return Ok(Effects::none());
        }
        self.generate_interface(Direction::Up)?;
        self.generate_interface(Direction::Down)?;
        if self.is_gateway() {
            self.gateway_allocate()
        } else {
            let parent = self.parent.expect("non-gateway has a parent");
            Ok(Effects {
                messages: vec![(
                    parent,
                    HarpMessage::PostInterface {
                        up: self.up.interface.clone().expect("just generated"),
                        down: self.down.interface.clone().expect("just generated"),
                    },
                )],
                schedule_ops: Vec::new(),
            })
        }
    }

    /// Builds this node's interface for one direction (Case 1 + Case 2 of
    /// §IV-B) from local requirements and the children's interfaces.
    fn generate_interface(&mut self, direction: Direction) -> Result<(), HarpError> {
        let channels = self.config.channels;
        let own_layer = self.link_layer;
        let ds = self.dir_mut(direction);
        let mut iface = ResourceInterface::new();
        let direct: u32 = ds.reqs.values().sum();
        iface.set(own_layer, ResourceComponent::row(direct));

        let deepest = ds
            .child_interfaces
            .values()
            .filter_map(ResourceInterface::max_layer)
            .max()
            .unwrap_or(own_layer);
        let mut layouts = BTreeMap::new();
        for layer in own_layer + 1..=deepest {
            let comps: Vec<(NodeId, ResourceComponent)> = ds
                .child_interfaces
                .iter()
                .filter_map(|(&c, i)| i.component(layer).map(|comp| (c, comp)))
                .collect();
            if comps.is_empty() {
                continue;
            }
            let layout = compose_components(&comps, channels, layer)?;
            iface.set(layer, layout.composite());
            layouts.insert(layer, layout);
        }
        ds.interface = Some(iface);
        ds.layouts = layouts;
        Ok(())
    }

    /// The gateway's slotframe placement: uplink super-partition first with
    /// layers descending, downlink after with layers ascending (§IV-C).
    fn gateway_allocate(&mut self) -> Result<Effects, HarpError> {
        let mut cursor: u32 = 0;
        for (d, descending) in [(Direction::Up, true), (Direction::Down, false)] {
            let iface = self
                .dir(d)
                .interface
                .clone()
                .expect("generated before allocation");
            let mut layers: Vec<u32> = iface.layers().collect();
            if descending {
                layers.reverse();
            }
            for layer in layers {
                let c = iface.component(layer).expect("listed layer");
                self.dir_mut(d)
                    .partitions
                    .insert(layer, Rect::new(Point::new(cursor, 0), c.as_size()));
                cursor += c.slots;
            }
        }
        if u64::from(cursor) > u64::from(self.config.slots) {
            return Err(HarpError::SlotframeOverflow {
                needed_slots: u64::from(cursor),
                available: self.config.slots,
            });
        }
        let mut fx = Effects::none();
        for d in Direction::BOTH {
            fx.merge(self.distribute_partitions(d)?);
        }
        fx.coalesce_post_partitions();
        Ok(fx)
    }

    /// Having just received (or allocated) partitions for every layer of the
    /// own subtree: derive children's partitions from the stored composition
    /// layouts, send them down, and schedule the own row.
    fn distribute_partitions(&mut self, direction: Direction) -> Result<Effects, HarpError> {
        // Derive child partitions per composed layer.
        let layers: Vec<u32> = self.dir(direction).layouts.keys().copied().collect();
        let mut per_child: BTreeMap<NodeId, Vec<(Direction, u32, Rect)>> = BTreeMap::new();
        for layer in layers {
            let own = self.dir(direction).partitions.get(&layer).copied().ok_or(
                HarpError::MissingPartition {
                    node: self.id,
                    layer,
                },
            )?;
            let layout = self
                .dir(direction)
                .layouts
                .get(&layer)
                .expect("listed layer");
            let placed: Vec<(NodeId, Rect)> = layout
                .placements()
                .iter()
                .map(|&(c, rel)| (c, rel.translated(own.origin.x, own.origin.y)))
                .collect();
            for &(c, rect) in &placed {
                if self.nonleaf_children.contains(&c) {
                    per_child
                        .entry(c)
                        .or_default()
                        .push((direction, layer, rect));
                }
            }
            self.dir_mut(direction)
                .child_partitions
                .insert(layer, placed);
        }
        let mut fx = self.schedule_own_row(direction)?;
        for (child, partitions) in per_child {
            fx.messages
                .push((child, HarpMessage::PostPartitions { partitions }));
        }
        Ok(fx)
    }

    /// Re-runs the local scheduler over the own partition row and notifies
    /// every child whose cells changed.
    fn schedule_own_row(&mut self, direction: Direction) -> Result<Effects, HarpError> {
        let id = self.id;
        let policy = self.policy;
        let config = self.config;
        let layer = self.link_layer;
        let ds = self.dir_mut(direction);
        let total: u32 = ds.reqs.values().sum();
        let Some(row) = ds.partitions.get(&layer).copied() else {
            if total == 0 {
                return Ok(Effects::none());
            }
            return Err(HarpError::MissingPartition { node: id, layer });
        };
        let child_reqs: Vec<(NodeId, u32)> = ds.reqs.iter().map(|(&c, &r)| (c, r)).collect();
        let assignments = assign_cells_to_links(id, &child_reqs, direction, row, policy, config)?;
        let mut fx = Effects::none();
        for a in assignments {
            let child = a.link.child;
            let old = ds.assignments.get(&child).cloned().unwrap_or_default();
            if old != a.cells {
                fx.messages.push((
                    child,
                    HarpMessage::CellAssignment {
                        direction,
                        cells: a.cells.clone(),
                    },
                ));
                ds.assignments.insert(child, a.cells);
            }
        }
        Ok(fx)
    }

    // ---- dynamic phase internals ----

    /// A child reported a grown component at `layer` (`PUT intf`). Try to
    /// absorb it locally (Alg. 2); escalate otherwise.
    fn on_child_component_update(
        &mut self,
        direction: Direction,
        child: NodeId,
        layer: u32,
        component: ResourceComponent,
    ) -> Result<Effects, HarpError> {
        // Duplicate guard: the stored interface already matches and either
        // the child's current grant at this layer covers the component (the
        // original was fully absorbed) or an escalation for exactly this
        // child is already pending at the parent — re-processing would
        // re-grant or re-escalate redundantly.
        {
            let ds = self.dir(direction);
            let already_stored = ds
                .child_interfaces
                .get(&child)
                .and_then(|i| i.component(layer))
                == Some(component);
            let already_granted = ds.child_partitions.get(&layer).is_some_and(|ps| {
                ps.iter()
                    .any(|&(c, r)| c == child && r.size == component.as_size())
            });
            let already_escalated = ds.pending.get(&layer) == Some(&child);
            if already_stored && (already_granted || already_escalated) {
                return Ok(Effects::none());
            }
        }
        let ds = self.dir_mut(direction);
        ds.child_interfaces
            .entry(child)
            .or_default()
            .set(layer, component);
        // A layer this node has never held a partition for (the subtree just
        // grew deeper, e.g. after a node join): nothing to adjust locally —
        // escalate straight away so an ancestor creates the layer.
        let Some(own) = ds.partitions.get(&layer).copied() else {
            return self.escalate_layer(direction, layer, child);
        };
        let mut placements = ds.child_partitions.get(&layer).cloned().unwrap_or_default();
        if !placements.iter().any(|(c, _)| *c == child) {
            placements.push((child, Rect::default()));
        }

        if let Some(outcome) = adjust_partition(own, &placements, child, component)? {
            self.counters.adjust_feasible += 1;
            self.counters.partitions_moved += outcome.moved_count() as u64;
            let mut fx = Effects::none();
            for &moved in &outcome.moved {
                let rect = outcome
                    .layout
                    .iter()
                    .find(|(c, _)| *c == moved)
                    .map(|&(_, r)| r)
                    .expect("moved child is in the layout");
                fx.messages.push((
                    moved,
                    HarpMessage::PutPartition {
                        direction,
                        layer,
                        rect,
                    },
                ));
            }
            self.dir_mut(direction)
                .child_partitions
                .insert(layer, outcome.layout);
            return Ok(fx);
        }

        self.counters.adjust_infeasible += 1;
        self.escalate_layer(direction, layer, child)
    }

    /// Recomposes `layer` from the children's current components and asks
    /// the parent (or, at the gateway, the slotframe) for room.
    fn escalate_layer(
        &mut self,
        direction: Direction,
        layer: u32,
        requester: NodeId,
    ) -> Result<Effects, HarpError> {
        let comps: Vec<(NodeId, ResourceComponent)> = self
            .dir(direction)
            .child_interfaces
            .iter()
            .filter_map(|(&c, i)| i.component(layer).map(|comp| (c, comp)))
            .collect();
        let layout = compose_components(&comps, self.config.channels, layer)?;
        let composite = layout.composite();
        let ds = self.dir_mut(direction);
        if let Some(iface) = ds.interface.as_mut() {
            iface.set(layer, composite);
        }
        ds.layouts.insert(layer, layout);
        ds.pending.insert(layer, requester);
        if self.is_gateway() {
            self.gateway_reallocate(direction, layer)
        } else {
            self.counters.escalations += 1;
            let parent = self.parent.expect("non-gateway has a parent");
            Ok(Effects {
                messages: vec![(
                    parent,
                    HarpMessage::PutInterface {
                        direction,
                        layer,
                        component: composite,
                    },
                )],
                schedule_ops: Vec::new(),
            })
        }
    }

    /// The own partition at `layer` changed (grew or moved). Re-place
    /// whatever lives inside it and propagate.
    fn replace_layer(
        &mut self,
        direction: Direction,
        layer: u32,
        old: Option<Rect>,
    ) -> Result<Effects, HarpError> {
        self.dir_mut(direction).pending.remove(&layer);
        let rect = self.dir(direction).partitions[&layer];
        if layer == self.link_layer {
            return self.schedule_own_row(direction);
        }

        let current = self
            .dir(direction)
            .child_partitions
            .get(&layer)
            .cloned()
            .unwrap_or_default();

        let new_layout: Vec<(NodeId, Rect)> = match old {
            // Pure move: same size, translate everything inside.
            Some(old) if old.size == rect.size => current
                .iter()
                .map(|&(c, r)| {
                    if r.is_empty() {
                        (c, r)
                    } else {
                        let dx = r.left() - old.left();
                        let dy = r.bottom() - old.bottom();
                        (
                            c,
                            Rect::new(Point::new(rect.left() + dx, rect.bottom() + dy), r.size),
                        )
                    }
                })
                .collect(),
            // Growth: lay the (re)composed layout into the new rectangle.
            _ => {
                let layout = self.dir(direction).layouts.get(&layer).cloned().ok_or(
                    HarpError::MissingPartition {
                        node: self.id,
                        layer,
                    },
                )?;
                layout
                    .placements()
                    .iter()
                    .map(|&(c, rel)| (c, rel.translated(rect.origin.x, rect.origin.y)))
                    .collect()
            }
        };

        let mut fx = Effects::none();
        for &(c, r) in &new_layout {
            let old_rect = current
                .iter()
                .find(|(n, _)| *n == c)
                .map(|&(_, r)| r)
                .unwrap_or_default();
            if r != old_rect && self.nonleaf_children.contains(&c) {
                fx.messages.push((
                    c,
                    HarpMessage::PutPartition {
                        direction,
                        layer,
                        rect: r,
                    },
                ));
            }
        }
        self.dir_mut(direction)
            .child_partitions
            .insert(layer, new_layout);
        Ok(fx)
    }

    /// The gateway absorbs a grown component at `(direction, layer)` by
    /// adjusting its slotframe-level placement (there is no parent to
    /// escalate to). The slotframe is the container, the gateway's per-layer
    /// partitions (both directions) are the sub-partitions, and the same
    /// cost-aware heuristic (Alg. 2) keeps unaffected layers in place —
    /// growth lands in the slotframe's idle area whenever possible.
    fn gateway_reallocate(
        &mut self,
        direction: Direction,
        layer: u32,
    ) -> Result<Effects, HarpError> {
        let container = Rect::from_xywh(0, 0, self.config.slots, u32::from(self.config.channels));
        let mut entries: Vec<((Direction, u32), Rect)> = Vec::new();
        for d in Direction::BOTH {
            for (&l, &r) in &self.dir(d).partitions {
                entries.push(((d, l), r));
            }
        }
        // A brand-new layer (the network just grew deeper): enter it with an
        // empty rectangle so the adjustment places it like a fresh grant.
        if !entries.iter().any(|&(k, _)| k == (direction, layer)) {
            entries.push(((direction, layer), Rect::default()));
        }
        let component = self
            .dir(direction)
            .interface
            .as_ref()
            .and_then(|i| i.component(layer))
            .ok_or(HarpError::MissingPartition {
                node: self.id,
                layer,
            })?;
        let Some(outcome) = adjust_partition(container, &entries, (direction, layer), component)?
        else {
            self.counters.adjust_infeasible += 1;
            let total: u64 =
                entries.iter().map(|(_, r)| r.area()).sum::<u64>() + component.cell_count();
            // The binding constraint is either the total area or the grown
            // component's own slot extent (a row wider than the slotframe
            // can never fit, whatever the area says).
            let needed_slots = total
                .div_ceil(u64::from(self.config.channels))
                .max(u64::from(component.slots));
            return Err(HarpError::SlotframeOverflow {
                needed_slots,
                available: self.config.slots,
            });
        };
        self.counters.adjust_feasible += 1;
        self.counters.partitions_moved += outcome.moved_count() as u64;
        let mut fx = Effects::none();
        for &(d, l) in &outcome.moved {
            let rect = outcome
                .layout
                .iter()
                .find(|&&(k, _)| k == (d, l))
                .map(|&(_, r)| r)
                .expect("moved key is in the layout");
            let old = self.dir(d).partitions.get(&l).copied();
            self.dir_mut(d).partitions.insert(l, rect);
            fx.merge(self.replace_layer(d, l, old)?);
        }
        Ok(fx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a whole network of nodes to quiescence with synchronous,
    /// zero-latency message delivery (protocol-order tests; timing is
    /// covered by the runner tests).
    struct Fabric {
        nodes: Vec<HarpNode>,
        schedule_ops: Vec<ScheduleOp>,
        messages_seen: Vec<(NodeId, NodeId, HarpMessage)>,
    }

    impl Fabric {
        fn new(tree: &Tree, reqs: &crate::Requirements) -> Self {
            let config = SlotframeConfig::paper_default();
            let mut nodes: Vec<HarpNode> = tree
                .nodes()
                .map(|v| HarpNode::new(tree, v, config, SchedulingPolicy::RateMonotonic))
                .collect();
            for (link, cells) in reqs.iter() {
                if let Ok((_, _)) = tree.endpoints(link) {
                    let parent = tree.parent(link.child).unwrap();
                    nodes[parent.index()].set_requirement(link.direction, link.child, cells);
                }
            }
            Self {
                nodes,
                schedule_ops: Vec::new(),
                messages_seen: Vec::new(),
            }
        }

        fn dispatch(&mut self, from: NodeId, fx: Effects) {
            self.try_dispatch(from, fx).unwrap();
        }

        fn try_dispatch(&mut self, from: NodeId, fx: Effects) -> Result<(), HarpError> {
            self.schedule_ops.extend(fx.schedule_ops);
            let mut queue: Vec<(NodeId, NodeId, HarpMessage)> = fx
                .messages
                .into_iter()
                .map(|(to, m)| (from, to, m))
                .collect();
            while let Some((src, dst, msg)) = queue.pop() {
                self.messages_seen.push((src, dst, msg.clone()));
                let fx = self.nodes[dst.index()].handle(src, msg)?;
                self.schedule_ops.extend(fx.schedule_ops);
                queue.extend(fx.messages.into_iter().map(|(to, m)| (dst, to, m)));
            }
            Ok(())
        }

        fn run_static(&mut self) {
            for i in 0..self.nodes.len() {
                let id = self.nodes[i].id();
                let fx = self.nodes[i].bootstrap().unwrap();
                self.dispatch(id, fx);
            }
        }

        fn request_change(&mut self, d: Direction, link: Link, cells: u32) {
            let parent = self
                .nodes
                .iter()
                .position(|n| n.children.contains(&link.child))
                .unwrap();
            let fx = self.nodes[parent]
                .request_change(d, link.child, cells)
                .unwrap();
            let id = self.nodes[parent].id();
            self.dispatch(id, fx);
        }

        /// The network schedule implied by all applied ops.
        fn schedule(&self) -> tsch_sim::NetworkSchedule {
            let mut s = tsch_sim::NetworkSchedule::new(SlotframeConfig::paper_default());
            let mut latest: BTreeMap<Link, Vec<Cell>> = BTreeMap::new();
            for op in &self.schedule_ops {
                let ScheduleOp::SetLinkCells { link, cells } = op;
                latest.insert(*link, cells.clone());
            }
            for (link, cells) in latest {
                for c in cells {
                    s.assign(c, link).unwrap();
                }
            }
            s
        }
    }

    fn fig1_reqs(tree: &Tree) -> crate::Requirements {
        let mut reqs = crate::Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
            reqs.set(Link::down(v), tree.subtree_size(v));
        }
        reqs
    }

    #[test]
    fn static_phase_distributed_matches_centralized() {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let mut fabric = Fabric::new(&tree, &reqs);
        fabric.run_static();

        // Every non-leaf node must have an interface and a scheduling row.
        for v in tree.nodes() {
            if tree.is_leaf(v) {
                continue;
            }
            let node = &fabric.nodes[v.index()];
            assert!(
                node.interface(Direction::Up).is_some(),
                "{v} has up interface"
            );
            assert!(node.partition(Direction::Up, tree.link_layer(v)).is_some());
        }

        // The distributed outcome equals the centralized oracle (the paper
        // validates exactly this: testbed partitions identical to simulation).
        let cfg = SlotframeConfig::paper_default();
        let up = crate::build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = crate::build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let table = crate::allocate_partitions(&tree, &up, &down, cfg).unwrap();
        for v in tree.nodes() {
            if tree.is_leaf(v) {
                continue;
            }
            for d in Direction::BOTH {
                let distributed = fabric.nodes[v.index()].partition(d, tree.link_layer(v));
                let centralized = table.scheduling_area(&tree, v, d);
                assert_eq!(distributed, centralized, "{v} {d}");
            }
        }
    }

    #[test]
    fn static_phase_schedule_is_collision_free_and_satisfies_demand() {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let mut fabric = Fabric::new(&tree, &reqs);
        fabric.run_static();
        let schedule = fabric.schedule();
        assert!(schedule.is_exclusive());
        assert!(crate::unsatisfied_links(&tree, &reqs, &schedule).is_empty());
    }

    #[test]
    fn static_message_count_is_two_per_nonleaf_nongateway_node_plus_cells() {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let mut fabric = Fabric::new(&tree, &reqs);
        fabric.run_static();
        let intf = fabric
            .messages_seen
            .iter()
            .filter(|(_, _, m)| matches!(m, HarpMessage::PostInterface { .. }))
            .count();
        let part = fabric
            .messages_seen
            .iter()
            .filter(|(_, _, m)| matches!(m, HarpMessage::PostPartitions { .. }))
            .count();
        // Non-leaf, non-gateway nodes: 1, 2, 3, 7, 8 → 5 POST-intf.
        assert_eq!(intf, 5);
        // POST-part goes to each non-leaf child of a non-leaf node: 5 too.
        assert_eq!(part, 5);
    }

    #[test]
    fn case1_local_update_needs_no_management_messages() {
        // Shrink a link's demand: the parent reschedules locally; only a
        // cell-assignment message to the affected child.
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let mut fabric = Fabric::new(&tree, &reqs);
        fabric.run_static();
        fabric.messages_seen.clear();
        fabric.request_change(Direction::Up, Link::up(NodeId(9)), 0);
        let mgmt = fabric
            .messages_seen
            .iter()
            .filter(|(_, _, m)| m.is_management())
            .count();
        assert_eq!(mgmt, 0, "local case sends no intf/part messages");
        let schedule = fabric.schedule();
        assert!(schedule.is_exclusive());
        assert!(schedule.cells_of(Link::up(NodeId(9))).is_empty());
    }

    #[test]
    fn case2_one_hop_adjustment() {
        // Node 7's row [2,1] grows when link 9→7 doubles: 7 asks 3, which
        // has a layer-3 partition [2,2] that cannot hold [3,1]+[1,1]... it
        // can: repack. Either way the request resolves at node 3.
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let mut fabric = Fabric::new(&tree, &reqs);
        fabric.run_static();
        fabric.messages_seen.clear();
        fabric.request_change(Direction::Up, Link::up(NodeId(9)), 2);
        let schedule = fabric.schedule();
        assert!(schedule.is_exclusive(), "no collisions during adjustment");
        assert_eq!(schedule.cells_of(Link::up(NodeId(9))).len(), 2);
        // All other links still satisfied.
        let mut expected = fig1_reqs(&tree);
        expected.set(Link::up(NodeId(9)), 2);
        assert!(crate::unsatisfied_links(&tree, &expected, &schedule).is_empty());
        let put_intf = fabric
            .messages_seen
            .iter()
            .filter(|(_, _, m)| matches!(m, HarpMessage::PutInterface { .. }))
            .count();
        assert!(put_intf >= 1, "the change escalates at least one hop");
    }

    #[test]
    fn multi_hop_adjustment_reaches_gateway_and_stays_collision_free() {
        // A large increase deep in the tree that cannot be absorbed below
        // the gateway.
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let mut fabric = Fabric::new(&tree, &reqs);
        fabric.run_static();
        fabric.messages_seen.clear();
        fabric.request_change(Direction::Up, Link::up(NodeId(9)), 12);
        let schedule = fabric.schedule();
        assert!(schedule.is_exclusive());
        assert_eq!(schedule.cells_of(Link::up(NodeId(9))).len(), 12);
        let mut expected = fig1_reqs(&tree);
        expected.set(Link::up(NodeId(9)), 12);
        assert!(crate::unsatisfied_links(&tree, &expected, &schedule).is_empty());
    }

    #[test]
    fn gateway_direct_increase() {
        // Increase a layer-1 link: the gateway reallocates its own row.
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let mut fabric = Fabric::new(&tree, &reqs);
        fabric.run_static();
        fabric.request_change(Direction::Up, Link::up(NodeId(2)), 5);
        let schedule = fabric.schedule();
        assert!(schedule.is_exclusive());
        assert_eq!(schedule.cells_of(Link::up(NodeId(2))).len(), 5);
    }

    #[test]
    fn downlink_adjustment_works_too() {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let mut fabric = Fabric::new(&tree, &reqs);
        fabric.run_static();
        fabric.request_change(Direction::Down, Link::down(NodeId(11)), 4);
        let schedule = fabric.schedule();
        assert!(schedule.is_exclusive());
        assert_eq!(schedule.cells_of(Link::down(NodeId(11))).len(), 4);
    }

    #[test]
    fn infeasible_change_is_rejected_and_network_unharmed() {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let mut fabric = Fabric::new(&tree, &reqs);
        fabric.run_static();
        // Demand more slots than the slotframe has. The rejection surfaces
        // as SlotframeOverflow, either immediately or while the escalation
        // chain is dispatched.
        let parent = NodeId(7);
        let result = fabric.nodes[parent.index()]
            .request_change(Direction::Up, NodeId(9), 500)
            .and_then(|fx| fabric.try_dispatch(parent, fx));
        assert!(
            matches!(result, Err(HarpError::SlotframeOverflow { .. })),
            "a 500-cell increase cannot be absorbed: {result:?}"
        );
    }

    #[test]
    fn repeated_changes_converge() {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let mut fabric = Fabric::new(&tree, &reqs);
        fabric.run_static();
        for r in [2, 3, 2, 4, 1] {
            fabric.request_change(Direction::Up, Link::up(NodeId(10)), r);
            let schedule = fabric.schedule();
            assert!(schedule.is_exclusive(), "after setting r={r}");
            assert_eq!(schedule.cells_of(Link::up(NodeId(10))).len(), r as usize);
        }
    }

    #[test]
    fn leaf_bootstrap_is_silent() {
        let tree = Tree::paper_fig1_example();
        let mut node = HarpNode::new(
            &tree,
            NodeId(4),
            SlotframeConfig::paper_default(),
            SchedulingPolicy::RateMonotonic,
        );
        assert!(node.is_leaf());
        let fx = node.bootstrap().unwrap();
        assert!(fx.messages.is_empty());
        assert!(fx.schedule_ops.is_empty());
    }

    #[test]
    fn cell_assignment_produces_schedule_op_at_child() {
        let tree = Tree::paper_fig1_example();
        let mut node = HarpNode::new(
            &tree,
            NodeId(4),
            SlotframeConfig::paper_default(),
            SchedulingPolicy::RateMonotonic,
        );
        let cells = vec![Cell::new(3, 0), Cell::new(4, 0)];
        let fx = node
            .handle(
                NodeId(1),
                HarpMessage::CellAssignment {
                    direction: Direction::Up,
                    cells: cells.clone(),
                },
            )
            .unwrap();
        assert_eq!(
            fx.schedule_ops,
            vec![ScheduleOp::SetLinkCells {
                link: Link::up(NodeId(4)),
                cells
            }]
        );
    }
}
