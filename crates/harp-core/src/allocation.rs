//! Top-down partition allocation (§IV-C of the paper).
//!
//! After the gateway has assembled its resource interface `I_g`, it places
//! each per-layer component in the slotframe and pushes the resulting
//! *partitions* down the tree. The placement follows the routing-path
//! compliant order of APaS: the slotframe is split into an uplink
//! super-partition (left) and a downlink super-partition (right); inside the
//! uplink region deeper layers come first (a packet climbing the tree meets
//! its cells in order within one slotframe), inside the downlink region
//! shallower layers come first.
//!
//! Every interior node then carves its children's partitions out of its own
//! using the composition layout recorded during interface generation, so no
//! further optimisation happens on the way down — exactly the cheap,
//! collision-free distribution step the paper describes.

use crate::compose::InterfaceSet;
use crate::error::HarpError;
use packing::{Point, Rect};
use std::collections::BTreeMap;
use tsch_sim::{Direction, NodeId, SlotframeConfig, Tree};

/// A partition `P_{i,l} = [C_{i,l}, t_{i,l}, c_{i,l}]`: the placement of a
/// subtree's layer-`l` component in the slotframe.
///
/// The rectangle uses slotframe orientation: `x` = starting slot `t`,
/// `y` = lowest channel index `c`, width = slots, height = channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// The subtree root this partition belongs to.
    pub node: NodeId,
    /// Traffic direction served by this partition.
    pub direction: Direction,
    /// The layer whose links use these cells.
    pub layer: u32,
    /// The placement in the slotframe.
    pub rect: Rect,
}

/// The complete partition allocation of a network: one rectangle per
/// (node, direction, layer) triple, hierarchically nested.
///
/// # Examples
///
/// ```
/// use harp_core::{allocate_partitions, build_interfaces, Requirements};
/// use tsch_sim::{Direction, Link, NodeId, SlotframeConfig, Tree};
///
/// # fn main() -> Result<(), harp_core::HarpError> {
/// let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
/// let mut reqs = Requirements::new();
/// reqs.set(Link::up(NodeId(1)), 2);
/// reqs.set(Link::up(NodeId(2)), 1);
/// let up = build_interfaces(&tree, &reqs, Direction::Up, 16)?;
/// let down = build_interfaces(&tree, &reqs, Direction::Down, 16)?;
/// let table =
///     allocate_partitions(&tree, &up, &down, SlotframeConfig::paper_default())?;
/// // Uplink: layer 2 (1 slot) before layer 1 (2 slots).
/// let p2 = table.get(NodeId(1), Direction::Up, 2).unwrap();
/// let p1 = table.get(NodeId(0), Direction::Up, 1).unwrap();
/// assert!(p2.right() <= p1.left());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionTable {
    config: SlotframeConfig,
    map: BTreeMap<(NodeId, Direction, u32), Rect>,
    up_slots: u32,
    total_slots: u32,
}

impl PartitionTable {
    /// The slotframe this table was allocated for.
    #[must_use]
    pub fn config(&self) -> SlotframeConfig {
        self.config
    }

    /// The partition of `node` at `layer` in `direction`, if allocated.
    #[must_use]
    pub fn get(&self, node: NodeId, direction: Direction, layer: u32) -> Option<Rect> {
        self.map.get(&(node, direction, layer)).copied()
    }

    /// The area where `node` schedules its *own* child links — its partition
    /// at its own link layer.
    #[must_use]
    pub fn scheduling_area(&self, tree: &Tree, node: NodeId, direction: Direction) -> Option<Rect> {
        self.get(node, direction, tree.link_layer(node))
    }

    /// Iterates over every allocated partition.
    pub fn iter(&self) -> impl Iterator<Item = Partition> + '_ {
        self.map
            .iter()
            .map(|(&(node, direction, layer), &rect)| Partition {
                node,
                direction,
                layer,
                rect,
            })
    }

    /// Number of allocated partitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if nothing was allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Slots consumed by the uplink super-partition.
    #[must_use]
    pub fn uplink_slots(&self) -> u32 {
        self.up_slots
    }

    /// Total slots consumed by both super-partitions. May exceed the
    /// slotframe when built by [`allocate_partitions_unbounded`].
    #[must_use]
    pub fn total_slots(&self) -> u32 {
        self.total_slots
    }

    /// Replaces one partition (used by the dynamic-adjustment machinery).
    pub fn set(&mut self, node: NodeId, direction: Direction, layer: u32, rect: Rect) {
        self.map.insert((node, direction, layer), rect);
    }
}

/// Allocates partitions for the whole network, failing if the slotframe is
/// too short.
///
/// # Errors
///
/// [`HarpError::SlotframeOverflow`] when the gateway interface needs more
/// slots than the slotframe has.
pub fn allocate_partitions(
    tree: &Tree,
    up: &InterfaceSet,
    down: &InterfaceSet,
    config: SlotframeConfig,
) -> Result<PartitionTable, HarpError> {
    let table = allocate_partitions_unbounded(tree, up, down, config);
    if u64::from(table.total_slots) > u64::from(config.slots) {
        return Err(HarpError::SlotframeOverflow {
            needed_slots: u64::from(table.total_slots),
            available: config.slots,
        });
    }
    Ok(table)
}

/// Allocates partitions without checking the slotframe length.
///
/// Partitions beyond the slotframe bound will wrap modulo the slotframe when
/// a schedule is generated, producing collisions — this is how the paper's
/// channel-starvation experiment (Fig. 11(b), below 4 channels) degrades
/// HARP gracefully instead of failing outright.
#[must_use]
pub fn allocate_partitions_unbounded(
    tree: &Tree,
    up: &InterfaceSet,
    down: &InterfaceSet,
    config: SlotframeConfig,
) -> PartitionTable {
    debug_assert_eq!(up.direction(), Direction::Up);
    debug_assert_eq!(down.direction(), Direction::Down);
    let mut map = BTreeMap::new();
    let mut cursor: u32 = 0;

    // Uplink super-partition: deeper layers first.
    let gw_up = &up.gateway().interface;
    let mut up_layers: Vec<u32> = gw_up.layers().collect();
    up_layers.sort_unstable_by(|a, b| b.cmp(a));
    for layer in up_layers {
        let c = gw_up
            .component(layer)
            .expect("layer listed by the interface");
        map.insert(
            (tree.root(), Direction::Up, layer),
            Rect::new(Point::new(cursor, 0), c.as_size()),
        );
        cursor += c.slots;
    }
    let up_slots = cursor;

    // Downlink super-partition: shallower layers first.
    let gw_down = &down.gateway().interface;
    for layer in gw_down.layers() {
        let c = gw_down
            .component(layer)
            .expect("layer listed by the interface");
        map.insert(
            (tree.root(), Direction::Down, layer),
            Rect::new(Point::new(cursor, 0), c.as_size()),
        );
        cursor += c.slots;
    }
    let total_slots = cursor;

    // Push partitions down: each node's composition layouts position its
    // children inside the node's own partitions.
    for (set, direction) in [(up, Direction::Up), (down, Direction::Down)] {
        // Preorder: parents are placed before their children are derived.
        for v in tree.subtree_nodes(tree.root()) {
            for (&layer, layout) in &set.node(v).layouts {
                let Some(own) = map.get(&(v, direction, layer)).copied() else {
                    continue;
                };
                for &(child, rel) in layout.placements() {
                    let abs = rel.translated(own.origin.x, own.origin.y);
                    map.insert((child, direction, layer), abs);
                }
            }
        }
    }

    PartitionTable {
        config,
        map,
        up_slots,
        total_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::build_interfaces;
    use crate::requirement::Requirements;
    use tsch_sim::Link;

    /// The paper's Fig. 1 network with r(e) = subtree size both ways (the
    /// testbed's one-echo-task-per-node workload).
    fn fig1_setup() -> (Tree, Requirements) {
        let tree = Tree::paper_fig1_example();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
            reqs.set(Link::down(v), tree.subtree_size(v));
        }
        (tree, reqs)
    }

    fn table_for(tree: &Tree, reqs: &Requirements, config: SlotframeConfig) -> PartitionTable {
        let up = build_interfaces(tree, reqs, Direction::Up, config.channels).unwrap();
        let down = build_interfaces(tree, reqs, Direction::Down, config.channels).unwrap();
        allocate_partitions(tree, &up, &down, config).unwrap()
    }

    #[test]
    fn uplink_layers_descend_downlink_ascend() {
        let (tree, reqs) = fig1_setup();
        let table = table_for(&tree, &reqs, SlotframeConfig::paper_default());
        let gw = tree.root();
        let u3 = table.get(gw, Direction::Up, 3).unwrap();
        let u2 = table.get(gw, Direction::Up, 2).unwrap();
        let u1 = table.get(gw, Direction::Up, 1).unwrap();
        assert!(u3.right() <= u2.left() && u2.right() <= u1.left());
        let d1 = table.get(gw, Direction::Down, 1).unwrap();
        let d2 = table.get(gw, Direction::Down, 2).unwrap();
        let d3 = table.get(gw, Direction::Down, 3).unwrap();
        assert!(u1.right() <= d1.left(), "downlink after uplink");
        assert!(d1.right() <= d2.left() && d2.right() <= d3.left());
        assert_eq!(table.uplink_slots(), u1.right());
        assert_eq!(table.total_slots(), d3.right());
    }

    #[test]
    fn children_partitions_nest_inside_parents() {
        let (tree, reqs) = fig1_setup();
        let table = table_for(&tree, &reqs, SlotframeConfig::paper_default());
        for dir in Direction::BOTH {
            for p in table.iter().filter(|p| p.direction == dir) {
                if p.node == tree.root() {
                    continue;
                }
                let parent = tree.parent(p.node).unwrap();
                let outer = table
                    .get(parent, dir, p.layer)
                    .expect("parent has a partition at the same layer");
                assert!(
                    p.rect.is_empty() || outer.contains_rect(&p.rect),
                    "{:?} not inside parent {:?}",
                    p,
                    outer
                );
            }
        }
    }

    #[test]
    fn sibling_partitions_are_disjoint() {
        let (tree, reqs) = fig1_setup();
        let table = table_for(&tree, &reqs, SlotframeConfig::paper_default());
        for dir in Direction::BOTH {
            for v in tree.nodes() {
                let kids = tree.children(v);
                for (i, &a) in kids.iter().enumerate() {
                    for &b in &kids[i + 1..] {
                        for layer in 1..=tree.layers() {
                            let (Some(ra), Some(rb)) =
                                (table.get(a, dir, layer), table.get(b, dir, layer))
                            else {
                                continue;
                            };
                            assert!(!ra.overlaps(&rb), "{a}/{b} overlap at layer {layer}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scheduling_areas_are_single_channel_rows_with_right_width() {
        let (tree, reqs) = fig1_setup();
        let table = table_for(&tree, &reqs, SlotframeConfig::paper_default());
        for dir in Direction::BOTH {
            for v in tree.nodes() {
                if tree.is_leaf(v) {
                    continue;
                }
                let area = table.scheduling_area(&tree, v, dir).unwrap();
                let need = reqs.direct_total(&tree, v, dir);
                assert_eq!(area.height(), 1, "direct components are rows");
                assert_eq!(area.width(), need, "row width equals Σ r(e) at {v}");
            }
        }
    }

    #[test]
    fn all_scheduling_areas_pairwise_disjoint() {
        // The core isolation property: where cells are actually assigned,
        // no two nodes share any cell, across directions too.
        let (tree, reqs) = fig1_setup();
        let table = table_for(&tree, &reqs, SlotframeConfig::paper_default());
        let mut areas = Vec::new();
        for dir in Direction::BOTH {
            for v in tree.nodes() {
                if !tree.is_leaf(v) {
                    areas.push(table.scheduling_area(&tree, v, dir).unwrap());
                }
            }
        }
        assert!(packing::all_disjoint(&areas));
    }

    #[test]
    fn overflow_is_detected() {
        let (tree, reqs) = fig1_setup();
        // Fig. 1 needs 22 slots per direction at the gateway layer 1 alone.
        let tiny = SlotframeConfig::new(10, 16, 10_000).unwrap();
        let up = build_interfaces(&tree, &reqs, Direction::Up, 16).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, 16).unwrap();
        let err = allocate_partitions(&tree, &up, &down, tiny).unwrap_err();
        assert!(matches!(err, HarpError::SlotframeOverflow { .. }));
        // The unbounded variant still produces a table.
        let table = allocate_partitions_unbounded(&tree, &up, &down, tiny);
        assert!(table.total_slots() > 10);
        assert!(!table.is_empty());
    }

    #[test]
    fn empty_network_allocates_nothing() {
        let tree = tsch_sim::TreeBuilder::new().build();
        let reqs = Requirements::new();
        let up = build_interfaces(&tree, &reqs, Direction::Up, 16).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, 16).unwrap();
        let table =
            allocate_partitions(&tree, &up, &down, SlotframeConfig::paper_default()).unwrap();
        assert!(table.is_empty());
        assert_eq!(table.total_slots(), 0);
    }

    #[test]
    fn partition_set_overrides() {
        let (tree, reqs) = fig1_setup();
        let mut table = table_for(&tree, &reqs, SlotframeConfig::paper_default());
        let rect = Rect::from_xywh(100, 3, 4, 1);
        table.set(NodeId(7), Direction::Up, 3, rect);
        assert_eq!(table.get(NodeId(7), Direction::Up, 3), Some(rect));
    }

    #[test]
    fn uplink_deeper_layer_cells_precede_shallower_for_any_node() {
        // Compliance property (within the uplink super-partition): cells a
        // packet uses at layer l+1 come before the cells it uses at layer l.
        let (tree, reqs) = fig1_setup();
        let table = table_for(&tree, &reqs, SlotframeConfig::paper_default());
        for v in tree.nodes().skip(1) {
            let parent = tree.parent(v).unwrap();
            if tree.is_leaf(v) {
                continue;
            }
            let child_area = table.scheduling_area(&tree, v, Direction::Up).unwrap();
            let parent_area = table.scheduling_area(&tree, parent, Direction::Up).unwrap();
            assert!(
                child_area.right() <= parent_area.left(),
                "uplink cells of {v} must precede its parent's"
            );
        }
    }
}
