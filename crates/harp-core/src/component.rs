//! Resource components and resource interfaces (Definitions 1 and 2 of the
//! paper).
//!
//! A *resource component* `C_{i,l} = [n^s, n^c]` abstracts the cells required
//! by all links at layer `l` inside subtree `G_Vi` as a rectangle: `n^s`
//! consecutive time slots × `n^c` channels. A *resource interface* `I_i` is
//! the collection of a subtree's components, one per layer from `l(V_i)` to
//! `l(G_Vi)`. Interfaces are what HARP nodes exchange bottom-up during
//! static partition allocation — a compact, constant-size-per-layer summary
//! of an arbitrarily large subtree's demand.

use core::fmt;
use packing::Size;
use std::collections::BTreeMap;

/// A rectangular resource requirement: `slots × channels` cells
/// (`C_{i,l} = [n^s_{i,l}, n^c_{i,l}]` in the paper).
///
/// # Examples
///
/// ```
/// use harp_core::ResourceComponent;
///
/// let c = ResourceComponent::new(5, 2);
/// assert_eq!(c.cell_count(), 10);
/// assert!(!c.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ResourceComponent {
    /// Number of time slots (`n^s`).
    pub slots: u32,
    /// Number of channels (`n^c`).
    pub channels: u32,
}

impl ResourceComponent {
    /// Creates a component of `slots × channels`.
    #[must_use]
    pub const fn new(slots: u32, channels: u32) -> Self {
        Self { slots, channels }
    }

    /// A single-channel row of `slots` cells — the shape of every direct
    /// (Case 1) component `[Σ r(e), 1]`.
    #[must_use]
    pub const fn row(slots: u32) -> Self {
        Self { slots, channels: 1 }
    }

    /// Total cells covered.
    #[must_use]
    pub const fn cell_count(&self) -> u64 {
        self.slots as u64 * self.channels as u64
    }

    /// Returns `true` if the component requires no cells.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.slots == 0 || self.channels == 0
    }

    /// The component as a packing [`Size`] in *slot-major* orientation:
    /// width = slots, height = channels. This is the orientation used for
    /// partition rectangles in the slotframe (x = slot, y = channel).
    #[must_use]
    pub const fn as_size(&self) -> Size {
        Size::new(self.slots, self.channels)
    }

    /// The component as a packing [`Size`] in *channel-major* orientation:
    /// width = channels, height = slots. This is the orientation of the
    /// first strip-packing pass of Alg. 1 (fixed channel budget, minimise
    /// slots).
    #[must_use]
    pub const fn as_size_channel_major(&self) -> Size {
        Size::new(self.channels, self.slots)
    }

    /// Returns `true` if this component fits inside `other` without
    /// rotation.
    #[must_use]
    pub const fn fits_in(&self, other: ResourceComponent) -> bool {
        self.slots <= other.slots && self.channels <= other.channels
    }
}

impl fmt::Display for ResourceComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.slots, self.channels)
    }
}

impl From<ResourceComponent> for Size {
    fn from(c: ResourceComponent) -> Size {
        c.as_size()
    }
}

/// A subtree's per-layer resource components (`I_i` in the paper).
///
/// # Examples
///
/// ```
/// use harp_core::{ResourceComponent, ResourceInterface};
///
/// let mut iface = ResourceInterface::new();
/// iface.set(2, ResourceComponent::row(7));
/// iface.set(3, ResourceComponent::new(4, 2));
/// assert_eq!(iface.component(2), Some(ResourceComponent::row(7)));
/// assert_eq!(iface.layers().collect::<Vec<_>>(), vec![2, 3]);
/// assert_eq!(iface.total_cells(), 7 + 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceInterface {
    components: BTreeMap<u32, ResourceComponent>,
}

impl ResourceInterface {
    /// Creates an empty interface.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the component at `layer`, replacing any previous one. Empty
    /// components are stored too — they record that the layer exists with
    /// zero demand.
    pub fn set(&mut self, layer: u32, component: ResourceComponent) {
        self.components.insert(layer, component);
    }

    /// The component at `layer`, if present.
    #[must_use]
    pub fn component(&self, layer: u32) -> Option<ResourceComponent> {
        self.components.get(&layer).copied()
    }

    /// Iterates over layers in increasing order.
    pub fn layers(&self) -> impl Iterator<Item = u32> + '_ {
        self.components.keys().copied()
    }

    /// Iterates over `(layer, component)` pairs in layer order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, ResourceComponent)> + '_ {
        self.components.iter().map(|(&l, &c)| (l, c))
    }

    /// Number of layers covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if no layer is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The smallest layer, if any.
    #[must_use]
    pub fn min_layer(&self) -> Option<u32> {
        self.components.keys().next().copied()
    }

    /// The largest layer, if any (`l(G_Vi)`).
    #[must_use]
    pub fn max_layer(&self) -> Option<u32> {
        self.components.keys().next_back().copied()
    }

    /// Total cells over all layers.
    #[must_use]
    pub fn total_cells(&self) -> u64 {
        self.components
            .values()
            .map(ResourceComponent::cell_count)
            .sum()
    }
}

impl FromIterator<(u32, ResourceComponent)> for ResourceInterface {
    fn from_iter<I: IntoIterator<Item = (u32, ResourceComponent)>>(iter: I) -> Self {
        Self {
            components: iter.into_iter().collect(),
        }
    }
}

impl Extend<(u32, ResourceComponent)> for ResourceInterface {
    fn extend<I: IntoIterator<Item = (u32, ResourceComponent)>>(&mut self, iter: I) {
        self.components.extend(iter);
    }
}

impl fmt::Display for ResourceInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, c)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "l{l}:{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_shapes() {
        let c = ResourceComponent::new(3, 2);
        assert_eq!(c.cell_count(), 6);
        assert_eq!(c.as_size(), Size::new(3, 2));
        assert_eq!(c.as_size_channel_major(), Size::new(2, 3));
        assert_eq!(ResourceComponent::row(5), ResourceComponent::new(5, 1));
    }

    #[test]
    fn component_emptiness() {
        assert!(ResourceComponent::new(0, 1).is_empty());
        assert!(ResourceComponent::new(1, 0).is_empty());
        assert!(!ResourceComponent::new(1, 1).is_empty());
        assert!(ResourceComponent::default().is_empty());
    }

    #[test]
    fn component_fits_in() {
        let small = ResourceComponent::new(2, 1);
        let big = ResourceComponent::new(3, 2);
        assert!(small.fits_in(big));
        assert!(!big.fits_in(small));
        assert!(big.fits_in(big));
    }

    #[test]
    fn component_display() {
        assert_eq!(ResourceComponent::new(7, 2).to_string(), "[7, 2]");
    }

    #[test]
    fn interface_layer_bounds() {
        let mut iface = ResourceInterface::new();
        assert!(iface.is_empty());
        assert_eq!(iface.min_layer(), None);
        iface.set(3, ResourceComponent::row(1));
        iface.set(1, ResourceComponent::row(2));
        iface.set(2, ResourceComponent::row(3));
        assert_eq!(iface.min_layer(), Some(1));
        assert_eq!(iface.max_layer(), Some(3));
        assert_eq!(iface.len(), 3);
        assert_eq!(iface.layers().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn interface_replaces_on_set() {
        let mut iface = ResourceInterface::new();
        iface.set(2, ResourceComponent::row(1));
        iface.set(2, ResourceComponent::row(9));
        assert_eq!(iface.component(2), Some(ResourceComponent::row(9)));
        assert_eq!(iface.len(), 1);
    }

    #[test]
    fn interface_total_cells() {
        let iface: ResourceInterface = [
            (1, ResourceComponent::new(4, 1)),
            (2, ResourceComponent::new(3, 3)),
        ]
        .into_iter()
        .collect();
        assert_eq!(iface.total_cells(), 4 + 9);
    }

    #[test]
    fn interface_display() {
        let iface: ResourceInterface = [
            (1, ResourceComponent::row(2)),
            (2, ResourceComponent::new(1, 1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(iface.to_string(), "{l1:[2, 1], l2:[1, 1]}");
    }

    #[test]
    fn interface_extend() {
        let mut iface = ResourceInterface::new();
        iface.extend([(5, ResourceComponent::row(1))]);
        assert_eq!(iface.component(5), Some(ResourceComponent::row(1)));
    }
}
