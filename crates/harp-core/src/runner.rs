//! Drives a network of [`HarpNode`]s over the simulated management plane.
//!
//! [`HarpNetwork`] is the deployment harness: it owns one state machine per
//! device and a [`MgmtPlane`] that delivers their messages with
//! management-cell timing (one hop costs up to a slotframe). The network can
//! run standalone — fast-forwarding the clock between deliveries — or in
//! lockstep with a data-plane [`Simulator`](tsch_sim::Simulator) by calling
//! [`HarpNetwork::step`] every slot and applying the returned schedule
//! operations.

use crate::error::HarpError;
use crate::node::{Effects, HarpNode, ScheduleOp};
use crate::protocol::HarpMessage;
use crate::requirement::Requirements;
use crate::schedule_gen::SchedulingPolicy;
use std::collections::BTreeSet;

use tsch_sim::{Asn, Direction, Link, MgmtPlane, NetworkSchedule, NodeId, SlotframeConfig, Tree};

/// Counters and metadata for one protocol run (static phase or one dynamic
/// adjustment) — the raw material of Table II and Fig. 12.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProtocolReport {
    /// When the run started.
    pub started_at: Asn,
    /// When the last message of the run was delivered.
    pub completed_at: Asn,
    /// Management messages exchanged (`POST/PUT intf`, `POST/PUT part`).
    pub mgmt_messages: u64,
    /// Cell-assignment notifications exchanged.
    pub cell_messages: u64,
    /// Nodes that sent or received any message during the run.
    pub involved_nodes: BTreeSet<NodeId>,
    /// Layers named in dynamic (`PUT`) messages.
    pub layers: BTreeSet<u32>,
}

impl ProtocolReport {
    /// Duration of the run in slots.
    #[must_use]
    pub fn elapsed_slots(&self) -> u64 {
        self.completed_at.since(self.started_at)
    }

    /// Duration in whole slotframes (rounded up).
    #[must_use]
    pub fn slotframes(&self, config: SlotframeConfig) -> u64 {
        self.elapsed_slots().div_ceil(u64::from(config.slots))
    }

    /// Duration in seconds.
    #[must_use]
    pub fn elapsed_seconds(&self, config: SlotframeConfig) -> f64 {
        config.slots_to_seconds(self.elapsed_slots())
    }
}

/// A network of HARP nodes plus the management plane connecting them.
#[derive(Debug)]
pub struct HarpNetwork {
    tree: Tree,
    config: SlotframeConfig,
    policy: SchedulingPolicy,
    nodes: Vec<HarpNode>,
    plane: MgmtPlane<HarpMessage>,
    /// Mirror of the installed schedule (authoritative when running
    /// standalone; callers integrating with a [`tsch_sim::Simulator`] apply
    /// the same ops there).
    schedule: NetworkSchedule,
    now: Asn,
    report: ProtocolReport,
    /// Nodes that have left the network (their tree entries remain, but
    /// they carry no demand and take no further part in the protocol).
    departed: BTreeSet<NodeId>,
}

impl HarpNetwork {
    /// Builds the deployment: one node per device, requirements installed at
    /// each link's parent.
    #[must_use]
    pub fn new(
        tree: Tree,
        config: SlotframeConfig,
        requirements: &Requirements,
        policy: SchedulingPolicy,
    ) -> Self {
        let mut nodes: Vec<HarpNode> = tree
            .nodes()
            .map(|v| HarpNode::new(&tree, v, config, policy))
            .collect();
        for (link, cells) in requirements.iter() {
            if let Some(parent) = tree.parent(link.child) {
                nodes[parent.index()].set_requirement(link.direction, link.child, cells);
            }
        }
        let plane = MgmtPlane::new(&tree, config);
        Self {
            tree,
            config,
            policy,
            nodes,
            plane,
            schedule: NetworkSchedule::new(config),
            now: Asn::ZERO,
            report: ProtocolReport::default(),
            departed: BTreeSet::new(),
        }
    }

    /// The tree this network runs on.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The current clock of the management plane.
    #[must_use]
    pub fn now(&self) -> Asn {
        self.now
    }

    /// The slotframe configuration of this deployment.
    #[must_use]
    pub fn config(&self) -> SlotframeConfig {
        self.config
    }

    /// The schedule as installed so far by the protocol.
    #[must_use]
    pub fn schedule(&self) -> &NetworkSchedule {
        &self.schedule
    }

    /// Access to one node's state (inspection / tests).
    #[must_use]
    pub fn node(&self, id: NodeId) -> &HarpNode {
        &self.nodes[id.index()]
    }

    /// Returns `true` if `node` is still part of the network (has not
    /// departed via [`HarpNetwork::leave_leaf`]).
    #[must_use]
    pub fn is_active(&self, node: NodeId) -> bool {
        node.index() < self.tree.len() && !self.departed.contains(&node)
    }

    /// Returns `true` when no protocol message is in flight.
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.plane.in_flight() == 0
    }

    /// The report accumulated since the last [`HarpNetwork::reset_report`].
    #[must_use]
    pub fn report(&self) -> &ProtocolReport {
        &self.report
    }

    /// Starts a fresh report window at the current time.
    pub fn reset_report(&mut self) {
        self.report = ProtocolReport {
            started_at: self.now,
            completed_at: self.now,
            ..ProtocolReport::default()
        };
    }

    fn send_effects(&mut self, from: NodeId, fx: Effects) -> Result<Vec<ScheduleOp>, HarpError> {
        let mut ops = fx.schedule_ops;
        for op in &ops {
            apply_op(&mut self.schedule, op)?;
        }
        for (to, msg) in fx.messages {
            self.account_message(from, to, &msg);
            self.plane
                .send(&self.tree, self.now, from, to, msg)
                .expect("protocol messages only travel between tree neighbours");
        }
        // Applying ops may have produced nothing to forward; return them so
        // an embedding simulator can mirror the changes.
        ops.shrink_to_fit();
        Ok(ops)
    }

    fn account_message(&mut self, from: NodeId, to: NodeId, msg: &HarpMessage) {
        if msg.is_management() {
            self.report.mgmt_messages += 1;
        } else {
            self.report.cell_messages += 1;
        }
        self.report.involved_nodes.insert(from);
        self.report.involved_nodes.insert(to);
        match msg {
            HarpMessage::PutInterface { layer, .. } | HarpMessage::PutPartition { layer, .. } => {
                self.report.layers.insert(*layer);
            }
            _ => {}
        }
    }

    /// Bootstraps the static phase: every node generates what it can and the
    /// first `POST intf` wave enters the management plane.
    ///
    /// # Errors
    ///
    /// Propagates composition/allocation failures.
    pub fn bootstrap(&mut self) -> Result<Vec<ScheduleOp>, HarpError> {
        self.reset_report();
        let mut ops = Vec::new();
        for i in 0..self.nodes.len() {
            let id = self.nodes[i].id();
            let fx = self.nodes[i].bootstrap()?;
            ops.extend(self.send_effects(id, fx)?);
        }
        Ok(ops)
    }

    /// Advances the management plane to `now`, delivering due messages into
    /// the node handlers. Returns the schedule operations triggered.
    ///
    /// # Errors
    ///
    /// Propagates handler failures (e.g. an infeasible adjustment reaching
    /// the gateway).
    pub fn step(&mut self, now: Asn) -> Result<Vec<ScheduleOp>, HarpError> {
        debug_assert!(now >= self.now, "time must not run backwards");
        self.now = now;
        let mut ops = Vec::new();
        // Deliveries can enqueue messages due at the same instant; loop
        // until this instant is drained.
        loop {
            let delivered = self.plane.poll(now);
            if delivered.is_empty() {
                break;
            }
            for d in delivered {
                self.report.completed_at = self.report.completed_at.max(d.at);
                let fx = self.nodes[d.to.index()].handle(d.from, d.payload)?;
                ops.extend(self.send_effects(d.to, fx)?);
            }
            if self.plane.next_delivery().map(|a| a > now).unwrap_or(true) {
                break;
            }
        }
        Ok(ops)
    }

    /// Fast-forwards between deliveries until the plane is empty. Returns
    /// the accumulated report for the window.
    ///
    /// # Errors
    ///
    /// Propagates handler failures.
    pub fn run_until_quiescent(&mut self) -> Result<ProtocolReport, HarpError> {
        while let Some(at) = self.plane.next_delivery() {
            self.step(at)?;
        }
        Ok(self.report.clone())
    }

    /// Runs the complete static phase (bootstrap + drain) and returns its
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates composition/allocation failures.
    pub fn run_static(&mut self) -> Result<ProtocolReport, HarpError> {
        self.bootstrap()?;
        self.run_until_quiescent()
    }

    /// Injects a traffic change: the requirement of `link` becomes
    /// `new_cells`. The change is processed by the link's parent node and
    /// may trigger a multi-hop adjustment. Counting continues in the current
    /// report window — call [`HarpNetwork::reset_report`] first (or use
    /// [`HarpNetwork::adjust_and_settle`]) to measure one event.
    ///
    /// # Errors
    ///
    /// Propagates handler failures, including [`HarpError::SlotframeOverflow`]
    /// for infeasible increases.
    pub fn request_change(
        &mut self,
        at: Asn,
        link: Link,
        new_cells: u32,
    ) -> Result<Vec<ScheduleOp>, HarpError> {
        let parent = self
            .tree
            .parent(link.child)
            .ok_or(HarpError::MissingPartition {
                node: link.child,
                layer: 0,
            })?;
        self.now = self.now.max(at);
        self.report.involved_nodes.insert(parent);
        let fx =
            self.nodes[parent.index()].request_change(link.direction, link.child, new_cells)?;
        self.send_effects(parent, fx)
    }

    /// Convenience: inject a change and drain the network, returning the
    /// adjustment report (the Table II row for this event).
    ///
    /// The operation is transactional: if the change turns out to be
    /// infeasible (e.g. [`HarpError::SlotframeOverflow`] at the gateway),
    /// every node's state, the schedule and the management plane are rolled
    /// back to their pre-request condition — the rejection a real
    /// deployment would deliver as a NACK.
    ///
    /// # Errors
    ///
    /// Propagates handler failures; on error the network is unchanged.
    pub fn adjust_and_settle(
        &mut self,
        at: Asn,
        link: Link,
        new_cells: u32,
    ) -> Result<ProtocolReport, HarpError> {
        self.now = self.now.max(at);
        self.reset_report();
        let nodes_snapshot = self.nodes.clone();
        let schedule_snapshot = self.schedule.clone();
        let result = self
            .request_change(at, link, new_cells)
            .and_then(|_| self.run_until_quiescent());
        if result.is_err() {
            self.nodes = nodes_snapshot;
            self.schedule = schedule_snapshot;
            self.plane.clear_in_flight();
        }
        result
    }

    /// Global refresh (a maintenance-window defragmentation): re-runs the
    /// whole static phase from the nodes' *current* demands, replacing the
    /// incrementally adjusted layout with a fresh compliant one. Returns
    /// the protocol report of the refresh plus how many links' cells moved.
    ///
    /// Dynamic adjustments trade latency compliance for low reconfiguration
    /// cost; a refresh pays the full static-phase message bill once to
    /// restore the compliant ordering (and with it the one-slotframe
    /// latency bound).
    ///
    /// # Errors
    ///
    /// Propagates static-phase failures (the current demand set is known to
    /// fit, so only slotframe overflow after extreme growth can fail).
    pub fn refresh(&mut self) -> Result<(ProtocolReport, usize), HarpError> {
        // Snapshot current demands from the per-node state machines.
        let mut requirements = Requirements::new();
        for v in self.tree.nodes() {
            for d in Direction::BOTH {
                for &c in self.tree.children(v).iter() {
                    requirements.set(
                        Link {
                            child: c,
                            direction: d,
                        },
                        self.nodes[v.index()].requirement(d, c),
                    );
                }
            }
        }
        let old_schedule = self.schedule.clone();

        // Rebuild the control plane in place; the clock keeps running.
        self.nodes = self
            .tree
            .nodes()
            .map(|v| HarpNode::new(&self.tree, v, self.config, self.policy))
            .collect();
        for (link, cells) in requirements.iter() {
            if let Some(parent) = self.tree.parent(link.child) {
                self.nodes[parent.index()].set_requirement(link.direction, link.child, cells);
            }
        }
        self.plane = MgmtPlane::new(&self.tree, self.config);
        self.schedule = NetworkSchedule::new(self.config);
        self.reset_report();
        let mut ops = Vec::new();
        for i in 0..self.nodes.len() {
            let id = self.nodes[i].id();
            let fx = self.nodes[i].bootstrap()?;
            ops.extend(self.send_effects(id, fx)?);
        }
        let report = self.run_until_quiescent()?;

        // Count links whose cell sets changed.
        let mut moved = 0usize;
        for d in Direction::BOTH {
            for link in self.tree.links(d) {
                if self.schedule.cells_of(link) != old_schedule.cells_of(link) {
                    moved += 1;
                }
            }
        }
        let _ = ops;
        Ok((report, moved))
    }

    // ---- topology dynamics (§V and the paper's motivation: interference
    // makes nodes switch to more reliable parents) ----

    /// A leaf node joins the network under `parent`, demanding
    /// `up_cells`/`down_cells` on its new links. Returns the new node's id
    /// and the protocol report for absorbing it.
    ///
    /// # Errors
    ///
    /// Propagates topology errors (unknown parent) and handler failures
    /// (infeasible demand).
    pub fn join_leaf(
        &mut self,
        at: Asn,
        parent: NodeId,
        up_cells: u32,
        down_cells: u32,
    ) -> Result<(NodeId, ProtocolReport), HarpError> {
        if !self.is_active(parent) {
            return Err(HarpError::NodeDeparted(parent));
        }
        let (tree, id) =
            self.tree
                .with_new_leaf(parent)
                .map_err(|_| HarpError::MissingPartition {
                    node: parent,
                    layer: 0,
                })?;
        self.tree = tree;
        let plane_id = self.plane.add_node();
        debug_assert_eq!(plane_id, id);
        self.nodes
            .push(HarpNode::new(&self.tree, id, self.config, self.policy));
        self.nodes[parent.index()].adopt_child(id);
        // If the parent just stopped being a leaf, its own parent must start
        // forwarding partition updates to it.
        if let Some(grandparent) = self.tree.parent(parent) {
            self.nodes[grandparent.index()].promote_child(parent);
        }
        self.now = self.now.max(at);
        self.reset_report();
        if up_cells > 0 {
            self.request_change(self.now, Link::up(id), up_cells)?;
        }
        if down_cells > 0 {
            self.request_change(self.now, Link::down(id), down_cells)?;
        }
        let report = self.run_until_quiescent()?;
        Ok((id, report))
    }

    /// A leaf node leaves the network: its parent releases the cells
    /// locally (§V — departures never need partition adjustment). The node
    /// keeps its id; its links simply carry no cells.
    ///
    /// # Errors
    ///
    /// Propagates handler failures.
    pub fn leave_leaf(&mut self, at: Asn, leaf: NodeId) -> Result<ProtocolReport, HarpError> {
        assert!(
            self.tree.is_leaf(leaf) && leaf != self.tree.root(),
            "only non-gateway leaves can leave"
        );
        if !self.is_active(leaf) {
            return Err(HarpError::NodeDeparted(leaf));
        }
        self.now = self.now.max(at);
        self.reset_report();
        for d in Direction::BOTH {
            self.request_change(
                self.now,
                Link {
                    child: leaf,
                    direction: d,
                },
                0,
            )?;
        }
        let report = self.run_until_quiescent()?;
        if let Some(parent) = self.tree.parent(leaf) {
            self.nodes[parent.index()].orphan_child(leaf);
        }
        self.departed.insert(leaf);
        Ok(report)
    }

    /// A leaf switches to a more reliable parent (the interference-driven
    /// topology change of the paper's introduction): the old parent
    /// releases its cells locally, the new parent allocates fresh ones.
    ///
    /// # Errors
    ///
    /// Propagates topology errors (illegal move) and handler failures.
    pub fn reparent_leaf(
        &mut self,
        at: Asn,
        leaf: NodeId,
        new_parent: NodeId,
    ) -> Result<ProtocolReport, HarpError> {
        assert!(
            self.tree.is_leaf(leaf) && leaf != self.tree.root(),
            "only non-gateway leaves can switch parents"
        );
        if !self.is_active(leaf) {
            return Err(HarpError::NodeDeparted(leaf));
        }
        if !self.is_active(new_parent) {
            return Err(HarpError::NodeDeparted(new_parent));
        }
        let old_parent = self.tree.parent(leaf).expect("non-gateway leaf");
        let up = self.nodes[old_parent.index()].requirement(Direction::Up, leaf);
        let down = self.nodes[old_parent.index()].requirement(Direction::Down, leaf);

        self.now = self.now.max(at);
        self.reset_report();
        // Release at the old parent first (messages still travel the old
        // tree edge), and drain before rewiring.
        for d in Direction::BOTH {
            self.request_change(
                self.now,
                Link {
                    child: leaf,
                    direction: d,
                },
                0,
            )?;
        }
        self.run_until_quiescent()?;

        // Rewire.
        let tree = self.tree.with_reparented(leaf, new_parent).map_err(|_| {
            HarpError::MissingPartition {
                node: new_parent,
                layer: 0,
            }
        })?;
        self.tree = tree;
        self.nodes[old_parent.index()].orphan_child(leaf);
        self.nodes[new_parent.index()].adopt_child(leaf);
        if let Some(grandparent) = self.tree.parent(new_parent) {
            self.nodes[grandparent.index()].promote_child(new_parent);
        }
        let layer = self.tree.link_layer(leaf);
        self.nodes[leaf.index()].set_parent(Some(new_parent), layer);

        // Re-demand at the new parent.
        if up > 0 {
            self.request_change(self.now, Link::up(leaf), up)?;
        }
        if down > 0 {
            self.request_change(self.now, Link::down(leaf), down)?;
        }
        self.run_until_quiescent()
    }

    /// Which direction a change to `link` affects — helper for experiment
    /// code.
    #[must_use]
    pub fn direction_of(link: Link) -> Direction {
        link.direction
    }
}

/// Applies one schedule operation to a network schedule.
///
/// # Errors
///
/// Propagates duplicate-assignment errors from the schedule.
pub fn apply_op(schedule: &mut NetworkSchedule, op: &ScheduleOp) -> Result<(), HarpError> {
    match op {
        ScheduleOp::SetLinkCells { link, cells } => {
            schedule.unassign_link(*link);
            for &c in cells {
                schedule.assign(c, *link)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::GlobalInterference;

    fn fig1_reqs(tree: &Tree) -> Requirements {
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
            reqs.set(Link::down(v), tree.subtree_size(v));
        }
        reqs
    }

    fn network() -> (Tree, Requirements, HarpNetwork) {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let net = HarpNetwork::new(
            tree.clone(),
            SlotframeConfig::paper_default(),
            &reqs,
            SchedulingPolicy::RateMonotonic,
        );
        (tree, reqs, net)
    }

    #[test]
    fn static_phase_converges_with_timing() {
        let (tree, reqs, mut net) = network();
        let report = net.run_static().unwrap();
        assert!(net.quiescent());
        assert!(report.mgmt_messages >= 10, "5 intf + 5 part at least");
        assert!(report.elapsed_slots() > 0, "messages take time");
        // Static phase spans a bounded number of slotframes: interface wave
        // up (≤ depth hops) + partitions down + cell assignments.
        assert!(report.slotframes(SlotframeConfig::paper_default()) <= 12);
        let schedule = net.schedule();
        assert!(schedule.is_exclusive());
        assert!(crate::unsatisfied_links(&tree, &reqs, schedule).is_empty());
    }

    #[test]
    fn static_schedule_collision_free_under_global_model() {
        let (tree, _, mut net) = network();
        net.run_static().unwrap();
        let report = net.schedule().collision_report(&tree, &GlobalInterference);
        assert_eq!(report.colliding_assignments, 0);
    }

    #[test]
    fn local_adjustment_is_fast_and_cheap() {
        let (_, _, mut net) = network();
        net.run_static().unwrap();
        let t0 = net.now();
        // Decrease: handled locally, only cell messages.
        let report = net.adjust_and_settle(t0, Link::up(NodeId(9)), 0).unwrap();
        assert_eq!(report.mgmt_messages, 0);
        assert!(report.cell_messages >= 1);
        assert!(report.slotframes(SlotframeConfig::paper_default()) <= 1);
    }

    #[test]
    fn one_hop_adjustment_counts_messages_and_time() {
        let (_, _, mut net) = network();
        net.run_static().unwrap();
        let t0 = net.now();
        let report = net.adjust_and_settle(t0, Link::up(NodeId(9)), 2).unwrap();
        assert!(report.mgmt_messages >= 2, "PUT intf + PUT part at minimum");
        assert!(!report.layers.is_empty());
        assert!(report.elapsed_slots() > 0);
        let schedule = net.schedule();
        assert!(schedule.is_exclusive());
        assert_eq!(schedule.cells_of(Link::up(NodeId(9))).len(), 2);
    }

    #[test]
    fn deeper_events_cost_more_messages_than_local_ones() {
        let (_, _, mut net) = network();
        net.run_static().unwrap();
        let t0 = net.now();
        let small = net.adjust_and_settle(t0, Link::up(NodeId(9)), 2).unwrap();
        let t1 = net.now();
        // A much larger increase must also resolve; exact message counts
        // depend on where idle space sits after the first adjustment, so
        // assert the structural facts only.
        let big = net.adjust_and_settle(t1, Link::up(NodeId(10)), 12).unwrap();
        assert!(small.mgmt_messages >= 2, "escalation needs intf + part");
        assert!(big.mgmt_messages >= 2);
        assert_eq!(net.schedule().cells_of(Link::up(NodeId(10))).len(), 12);
        assert!(net.schedule().is_exclusive());
    }

    #[test]
    fn schedule_ops_mirror_into_external_schedule() {
        let (_, _, mut net) = network();
        let mut external = NetworkSchedule::new(SlotframeConfig::paper_default());
        let mut ops = net.bootstrap().unwrap();
        while !net.quiescent() {
            let at = net.now().plus(1);
            ops.extend(net.step(at).unwrap());
        }
        for op in &ops {
            apply_op(&mut external, op).unwrap();
        }
        // The external mirror equals the internal schedule.
        let a: Vec<_> = external
            .iter_links()
            .map(|(l, c)| (l, c.to_vec()))
            .collect();
        let b: Vec<_> = net
            .schedule()
            .iter_links()
            .map(|(l, c)| (l, c.to_vec()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn report_resets_between_windows() {
        let (_, _, mut net) = network();
        let static_report = net.run_static().unwrap();
        assert!(static_report.mgmt_messages > 0);
        let t0 = net.now();
        let adj = net.adjust_and_settle(t0, Link::up(NodeId(9)), 2).unwrap();
        assert!(adj.mgmt_messages < static_report.mgmt_messages);
        assert!(adj.started_at >= static_report.completed_at);
    }

    #[test]
    fn infeasible_request_errors_cleanly() {
        let (_, _, mut net) = network();
        net.run_static().unwrap();
        let t0 = net.now();
        let result = net.adjust_and_settle(t0, Link::up(NodeId(9)), 500);
        assert!(matches!(result, Err(HarpError::SlotframeOverflow { .. })));
    }
}
