//! Distributed schedule generation (§IV-D of the paper).
//!
//! Once every node holds its partition at its own link layer — a
//! single-channel row of `Σ r(e)` cells — it assigns those cells to its
//! child links locally, with no coordination: the partitions are disjoint,
//! so whatever each parent decides is collision-free network-wide.
//!
//! The paper deploys Rate-Monotonic ordering (links carrying
//! shorter-period, i.e. higher-rate, traffic first); any policy works
//! inside the row, so the policy is a parameter.

use crate::allocation::PartitionTable;
use crate::error::HarpError;
use crate::requirement::Requirements;
use packing::Rect;
use tsch_sim::{Cell, Direction, Link, NetworkSchedule, NodeId, Tree};

/// How a parent orders its child links inside its partition row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulingPolicy {
    /// Rate-Monotonic: links with larger cell requirements (shorter periods
    /// / higher rates) are scheduled earliest in the row.
    #[default]
    RateMonotonic,
    /// Children in id order — a deterministic baseline.
    ChildOrder,
}

/// The cells a parent assigned to one of its child links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkAssignment {
    /// The directed link.
    pub link: Link,
    /// The cells granted to it, in transmission order.
    pub cells: Vec<Cell>,
}

/// Assigns the cells of one partition row to the links of `parent`'s
/// children, according to `policy`. This is the *local* operation each node
/// performs independently (the rest of the network is irrelevant to it).
///
/// Cell slot/channel offsets are taken modulo the slotframe: partitions from
/// an unbounded allocation wrap around, deliberately producing the overlap
/// collisions measured in the channel-starvation experiment.
///
/// # Errors
///
/// [`HarpError::PartitionTooSmall`] if the row has fewer cells than the
/// links require.
pub fn assign_cells_in_row(
    tree: &Tree,
    parent: NodeId,
    direction: Direction,
    row: Rect,
    requirements: &Requirements,
    policy: SchedulingPolicy,
    config: tsch_sim::SlotframeConfig,
) -> Result<Vec<LinkAssignment>, HarpError> {
    let children: Vec<(NodeId, u32)> = tree
        .children(parent)
        .iter()
        .map(|&c| {
            (
                c,
                requirements.get(Link {
                    child: c,
                    direction,
                }),
            )
        })
        .collect();
    assign_cells_to_links(parent, &children, direction, row, policy, config)
}

/// Tree-free core of [`assign_cells_in_row`]: the caller supplies the
/// `(child, requirement)` pairs directly. This is the form each distributed
/// [`HarpNode`](crate::HarpNode) uses — a node knows its own children and
/// their demands without holding the global tree.
///
/// # Errors
///
/// [`HarpError::PartitionTooSmall`] if the row has fewer cells than the
/// links require.
pub fn assign_cells_to_links(
    parent: NodeId,
    child_requirements: &[(NodeId, u32)],
    direction: Direction,
    row: Rect,
    policy: SchedulingPolicy,
    config: tsch_sim::SlotframeConfig,
) -> Result<Vec<LinkAssignment>, HarpError> {
    let mut children = child_requirements.to_vec();
    let required: u32 = children.iter().map(|&(_, r)| r).sum();
    let available = row.width() * row.height();
    if required > available {
        return Err(HarpError::PartitionTooSmall {
            node: parent,
            required,
            available,
        });
    }
    match policy {
        SchedulingPolicy::RateMonotonic => {
            children.sort_by_key(|&(c, r)| (std::cmp::Reverse(r), c));
        }
        SchedulingPolicy::ChildOrder => children.sort_by_key(|&(c, _)| c),
    }

    // Walk the row's cells left to right (then next channel for multi-row
    // partitions, which only arise after dynamic adjustment).
    let mut cells = (0..row.height()).flat_map(|dy| {
        (0..row.width()).map(move |dx| {
            Cell::new(
                (row.left() + dx) % config.slots,
                ((u64::from(row.bottom() + dy) % u64::from(config.channels)) as u16)
                    .min(config.channels - 1),
            )
        })
    });
    let mut out = Vec::with_capacity(children.len());
    for (child, r) in children {
        let link = Link { child, direction };
        let granted: Vec<Cell> = cells.by_ref().take(r as usize).collect();
        debug_assert_eq!(granted.len(), r as usize);
        out.push(LinkAssignment {
            link,
            cells: granted,
        });
    }
    Ok(out)
}

/// Generates the complete network schedule from an allocated partition
/// table: every non-leaf node assigns its row locally; the union is the
/// global schedule.
///
/// # Errors
///
/// * [`HarpError::MissingPartition`] if a non-leaf node with demand has no
///   scheduling area.
/// * [`HarpError::PartitionTooSmall`] if a row cannot hold its links' cells.
/// * [`HarpError::Schedule`] if a wrapped (overflowing) allocation assigns
///   the same cell to one link twice.
///
/// # Examples
///
/// ```
/// use harp_core::{
///     allocate_partitions, build_interfaces, generate_schedule, Requirements,
///     SchedulingPolicy,
/// };
/// use tsch_sim::{Direction, Link, NodeId, SlotframeConfig, Tree};
///
/// # fn main() -> Result<(), harp_core::HarpError> {
/// let tree = Tree::paper_fig1_example();
/// let mut reqs = Requirements::new();
/// for v in tree.nodes().skip(1) {
///     reqs.set(Link::up(v), tree.subtree_size(v));
///     reqs.set(Link::down(v), tree.subtree_size(v));
/// }
/// let cfg = SlotframeConfig::paper_default();
/// let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels)?;
/// let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels)?;
/// let table = allocate_partitions(&tree, &up, &down, cfg)?;
/// let schedule =
///     generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic)?;
/// assert!(schedule.is_exclusive()); // HARP's headline property
/// # Ok(())
/// # }
/// ```
pub fn generate_schedule(
    tree: &Tree,
    requirements: &Requirements,
    table: &PartitionTable,
    policy: SchedulingPolicy,
) -> Result<NetworkSchedule, HarpError> {
    let config = table.config();
    let mut schedule = NetworkSchedule::new(config);
    for direction in Direction::BOTH {
        for v in tree.nodes() {
            if tree.is_leaf(v) {
                continue;
            }
            let need = requirements.direct_total(tree, v, direction);
            let Some(row) = table.scheduling_area(tree, v, direction) else {
                if need == 0 {
                    continue;
                }
                return Err(HarpError::MissingPartition {
                    node: v,
                    layer: tree.link_layer(v),
                });
            };
            let assignments =
                assign_cells_in_row(tree, v, direction, row, requirements, policy, config)?;
            for a in assignments {
                for cell in a.cells {
                    schedule.assign(cell, a.link)?;
                }
            }
        }
    }
    Ok(schedule)
}

/// Verifies that a schedule satisfies every link's requirement.
///
/// Returns the links that received fewer cells than required.
#[must_use]
pub fn unsatisfied_links(
    tree: &Tree,
    requirements: &Requirements,
    schedule: &NetworkSchedule,
) -> Vec<(Link, u32, usize)> {
    let mut out = Vec::new();
    for direction in Direction::BOTH {
        for v in tree.nodes().skip(1) {
            let link = Link {
                child: v,
                direction,
            };
            let need = requirements.get(link);
            let got = schedule.cells_of(link).len();
            if (got as u64) < u64::from(need) {
                out.push((link, need, got));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::allocate_partitions;
    use crate::compose::build_interfaces;
    use tsch_sim::SlotframeConfig;

    fn fig1_reqs(tree: &Tree) -> Requirements {
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
            reqs.set(Link::down(v), tree.subtree_size(v));
        }
        reqs
    }

    fn full_schedule(
        cfg: SlotframeConfig,
        policy: SchedulingPolicy,
    ) -> (Tree, Requirements, NetworkSchedule) {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let table = allocate_partitions(&tree, &up, &down, cfg).unwrap();
        let schedule = generate_schedule(&tree, &reqs, &table, policy).unwrap();
        (tree, reqs, schedule)
    }

    #[test]
    fn schedule_is_exclusive_and_satisfies_requirements() {
        let (tree, reqs, schedule) = full_schedule(
            SlotframeConfig::paper_default(),
            SchedulingPolicy::RateMonotonic,
        );
        assert!(schedule.is_exclusive());
        assert!(unsatisfied_links(&tree, &reqs, &schedule).is_empty());
    }

    #[test]
    fn schedule_has_zero_collisions_under_global_interference() {
        let (tree, _, schedule) = full_schedule(
            SlotframeConfig::paper_default(),
            SchedulingPolicy::RateMonotonic,
        );
        let report = schedule.collision_report(&tree, &tsch_sim::GlobalInterference);
        assert_eq!(report.colliding_assignments, 0);
        assert_eq!(report.collision_probability(), 0.0);
    }

    #[test]
    fn exact_cell_counts_match_requirements() {
        let (tree, reqs, schedule) = full_schedule(
            SlotframeConfig::paper_default(),
            SchedulingPolicy::ChildOrder,
        );
        for (link, need) in reqs.iter() {
            assert_eq!(schedule.cells_of(link).len(), need as usize, "{link}");
        }
        let _ = tree;
    }

    #[test]
    fn rm_policy_orders_heaviest_link_first() {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let cfg = SlotframeConfig::paper_default();
        let row = Rect::from_xywh(10, 0, 11, 1);
        let assignments = assign_cells_in_row(
            &tree,
            NodeId(0),
            Direction::Up,
            row,
            &reqs,
            SchedulingPolicy::RateMonotonic,
            cfg,
        )
        .unwrap();
        // Gateway children: 1 (r=3), 2 (r=2), 3 (r=6). RM → 3, 1, 2.
        assert_eq!(assignments[0].link, Link::up(NodeId(3)));
        assert_eq!(assignments[0].cells.len(), 6);
        assert_eq!(assignments[0].cells[0], Cell::new(10, 0));
        assert_eq!(assignments[1].link, Link::up(NodeId(1)));
        assert_eq!(assignments[2].link, Link::up(NodeId(2)));
        assert_eq!(assignments[2].cells.last(), Some(&Cell::new(20, 0)));
    }

    #[test]
    fn child_order_policy_is_id_order() {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let cfg = SlotframeConfig::paper_default();
        let row = Rect::from_xywh(0, 2, 11, 1);
        let assignments = assign_cells_in_row(
            &tree,
            NodeId(0),
            Direction::Up,
            row,
            &reqs,
            SchedulingPolicy::ChildOrder,
            cfg,
        )
        .unwrap();
        let order: Vec<NodeId> = assignments.iter().map(|a| a.link.child).collect();
        assert_eq!(order, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn too_small_row_is_an_error() {
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let cfg = SlotframeConfig::paper_default();
        let row = Rect::from_xywh(0, 0, 5, 1); // gateway needs 11
        let err = assign_cells_in_row(
            &tree,
            NodeId(0),
            Direction::Up,
            row,
            &reqs,
            SchedulingPolicy::RateMonotonic,
            cfg,
        )
        .unwrap_err();
        assert_eq!(
            err,
            HarpError::PartitionTooSmall {
                node: NodeId(0),
                required: 11,
                available: 5
            }
        );
    }

    #[test]
    fn zero_requirement_children_get_empty_assignments() {
        let tree = Tree::from_parents(&[(1, 0), (2, 0)]);
        let mut reqs = Requirements::new();
        reqs.set(Link::up(NodeId(1)), 2);
        // Node 2 requires nothing.
        let cfg = SlotframeConfig::paper_default();
        let row = Rect::from_xywh(0, 0, 2, 1);
        let assignments = assign_cells_in_row(
            &tree,
            NodeId(0),
            Direction::Up,
            row,
            &reqs,
            SchedulingPolicy::RateMonotonic,
            cfg,
        )
        .unwrap();
        assert_eq!(assignments.len(), 2);
        let empty = assignments
            .iter()
            .find(|a| a.link.child == NodeId(2))
            .unwrap();
        assert!(empty.cells.is_empty());
    }

    #[test]
    fn wrapped_allocation_generates_but_collides() {
        // A slotframe too short for the demand: unbounded allocation +
        // schedule generation must succeed, and the wrap produces shared
        // cells (HARP's graceful degradation).
        let tree = Tree::paper_fig1_example();
        let reqs = fig1_reqs(&tree);
        let cfg = SlotframeConfig::new(20, 2, 10_000).unwrap();
        let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let table = crate::allocation::allocate_partitions_unbounded(&tree, &up, &down, cfg);
        assert!(table.total_slots() > cfg.slots);
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        assert!(!schedule.is_exclusive(), "wrap-around must overlap");
    }

    #[test]
    fn schedule_covers_fig1_total_cells() {
        let (_, reqs, schedule) = full_schedule(
            SlotframeConfig::paper_default(),
            SchedulingPolicy::RateMonotonic,
        );
        let expected: u64 = reqs.total(Direction::Up) + reqs.total(Direction::Down);
        assert_eq!(schedule.assignment_count() as u64, expected);
    }
}
