//! Resource component composition (Problem 1 / Alg. 1 of the paper) and
//! bottom-up resource-interface generation.
//!
//! A non-leaf node `V_i` receives the resource interfaces of its direct
//! subtrees and must merge, for each layer `l`, the children's components
//! `C_{i1,l} … C_{ik,l}` into a single composite `C_{i,l}` that (i) contains
//! them all, (ii) minimises the number of slots and (iii) among those,
//! minimises the number of channels. The paper maps this to 2-D strip
//! packing and solves it with the best-fit skyline heuristic *twice*:
//!
//! 1. strip width = the channel budget `M`, minimise the slot extent;
//! 2. strip width = the minimal slot extent from pass 1, minimise the
//!    channel extent.
//!
//! The winning pass's placement of each child component inside the composite
//! is kept as the [`CompositionLayout`]; the partition-allocation phase uses
//! it to carve children's partitions out of the parent's.

use crate::component::{ResourceComponent, ResourceInterface};
use crate::error::HarpError;
use crate::requirement::Requirements;
use packing::{pack_strip, Rect, Size};
use std::collections::BTreeMap;
use tsch_sim::{Direction, NodeId, Tree};

/// The result of composing child components into one composite component:
/// the composite's size and where each child landed inside it.
///
/// Placements use slotframe orientation: `x` = slot offset, `y` = channel
/// offset (both relative to the composite's origin). Children whose
/// component is empty receive a zero-sized rectangle at the origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositionLayout {
    composite: ResourceComponent,
    placements: Vec<(NodeId, Rect)>,
}

impl CompositionLayout {
    /// The composite component `C_{i,l}`.
    #[must_use]
    pub fn composite(&self) -> ResourceComponent {
        self.composite
    }

    /// Each child's placement inside the composite, in input order.
    #[must_use]
    pub fn placements(&self) -> &[(NodeId, Rect)] {
        &self.placements
    }

    /// The placement of one child, if it participated in the composition.
    #[must_use]
    pub fn placement_of(&self, child: NodeId) -> Option<Rect> {
        self.placements
            .iter()
            .find(|(c, _)| *c == child)
            .map(|&(_, r)| r)
    }
}

/// Composes child components at one layer into a composite (Alg. 1).
///
/// `children` pairs each direct-subtree root with its component at the layer
/// being composed. The `max_channels` budget is the network's channel count
/// `M`.
///
/// # Errors
///
/// [`HarpError::ChannelBudgetExceeded`] if any child component is taller (in
/// channels) than the budget.
///
/// # Examples
///
/// ```
/// use harp_core::{compose_components, ResourceComponent};
/// use tsch_sim::NodeId;
///
/// # fn main() -> Result<(), harp_core::HarpError> {
/// let children = [
///     (NodeId(1), ResourceComponent::row(3)),
///     (NodeId(2), ResourceComponent::row(2)),
/// ];
/// let layout = compose_components(&children, 16, 0)?;
/// // Two rows side by side in the channel dimension: 3 slots, 2 channels
/// // would waste slots; the composer prefers fewer slots first, so it
/// // stacks them across channels: 3 slots × 2 channels.
/// assert_eq!(layout.composite().slots, 3);
/// assert_eq!(layout.composite().channels, 2);
/// # Ok(())
/// # }
/// ```
pub fn compose_components(
    children: &[(NodeId, ResourceComponent)],
    max_channels: u16,
    layer: u32,
) -> Result<CompositionLayout, HarpError> {
    // Partition into packable and empty children.
    let packable: Vec<(NodeId, ResourceComponent)> = children
        .iter()
        .copied()
        .filter(|(_, c)| !c.is_empty())
        .collect();
    if let Some(&(_, c)) = packable
        .iter()
        .find(|(_, c)| c.channels > u32::from(max_channels))
    {
        return Err(HarpError::ChannelBudgetExceeded {
            layer,
            needed: c.channels,
            budget: max_channels,
        });
    }
    if packable.is_empty() {
        return Ok(CompositionLayout {
            composite: ResourceComponent::default(),
            placements: children
                .iter()
                .map(|&(n, _)| (n, Rect::default()))
                .collect(),
        });
    }

    // Pass 1: width = channel budget, minimise the slot extent.
    let channel_major: Vec<Size> = packable
        .iter()
        .map(|(_, c)| c.as_size_channel_major())
        .collect();
    let pass1 = pack_strip(&channel_major, u32::from(max_channels))?;
    let min_slots = pass1.height();
    let pass1_channels = pass1
        .placements()
        .iter()
        .map(Rect::right)
        .max()
        .expect("non-empty packing");

    // Pass 2: width = the minimal slot extent, minimise the channel extent.
    let slot_major: Vec<Size> = packable.iter().map(|(_, c)| c.as_size()).collect();
    let pass2 = pack_strip(&slot_major, min_slots)?;

    // Keep whichever pass used fewer channels (pass 2 can regress when the
    // narrow strip forces stacking; the paper assumes it improves).
    let use_pass2 = pass2.height() <= pass1_channels;
    let channels = if use_pass2 {
        pass2.height()
    } else {
        pass1_channels
    };

    let mut placed: BTreeMap<NodeId, Rect> = BTreeMap::new();
    if use_pass2 {
        for ((node, _), rect) in packable.iter().zip(pass2.placements()) {
            placed.insert(*node, *rect);
        }
    } else {
        for ((node, _), rect) in packable.iter().zip(pass1.placements()) {
            // Pass 1 coordinates are (x = channel, y = slot): transpose back
            // to slotframe orientation.
            placed.insert(
                *node,
                Rect::from_xywh(rect.origin.y, rect.origin.x, rect.size.h, rect.size.w),
            );
        }
    }

    let placements = children
        .iter()
        .map(|&(n, _)| (n, placed.get(&n).copied().unwrap_or_default()))
        .collect();
    Ok(CompositionLayout {
        composite: ResourceComponent::new(min_slots, channels),
        placements,
    })
}

/// The per-node outcome of interface generation: the interface itself plus
/// the composition layout of every composed layer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeInterface {
    /// The node's resource interface `I_i`.
    pub interface: ResourceInterface,
    /// For each layer deeper than the node's own link layer, how the
    /// children's components were placed inside the composite.
    pub layouts: BTreeMap<u32, CompositionLayout>,
}

/// The interfaces of every node in the network for one traffic direction,
/// as produced by the bottom-up generation phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceSet {
    direction: Direction,
    nodes: Vec<NodeInterface>,
}

impl InterfaceSet {
    /// The direction these interfaces describe.
    #[must_use]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The interface data of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the tree this set was built for.
    #[must_use]
    pub fn node(&self, node: NodeId) -> &NodeInterface {
        &self.nodes[node.index()]
    }

    /// The gateway's interface — the full network demand per layer.
    #[must_use]
    pub fn gateway(&self) -> &NodeInterface {
        &self.nodes[0]
    }
}

/// Generates every node's resource interface bottom-up (§IV-B).
///
/// For each non-leaf node the direct component is `[Σ r(e), 1]` over its
/// child links (Case 1); deeper layers are composed from the children's
/// interfaces with [`compose_components`] (Case 2). Leaves have empty
/// interfaces.
///
/// # Errors
///
/// Propagates [`HarpError::ChannelBudgetExceeded`] from composition.
///
/// # Examples
///
/// ```
/// use harp_core::{build_interfaces, Requirements};
/// use tsch_sim::{Direction, Link, NodeId, Tree};
///
/// # fn main() -> Result<(), harp_core::HarpError> {
/// let tree = Tree::from_parents(&[(1, 0), (2, 1), (3, 1)]);
/// let mut reqs = Requirements::new();
/// reqs.set(Link::up(NodeId(1)), 3);
/// reqs.set(Link::up(NodeId(2)), 1);
/// reqs.set(Link::up(NodeId(3)), 2);
/// let set = build_interfaces(&tree, &reqs, Direction::Up, 16)?;
/// let gw = &set.gateway().interface;
/// assert_eq!(gw.component(1).unwrap().slots, 3); // node 1's uplink
/// assert_eq!(gw.component(2).unwrap().slots, 3); // links 2→1 and 3→1
/// # Ok(())
/// # }
/// ```
pub fn build_interfaces(
    tree: &Tree,
    requirements: &Requirements,
    direction: Direction,
    max_channels: u16,
) -> Result<InterfaceSet, HarpError> {
    let mut nodes: Vec<NodeInterface> = vec![NodeInterface::default(); tree.len()];
    for v in tree.postorder() {
        if tree.is_leaf(v) {
            continue;
        }
        let own_layer = tree.link_layer(v);
        let mut iface = ResourceInterface::new();
        // Case 1: the direct component.
        let direct = requirements.direct_total(tree, v, direction);
        iface.set(own_layer, ResourceComponent::row(direct));

        // Case 2: compose children's components per deeper layer.
        let mut layouts = BTreeMap::new();
        let deepest = tree.subtree_layer(v);
        for layer in own_layer + 1..=deepest {
            let children: Vec<(NodeId, ResourceComponent)> = tree
                .children(v)
                .iter()
                .filter_map(|&c| {
                    nodes[c.index()]
                        .interface
                        .component(layer)
                        .map(|comp| (c, comp))
                })
                .collect();
            if children.is_empty() {
                continue;
            }
            let layout = compose_components(&children, max_channels, layer)?;
            iface.set(layer, layout.composite());
            layouts.insert(layer, layout);
        }
        nodes[v.index()] = NodeInterface {
            interface: iface,
            layouts,
        };
    }
    Ok(InterfaceSet { direction, nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::Link;

    fn rc(s: u32, c: u32) -> ResourceComponent {
        ResourceComponent::new(s, c)
    }

    #[test]
    fn compose_empty_children_list() {
        let layout = compose_components(&[], 16, 1).unwrap();
        assert!(layout.composite().is_empty());
        assert!(layout.placements().is_empty());
    }

    #[test]
    fn compose_all_empty_components() {
        let children = [(NodeId(1), rc(0, 1)), (NodeId(2), rc(0, 1))];
        let layout = compose_components(&children, 16, 1).unwrap();
        assert!(layout.composite().is_empty());
        assert_eq!(layout.placements().len(), 2);
        assert!(layout.placements().iter().all(|(_, r)| r.is_empty()));
    }

    #[test]
    fn compose_single_component_is_identity() {
        let children = [(NodeId(1), rc(4, 2))];
        let layout = compose_components(&children, 16, 2).unwrap();
        assert_eq!(layout.composite(), rc(4, 2));
        assert_eq!(
            layout.placement_of(NodeId(1)),
            Some(Rect::from_xywh(0, 0, 4, 2))
        );
    }

    #[test]
    fn compose_rows_stack_across_channels() {
        // With a generous channel budget, rows of equal width stack into the
        // channel dimension, keeping the slot extent minimal.
        let children = [
            (NodeId(1), rc(3, 1)),
            (NodeId(2), rc(3, 1)),
            (NodeId(3), rc(3, 1)),
        ];
        let layout = compose_components(&children, 16, 2).unwrap();
        assert_eq!(layout.composite().slots, 3, "slots are minimised first");
        assert_eq!(layout.composite().channels, 3);
    }

    #[test]
    fn compose_unequal_rows_minimise_slots_then_channels() {
        let children = [
            (NodeId(1), rc(5, 1)),
            (NodeId(2), rc(2, 1)),
            (NodeId(3), rc(3, 1)),
        ];
        let layout = compose_components(&children, 16, 2).unwrap();
        // Minimum slot extent is 5 (the widest row). 2 and 3 fit beside each
        // other in one extra channel row: [5, 2].
        assert_eq!(layout.composite(), rc(5, 2));
    }

    #[test]
    fn compose_placements_are_disjoint_and_inside() {
        let children = [
            (NodeId(1), rc(4, 2)),
            (NodeId(2), rc(3, 1)),
            (NodeId(3), rc(2, 2)),
            (NodeId(4), rc(5, 1)),
        ];
        let layout = compose_components(&children, 8, 3).unwrap();
        let bounds = Rect::from_xywh(0, 0, layout.composite().slots, layout.composite().channels);
        let rects: Vec<Rect> = layout.placements().iter().map(|&(_, r)| r).collect();
        assert!(packing::all_disjoint(&rects));
        for ((_, child), rect) in children.iter().zip(layout.placements()) {
            assert!(
                bounds.contains_rect(&rect.1),
                "{:?} outside {bounds}",
                rect.1
            );
            let _ = child;
        }
        // Sizes preserved.
        for (i, &(_, c)) in children.iter().enumerate() {
            assert_eq!(
                layout.placements()[i].1.size,
                Size::new(c.slots, c.channels)
            );
        }
    }

    #[test]
    fn compose_respects_channel_budget() {
        let children = [(NodeId(1), rc(2, 5))];
        let err = compose_components(&children, 4, 3).unwrap_err();
        assert_eq!(
            err,
            HarpError::ChannelBudgetExceeded {
                layer: 3,
                needed: 5,
                budget: 4
            }
        );
    }

    #[test]
    fn compose_channel_budget_forces_slot_growth() {
        // Three 1-channel rows with a budget of 2 channels: at most two rows
        // side by side → 2 channels, 2·slots... the packer decides, but the
        // composite must never exceed the budget.
        let children = [
            (NodeId(1), rc(4, 1)),
            (NodeId(2), rc(4, 1)),
            (NodeId(3), rc(4, 1)),
        ];
        let layout = compose_components(&children, 2, 2).unwrap();
        assert!(layout.composite().channels <= 2);
        assert_eq!(layout.composite().slots, 8, "two rows stacked in time");
    }

    #[test]
    fn compose_keeps_empty_children_in_placements() {
        let children = [(NodeId(1), rc(3, 1)), (NodeId(2), rc(0, 1))];
        let layout = compose_components(&children, 16, 2).unwrap();
        assert_eq!(layout.placements().len(), 2);
        assert_eq!(layout.placement_of(NodeId(2)), Some(Rect::default()));
        assert_eq!(layout.composite(), rc(3, 1));
    }

    #[test]
    fn compose_mixed_heights_paper_fig4_style() {
        // Fig. 4 style: several multi-channel components merged into a
        // compact composite.
        let children = [
            (NodeId(1), rc(3, 2)),
            (NodeId(2), rc(2, 1)),
            (NodeId(3), rc(2, 2)),
            (NodeId(4), rc(1, 1)),
        ];
        let layout = compose_components(&children, 16, 2).unwrap();
        // Area lower bound: 6+2+4+1 = 13 cells. Slot extent must be minimal
        // (3, the widest), so channels ≥ ceil(13/3) = 5.
        assert_eq!(layout.composite().slots, 3);
        assert!(layout.composite().channels >= 5);
        let rects: Vec<Rect> = layout
            .placements()
            .iter()
            .map(|&(_, r)| r)
            .filter(|r| !r.is_empty())
            .collect();
        assert!(packing::all_disjoint(&rects));
    }

    // ---- build_interfaces ----

    fn star_reqs(tree: &Tree, per_link: u32) -> Requirements {
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), per_link);
        }
        reqs
    }

    #[test]
    fn interfaces_of_fig1_topology() {
        // Fig. 1(a) uplink requirements: r = subtree size of the child.
        let tree = Tree::paper_fig1_example();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
        }
        let set = build_interfaces(&tree, &reqs, Direction::Up, 16).unwrap();

        // Leaves have empty interfaces.
        assert!(set.node(NodeId(4)).interface.is_empty());

        // Node 7 (children 9, 10, each r=1): direct component [2, 1] at
        // layer 3, nothing deeper.
        let n7 = &set.node(NodeId(7)).interface;
        assert_eq!(n7.component(3), Some(rc(2, 1)));
        assert_eq!(n7.max_layer(), Some(3));

        // Node 3 (children 7 with r=3, 8 with r=2): direct [5, 1] at layer
        // 2; layer 3 composes C_{7,3}=[2,1] and C_{8,3}=[1,1] → [2, 2].
        let n3 = &set.node(NodeId(3)).interface;
        assert_eq!(n3.component(2), Some(rc(5, 1)));
        assert_eq!(n3.component(3), Some(rc(2, 2)));

        // Gateway: layer 1 = 6+1+... direct links 1 (r=3), 2 (r=2), 3 (r=6)
        // → [11, 1]; layer 2 composes [2,1] (node 1's direct), [1,1]
        // (node 2's), [5,1] (node 3's) → min slots 5.
        let gw = &set.gateway().interface;
        assert_eq!(gw.component(1), Some(rc(11, 1)));
        assert_eq!(gw.component(2).unwrap().slots, 5);
        assert_eq!(gw.component(3).unwrap().slots, 2);
        assert_eq!(gw.max_layer(), Some(3));
    }

    #[test]
    fn interfaces_downlink_mirror_uplink_for_symmetric_reqs() {
        let tree = Tree::paper_fig1_example();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
            reqs.set(Link::down(v), tree.subtree_size(v));
        }
        let up = build_interfaces(&tree, &reqs, Direction::Up, 16).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, 16).unwrap();
        for v in tree.nodes() {
            assert_eq!(up.node(v).interface, down.node(v).interface);
        }
    }

    #[test]
    fn interfaces_zero_requirements_are_empty_rows() {
        let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
        let reqs = Requirements::new();
        let set = build_interfaces(&tree, &reqs, Direction::Up, 16).unwrap();
        assert_eq!(set.gateway().interface.component(1), Some(rc(0, 1)));
        assert_eq!(set.node(NodeId(1)).interface.component(2), Some(rc(0, 1)));
        // Composition of an all-empty layer yields an empty composite.
        assert_eq!(set.gateway().interface.component(2), Some(rc(0, 0)));
    }

    #[test]
    fn interfaces_layouts_present_for_composed_layers_only() {
        let tree = Tree::paper_fig1_example();
        let set = build_interfaces(&tree, &star_reqs(&tree, 1), Direction::Up, 16).unwrap();
        let gw = set.gateway();
        assert!(!gw.layouts.contains_key(&1), "direct layer has no layout");
        assert!(gw.layouts.contains_key(&2));
        assert!(gw.layouts.contains_key(&3));
        // Layout of layer 2 places nodes 1, 2, 3 (the non-leaf children).
        let l2 = &gw.layouts[&2];
        assert_eq!(l2.placements().len(), 3);
    }

    #[test]
    fn interfaces_deep_chain() {
        // Chain 0←1←2←3←4: every interface is a stack of rows.
        let tree = Tree::from_parents(&[(1, 0), (2, 1), (3, 2), (4, 3)]);
        let set = build_interfaces(&tree, &star_reqs(&tree, 2), Direction::Up, 16).unwrap();
        let gw = &set.gateway().interface;
        for layer in 1..=4 {
            assert_eq!(gw.component(layer), Some(rc(2, 1)), "layer {layer}");
        }
        assert_eq!(set.node(NodeId(3)).interface.max_layer(), Some(4));
    }

    #[test]
    fn interface_channel_budget_error_propagates() {
        // 17 children of node 1, each with its own child → layer-2
        // composition needs 17 channels with equal rows of width 1... the
        // packer can use slots instead; force the error with a wide
        // multi-channel child: impossible since direct comps are rows.
        // Instead check budget=0 is rejected via composition of any row.
        let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
        let err = build_interfaces(&tree, &star_reqs(&tree, 1), Direction::Up, 0).unwrap_err();
        assert!(matches!(err, HarpError::ChannelBudgetExceeded { .. }));
    }
}
