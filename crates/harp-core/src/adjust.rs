//! Dynamic partition adjustment (§V of the paper): the feasibility test
//! (Problem 2) and the cost-aware adjustment heuristic (Problem 3 / Alg. 2).
//!
//! When a child subtree's component at some layer grows, its parent must
//! find room for the larger rectangle inside its own partition at that
//! layer. Moving a partition is expensive — every descendant holding cells
//! inside it must be told — so the heuristic minimises the number of *other*
//! partitions that move:
//!
//! 1. first try to place the grown component using only the idle areas of
//!    the parent partition (no sibling moves at all);
//! 2. otherwise remove the sibling closest to the grown component's old
//!    position, add it to the set to re-place, and retry;
//! 3. when every sibling has been removed the problem degenerates to plain
//!    rectangle packing (the feasibility test); if even that fails the
//!    request must escalate to the grandparent.

use crate::component::ResourceComponent;
use crate::error::HarpError;
use packing::{pack_into, FreeSpace, Rect, Size};

/// The outcome of a successful partition adjustment.
///
/// Generic over the key identifying each sub-partition: interior nodes key
/// by child [`NodeId`](tsch_sim::NodeId); the gateway keys its slotframe-level
/// adjustment by `(Direction, layer)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjustmentOutcome<K> {
    /// The new absolute placement of every child partition at the layer,
    /// including the requester's. Children absent from the input keep their
    /// (empty) placements.
    pub layout: Vec<(K, Rect)>,
    /// Children whose partition rectangle changed (the requester always
    /// appears here unless its old rectangle happened to fit the new size).
    pub moved: Vec<K>,
}

impl<K> AdjustmentOutcome<K> {
    /// Number of partitions that moved — the communication-overhead metric
    /// minimised by Alg. 2.
    #[must_use]
    pub fn moved_count(&self) -> usize {
        self.moved.len()
    }
}

/// The feasibility test (Problem 2): can the updated component plus its
/// siblings' components be packed inside the parent partition at all?
///
/// This is the oracle a node consults before deciding between adjusting
/// locally and escalating to its parent. It ignores current placements —
/// a full repack is permitted.
///
/// # Errors
///
/// Propagates [`HarpError::Pack`] on degenerate input (an empty parent
/// partition with non-empty components is reported as infeasible, not an
/// error).
pub fn is_feasible(
    parent: ResourceComponent,
    components: &[ResourceComponent],
) -> Result<bool, HarpError> {
    let items: Vec<Size> = components
        .iter()
        .filter(|c| !c.is_empty())
        .map(|c| c.as_size())
        .collect();
    if items.is_empty() {
        return Ok(true);
    }
    if parent.is_empty() {
        return Ok(false);
    }
    Ok(pack_into(&items, parent.as_size())?.is_some())
}

/// Cost-aware partition adjustment (Alg. 2).
///
/// * `parent_rect` — the parent partition `P_{p,l}` (absolute).
/// * `children` — current absolute placements of all child partitions at
///   the layer (the requester included, at its *old* size).
/// * `requester` — the child whose component grew.
/// * `new_size` — the grown component `C'_{j,l}` as (slots × channels).
///
/// Returns `Ok(None)` when even a full repack cannot fit — the caller must
/// escalate the request one level up.
///
/// # Errors
///
/// Propagates packing-input errors ([`HarpError::Pack`]); an unknown
/// `requester` is also an error.
///
/// # Examples
///
/// ```
/// use harp_core::{adjust_partition, ResourceComponent};
/// use packing::Rect;
/// use tsch_sim::NodeId;
///
/// # fn main() -> Result<(), harp_core::HarpError> {
/// let parent = Rect::from_xywh(0, 0, 10, 2);
/// let children = vec![
///     (NodeId(1), Rect::from_xywh(0, 0, 4, 1)),
///     (NodeId(2), Rect::from_xywh(4, 0, 3, 1)),
/// ];
/// // Node 1 grows to 6x1: plenty of idle space, nothing else moves.
/// let outcome = adjust_partition(
///     parent,
///     &children,
///     NodeId(1),
///     ResourceComponent::new(6, 1),
/// )?
/// .expect("fits");
/// assert_eq!(outcome.moved, vec![NodeId(1)]);
/// # Ok(())
/// # }
/// ```
pub fn adjust_partition<K: Copy + Ord>(
    parent_rect: Rect,
    children: &[(K, Rect)],
    requester: K,
    new_size: ResourceComponent,
) -> Result<Option<AdjustmentOutcome<K>>, HarpError> {
    let old_rect = children
        .iter()
        .find(|(n, _)| *n == requester)
        .map(|&(_, r)| r)
        .ok_or(HarpError::UnknownAdjustmentTarget)?;

    // Fast path: the new size still fits where the old partition was.
    if new_size.slots <= old_rect.width() && new_size.channels <= old_rect.height() {
        let mut layout = children.to_vec();
        let mut moved = Vec::new();
        if new_size.slots != old_rect.width() || new_size.channels != old_rect.height() {
            // Shrink in place (release the extra cells).
            for (n, r) in &mut layout {
                if *n == requester {
                    *r = Rect::new(old_rect.origin, new_size.as_size());
                    moved.push(requester);
                }
            }
        }
        return Ok(Some(AdjustmentOutcome { layout, moved }));
    }

    // An empty parent partition cannot host any growth: escalate. (Arises
    // when a zero-demand subtree sees its first traffic.)
    if parent_rect.is_empty() {
        return Ok(None);
    }

    // Alg. 2 proper: S ← {C'_j}; grow S with the nearest remaining sibling
    // until everything in S fits the idle areas.
    let mut removed: Vec<(K, Size)> = vec![(requester, new_size.as_size())];
    let mut remaining: Vec<(K, Rect)> = children
        .iter()
        .filter(|&&(n, r)| n != requester && !r.is_empty())
        .copied()
        .collect();
    let untouched_empty: Vec<(K, Rect)> = children
        .iter()
        .filter(|&&(n, r)| n != requester && r.is_empty())
        .copied()
        .collect();

    loop {
        // Idle space = parent minus the partitions still in place.
        let mut free = FreeSpace::new(parent_rect.size);
        for &(_, r) in &remaining {
            let rel = Rect::from_xywh(
                r.left() - parent_rect.left(),
                r.bottom() - parent_rect.bottom(),
                r.width(),
                r.height(),
            );
            free.occupy(rel);
        }
        let sizes: Vec<Size> = removed.iter().map(|&(_, s)| s).collect();
        if let Some(placements) = free.place_all(&sizes) {
            let mut layout: Vec<(K, Rect)> = remaining.clone();
            layout.extend(untouched_empty.iter().copied());
            let mut moved = Vec::new();
            for (&(node, _), rel) in removed.iter().zip(&placements) {
                let abs = rel.translated(parent_rect.left(), parent_rect.bottom());
                layout.push((node, abs));
                let old = children
                    .iter()
                    .find(|(n, _)| *n == node)
                    .map(|&(_, r)| r)
                    .expect("removed children come from the input");
                if abs != old {
                    moved.push(node);
                } else if node == requester {
                    // Same origin but a different size still counts as a
                    // change the child must learn about.
                    moved.push(node);
                }
            }
            layout.sort_by_key(|&(n, _)| n);
            moved.sort_unstable();
            return Ok(Some(AdjustmentOutcome { layout, moved }));
        }

        // Nothing fits: remove the sibling closest to the requester's old
        // position (ties broken by id for determinism) and retry.
        let Some(best_idx) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &(n, r))| (old_rect.distance_to(&r), n))
            .map(|(i, _)| i)
        else {
            // Everything removed: the final fallback is a full repack
            // (Problem 2's rectangle packing).
            return full_repack(parent_rect, children, requester, new_size);
        };
        let (node, rect) = remaining.swap_remove(best_idx);
        removed.push((node, rect.size));
    }
}

/// Full repack of all child partitions into the parent (the Alg. 2 line-15
/// fallback).
fn full_repack<K: Copy + Ord>(
    parent_rect: Rect,
    children: &[(K, Rect)],
    requester: K,
    new_size: ResourceComponent,
) -> Result<Option<AdjustmentOutcome<K>>, HarpError> {
    let entries: Vec<(K, Size)> = children
        .iter()
        .map(|&(n, r)| {
            (
                n,
                if n == requester {
                    new_size.as_size()
                } else {
                    r.size
                },
            )
        })
        .collect();
    let packable: Vec<(K, Size)> = entries
        .iter()
        .filter(|(_, s)| !s.is_empty())
        .copied()
        .collect();
    let sizes: Vec<Size> = packable.iter().map(|&(_, s)| s).collect();
    let Some(placements) = pack_into(&sizes, parent_rect.size)? else {
        return Ok(None);
    };
    let mut layout = Vec::with_capacity(children.len());
    let mut moved = Vec::new();
    let mut placed = packable.iter().zip(&placements);
    for &(node, old) in children {
        let size = if node == requester {
            new_size.as_size()
        } else {
            old.size
        };
        let abs = if size.is_empty() {
            Rect::default()
        } else {
            let (_, rel) = placed
                .next()
                .expect("packable entries align with placements");
            rel.translated(parent_rect.left(), parent_rect.bottom())
        };
        layout.push((node, abs));
        if abs != old || node == requester {
            moved.push(node);
        }
    }
    moved.sort_unstable();
    Ok(Some(AdjustmentOutcome { layout, moved }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::NodeId;

    fn rc(s: u32, c: u32) -> ResourceComponent {
        ResourceComponent::new(s, c)
    }

    fn check_outcome(
        parent: Rect,
        children: &[(NodeId, Rect)],
        requester: NodeId,
        new_size: ResourceComponent,
        outcome: &AdjustmentOutcome<NodeId>,
    ) {
        // Every child appears exactly once.
        assert_eq!(outcome.layout.len(), children.len());
        for &(n, _) in children {
            assert_eq!(outcome.layout.iter().filter(|(m, _)| *m == n).count(), 1);
        }
        // Sizes: requester has the new size, others keep theirs.
        for &(n, r) in &outcome.layout {
            let old = children.iter().find(|(m, _)| *m == n).unwrap().1;
            if n == requester {
                assert_eq!(r.size, new_size.as_size());
            } else {
                assert_eq!(r.size, old.size);
            }
            assert!(
                r.is_empty() || parent.contains_rect(&r),
                "{n} at {r} outside parent"
            );
        }
        // No overlaps.
        let rects: Vec<Rect> = outcome
            .layout
            .iter()
            .map(|&(_, r)| r)
            .filter(|r| !r.is_empty())
            .collect();
        assert!(packing::all_disjoint(&rects));
        // moved lists exactly the changed children (plus always the requester).
        for &(n, r) in &outcome.layout {
            let old = children.iter().find(|(m, _)| *m == n).unwrap().1;
            if n != requester {
                assert_eq!(outcome.moved.contains(&n), r != old, "moved flag of {n}");
            }
        }
    }

    #[test]
    fn shrink_in_place_moves_only_requester() {
        let parent = Rect::from_xywh(0, 0, 10, 1);
        let children = vec![
            (NodeId(1), Rect::from_xywh(0, 0, 4, 1)),
            (NodeId(2), Rect::from_xywh(4, 0, 4, 1)),
        ];
        let outcome = adjust_partition(parent, &children, NodeId(1), rc(2, 1))
            .unwrap()
            .unwrap();
        check_outcome(parent, &children, NodeId(1), rc(2, 1), &outcome);
        assert_eq!(outcome.moved, vec![NodeId(1)]);
        assert_eq!(
            outcome
                .layout
                .iter()
                .find(|(n, _)| *n == NodeId(1))
                .unwrap()
                .1,
            Rect::from_xywh(0, 0, 2, 1)
        );
    }

    #[test]
    fn same_size_is_a_noop() {
        let parent = Rect::from_xywh(0, 0, 10, 1);
        let children = vec![(NodeId(1), Rect::from_xywh(0, 0, 4, 1))];
        let outcome = adjust_partition(parent, &children, NodeId(1), rc(4, 1))
            .unwrap()
            .unwrap();
        assert!(outcome.moved.is_empty());
        assert_eq!(outcome.layout, children);
    }

    #[test]
    fn grow_into_idle_space_moves_only_requester() {
        // Paper Fig. 6(c): the grown partition relocates into idle space,
        // everything else stays.
        let parent = Rect::from_xywh(0, 0, 12, 2);
        let children = vec![
            (NodeId(1), Rect::from_xywh(0, 0, 4, 1)),
            (NodeId(2), Rect::from_xywh(4, 0, 4, 1)),
            (NodeId(3), Rect::from_xywh(0, 1, 4, 1)),
        ];
        let outcome = adjust_partition(parent, &children, NodeId(2), rc(8, 1))
            .unwrap()
            .unwrap();
        check_outcome(parent, &children, NodeId(2), rc(8, 1), &outcome);
        assert_eq!(outcome.moved, vec![NodeId(2)], "only the requester moves");
    }

    #[test]
    fn grow_requires_moving_one_neighbour() {
        // Idle space is fragmented; moving the nearest sibling frees a
        // contiguous run.
        let parent = Rect::from_xywh(0, 0, 10, 1);
        let children = vec![
            (NodeId(1), Rect::from_xywh(0, 0, 3, 1)),
            (NodeId(2), Rect::from_xywh(4, 0, 3, 1)),
        ];
        // Node 1 wants 6 slots: idle cells are {3} and {7,8,9} — not
        // contiguous enough, so node 2 must move.
        let outcome = adjust_partition(parent, &children, NodeId(1), rc(6, 1))
            .unwrap()
            .unwrap();
        check_outcome(parent, &children, NodeId(1), rc(6, 1), &outcome);
        assert_eq!(outcome.moved, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn infeasible_growth_escalates() {
        let parent = Rect::from_xywh(0, 0, 8, 1);
        let children = vec![
            (NodeId(1), Rect::from_xywh(0, 0, 4, 1)),
            (NodeId(2), Rect::from_xywh(4, 0, 4, 1)),
        ];
        // 4 + 6 > 8: impossible even with a full repack.
        let outcome = adjust_partition(parent, &children, NodeId(1), rc(6, 1)).unwrap();
        assert!(outcome.is_none());
    }

    #[test]
    fn channel_growth_uses_second_dimension() {
        let parent = Rect::from_xywh(0, 0, 6, 3);
        let children = vec![
            (NodeId(1), Rect::from_xywh(0, 0, 6, 1)),
            (NodeId(2), Rect::from_xywh(0, 1, 3, 1)),
        ];
        // Node 2 grows to 3x2: fits above its old spot or beside.
        let outcome = adjust_partition(parent, &children, NodeId(2), rc(3, 2))
            .unwrap()
            .unwrap();
        check_outcome(parent, &children, NodeId(2), rc(3, 2), &outcome);
        assert_eq!(outcome.moved, vec![NodeId(2)]);
    }

    #[test]
    fn closest_neighbour_removed_first() {
        // Three siblings; the grown one is adjacent to node 2, distant from
        // node 3. If one sibling must move it should be node 2.
        let parent = Rect::from_xywh(0, 0, 12, 1);
        let children = vec![
            (NodeId(1), Rect::from_xywh(0, 0, 3, 1)),
            (NodeId(2), Rect::from_xywh(3, 0, 3, 1)),
            (NodeId(3), Rect::from_xywh(9, 0, 3, 1)),
        ];
        // Node 1 wants 5 slots: idle is {6,7,8} (3 slots) — insufficient,
        // remove node 2 (closest) → idle {3..9} = 6 slots → 5 + 3 fit.
        let outcome = adjust_partition(parent, &children, NodeId(1), rc(5, 1))
            .unwrap()
            .unwrap();
        check_outcome(parent, &children, NodeId(1), rc(5, 1), &outcome);
        assert!(outcome.moved.contains(&NodeId(2)));
        assert!(
            !outcome.moved.contains(&NodeId(3)),
            "distant sibling untouched"
        );
    }

    #[test]
    fn full_repack_when_badly_fragmented() {
        // Four 2-wide siblings spaced out in an 11-slot row; the requester
        // wants 5 — several removals are needed; the heuristic must still
        // find the repacked solution.
        let parent = Rect::from_xywh(0, 0, 11, 1);
        let children = vec![
            (NodeId(1), Rect::from_xywh(0, 0, 2, 1)),
            (NodeId(2), Rect::from_xywh(3, 0, 2, 1)),
            (NodeId(3), Rect::from_xywh(6, 0, 2, 1)),
            (NodeId(4), Rect::from_xywh(9, 0, 2, 1)),
        ];
        let outcome = adjust_partition(parent, &children, NodeId(1), rc(5, 1))
            .unwrap()
            .unwrap();
        check_outcome(parent, &children, NodeId(1), rc(5, 1), &outcome);
        // 5 + 2 + 2 + 2 = 11 exactly: feasible only as a full repack.
        assert!(outcome.moved_count() >= 3);
    }

    #[test]
    fn unknown_requester_is_an_error() {
        let parent = Rect::from_xywh(0, 0, 8, 1);
        let children = vec![(NodeId(1), Rect::from_xywh(0, 0, 4, 1))];
        let err = adjust_partition(parent, &children, NodeId(9), rc(1, 1)).unwrap_err();
        assert_eq!(err, HarpError::UnknownAdjustmentTarget);
    }

    #[test]
    fn empty_sibling_partitions_are_preserved() {
        let parent = Rect::from_xywh(0, 0, 8, 1);
        let children = vec![
            (NodeId(1), Rect::from_xywh(0, 0, 4, 1)),
            (NodeId(2), Rect::default()), // zero-demand sibling
        ];
        let outcome = adjust_partition(parent, &children, NodeId(1), rc(6, 1))
            .unwrap()
            .unwrap();
        check_outcome(parent, &children, NodeId(1), rc(6, 1), &outcome);
        let empty = outcome
            .layout
            .iter()
            .find(|(n, _)| *n == NodeId(2))
            .unwrap();
        assert!(empty.1.is_empty());
        assert!(!outcome.moved.contains(&NodeId(2)));
    }

    #[test]
    fn offset_parent_coordinates_are_respected() {
        // Parent partition not at the origin: placements must stay inside
        // the absolute rectangle.
        let parent = Rect::from_xywh(50, 3, 8, 2);
        let children = vec![
            (NodeId(1), Rect::from_xywh(50, 3, 4, 1)),
            (NodeId(2), Rect::from_xywh(54, 3, 4, 1)),
        ];
        let outcome = adjust_partition(parent, &children, NodeId(1), rc(4, 2))
            .unwrap()
            .unwrap();
        check_outcome(parent, &children, NodeId(1), rc(4, 2), &outcome);
    }

    // ---- feasibility test ----

    #[test]
    fn feasibility_accepts_fitting_sets() {
        assert!(is_feasible(rc(10, 2), &[rc(5, 1), rc(5, 1), rc(10, 1)]).unwrap());
        assert!(is_feasible(rc(4, 4), &[]).unwrap());
        assert!(is_feasible(rc(0, 0), &[]).unwrap());
    }

    #[test]
    fn feasibility_rejects_overflow() {
        assert!(!is_feasible(rc(10, 1), &[rc(6, 1), rc(5, 1)]).unwrap());
        assert!(!is_feasible(rc(0, 0), &[rc(1, 1)]).unwrap());
        assert!(
            !is_feasible(rc(4, 1), &[rc(1, 2)]).unwrap(),
            "too many channels"
        );
    }

    #[test]
    fn feasibility_ignores_empty_components() {
        assert!(is_feasible(rc(2, 1), &[rc(0, 1), rc(2, 1), rc(0, 0)]).unwrap());
    }
}
