//! Per-link cell requirements `r(e)`.
//!
//! The paper assumes the number of cells each link needs per slotframe is
//! given, derived from the task set's routing paths (§II-A). This module
//! provides both the explicit table ([`Requirements`]) and the standard
//! derivation from a task set: every task contributes its rate to every
//! link its route traverses, and the per-link total is rounded up to whole
//! cells (a link forwarding 1.5 packets per slotframe needs 2 cells).

use core::fmt;
use std::collections::BTreeMap;
use tsch_sim::{Direction, Link, NodeId, Task, TaskKind, Tree};

/// An exact sum of rational packet rates, used while accumulating task
/// demand on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Fraction {
    num: u64,
    den: u64,
}

impl Fraction {
    const ZERO: Fraction = Fraction { num: 0, den: 1 };

    fn add(self, num: u64, den: u64) -> Fraction {
        debug_assert!(den > 0);
        if self.num == 0 {
            return Fraction { num, den }.reduced();
        }
        Fraction {
            num: self.num * den + num * self.den,
            den: self.den * den,
        }
        .reduced()
    }

    fn reduced(self) -> Fraction {
        let g = gcd(self.num.max(1), self.den);
        Fraction {
            num: self.num / g,
            den: self.den / g,
        }
    }

    fn ceil(self) -> u64 {
        self.num.div_ceil(self.den)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The per-link cell requirements of a network, for both directions.
///
/// # Examples
///
/// ```
/// use harp_core::Requirements;
/// use tsch_sim::{Link, NodeId};
///
/// let mut reqs = Requirements::new();
/// reqs.set(Link::up(NodeId(4)), 2);
/// assert_eq!(reqs.get(Link::up(NodeId(4))), 2);
/// assert_eq!(reqs.get(Link::down(NodeId(4))), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Requirements {
    cells: BTreeMap<Link, u32>,
}

impl Requirements {
    /// Creates an empty requirement table (every link needs 0 cells).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `r(link)`; a value of 0 removes the entry.
    pub fn set(&mut self, link: Link, cells: u32) {
        if cells == 0 {
            self.cells.remove(&link);
        } else {
            self.cells.insert(link, cells);
        }
    }

    /// The requirement of one directed link (0 if unset).
    #[must_use]
    pub fn get(&self, link: Link) -> u32 {
        self.cells.get(&link).copied().unwrap_or(0)
    }

    /// Iterates over all non-zero requirements in link order.
    pub fn iter(&self) -> impl Iterator<Item = (Link, u32)> + '_ {
        self.cells.iter().map(|(&l, &c)| (l, c))
    }

    /// Sum of requirements of the links between `parent` and its children in
    /// the given direction — the width of the parent's Case 1 component
    /// `[Σ r(e), 1]`.
    #[must_use]
    pub fn direct_total(&self, tree: &Tree, parent: NodeId, direction: Direction) -> u32 {
        tree.children(parent)
            .iter()
            .map(|&c| {
                self.get(Link {
                    child: c,
                    direction,
                })
            })
            .sum()
    }

    /// Total cells required network-wide in one direction.
    #[must_use]
    pub fn total(&self, direction: Direction) -> u64 {
        self.cells
            .iter()
            .filter(|(l, _)| l.direction == direction)
            .map(|(_, &c)| u64::from(c))
            .sum()
    }

    /// Derives requirements from a task set over `tree`.
    ///
    /// Each task adds its rate to the uplink of every hop from its source to
    /// the gateway; echo tasks also add it to the downlinks of the return
    /// path. Per-link totals are accumulated exactly and rounded up to whole
    /// cells per slotframe.
    ///
    /// # Examples
    ///
    /// ```
    /// use harp_core::Requirements;
    /// use tsch_sim::{Link, NodeId, Rate, Task, TaskId, Tree};
    ///
    /// let tree = Tree::paper_fig1_example();
    /// // One echo task per node at 1 pkt/slotframe, like the testbed.
    /// let tasks: Vec<Task> = tree
    ///     .nodes()
    ///     .skip(1)
    ///     .enumerate()
    ///     .map(|(i, n)| Task::echo(TaskId(i as u32), n, Rate::per_slotframe(1)))
    ///     .collect();
    /// let reqs = Requirements::from_tasks(&tree, &tasks);
    /// // Node 3's uplink forwards its whole 6-node subtree.
    /// assert_eq!(reqs.get(Link::up(NodeId(3))), 6);
    /// assert_eq!(reqs.get(Link::down(NodeId(3))), 6);
    /// ```
    #[must_use]
    pub fn from_tasks(tree: &Tree, tasks: &[Task]) -> Self {
        let mut acc: BTreeMap<Link, Fraction> = BTreeMap::new();
        for task in tasks {
            let (num, den) = rate_parts(task.rate);
            if num == 0 {
                continue;
            }
            let up_path = tree.path_to_root(task.source);
            for hop in up_path.windows(2) {
                let link = Link::up(hop[0]);
                let f = acc.get(&link).copied().unwrap_or(Fraction::ZERO);
                acc.insert(link, f.add(num, den));
            }
            if task.kind == TaskKind::Echo {
                for hop in up_path.windows(2) {
                    let link = Link::down(hop[0]);
                    let f = acc.get(&link).copied().unwrap_or(Fraction::ZERO);
                    acc.insert(link, f.add(num, den));
                }
            }
        }
        let mut reqs = Requirements::new();
        for (link, f) in acc {
            reqs.set(
                link,
                u32::try_from(f.ceil()).expect("requirement fits in u32"),
            );
        }
        reqs
    }
}

/// The exact `(packets, per_slotframes)` parts of a [`Rate`](tsch_sim::Rate),
/// reduced to lowest terms.
fn rate_parts(rate: tsch_sim::Rate) -> (u64, u64) {
    let (num, den) = (u64::from(rate.packets()), u64::from(rate.per_slotframes()));
    if num == 0 {
        return (0, 1);
    }
    let g = gcd(num, den);
    (num / g, den / g)
}

/// Loss-aware provisioning: inflates every requirement to cover expected
/// retransmissions on lossy links.
impl Requirements {
    /// Returns a copy where each link's demand is divided by its packet
    /// delivery ratio and rounded up: `r'(e) = ceil(r(e) / PDR(e))`. With
    /// this head-room a link can retransmit lost packets without displacing
    /// later traffic — the provisioning that keeps queues bounded on lossy
    /// deployments (cf. the latency outliers of the paper's Fig. 9).
    ///
    /// Links with a PDR of zero are left at their raw demand (no finite
    /// provisioning can help a dead link).
    ///
    /// # Examples
    ///
    /// ```
    /// use harp_core::Requirements;
    /// use tsch_sim::{Link, LinkQuality, NodeId};
    ///
    /// let mut reqs = Requirements::new();
    /// reqs.set(Link::up(NodeId(1)), 10);
    /// let quality = LinkQuality::uniform(0.9).unwrap();
    /// let provisioned = reqs.provisioned_for_loss(&quality);
    /// assert_eq!(provisioned.get(Link::up(NodeId(1))), 12); // ceil(10/0.9)
    /// ```
    #[must_use]
    pub fn provisioned_for_loss(&self, quality: &tsch_sim::LinkQuality) -> Requirements {
        let mut out = Requirements::new();
        for (link, cells) in self.iter() {
            let pdr = quality.pdr(link);
            let provisioned = if pdr > 0.0 && pdr < 1.0 {
                (f64::from(cells) / pdr).ceil() as u32
            } else {
                cells
            };
            out.set(link, provisioned);
        }
        out
    }
}

impl fmt::Display for Requirements {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (link, cells)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{link}:{cells}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::{Rate, TaskId};

    #[test]
    fn fraction_accumulation() {
        let f = Fraction::ZERO.add(1, 2).add(1, 2).add(1, 3);
        assert_eq!(f, Fraction { num: 4, den: 3 });
        assert_eq!(f.ceil(), 2);
        assert_eq!(Fraction::ZERO.ceil(), 0);
    }

    #[test]
    fn set_zero_removes() {
        let mut reqs = Requirements::new();
        reqs.set(Link::up(NodeId(1)), 3);
        reqs.set(Link::up(NodeId(1)), 0);
        assert_eq!(reqs.get(Link::up(NodeId(1))), 0);
        assert_eq!(reqs.iter().count(), 0);
    }

    #[test]
    fn direct_total_sums_children() {
        let tree = Tree::paper_fig1_example();
        let mut reqs = Requirements::new();
        reqs.set(Link::up(NodeId(4)), 1);
        reqs.set(Link::up(NodeId(5)), 2);
        assert_eq!(reqs.direct_total(&tree, NodeId(1), Direction::Up), 3);
        assert_eq!(reqs.direct_total(&tree, NodeId(1), Direction::Down), 0);
        assert_eq!(
            reqs.direct_total(&tree, NodeId(4), Direction::Up),
            0,
            "leaf"
        );
    }

    #[test]
    fn from_tasks_echo_per_node_matches_subtree_sizes() {
        // The testbed setting (§VI-B): one echo task per node at rate 1 →
        // each link's demand equals the child-side subtree size, both ways.
        let tree = Tree::paper_fig1_example();
        let tasks: Vec<Task> = tree
            .nodes()
            .skip(1)
            .enumerate()
            .map(|(i, n)| Task::echo(TaskId(i as u32), n, Rate::per_slotframe(1)))
            .collect();
        let reqs = Requirements::from_tasks(&tree, &tasks);
        for node in tree.nodes().skip(1) {
            let expect = tree.subtree_size(node);
            assert_eq!(reqs.get(Link::up(node)), expect, "uplink of {node}");
            assert_eq!(reqs.get(Link::down(node)), expect, "downlink of {node}");
        }
    }

    #[test]
    fn from_tasks_uplink_only_has_no_downlink() {
        let tree = Tree::paper_fig1_example();
        let tasks = vec![Task::uplink(TaskId(0), NodeId(9), Rate::per_slotframe(2))];
        let reqs = Requirements::from_tasks(&tree, &tasks);
        assert_eq!(reqs.get(Link::up(NodeId(9))), 2);
        assert_eq!(reqs.get(Link::up(NodeId(7))), 2);
        assert_eq!(reqs.get(Link::up(NodeId(3))), 2);
        assert_eq!(reqs.get(Link::down(NodeId(9))), 0);
        assert_eq!(reqs.total(Direction::Up), 6);
        assert_eq!(reqs.total(Direction::Down), 0);
    }

    #[test]
    fn from_tasks_fractional_rates_round_up_after_summing() {
        // Two 0.5-rate tasks through the same link need 1 cell, not 2.
        let tree = Tree::from_parents(&[(1, 0), (2, 1), (3, 1)]);
        let half = Rate::new(1, 2).unwrap();
        let tasks = vec![
            Task::uplink(TaskId(0), NodeId(2), half),
            Task::uplink(TaskId(1), NodeId(3), half),
        ];
        let reqs = Requirements::from_tasks(&tree, &tasks);
        assert_eq!(reqs.get(Link::up(NodeId(1))), 1, "0.5 + 0.5 sums to 1");
        assert_eq!(reqs.get(Link::up(NodeId(2))), 1, "0.5 alone rounds up to 1");
    }

    #[test]
    fn from_tasks_mixed_rates() {
        let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
        let tasks = vec![
            Task::uplink(TaskId(0), NodeId(2), Rate::new(3, 2).unwrap()), // 1.5
            Task::uplink(TaskId(1), NodeId(1), Rate::per_slotframe(1)),
        ];
        let reqs = Requirements::from_tasks(&tree, &tasks);
        assert_eq!(reqs.get(Link::up(NodeId(2))), 2, "ceil(1.5)");
        assert_eq!(reqs.get(Link::up(NodeId(1))), 3, "ceil(1.5 + 1) = 3");
    }

    #[test]
    fn gateway_task_contributes_nothing() {
        let tree = Tree::from_parents(&[(1, 0)]);
        let tasks = vec![Task::echo(TaskId(0), NodeId(0), Rate::per_slotframe(5))];
        let reqs = Requirements::from_tasks(&tree, &tasks);
        assert_eq!(reqs.iter().count(), 0);
    }

    #[test]
    fn rate_parts_recovers_fractions() {
        assert_eq!(rate_parts(Rate::per_slotframe(3)), (3, 1));
        assert_eq!(rate_parts(Rate::new(3, 2).unwrap()), (3, 2));
        assert_eq!(rate_parts(Rate::new(2, 4).unwrap()), (1, 2), "reduced");
        assert_eq!(rate_parts(Rate::per_slotframe(0)), (0, 1));
    }

    #[test]
    fn provisioning_inflates_by_inverse_pdr() {
        let mut reqs = Requirements::new();
        reqs.set(Link::up(NodeId(1)), 10);
        reqs.set(Link::up(NodeId(2)), 4);
        let mut quality = tsch_sim::LinkQuality::uniform(0.8).unwrap();
        quality.set_pdr(Link::up(NodeId(2)), 1.0).unwrap();
        let p = reqs.provisioned_for_loss(&quality);
        assert_eq!(p.get(Link::up(NodeId(1))), 13, "ceil(10/0.8)");
        assert_eq!(p.get(Link::up(NodeId(2))), 4, "perfect links unchanged");
    }

    #[test]
    fn provisioning_leaves_dead_links_alone() {
        let mut reqs = Requirements::new();
        reqs.set(Link::up(NodeId(1)), 3);
        let quality = tsch_sim::LinkQuality::uniform(0.0).unwrap();
        assert_eq!(
            reqs.provisioned_for_loss(&quality).get(Link::up(NodeId(1))),
            3
        );
    }

    #[test]
    fn display_lists_links() {
        let mut reqs = Requirements::new();
        reqs.set(Link::up(NodeId(1)), 2);
        assert_eq!(reqs.to_string(), "{N1:up:2}");
    }
}
