//! The allocator as a long-lived, incrementally driven handle.
//!
//! The experiment binaries build a [`HarpNetwork`], run the static phase,
//! maybe measure one adjustment, and throw the network away. A service
//! ([`harpd`](https://example.com/harp)) instead keeps one allocator per
//! tenant alive for hours and drives it request by request; this module
//! packages that usage as [`AllocatorHandle`]: converge once, then any
//! number of [`AllocatorHandle::adjust`] calls, each returning the
//! control-message bill ([`AdjustmentBill`]) the change cost, with a
//! schedule summary ([`ScheduleSummary`]) cheap enough to serve on every
//! query.

use crate::error::HarpError;
use crate::requirement::Requirements;
use crate::runner::{HarpNetwork, ProtocolReport};
use crate::schedule_gen::SchedulingPolicy;
use harp_obs::MetricsSnapshot;
use tsch_sim::{Link, NodeId, SlotframeConfig, Tree};

/// The control-plane cost of one partition adjustment — what a service
/// returns to the caller that requested the change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdjustmentBill {
    /// Management messages exchanged (`POST/PUT intf`, `POST/PUT part`).
    pub mgmt_messages: u64,
    /// Cell-assignment notifications exchanged.
    pub cell_messages: u64,
    /// Nodes that sent or received any message.
    pub involved_nodes: usize,
    /// Distinct layers named in dynamic (`PUT`) messages.
    pub layers_touched: usize,
    /// Duration in whole slotframes (rounded up).
    pub slotframes: u64,
    /// Duration in seconds of slotframe time.
    pub seconds: f64,
}

impl AdjustmentBill {
    fn from_report(report: &ProtocolReport, config: SlotframeConfig) -> Self {
        Self {
            mgmt_messages: report.mgmt_messages,
            cell_messages: report.cell_messages,
            involved_nodes: report.involved_nodes.len(),
            layers_touched: report.layers.len(),
            slotframes: report.slotframes(config),
            seconds: report.elapsed_seconds(config),
        }
    }
}

/// A point-in-time view of the converged schedule, cheap to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleSummary {
    /// Nodes in the routing tree (gateway included).
    pub nodes: usize,
    /// Links holding at least one cell.
    pub scheduled_links: usize,
    /// Total (cell, link) assignments.
    pub assignments: usize,
    /// Distinct cells in use.
    pub active_cells: usize,
    /// Slots per slotframe.
    pub slots: u32,
    /// Channel offsets available.
    pub channels: u16,
    /// Collision freedom: no cell carries two links.
    pub exclusive: bool,
    /// The allocator clock (ASN) after the last protocol run.
    pub asn: u64,
}

/// One tenant's allocator: a converged [`HarpNetwork`] plus the running
/// totals a service reports about it.
///
/// # Examples
///
/// ```
/// use harp_core::{AllocatorHandle, Requirements, SchedulingPolicy};
/// use tsch_sim::{Link, NodeId, SlotframeConfig, Tree};
///
/// # fn main() -> Result<(), harp_core::HarpError> {
/// let tree = Tree::paper_fig1_example();
/// let mut reqs = Requirements::new();
/// for v in tree.nodes().skip(1) {
///     reqs.set(Link::up(v), 1);
/// }
/// let mut handle = AllocatorHandle::converge(
///     tree,
///     SlotframeConfig::paper_default(),
///     &reqs,
///     SchedulingPolicy::RateMonotonic,
/// )?;
/// let bill = handle.adjust(Link::up(NodeId(9)), 3)?;
/// assert!(bill.mgmt_messages >= 2);
/// assert!(handle.summary().exclusive);
/// assert_eq!(handle.adjustments(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AllocatorHandle {
    net: HarpNetwork,
    static_report: ProtocolReport,
    adjustments: u64,
    mgmt_messages_total: u64,
    cell_messages_total: u64,
}

impl AllocatorHandle {
    /// Builds the deployment and runs the static phase to convergence.
    ///
    /// # Errors
    ///
    /// The static phase's [`HarpError`] when the demand does not fit the
    /// slotframe.
    pub fn converge(
        tree: Tree,
        config: SlotframeConfig,
        requirements: &Requirements,
        policy: SchedulingPolicy,
    ) -> Result<Self, HarpError> {
        let mut net = HarpNetwork::new(tree, config, requirements, policy);
        let static_report = net.run_static()?;
        let (mgmt, cells) = (static_report.mgmt_messages, static_report.cell_messages);
        Ok(Self {
            net,
            static_report,
            adjustments: 0,
            mgmt_messages_total: mgmt,
            cell_messages_total: cells,
        })
    }

    /// Like [`AllocatorHandle::converge`] with observability enabled before
    /// the static phase, so the handle's [`AllocatorHandle::metrics_snapshot`]
    /// carries the "harp.*" and "transport.*" series from the first message
    /// on.
    ///
    /// # Errors
    ///
    /// See [`AllocatorHandle::converge`].
    pub fn converge_observed(
        tree: Tree,
        config: SlotframeConfig,
        requirements: &Requirements,
        policy: SchedulingPolicy,
        span_capacity: usize,
    ) -> Result<Self, HarpError> {
        let mut net = HarpNetwork::new(tree, config, requirements, policy);
        net.enable_observability(span_capacity);
        let static_report = net.run_static()?;
        let (mgmt, cells) = (static_report.mgmt_messages, static_report.cell_messages);
        Ok(Self {
            net,
            static_report,
            adjustments: 0,
            mgmt_messages_total: mgmt,
            cell_messages_total: cells,
        })
    }

    /// Raises (or lowers) one link's cell requirement and settles the
    /// protocol, returning the control-message bill of the change.
    ///
    /// # Errors
    ///
    /// The adjustment's [`HarpError`] when it is infeasible; the previous
    /// schedule stays installed (the protocol rolls back).
    pub fn adjust(&mut self, link: Link, cells: u32) -> Result<AdjustmentBill, HarpError> {
        let now = self.net.now();
        let report = self.net.adjust_and_settle(now, link, cells)?;
        self.adjustments += 1;
        self.mgmt_messages_total += report.mgmt_messages;
        self.cell_messages_total += report.cell_messages;
        Ok(AdjustmentBill::from_report(&report, self.net.config()))
    }

    /// Like [`AllocatorHandle::adjust`], with `corr` stamped as the
    /// ambient correlation id for the duration of the adjustment: the
    /// allocator's "adjust" span and every management/cell op span it
    /// records carry the id, so a service can resolve the request that
    /// returned `corr` to the exact protocol work it caused. The ambient
    /// id is cleared before returning, success or failure.
    ///
    /// # Errors
    ///
    /// See [`AllocatorHandle::adjust`].
    pub fn adjust_correlated(
        &mut self,
        link: Link,
        cells: u32,
        corr: u64,
    ) -> Result<AdjustmentBill, HarpError> {
        self.net.set_correlation(corr);
        let result = self.adjust(link, cells);
        self.net.set_correlation(harp_obs::NO_CORRELATION);
        result
    }

    /// The current schedule, summarised.
    #[must_use]
    pub fn summary(&self) -> ScheduleSummary {
        let schedule = self.net.schedule();
        let config = self.net.config();
        ScheduleSummary {
            nodes: self.net.tree().len(),
            scheduled_links: schedule.iter_links().count(),
            assignments: schedule.assignment_count(),
            active_cells: schedule.active_cells(),
            slots: config.slots,
            channels: config.channels,
            exclusive: schedule.is_exclusive(),
            asn: self.net.now().0,
        }
    }

    /// An opaque version stamp that advances on every mutation of the
    /// underlying network, including the clock advance of a rejected
    /// adjustment (see [`HarpNetwork::version`]). A rendered
    /// [`summary`](Self::summary) cached against this value stays valid
    /// exactly until the next mutation, which is how a service splits its
    /// read path from in-flight adjustments.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.net.version()
    }

    /// The static phase's protocol report.
    #[must_use]
    pub fn static_report(&self) -> &ProtocolReport {
        &self.static_report
    }

    /// Adjustments served since convergence.
    #[must_use]
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Management messages across the static phase and every adjustment.
    #[must_use]
    pub fn mgmt_messages_total(&self) -> u64 {
        self.mgmt_messages_total
    }

    /// Cell-assignment messages across the static phase and every
    /// adjustment.
    #[must_use]
    pub fn cell_messages_total(&self) -> u64 {
        self.cell_messages_total
    }

    /// Whether `node` names a non-root node of this allocator's tree — the
    /// precondition for adjusting its uplink or downlink.
    #[must_use]
    pub fn is_adjustable_node(&self, node: NodeId) -> bool {
        node.index() < self.net.tree().len() && node != self.net.tree().root()
    }

    /// The underlying network (schedule queries, rendering, tests).
    #[must_use]
    pub fn network(&self) -> &HarpNetwork {
        &self.net
    }

    /// Mutable access for protocol operations beyond adjustments (joins,
    /// leaves, reparents).
    pub fn network_mut(&mut self) -> &mut HarpNetwork {
        &mut self.net
    }

    /// Metrics of the underlying deployment (empty unless built with
    /// [`AllocatorHandle::converge_observed`]).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.net.metrics_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_handle() -> AllocatorHandle {
        let tree = Tree::paper_fig1_example();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), 1);
        }
        AllocatorHandle::converge(
            tree,
            SlotframeConfig::paper_default(),
            &reqs,
            SchedulingPolicy::RateMonotonic,
        )
        .expect("fig1 demand fits")
    }

    #[test]
    fn converge_then_adjust_bills_each_change() {
        let mut handle = fig1_handle();
        assert_eq!(handle.adjustments(), 0);
        let before = handle.mgmt_messages_total();
        assert!(before > 0, "static phase exchanged messages");
        let bill = handle.adjust(Link::up(NodeId(9)), 3).unwrap();
        assert!(bill.mgmt_messages >= 2);
        assert!(bill.slotframes >= 1);
        assert!(bill.involved_nodes >= 1);
        assert_eq!(handle.adjustments(), 1);
        assert_eq!(
            handle.mgmt_messages_total(),
            before + bill.mgmt_messages,
            "totals accumulate per adjustment"
        );
        // The handle survives the adjustment and keeps serving; lowering
        // back is absorbed locally, so only the count is guaranteed.
        handle.adjust(Link::up(NodeId(9)), 1).unwrap();
        assert_eq!(handle.adjustments(), 2);
        assert!(handle.summary().exclusive);
    }

    #[test]
    fn summary_reflects_converged_schedule() {
        let handle = fig1_handle();
        let s = handle.summary();
        assert_eq!(s.nodes, handle.network().tree().len());
        assert!(s.exclusive);
        assert!(s.scheduled_links > 0);
        assert!(s.assignments >= s.scheduled_links);
        assert!(s.active_cells > 0);
        assert_eq!(s.slots, 199);
        assert!(s.asn > 0);
    }

    #[test]
    fn infeasible_adjustment_keeps_handle_alive() {
        let mut handle = fig1_handle();
        let err = handle.adjust(Link::up(NodeId(9)), 10_000);
        assert!(err.is_err(), "cannot fit 10k cells in a 199-slot frame");
        assert_eq!(handle.adjustments(), 0, "failed adjustments are not billed");
        assert!(handle.summary().exclusive, "schedule rolled back intact");
        let bill = handle.adjust(Link::up(NodeId(9)), 2).unwrap();
        assert!(bill.mgmt_messages >= 2, "handle still serves after a 4xx");
    }

    #[test]
    fn adjustable_node_bounds() {
        let handle = fig1_handle();
        assert!(handle.is_adjustable_node(NodeId(9)));
        assert!(!handle.is_adjustable_node(handle.network().tree().root()));
        assert!(!handle.is_adjustable_node(NodeId(10_000)));
    }

    #[test]
    fn correlated_adjustment_stamps_its_spans() {
        let tree = Tree::paper_fig1_example();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), 1);
        }
        let mut handle = AllocatorHandle::converge_observed(
            tree,
            SlotframeConfig::paper_default(),
            &reqs,
            SchedulingPolicy::RateMonotonic,
            1024,
        )
        .unwrap();
        let bill = handle
            .adjust_correlated(Link::up(NodeId(9)), 3, 41)
            .unwrap();
        let tagged: Vec<_> = handle
            .network()
            .span_rings()
            .iter()
            .flat_map(|r| r.iter())
            .filter(|e| e.corr == 41)
            .cloned()
            .collect();
        assert!(
            tagged.iter().any(|e| e.name == "adjust"),
            "the adjustment span carries the correlation id"
        );
        let ops = tagged.iter().filter(|e| e.name == "mgmt_op").count() as u64;
        assert_eq!(
            ops, bill.mgmt_messages,
            "every billed mgmt message resolves to one tagged op span"
        );
        // The ambient id is cleared: a plain adjustment records untagged.
        handle.adjust(Link::up(NodeId(9)), 1).unwrap();
        assert!(handle
            .network()
            .span_rings()
            .iter()
            .flat_map(|r| r.iter())
            .all(|e| e.corr == 41 || e.corr == harp_obs::NO_CORRELATION));
        assert!(handle
            .network()
            .obs()
            .spans
            .iter()
            .filter(|e| e.name == "adjust")
            .any(|e| e.corr == harp_obs::NO_CORRELATION));
    }

    #[test]
    fn observed_handle_snapshots_metrics() {
        let tree = Tree::paper_fig1_example();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), 1);
        }
        let mut handle = AllocatorHandle::converge_observed(
            tree,
            SlotframeConfig::paper_default(),
            &reqs,
            SchedulingPolicy::RateMonotonic,
            256,
        )
        .unwrap();
        handle.adjust(Link::up(NodeId(9)), 2).unwrap();
        let snap = handle.metrics_snapshot();
        assert_eq!(snap.counter("harp.static_runs"), Some(1));
        assert_eq!(snap.counter("harp.adjustments"), Some(1));
        // The unobserved handle snapshots empty.
        assert!(fig1_handle().metrics_snapshot().is_empty());
    }
}
