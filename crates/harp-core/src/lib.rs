//! HARP: hierarchical resource partitioning for dynamic industrial wireless
//! networks (Wang et al., ICDCS 2022).
//!
//! HARP manages the cells of a multi-channel TDMA slotframe by partitioning
//! it hierarchically along the routing tree, giving every parent node a
//! dedicated, isolated region to schedule its own links in. The result is
//! *distributed, collision-free* scheduling: no two nodes can ever pick the
//! same cell, and traffic changes are absorbed as locally as possible.
//!
//! The crate offers the machinery at three altitudes:
//!
//! 1. **Algorithms** — resource-component composition
//!    ([`compose_components`], Alg. 1), top-down partition allocation
//!    ([`allocate_partitions`]), distributed schedule generation
//!    ([`generate_schedule`]), the feasibility test ([`is_feasible`]) and
//!    the cost-aware adjustment heuristic ([`adjust_partition`], Alg. 2).
//! 2. **Centralized oracle** — run the whole pipeline in one call sequence
//!    to obtain the network schedule a converged HARP deployment produces
//!    (used by the paper's simulation studies, Fig. 11).
//! 3. **Distributed deployment** — one [`HarpNode`] state machine per
//!    device exchanging [`HarpMessage`]s (Table I) over a simulated
//!    management plane via [`HarpNetwork`], with realistic per-hop latency
//!    (used by the testbed experiments, Figs. 9–10 and Table II).
//!
//! # Examples
//!
//! The centralized pipeline on the paper's Fig. 1 example network:
//!
//! ```
//! use harp_core::{
//!     allocate_partitions, build_interfaces, generate_schedule, Requirements,
//!     SchedulingPolicy,
//! };
//! use tsch_sim::{Direction, Link, SlotframeConfig, Tree};
//!
//! # fn main() -> Result<(), harp_core::HarpError> {
//! let tree = Tree::paper_fig1_example();
//! let mut reqs = Requirements::new();
//! for v in tree.nodes().skip(1) {
//!     reqs.set(Link::up(v), tree.subtree_size(v));
//!     reqs.set(Link::down(v), tree.subtree_size(v));
//! }
//! let cfg = SlotframeConfig::paper_default();
//! let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels)?;
//! let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels)?;
//! let table = allocate_partitions(&tree, &up, &down, cfg)?;
//! let schedule = generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic)?;
//! assert!(schedule.is_exclusive()); // collision-free by construction
//! # Ok(())
//! # }
//! ```
//!
//! The distributed deployment with protocol timing:
//!
//! ```
//! use harp_core::{HarpNetwork, Requirements, SchedulingPolicy};
//! use tsch_sim::{Asn, Link, NodeId, SlotframeConfig, Tree};
//!
//! # fn main() -> Result<(), harp_core::HarpError> {
//! let tree = Tree::paper_fig1_example();
//! let mut reqs = Requirements::new();
//! for v in tree.nodes().skip(1) {
//!     reqs.set(Link::up(v), 1);
//! }
//! let mut net = HarpNetwork::new(
//!     tree,
//!     SlotframeConfig::paper_default(),
//!     &reqs,
//!     SchedulingPolicy::RateMonotonic,
//! );
//! let static_report = net.run_static()?;
//! assert!(net.schedule().is_exclusive());
//!
//! // A traffic change: link 9→7 now needs 3 cells.
//! let report = net.adjust_and_settle(net.now(), Link::up(NodeId(9)), 3)?;
//! assert!(report.mgmt_messages >= 2); // PUT intf up, PUT part down
//! # let _ = static_report;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjust;
mod allocation;
mod analysis;
mod coexist;
mod component;
mod compose;
mod error;
mod handle;
mod node;
mod protocol;
mod render;
mod requirement;
mod runner;
mod schedule_gen;
mod verify;

pub use adjust::{adjust_partition, is_feasible, AdjustmentOutcome};
pub use allocation::{
    allocate_partitions, allocate_partitions_unbounded, Partition, PartitionTable,
};
pub use analysis::{
    check_deadlines, frames_spanned, latency_bound, sorted_cells, DeadlineReport, DeadlineTask,
    LatencyBound,
};
pub use coexist::{BandPlan, ChannelBand};
pub use component::{ResourceComponent, ResourceInterface};
pub use compose::{
    build_interfaces, compose_components, CompositionLayout, InterfaceSet, NodeInterface,
};
pub use error::HarpError;
pub use handle::{AdjustmentBill, AllocatorHandle, ScheduleSummary};
pub use node::{Effects, HarpNode, NodeObsCounters, ScheduleOp};
pub use protocol::{HarpMessage, MessageKind};
pub use render::{render_cell_map, render_super_partitions, render_utilization};
pub use requirement::Requirements;
pub use runner::{apply_op, HarpNetwork, ProtocolReport};
pub use schedule_gen::{
    assign_cells_in_row, assign_cells_to_links, generate_schedule, unsatisfied_links,
    LinkAssignment, SchedulingPolicy,
};
pub use verify::{verify_partitions, verify_schedule, verify_uplink_compliance, Violation};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_types_are_debug_and_clone() {
        fn assert_traits<T: std::fmt::Debug + Clone>() {}
        assert_traits::<ResourceComponent>();
        assert_traits::<ResourceInterface>();
        assert_traits::<Requirements>();
        assert_traits::<CompositionLayout>();
        assert_traits::<PartitionTable>();
        assert_traits::<HarpMessage>();
        assert_traits::<HarpNode>();
        assert_traits::<ProtocolReport>();
        assert_traits::<HarpError>();
    }

    #[test]
    fn core_types_are_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<HarpNode>();
        assert_ss::<HarpNetwork>();
        assert_ss::<PartitionTable>();
    }
}
