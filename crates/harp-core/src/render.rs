//! Text rendering of slotframes, partitions and schedules.
//!
//! Debugging a 199×16 cell matrix from raw numbers is hopeless; these
//! renderers produce the kind of picture the paper prints as Fig. 7(d):
//! per-layer super-partitions and a cell-level ownership map.

use crate::allocation::PartitionTable;
use tsch_sim::{Cell, NetworkSchedule, Tree};

/// Renders the gateway-level super-partitions of a table, one line per
/// `(direction, layer)` in slot order.
///
/// # Examples
///
/// ```
/// use harp_core::{
///     allocate_partitions, build_interfaces, render_super_partitions, Requirements,
/// };
/// use tsch_sim::{Direction, Link, NodeId, SlotframeConfig, Tree};
///
/// # fn main() -> Result<(), harp_core::HarpError> {
/// let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
/// let mut reqs = Requirements::new();
/// reqs.set(Link::up(NodeId(1)), 2);
/// reqs.set(Link::up(NodeId(2)), 1);
/// let cfg = SlotframeConfig::paper_default();
/// let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels)?;
/// let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels)?;
/// let table = allocate_partitions(&tree, &up, &down, cfg)?;
/// let text = render_super_partitions(&tree, &table);
/// assert!(text.contains("up"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn render_super_partitions(tree: &Tree, table: &PartitionTable) -> String {
    let mut rows: Vec<_> = table.iter().filter(|p| p.node == tree.root()).collect();
    rows.sort_by_key(|p| p.rect.left());
    let mut out = String::new();
    for p in rows {
        out.push_str(&format!(
            "{:>4} layer {}: slots {:>3}..{:<3} channels {}..{}\n",
            p.direction.to_string(),
            p.layer,
            p.rect.left(),
            p.rect.right(),
            p.rect.bottom(),
            p.rect.top(),
        ));
    }
    out
}

/// Renders a cell-ownership map of the slotframe: one text row per channel
/// (highest first), one column per slot in `slots`, `.` for idle cells and
/// the transmitting node's id in base-36 otherwise. Multi-owner cells
/// (colliding schedules) render as `#`.
#[must_use]
pub fn render_cell_map(
    tree: &Tree,
    schedule: &NetworkSchedule,
    slots: std::ops::Range<u32>,
) -> String {
    let config = schedule.config();
    let mut out = String::new();
    for channel in (0..config.channels).rev() {
        out.push_str(&format!("ch{channel:>2} "));
        for slot in slots.clone() {
            let links = schedule.links_on(Cell::new(slot, channel));
            let glyph = match links {
                [] => '.',
                [link] => tree
                    .endpoints(*link)
                    .ok()
                    .and_then(|(sender, _)| std::char::from_digit(sender.0 % 36, 36))
                    .unwrap_or('?'),
                _ => '#',
            };
            out.push(glyph);
        }
        out.push('\n');
    }
    out
}

/// One-line utilisation summary of a schedule: assigned cells, capacity,
/// and percentage.
#[must_use]
pub fn render_utilization(schedule: &NetworkSchedule) -> String {
    let capacity = schedule.config().cells_per_slotframe();
    let used = schedule.assignment_count() as u64;
    format!(
        "{used}/{capacity} cells assigned ({:.1}%)",
        used as f64 / capacity as f64 * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        allocate_partitions, build_interfaces, generate_schedule, Requirements, SchedulingPolicy,
    };
    use tsch_sim::{Direction, Link, NodeId, SlotframeConfig};

    fn artifacts() -> (Tree, PartitionTable, NetworkSchedule) {
        let tree = Tree::paper_fig1_example();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), 1);
        }
        let cfg = SlotframeConfig::new(40, 4, 10_000).unwrap();
        let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let table = allocate_partitions(&tree, &up, &down, cfg).unwrap();
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        (tree, table, schedule)
    }

    #[test]
    fn super_partitions_listed_in_slot_order() {
        let (tree, table, _) = artifacts();
        let text = render_super_partitions(&tree, &table);
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        // Uplink layers come first (deepest first = leftmost slots).
        assert!(lines[0].contains("up layer 3"));
    }

    #[test]
    fn cell_map_dimensions_and_glyphs() {
        let (tree, _, schedule) = artifacts();
        let text = render_cell_map(&tree, &schedule, 0..20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "one row per channel");
        for line in &lines {
            assert_eq!(line.len(), "ch 0 ".len() + 20);
        }
        assert!(text.contains('.'), "idle cells rendered");
        assert!(!text.contains('#'), "exclusive schedules have no conflicts");
    }

    #[test]
    fn cell_map_marks_conflicts() {
        let (tree, _, mut schedule) = artifacts();
        let (link, cells) = schedule
            .iter_links()
            .map(|(l, c)| (l, c.to_vec()))
            .next()
            .unwrap();
        let other = Link::up(NodeId(11));
        if link != other {
            schedule.assign(cells[0], other).unwrap();
        }
        let text = render_cell_map(&tree, &schedule, 0..40);
        assert!(text.contains('#'));
    }

    #[test]
    fn utilization_summary() {
        let (_, _, schedule) = artifacts();
        let text = render_utilization(&schedule);
        assert!(text.contains("/160 cells"));
        assert!(text.contains('%'));
    }
}
