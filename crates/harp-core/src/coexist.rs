//! Resource management across co-existing networks (the paper's last
//! future-work item: "dynamic resource management among co-existing
//! heterogeneous IWNs").
//!
//! Multiple independent IWNs sharing one radio space cannot share cells —
//! but they can share the *channel dimension*: each network receives a
//! contiguous band of channels and runs HARP internally as if the band were
//! its whole spectrum. Band allocation and adjustment are the 1-D instance
//! of HARP's own partition problems, so this module reuses
//! [`adjust_partition`] with bands modelled as height-1 rectangles: a
//! network asking for more channels triggers the same cost-aware,
//! fewest-neighbours-moved adjustment that subtree partitions use.

use crate::adjust::adjust_partition;
use crate::component::ResourceComponent;
use crate::error::HarpError;
use packing::Rect;
use tsch_sim::{Cell, NetworkSchedule, SlotframeConfig};

/// A contiguous range of channels granted to one network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelBand {
    /// First channel of the band.
    pub first: u16,
    /// Number of channels.
    pub width: u16,
}

impl ChannelBand {
    /// One past the last channel.
    #[must_use]
    pub fn end(&self) -> u16 {
        self.first + self.width
    }

    /// Returns `true` if `channel` lies inside this band.
    #[must_use]
    pub fn contains(&self, channel: u16) -> bool {
        channel >= self.first && channel < self.end()
    }

    /// Returns `true` if the two bands share a channel.
    #[must_use]
    pub fn overlaps(&self, other: &ChannelBand) -> bool {
        self.first < other.end() && other.first < self.end()
    }
}

/// The channel-band assignment of several co-existing networks.
///
/// # Examples
///
/// ```
/// use harp_core::BandPlan;
///
/// # fn main() -> Result<(), harp_core::HarpError> {
/// let mut plan = BandPlan::allocate(&[4, 8, 2], 16)?;
/// assert_eq!(plan.band(1).width, 8);
/// // Network 2 needs more channels; the idle 2 channels absorb it.
/// let moved = plan.adjust(2, 4)?;
/// assert!(moved.contains(&2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandPlan {
    total_channels: u16,
    bands: Vec<ChannelBand>,
}

impl BandPlan {
    /// Allocates contiguous bands of the requested widths, first-come
    /// first-placed from channel 0.
    ///
    /// # Errors
    ///
    /// [`HarpError::ChannelBudgetExceeded`] if the widths exceed the total.
    pub fn allocate(widths: &[u16], total_channels: u16) -> Result<Self, HarpError> {
        let needed: u32 = widths.iter().map(|&w| u32::from(w)).sum();
        if needed > u32::from(total_channels) {
            return Err(HarpError::ChannelBudgetExceeded {
                layer: 0,
                needed,
                budget: total_channels,
            });
        }
        let mut bands = Vec::with_capacity(widths.len());
        let mut first = 0u16;
        for &width in widths {
            bands.push(ChannelBand { first, width });
            first += width;
        }
        Ok(Self {
            total_channels,
            bands,
        })
    }

    /// Number of co-existing networks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bands.len()
    }

    /// Returns `true` if no network is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bands.is_empty()
    }

    /// The band of network `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn band(&self, index: usize) -> ChannelBand {
        self.bands[index]
    }

    /// Channels not granted to any network.
    #[must_use]
    pub fn idle_channels(&self) -> u16 {
        let used: u32 = self.bands.iter().map(|b| u32::from(b.width)).sum();
        self.total_channels - used as u16
    }

    /// Resizes network `index`'s band to `new_width` channels, moving as
    /// few other bands as possible (the 1-D partition adjustment). Returns
    /// the indices of the networks whose bands changed — each of those must
    /// re-run its internal HARP allocation for the new band.
    ///
    /// # Errors
    ///
    /// [`HarpError::ChannelBudgetExceeded`] if the request cannot fit even
    /// with a full repack.
    pub fn adjust(&mut self, index: usize, new_width: u16) -> Result<Vec<usize>, HarpError> {
        let container = Rect::from_xywh(0, 0, u32::from(self.total_channels), 1);
        let children: Vec<(usize, Rect)> = self
            .bands
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    i,
                    Rect::from_xywh(u32::from(b.first), 0, u32::from(b.width), 1),
                )
            })
            .collect();
        let outcome = adjust_partition(
            container,
            &children,
            index,
            ResourceComponent::row(u32::from(new_width)),
        )?
        .ok_or(HarpError::ChannelBudgetExceeded {
            layer: 0,
            needed: u32::from(new_width),
            budget: self.total_channels,
        })?;
        for &(i, rect) in &outcome.layout {
            self.bands[i] = ChannelBand {
                first: u16::try_from(rect.left()).expect("bands fit in u16 channels"),
                width: u16::try_from(rect.width()).expect("bands fit in u16 channels"),
            };
        }
        Ok(outcome.moved)
    }

    /// The slotframe configuration a network should run HARP with: the same
    /// slot count, its band width as the channel count.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::ChannelBudgetExceeded`] for a zero-width band.
    pub fn network_config(
        &self,
        index: usize,
        base: SlotframeConfig,
    ) -> Result<SlotframeConfig, HarpError> {
        let band = self.band(index);
        base.with_channels(band.width)
            .map_err(|_| HarpError::ChannelBudgetExceeded {
                layer: 0,
                needed: 1,
                budget: 0,
            })
    }

    /// Lifts a schedule built inside network `index`'s band into global
    /// channel coordinates (shifting every cell up by the band's first
    /// channel).
    ///
    /// # Errors
    ///
    /// Propagates schedule errors if a cell falls outside the global
    /// slotframe (cannot happen for schedules built with
    /// [`BandPlan::network_config`]).
    pub fn lift_schedule(
        &self,
        index: usize,
        local: &NetworkSchedule,
        base: SlotframeConfig,
    ) -> Result<NetworkSchedule, HarpError> {
        let band = self.band(index);
        let mut global = NetworkSchedule::new(base);
        for (link, cells) in local.iter_links() {
            for cell in cells {
                global.assign(Cell::new(cell.slot, cell.channel + band.first), link)?;
            }
        }
        Ok(global)
    }

    /// Verifies that no two bands overlap (the inter-network isolation
    /// invariant).
    #[must_use]
    pub fn is_isolated(&self) -> bool {
        for (i, a) in self.bands.iter().enumerate() {
            for b in &self.bands[i + 1..] {
                if a.overlaps(b) {
                    return false;
                }
            }
        }
        self.bands.iter().all(|b| b.end() <= self.total_channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_packs_left() {
        let plan = BandPlan::allocate(&[4, 8, 2], 16).unwrap();
        assert_eq!(plan.band(0), ChannelBand { first: 0, width: 4 });
        assert_eq!(plan.band(1), ChannelBand { first: 4, width: 8 });
        assert_eq!(
            plan.band(2),
            ChannelBand {
                first: 12,
                width: 2
            }
        );
        assert_eq!(plan.idle_channels(), 2);
        assert!(plan.is_isolated());
    }

    #[test]
    fn over_allocation_rejected() {
        let err = BandPlan::allocate(&[10, 10], 16).unwrap_err();
        assert!(matches!(err, HarpError::ChannelBudgetExceeded { .. }));
    }

    #[test]
    fn grow_into_idle_moves_only_requester() {
        let mut plan = BandPlan::allocate(&[4, 8, 2], 16).unwrap();
        let moved = plan.adjust(2, 4).unwrap();
        assert_eq!(moved, vec![2]);
        assert!(plan.is_isolated());
        assert_eq!(plan.band(2).width, 4);
        assert_eq!(
            plan.band(0),
            ChannelBand { first: 0, width: 4 },
            "untouched"
        );
    }

    #[test]
    fn grow_requiring_neighbour_move() {
        let mut plan = BandPlan::allocate(&[6, 6, 2], 16).unwrap();
        // Network 0 wants 8: idle is 2 at the top; band 1 or 2 must move.
        let moved = plan.adjust(0, 8).unwrap();
        assert!(moved.contains(&0));
        assert!(moved.len() >= 2, "someone had to make room");
        assert!(plan.is_isolated());
        assert_eq!(plan.band(0).width, 8);
        assert_eq!(plan.band(1).width, 6, "widths of others preserved");
    }

    #[test]
    fn shrink_is_local() {
        let mut plan = BandPlan::allocate(&[8, 8], 16).unwrap();
        let moved = plan.adjust(1, 4).unwrap();
        assert_eq!(moved, vec![1]);
        assert_eq!(plan.idle_channels(), 4);
    }

    #[test]
    fn infeasible_growth_errors() {
        let mut plan = BandPlan::allocate(&[8, 8], 16).unwrap();
        let before = plan.clone();
        let err = plan.adjust(0, 12).unwrap_err();
        assert!(matches!(err, HarpError::ChannelBudgetExceeded { .. }));
        assert_eq!(plan, before, "failed adjustment leaves the plan intact");
    }

    #[test]
    fn network_config_and_lift() {
        use tsch_sim::{Link, NodeId};
        let plan = BandPlan::allocate(&[4, 8], 16).unwrap();
        let base = SlotframeConfig::paper_default();
        let cfg1 = plan.network_config(1, base).unwrap();
        assert_eq!(cfg1.channels, 8);
        let mut local = NetworkSchedule::new(cfg1);
        local.assign(Cell::new(0, 0), Link::up(NodeId(1))).unwrap();
        local.assign(Cell::new(5, 7), Link::up(NodeId(2))).unwrap();
        let global = plan.lift_schedule(1, &local, base).unwrap();
        assert_eq!(global.cells_of(Link::up(NodeId(1))), &[Cell::new(0, 4)]);
        assert_eq!(global.cells_of(Link::up(NodeId(2))), &[Cell::new(5, 11)]);
    }

    #[test]
    fn lifted_schedules_of_different_networks_never_collide() {
        use crate::{Requirements, SchedulingPolicy};
        use schedulers_free_pipeline::build;
        use tsch_sim::{GlobalInterference, Link, Tree};

        // Two independent HARP networks in adjacent bands.
        mod schedulers_free_pipeline {
            use super::super::*;
            use crate::{
                allocate_partitions, build_interfaces, generate_schedule, Requirements,
                SchedulingPolicy,
            };
            use tsch_sim::{Direction, Tree};
            pub fn build(
                tree: &Tree,
                reqs: &Requirements,
                cfg: SlotframeConfig,
            ) -> NetworkSchedule {
                let up = build_interfaces(tree, reqs, Direction::Up, cfg.channels).unwrap();
                let down = build_interfaces(tree, reqs, Direction::Down, cfg.channels).unwrap();
                let table = allocate_partitions(tree, &up, &down, cfg).unwrap();
                generate_schedule(tree, reqs, &table, SchedulingPolicy::RateMonotonic).unwrap()
            }
        }

        let base = SlotframeConfig::paper_default();
        let plan = BandPlan::allocate(&[8, 8], 16).unwrap();
        let tree_a = Tree::paper_fig1_example();
        let tree_b = Tree::from_parents(&[(1, 0), (2, 1), (3, 1), (4, 2)]);
        let mut reqs_a = Requirements::new();
        for v in tree_a.nodes().skip(1) {
            reqs_a.set(Link::up(v), 1);
        }
        let mut reqs_b = Requirements::new();
        for v in tree_b.nodes().skip(1) {
            reqs_b.set(Link::up(v), 2);
        }
        let local_a = build(&tree_a, &reqs_a, plan.network_config(0, base).unwrap());
        let local_b = build(&tree_b, &reqs_b, plan.network_config(1, base).unwrap());
        let global_a = plan.lift_schedule(0, &local_a, base).unwrap();
        let global_b = plan.lift_schedule(1, &local_b, base).unwrap();

        // No cell is used by both networks.
        for (_, cells) in global_a.iter_links() {
            for c in cells {
                assert!(
                    global_b.links_on(*c).is_empty(),
                    "cell {c} shared across networks"
                );
            }
        }
        // Each network is internally collision-free too.
        assert!(global_a.is_exclusive());
        assert!(global_b.is_exclusive());
        let _ = (SchedulingPolicy::RateMonotonic, GlobalInterference);
    }
}
