//! Static end-to-end latency analysis of a schedule.
//!
//! The paper's future work names "real-time tasks with diverse end-to-end
//! deadlines"; this module provides the analysis side of that extension:
//! given the installed schedule, compute a *worst-case* end-to-end latency
//! bound for each task by walking its route through the slotframe, and
//! check task deadlines against the bound.
//!
//! The bound models an uncongested traversal (each link's cells per
//! slotframe cover its demand — which HARP guarantees — and the analysed
//! packet finds every queue empty): the packet is released at the worst
//! possible slot offset, and at each hop it waits for the link's next
//! scheduled cell, wrapping into the following slotframe when needed.
//! For HARP's routing-path-compliant static schedules the resulting bound
//! is at most one slotframe plus the first-hop wait; dynamically adjusted
//! schedules lose compliance and the bound shows exactly how much latency
//! that costs (the effect visible in Fig. 10's settled tail).

use crate::error::HarpError;
use tsch_sim::{Cell, Link, NetworkSchedule, NodeId, Task, Tree};

/// The analysis result for one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyBound {
    /// The analysed task's source node.
    pub source: NodeId,
    /// Worst-case end-to-end latency in slots, over all release offsets.
    pub worst_case_slots: u64,
    /// Best-case end-to-end latency in slots.
    pub best_case_slots: u64,
    /// The release offset (slot in frame) attaining the worst case.
    pub worst_release_offset: u32,
}

/// Walks one packet released at slot offset `release` through `route`,
/// returning its arrival time in slots relative to the release instant.
///
/// Returns `None` if some hop has no cells at all.
fn traverse(
    schedule: &NetworkSchedule,
    tree: &Tree,
    route: &[NodeId],
    release: u32,
) -> Option<u64> {
    let slots = u64::from(schedule.config().slots);
    // Absolute time, in slots, since the start of the release frame.
    let mut now = u64::from(release);
    for hop in route.windows(2) {
        let link = link_for_hop(tree, hop[0], hop[1]);
        let cells = schedule.cells_of(link);
        if cells.is_empty() {
            return None;
        }
        // The earliest cell at or after `now` (the packet can use a cell in
        // the slot it arrives in only if it arrived in an earlier slot, so
        // we need cell slot ≥ now within the current frame, else wrap).
        let frame = now / slots;
        let offset = now % slots;
        let next = cells
            .iter()
            .map(|c| u64::from(c.slot))
            .filter(|&s| s >= offset)
            .min();
        let tx = match next {
            Some(s) => frame * slots + s,
            None => {
                let first = cells
                    .iter()
                    .map(|c| u64::from(c.slot))
                    .min()
                    .expect("non-empty");
                (frame + 1) * slots + first
            }
        };
        // The hop completes at the end of the transmission slot.
        now = tx + 1;
    }
    Some(now - u64::from(release))
}

fn link_for_hop(tree: &Tree, from: NodeId, to: NodeId) -> Link {
    if tree.parent(from) == Some(to) {
        Link::up(from)
    } else {
        debug_assert_eq!(tree.parent(to), Some(from), "route follows tree edges");
        Link::down(to)
    }
}

/// Computes the best/worst-case end-to-end latency of `task` under
/// `schedule`, over every possible release offset in the slotframe.
///
/// # Errors
///
/// Returns [`HarpError::MissingPartition`] (with the starved hop's child
/// node) if some hop of the route has no cells assigned.
///
/// # Examples
///
/// ```
/// use harp_core::latency_bound;
/// use tsch_sim::{Cell, Link, NetworkSchedule, NodeId, Rate, SlotframeConfig, Task, TaskId, Tree};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
/// let cfg = SlotframeConfig::new(10, 2, 10_000)?;
/// let mut schedule = NetworkSchedule::new(cfg);
/// schedule.assign(Cell::new(2, 0), Link::up(NodeId(2)))?;
/// schedule.assign(Cell::new(5, 0), Link::up(NodeId(1)))?;
/// let task = Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1));
/// let bound = latency_bound(&schedule, &tree, &task)?;
/// // Best case: release at slot ≤ 2, ride cells 2 and 5 → done at slot 6.
/// assert_eq!(bound.best_case_slots, 4);
/// // Worst case: release just after slot 5 → wait into the next frame.
/// assert!(bound.worst_case_slots <= 2 * 10);
/// # Ok(())
/// # }
/// ```
pub fn latency_bound(
    schedule: &NetworkSchedule,
    tree: &Tree,
    task: &Task,
) -> Result<LatencyBound, HarpError> {
    let route = task.route(tree);
    if route.len() < 2 {
        return Ok(LatencyBound {
            source: task.source,
            worst_case_slots: 0,
            best_case_slots: 0,
            worst_release_offset: 0,
        });
    }
    // Identify a starved hop up front for a precise error.
    for hop in route.windows(2) {
        let link = link_for_hop(tree, hop[0], hop[1]);
        if schedule.cells_of(link).is_empty() {
            return Err(HarpError::MissingPartition {
                node: link.child,
                layer: tree.layer_of_link(link),
            });
        }
    }
    let slots = schedule.config().slots;
    let mut worst = 0u64;
    let mut best = u64::MAX;
    let mut worst_release = 0u32;
    for release in 0..slots {
        let latency = traverse(schedule, tree, &route, release).expect("all hops have cells");
        if latency > worst {
            worst = latency;
            worst_release = release;
        }
        best = best.min(latency);
    }
    Ok(LatencyBound {
        source: task.source,
        worst_case_slots: worst,
        best_case_slots: best,
        worst_release_offset: worst_release,
    })
}

/// A task paired with its end-to-end deadline, in slots.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineTask {
    /// The task.
    pub task: Task,
    /// Relative end-to-end deadline in slots.
    pub deadline_slots: u64,
}

/// The verdict for one deadline task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineReport {
    /// The analysed task's source.
    pub source: NodeId,
    /// The computed worst-case latency.
    pub worst_case_slots: u64,
    /// Its deadline.
    pub deadline_slots: u64,
}

impl DeadlineReport {
    /// Whether the worst case meets the deadline.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.worst_case_slots <= self.deadline_slots
    }
}

/// Checks a whole task set against its deadlines under `schedule`.
///
/// Returns one report per task, in input order.
///
/// # Errors
///
/// Propagates [`latency_bound`]'s error for starved routes.
pub fn check_deadlines(
    schedule: &NetworkSchedule,
    tree: &Tree,
    tasks: &[DeadlineTask],
) -> Result<Vec<DeadlineReport>, HarpError> {
    tasks
        .iter()
        .map(|dt| {
            let bound = latency_bound(schedule, tree, &dt.task)?;
            Ok(DeadlineReport {
                source: dt.task.source,
                worst_case_slots: bound.worst_case_slots,
                deadline_slots: dt.deadline_slots,
            })
        })
        .collect()
}

/// The number of distinct slotframes a worst-case packet spans — a quick
/// compliance indicator: `1` means the schedule is routing-path compliant
/// for this task (all hops ride within one frame).
#[must_use]
pub fn frames_spanned(bound: &LatencyBound, config: tsch_sim::SlotframeConfig) -> u64 {
    bound
        .worst_case_slots
        .div_ceil(u64::from(config.slots))
        .max(1)
}

/// Convenience: the cell list of a link as `(slot, channel)` pairs, sorted
/// by slot — useful when reporting analysis results.
#[must_use]
pub fn sorted_cells(schedule: &NetworkSchedule, link: Link) -> Vec<Cell> {
    let mut cells = schedule.cells_of(link).to_vec();
    cells.sort_by_key(|c| (c.slot, c.channel));
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::{Rate, SlotframeConfig, TaskId};

    fn chain() -> (Tree, NetworkSchedule) {
        let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
        let cfg = SlotframeConfig::new(10, 2, 10_000).unwrap();
        let mut s = NetworkSchedule::new(cfg);
        s.assign(Cell::new(2, 0), Link::up(NodeId(2))).unwrap();
        s.assign(Cell::new(5, 0), Link::up(NodeId(1))).unwrap();
        s.assign(Cell::new(6, 0), Link::down(NodeId(1))).unwrap();
        s.assign(Cell::new(8, 0), Link::down(NodeId(2))).unwrap();
        (tree, s)
    }

    #[test]
    fn compliant_uplink_bound() {
        let (tree, s) = chain();
        let task = Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1));
        let b = latency_bound(&s, &tree, &task).unwrap();
        // Release at slot 0..=2 rides cells 2 then 5 → latency 6-release.
        assert_eq!(b.best_case_slots, 4);
        // Worst release is slot 6 (just missed slot-5 cell... the wait wraps
        // through slot 2 next frame then slot 5): 10+5+1-6 = 10.
        assert!(b.worst_case_slots >= 10);
        assert!(b.worst_case_slots < 20);
    }

    #[test]
    fn echo_bound_spans_at_most_two_frames_when_compliant() {
        let (tree, s) = chain();
        let cfg = s.config();
        let task = Task::echo(TaskId(0), NodeId(2), Rate::per_slotframe(1));
        let b = latency_bound(&s, &tree, &task).unwrap();
        assert!(frames_spanned(&b, cfg) <= 2);
        // Best case: release exactly at slot 2, ride cells 2, 5, 6, 8 and
        // deliver at the end of slot 8: latency 7.
        assert_eq!(b.best_case_slots, 7);
    }

    #[test]
    fn starved_route_is_an_error() {
        let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
        let cfg = SlotframeConfig::new(10, 2, 10_000).unwrap();
        let mut s = NetworkSchedule::new(cfg);
        s.assign(Cell::new(2, 0), Link::up(NodeId(2))).unwrap();
        // up(1) has no cells.
        let task = Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1));
        let err = latency_bound(&s, &tree, &task).unwrap_err();
        assert!(matches!(
            err,
            HarpError::MissingPartition {
                node: NodeId(1),
                ..
            }
        ));
    }

    #[test]
    fn gateway_task_has_zero_bound() {
        let (tree, s) = chain();
        let task = Task::echo(TaskId(0), NodeId(0), Rate::per_slotframe(1));
        let b = latency_bound(&s, &tree, &task).unwrap();
        assert_eq!(b.worst_case_slots, 0);
        assert_eq!(b.best_case_slots, 0);
    }

    #[test]
    fn non_compliant_order_costs_a_frame() {
        // Reverse the uplink cell order: parent's cell before child's.
        let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
        let cfg = SlotframeConfig::new(10, 2, 10_000).unwrap();
        let mut s = NetworkSchedule::new(cfg);
        s.assign(Cell::new(5, 0), Link::up(NodeId(2))).unwrap();
        s.assign(Cell::new(2, 0), Link::up(NodeId(1))).unwrap();
        let task = Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1));
        let bad = latency_bound(&s, &tree, &task).unwrap();

        let mut s2 = NetworkSchedule::new(cfg);
        s2.assign(Cell::new(2, 0), Link::up(NodeId(2))).unwrap();
        s2.assign(Cell::new(5, 0), Link::up(NodeId(1))).unwrap();
        let good = latency_bound(&s2, &tree, &task).unwrap();
        assert!(
            bad.worst_case_slots > good.worst_case_slots,
            "non-compliant {} vs compliant {}",
            bad.worst_case_slots,
            good.worst_case_slots
        );
    }

    #[test]
    fn deadline_check_splits_pass_fail() {
        let (tree, s) = chain();
        let mk = |deadline| DeadlineTask {
            task: Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)),
            deadline_slots: deadline,
        };
        let reports = check_deadlines(&s, &tree, &[mk(50), mk(5)]).unwrap();
        assert!(reports[0].is_schedulable());
        assert!(
            !reports[1].is_schedulable(),
            "5 slots is below the worst case"
        );
    }

    #[test]
    fn sorted_cells_orders_by_slot() {
        let (_, s) = chain();
        let mut s = s;
        s.assign(Cell::new(1, 1), Link::up(NodeId(2))).unwrap();
        let cells = sorted_cells(&s, Link::up(NodeId(2)));
        assert_eq!(cells[0].slot, 1);
        assert_eq!(cells[1].slot, 2);
    }
}
