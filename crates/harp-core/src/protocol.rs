//! HARP's network-management protocol messages.
//!
//! The testbed implements HARP on top of CoAP; Table I of the paper defines
//! four handlers, mirrored here as message variants (plus the cell-assignment
//! notification a parent sends its children after local scheduling):
//!
//! | URI  | Method | Variant              |
//! |------|--------|----------------------|
//! | intf | POST   | [`HarpMessage::PostInterface`]  — child reports its interface |
//! | intf | PUT    | [`HarpMessage::PutInterface`]   — child reports an updated component |
//! | part | POST   | [`HarpMessage::PostPartitions`] — parent allocates partitions at all layers |
//! | part | PUT    | [`HarpMessage::PutPartition`]   — parent updates one layer's partition |
//!
//! `POST` messages carry both traffic directions at once (one report per
//! node, as on the testbed); `PUT` messages are direction- and
//! layer-specific because dynamic adjustments are.

use crate::component::{ResourceComponent, ResourceInterface};
use core::fmt;
use packing::Rect;
use tsch_sim::{Cell, Direction};

/// A HARP protocol message exchanged between tree neighbours over the
/// management plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarpMessage {
    /// `POST intf`: a child reports its subtree's resource interfaces
    /// (bottom-up, static phase).
    PostInterface {
        /// Uplink interface of the child's subtree.
        up: ResourceInterface,
        /// Downlink interface of the child's subtree.
        down: ResourceInterface,
    },
    /// `POST part`: a parent hands a child the partitions allocated to the
    /// child's subtree, at every layer and for both directions (top-down,
    /// static phase).
    PostPartitions {
        /// `(direction, layer, placement)` triples for the child's subtree.
        partitions: Vec<(Direction, u32, Rect)>,
    },
    /// `PUT intf`: a child requests an updated (usually larger) component at
    /// one layer (dynamic phase, flows upward).
    PutInterface {
        /// Traffic direction of the change.
        direction: Direction,
        /// The affected layer.
        layer: u32,
        /// The new component the child needs.
        component: ResourceComponent,
    },
    /// `PUT part`: a parent grants/updates a child's partition at one layer
    /// (dynamic phase, flows downward).
    PutPartition {
        /// Traffic direction of the change.
        direction: Direction,
        /// The affected layer.
        layer: u32,
        /// The child subtree's new placement at that layer.
        rect: Rect,
    },
    /// A parent informs a child of the cells assigned to the link between
    /// them (the local scheduling decision, §IV-D). The child starts using
    /// the cells when this message arrives.
    CellAssignment {
        /// Direction of the link the cells serve.
        direction: Direction,
        /// The cells granted, in transmission order.
        cells: Vec<Cell>,
    },
}

/// Coarse classification of messages for overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Interface reports (`POST intf` / `PUT intf`).
    Interface,
    /// Partition allocations (`POST part` / `PUT part`).
    Partition,
    /// Cell-assignment notifications.
    CellAssignment,
}

impl HarpMessage {
    /// The message's accounting class.
    #[must_use]
    pub fn kind(&self) -> MessageKind {
        match self {
            HarpMessage::PostInterface { .. } | HarpMessage::PutInterface { .. } => {
                MessageKind::Interface
            }
            HarpMessage::PostPartitions { .. } | HarpMessage::PutPartition { .. } => {
                MessageKind::Partition
            }
            HarpMessage::CellAssignment { .. } => MessageKind::CellAssignment,
        }
    }

    /// Returns `true` for the management messages counted as HARP overhead
    /// in the paper (interface and partition messages; cell assignments are
    /// local schedule distribution).
    #[must_use]
    pub fn is_management(&self) -> bool {
        !matches!(self, HarpMessage::CellAssignment { .. })
    }

    /// Returns `true` for dynamic-phase (`PUT`) messages.
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            HarpMessage::PutInterface { .. } | HarpMessage::PutPartition { .. }
        )
    }
}

impl fmt::Display for HarpMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarpMessage::PostInterface { up, down } => {
                write!(f, "POST intf up={up} down={down}")
            }
            HarpMessage::PostPartitions { partitions } => {
                write!(f, "POST part ({} entries)", partitions.len())
            }
            HarpMessage::PutInterface {
                direction,
                layer,
                component,
            } => {
                write!(f, "PUT intf {direction} l{layer} {component}")
            }
            HarpMessage::PutPartition {
                direction,
                layer,
                rect,
            } => {
                write!(f, "PUT part {direction} l{layer} {rect}")
            }
            HarpMessage::CellAssignment { direction, cells } => {
                write!(f, "CELLS {direction} ({} cells)", cells.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_table_one() {
        let post_intf = HarpMessage::PostInterface {
            up: ResourceInterface::new(),
            down: ResourceInterface::new(),
        };
        let put_intf = HarpMessage::PutInterface {
            direction: Direction::Up,
            layer: 2,
            component: ResourceComponent::row(3),
        };
        let post_part = HarpMessage::PostPartitions { partitions: vec![] };
        let put_part = HarpMessage::PutPartition {
            direction: Direction::Down,
            layer: 1,
            rect: Rect::default(),
        };
        let cells = HarpMessage::CellAssignment {
            direction: Direction::Up,
            cells: vec![],
        };
        assert_eq!(post_intf.kind(), MessageKind::Interface);
        assert_eq!(put_intf.kind(), MessageKind::Interface);
        assert_eq!(post_part.kind(), MessageKind::Partition);
        assert_eq!(put_part.kind(), MessageKind::Partition);
        assert_eq!(cells.kind(), MessageKind::CellAssignment);
    }

    #[test]
    fn management_classification() {
        let cells = HarpMessage::CellAssignment {
            direction: Direction::Up,
            cells: vec![],
        };
        assert!(!cells.is_management());
        assert!(!cells.is_dynamic());
        let put = HarpMessage::PutPartition {
            direction: Direction::Up,
            layer: 3,
            rect: Rect::default(),
        };
        assert!(put.is_management());
        assert!(put.is_dynamic());
        let post = HarpMessage::PostPartitions { partitions: vec![] };
        assert!(post.is_management());
        assert!(!post.is_dynamic());
    }

    #[test]
    fn display_names_the_method() {
        let m = HarpMessage::PutInterface {
            direction: Direction::Up,
            layer: 2,
            component: ResourceComponent::row(3),
        };
        assert!(m.to_string().starts_with("PUT intf"));
    }
}
