//! The error type shared by the HARP algorithms.

use core::fmt;
use tsch_sim::NodeId;

/// Errors raised by HARP's composition, allocation, scheduling and
/// adjustment algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HarpError {
    /// A resource component needs more channels than the network has.
    ChannelBudgetExceeded {
        /// The layer being composed.
        layer: u32,
        /// Channels required by the widest component.
        needed: u32,
        /// The network's channel budget.
        budget: u16,
    },
    /// The slotframe is too short for the gateway's resource interface.
    SlotframeOverflow {
        /// Slots the allocation needs.
        needed_slots: u64,
        /// Slots available in the slotframe.
        available: u32,
    },
    /// A node has no allocated partition at the given layer.
    MissingPartition {
        /// The node whose partition is missing.
        node: NodeId,
        /// The layer looked up.
        layer: u32,
    },
    /// A node's scheduling partition cannot hold its links' cells.
    PartitionTooSmall {
        /// The parent node that owns the partition.
        node: NodeId,
        /// Cells required by the links.
        required: u32,
        /// Cells available in the partition row.
        available: u32,
    },
    /// The adjustment requester is not among the current partitions.
    UnknownAdjustmentTarget,
    /// The node has left the network and cannot take part in topology
    /// operations.
    NodeDeparted(NodeId),
    /// An underlying packing call rejected its input.
    Pack(packing::PackError),
    /// An underlying schedule mutation failed.
    Schedule(tsch_sim::ScheduleError),
    /// The management plane rejected or gave up on a protocol message
    /// (a routing bug, or a neighbour unreachable after retransmissions).
    Mgmt(tsch_sim::MgmtError),
}

impl fmt::Display for HarpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarpError::ChannelBudgetExceeded {
                layer,
                needed,
                budget,
            } => write!(
                f,
                "layer {layer} component needs {needed} channels, budget is {budget}"
            ),
            HarpError::SlotframeOverflow {
                needed_slots,
                available,
            } => write!(
                f,
                "allocation needs {needed_slots} slots, slotframe has {available}"
            ),
            HarpError::MissingPartition { node, layer } => {
                write!(f, "no partition for {node} at layer {layer}")
            }
            HarpError::PartitionTooSmall {
                node,
                required,
                available,
            } => write!(
                f,
                "{node} needs {required} cells but its partition holds {available}"
            ),
            HarpError::UnknownAdjustmentTarget => {
                write!(f, "adjustment requester has no current partition")
            }
            HarpError::NodeDeparted(n) => write!(f, "{n} has left the network"),
            HarpError::Pack(e) => write!(f, "packing failed: {e}"),
            HarpError::Schedule(e) => write!(f, "schedule update failed: {e}"),
            HarpError::Mgmt(e) => write!(f, "management plane failed: {e}"),
        }
    }
}

impl std::error::Error for HarpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarpError::Pack(e) => Some(e),
            HarpError::Schedule(e) => Some(e),
            HarpError::Mgmt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<packing::PackError> for HarpError {
    fn from(e: packing::PackError) -> Self {
        HarpError::Pack(e)
    }
}

impl From<tsch_sim::ScheduleError> for HarpError {
    fn from(e: tsch_sim::ScheduleError) -> Self {
        HarpError::Schedule(e)
    }
}

impl From<tsch_sim::MgmtError> for HarpError {
    fn from(e: tsch_sim::MgmtError) -> Self {
        HarpError::Mgmt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_numbers() {
        let e = HarpError::SlotframeOverflow {
            needed_slots: 250,
            available: 199,
        };
        assert!(e.to_string().contains("250"));
        assert!(e.to_string().contains("199"));
    }

    #[test]
    fn source_chains_for_wrapped_errors() {
        use std::error::Error;
        let e = HarpError::Pack(packing::PackError::ZeroWidthStrip);
        assert!(e.source().is_some());
        let e = HarpError::MissingPartition {
            node: NodeId(1),
            layer: 2,
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<HarpError>();
    }
}
