//! Property-based tests of the *distributed* HARP deployment: on arbitrary
//! trees and demands, the message-passing protocol must converge to the
//! same schedule as the centralized oracle, and arbitrary sequences of
//! feasible traffic changes must preserve exclusivity and demand
//! satisfaction.

use harp_core::{
    allocate_partitions, build_interfaces, generate_schedule, unsatisfied_links, HarpNetwork,
    Requirements, SchedulingPolicy,
};
use proptest::prelude::*;
use tsch_sim::{Direction, Link, NodeId, SlotframeConfig, Tree};

fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    prop::collection::vec(0..1_000_000u32, 1..max_nodes).prop_map(|choices| {
        let mut pairs = Vec::with_capacity(choices.len());
        for (i, c) in choices.iter().enumerate() {
            pairs.push(((i + 1) as u16, (c % (i as u32 + 1)) as u16));
        }
        Tree::from_parents(&pairs)
    })
}

fn reqs_strategy(tree: &Tree) -> impl Strategy<Value = Requirements> {
    let n = tree.len() - 1;
    prop::collection::vec((0u32..=2, 0u32..=2), n).prop_map(move |cells| {
        let mut reqs = Requirements::new();
        for (i, &(up, down)) in cells.iter().enumerate() {
            let child = NodeId((i + 1) as u16);
            reqs.set(Link::up(child), up);
            reqs.set(Link::down(child), down);
        }
        reqs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn distributed_converges_to_centralized(
        (tree, reqs) in tree_strategy(18).prop_flat_map(|t| {
            let r = reqs_strategy(&t);
            (Just(t), r)
        }),
    ) {
        let config = SlotframeConfig::paper_default();
        let up = build_interfaces(&tree, &reqs, Direction::Up, config.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, config.channels).unwrap();
        let Ok(table) = allocate_partitions(&tree, &up, &down, config) else {
            return Ok(());
        };
        let oracle =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();

        let mut net = HarpNetwork::new(
            tree.clone(),
            config,
            &reqs,
            SchedulingPolicy::RateMonotonic,
        );
        net.run_static().unwrap();
        prop_assert!(net.quiescent());
        for d in Direction::BOTH {
            for link in tree.links(d) {
                prop_assert_eq!(
                    net.schedule().cells_of(link),
                    oracle.cells_of(link),
                    "{}",
                    link
                );
            }
        }
    }

    #[test]
    fn random_adjustment_sequences_keep_invariants(
        (tree, changes) in tree_strategy(14).prop_flat_map(|t| {
            let n = t.len() as u16;
            let changes = prop::collection::vec(
                (1..n, prop::bool::ANY, 1u32..=3),
                1..12,
            );
            (Just(t), changes)
        }),
    ) {
        let config = SlotframeConfig::paper_default();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), 1);
            reqs.set(Link::down(v), 1);
        }
        let mut net = HarpNetwork::new(
            tree.clone(),
            config,
            &reqs,
            SchedulingPolicy::RateMonotonic,
        );
        net.run_static().unwrap();

        let mut expected = reqs.clone();
        for (node, up, cells) in changes {
            let direction = if up { Direction::Up } else { Direction::Down };
            let link = Link { child: NodeId(node), direction };
            net.adjust_and_settle(net.now(), link, cells).unwrap();
            expected.set(link, cells);
            prop_assert!(net.schedule().is_exclusive());
            prop_assert!(unsatisfied_links(&tree, &expected, net.schedule()).is_empty());
            // Exact allocation after every change, not just coverage.
            prop_assert_eq!(net.schedule().cells_of(link).len(), cells as usize);
        }
    }

    #[test]
    fn static_phase_message_complexity_is_linear(tree in tree_strategy(20)) {
        // The static phase exchanges exactly one POST-intf and at most one
        // POST-part per non-leaf, non-gateway node — the efficiency claim
        // behind HARP's bottom-up/top-down design.
        let config = SlotframeConfig::paper_default();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), 1);
        }
        let mut net = HarpNetwork::new(
            tree.clone(),
            config,
            &reqs,
            SchedulingPolicy::RateMonotonic,
        );
        let report = net.run_static().unwrap();
        let interior = tree
            .nodes()
            .skip(1)
            .filter(|&v| !tree.is_leaf(v))
            .count() as u64;
        prop_assert!(report.mgmt_messages <= 2 * interior + 2);
        // Timing: bounded by a constant number of slotframes per tree level.
        let levels = u64::from(tree.layers().max(1));
        prop_assert!(
            report.slotframes(config) <= 3 * levels + 2,
            "{} slotframes for {} levels",
            report.slotframes(config),
            levels
        );
    }
}
