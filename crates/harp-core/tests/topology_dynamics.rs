//! Tests of the topology-change operations: node join, node departure, and
//! interference-driven parent switches — the network dynamics that motivate
//! HARP (§I of the paper).

use harp_core::{unsatisfied_links, HarpNetwork, Requirements, SchedulingPolicy};
use tsch_sim::{Direction, Link, NodeId, SlotframeConfig, Tree};

fn fig1_network() -> HarpNetwork {
    let tree = Tree::paper_fig1_example();
    let mut reqs = Requirements::new();
    for v in tree.nodes().skip(1) {
        reqs.set(Link::up(v), 1);
        reqs.set(Link::down(v), 1);
    }
    let mut net = HarpNetwork::new(
        tree,
        SlotframeConfig::paper_default(),
        &reqs,
        SchedulingPolicy::RateMonotonic,
    );
    net.run_static().unwrap();
    net
}

#[test]
fn leaf_join_under_interior_node() {
    let mut net = fig1_network();
    let before = net.schedule().assignment_count();
    let (id, report) = net.join_leaf(net.now(), NodeId(1), 2, 1).unwrap();
    assert_eq!(id, NodeId(12));
    assert!(net.tree().is_leaf(id));
    assert_eq!(net.tree().parent(id), Some(NodeId(1)));
    assert!(net.schedule().is_exclusive());
    assert_eq!(net.schedule().cells_of(Link::up(id)).len(), 2);
    assert_eq!(net.schedule().cells_of(Link::down(id)).len(), 1);
    assert!(net.schedule().assignment_count() > before);
    assert!(report.mgmt_messages >= 1 || report.cell_messages >= 1);
}

#[test]
fn leaf_join_extends_network_depth() {
    // Joining under node 9 (depth 3) creates layer 4, which did not exist:
    // the gateway must create a brand-new layer partition.
    let mut net = fig1_network();
    assert_eq!(net.tree().layers(), 3);
    let (id, _) = net.join_leaf(net.now(), NodeId(9), 1, 1).unwrap();
    assert_eq!(net.tree().layers(), 4);
    assert!(net.schedule().is_exclusive());
    assert_eq!(net.schedule().cells_of(Link::up(id)).len(), 1);
    assert_eq!(net.schedule().cells_of(Link::down(id)).len(), 1);
}

#[test]
fn join_under_former_leaf_promotes_it() {
    // Node 4 is a leaf; giving it a child forces it to obtain a scheduling
    // partition it never had.
    let mut net = fig1_network();
    assert!(net.tree().is_leaf(NodeId(4)));
    let (id, _) = net.join_leaf(net.now(), NodeId(4), 2, 2).unwrap();
    assert!(!net.tree().is_leaf(NodeId(4)));
    assert!(net.schedule().is_exclusive());
    assert_eq!(net.schedule().cells_of(Link::up(id)).len(), 2);
    assert_eq!(net.schedule().cells_of(Link::down(id)).len(), 2);
}

#[test]
fn leaf_departure_releases_cells_locally() {
    let mut net = fig1_network();
    assert!(!net.schedule().cells_of(Link::up(NodeId(4))).is_empty());
    let report = net.leave_leaf(net.now(), NodeId(4)).unwrap();
    assert!(net.schedule().cells_of(Link::up(NodeId(4))).is_empty());
    assert!(net.schedule().cells_of(Link::down(NodeId(4))).is_empty());
    assert!(net.schedule().is_exclusive());
    // §V: departures are handled by the parent alone — zero management
    // messages, only cell releases.
    assert_eq!(report.mgmt_messages, 0);
    assert!(report.cell_messages >= 1);
}

#[test]
fn parent_switch_moves_cells_between_subtrees() {
    let mut net = fig1_network();
    // Node 6 (child of 2) switches to node 1.
    let report = net.reparent_leaf(net.now(), NodeId(6), NodeId(1)).unwrap();
    assert_eq!(net.tree().parent(NodeId(6)), Some(NodeId(1)));
    assert!(net.schedule().is_exclusive());
    assert_eq!(net.schedule().cells_of(Link::up(NodeId(6))).len(), 1);
    assert_eq!(net.schedule().cells_of(Link::down(NodeId(6))).len(), 1);
    // The new cells live inside node 1's partition row.
    let row = net
        .node(NodeId(1))
        .partition(Direction::Up, 2)
        .expect("node 1 schedules layer 2");
    let cell = net.schedule().cells_of(Link::up(NodeId(6)))[0];
    assert!(
        cell.slot >= row.left() && cell.slot < row.right(),
        "cell {cell} outside row {row:?}"
    );
    assert!(report.elapsed_slots() > 0);
}

#[test]
fn parent_switch_across_layers() {
    let mut net = fig1_network();
    // Node 6 (depth 2) moves under node 7 (depth 2) → becomes depth 3.
    net.reparent_leaf(net.now(), NodeId(6), NodeId(7)).unwrap();
    assert_eq!(net.tree().depth(NodeId(6)), 3);
    assert!(net.schedule().is_exclusive());
    assert_eq!(net.schedule().cells_of(Link::up(NodeId(6))).len(), 1);
    // Old parent (node 2) now has an empty row in use.
    assert_eq!(net.node(NodeId(2)).requirement(Direction::Up, NodeId(6)), 0);
}

#[test]
fn churn_storm_keeps_invariants() {
    let mut net = fig1_network();
    let mut rng = tsch_sim::SplitMix64::new(99);
    let mut joined: Vec<NodeId> = Vec::new();
    for round in 0..12 {
        match rng.next_below(3) {
            0 => {
                // Join under a random active node.
                let mut parent = NodeId(rng.next_below(net.tree().len() as u64) as u32);
                while !net.is_active(parent) {
                    parent = NodeId(rng.next_below(net.tree().len() as u64) as u32);
                }
                let (id, _) = net
                    .join_leaf(net.now(), parent, 1 + rng.next_below(2) as u32, 1)
                    .unwrap_or_else(|e| panic!("round {round} join: {e}"));
                joined.push(id);
            }
            1 if !joined.is_empty() => {
                // One of the joined leaves departs (if still a leaf).
                let idx = rng.next_below(joined.len() as u64) as usize;
                let leaf = joined[idx];
                if net.tree().is_leaf(leaf) {
                    net.leave_leaf(net.now(), leaf)
                        .unwrap_or_else(|e| panic!("round {round} leave: {e}"));
                    joined.swap_remove(idx);
                }
            }
            _ => {
                // A random original leaf switches parents.
                let candidates: Vec<NodeId> = net
                    .tree()
                    .nodes()
                    .filter(|&v| {
                        net.tree().is_leaf(v) && v != net.tree().root() && net.is_active(v)
                    })
                    .collect();
                let leaf = candidates[rng.next_below(candidates.len() as u64) as usize];
                let mut target = NodeId(rng.next_below(net.tree().len() as u64) as u32);
                while target == leaf || !net.is_active(target) {
                    target = NodeId(rng.next_below(net.tree().len() as u64) as u32);
                }
                net.reparent_leaf(net.now(), leaf, target)
                    .unwrap_or_else(|e| panic!("round {round} reparent: {e}"));
            }
        }
        assert!(net.schedule().is_exclusive(), "round {round}");
    }
    // Whatever the final topology, every tracked requirement is satisfied.
    let tree = net.tree().clone();
    let mut expected = Requirements::new();
    for v in tree.nodes().skip(1) {
        let parent = tree.parent(v).unwrap();
        for d in Direction::BOTH {
            expected.set(
                Link {
                    child: v,
                    direction: d,
                },
                net.node(parent).requirement(d, v),
            );
        }
    }
    let missing = unsatisfied_links(&tree, &expected, net.schedule());
    assert!(missing.is_empty(), "unsatisfied: {missing:?}");
}
