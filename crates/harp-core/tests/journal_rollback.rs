//! Differential oracle for the undo-journal rollback.
//!
//! [`HarpNetwork::adjust_and_settle`] used to clone every node and the
//! whole schedule as its rollback snapshot; it now keeps an undo journal
//! of first-touch before-images. The legacy path survives behind the
//! test-only `set_snapshot_rollback` toggle purely so this suite can
//! drive the *same* seeded sequence of feasible and infeasible
//! adjustments through both and assert byte-identical node state,
//! schedule contents, reports, drained schedule ops and metrics after
//! every step — on the reliable transport and under Lossy/Chaos channels,
//! where rollbacks are triggered by retry exhaustion rather than
//! infeasibility and the plane must cancel in-flight messages.

use harp_core::{HarpNetwork, Requirements, SchedulingPolicy};
use std::fmt::Write as _;
use tsch_sim::{Chaos, Link, Lossy, NodeId, SlotframeConfig, Tree};

fn fig1_reqs(tree: &Tree) -> Requirements {
    let mut reqs = Requirements::new();
    for v in tree.nodes().skip(1) {
        reqs.set(Link::up(v), tree.subtree_size(v));
        reqs.set(Link::down(v), tree.subtree_size(v));
    }
    reqs
}

#[derive(Clone, Copy)]
enum Channel {
    Reliable,
    Lossy,
    Chaos,
}

fn build(channel: Channel, snapshot_rollback: bool) -> HarpNetwork {
    let tree = Tree::paper_fig1_example();
    let reqs = fig1_reqs(&tree);
    let cfg = SlotframeConfig::paper_default();
    let policy = SchedulingPolicy::RateMonotonic;
    let mut net = match channel {
        Channel::Reliable => HarpNetwork::new(tree, cfg, &reqs, policy),
        Channel::Lossy => HarpNetwork::with_transport(
            tree,
            cfg,
            &reqs,
            policy,
            Box::new(Lossy::uniform(0.8, 42).expect("valid pdr")),
        ),
        Channel::Chaos => HarpNetwork::with_transport(
            tree,
            cfg,
            &reqs,
            policy,
            Box::new(Chaos::new(9, 0.15, 0.10, 0.30, 7)),
        ),
    };
    net.enable_observability(256);
    net.set_snapshot_rollback(snapshot_rollback);
    net
}

/// Every observable byte of the network, minus the process-unique
/// schedule version (meaningless across two networks) and the clock-only
/// drift a failed adjustment legitimately leaves behind in spans.
fn state_dump(net: &HarpNetwork) -> String {
    let mut out = String::new();
    for v in net.tree().nodes() {
        writeln!(out, "node {v:?}: {:?}", net.node(v)).unwrap();
    }
    let s = net.schedule();
    writeln!(out, "links {:?}", s.iter_links().collect::<Vec<_>>()).unwrap();
    writeln!(out, "cells {:?}", s.iter_cells().collect::<Vec<_>>()).unwrap();
    writeln!(out, "quiescent {}", net.quiescent()).unwrap();
    writeln!(out, "now {:?}", net.now()).unwrap();
    writeln!(out, "metrics {}", net.metrics_snapshot().to_json()).unwrap();
    out
}

/// The seeded adjustment sequence: `(child node, new cells)` with cell
/// counts far beyond the slotframe mixed in, so both feasible settles and
/// gateway-rejected escalations occur on every channel.
const MOVES: &[(u32, u32)] = &[
    (9, 2),
    (9, 500),
    (10, 3),
    (4, 1),
    (4, 900),
    (5, 2),
    (9, 0),
    (10, 700),
    (10, 1),
    (3, 2),
    (3, 505),
    (8, 1),
];

fn run_differential(channel: Channel) {
    let mut journal = build(channel, false);
    let mut snapshot = build(channel, true);

    let a = journal.run_static().expect("static phase converges");
    let b = snapshot.run_static().expect("static phase converges");
    assert_eq!(a, b, "static reports diverge before any adjustment");
    assert_eq!(journal.take_ops(), snapshot.take_ops());
    assert_eq!(state_dump(&journal), state_dump(&snapshot));

    let mut failures = 0usize;
    let mut successes = 0usize;
    for &(node, cells) in MOVES {
        let link = Link::up(NodeId(node));
        let before = state_dump(&journal);
        let version_before = journal.schedule().version();
        let at = journal.now();
        assert_eq!(at, snapshot.now(), "clocks diverged");

        let ra = journal.adjust_and_settle(at, link, cells);
        let rb = snapshot.adjust_and_settle(at, link, cells);
        assert_eq!(ra, rb, "outcome diverged at ({node}, {cells})");

        match ra {
            Ok(_) => successes += 1,
            Err(_) => {
                failures += 1;
                // The journal restore must be indistinguishable from
                // swapping in pre-run clones: same bytes as before the
                // attempt (the clock alone may advance), including the
                // schedule's version stamp, with nothing left in flight.
                let after = state_dump(&journal);
                let strip_now = |d: &str| {
                    d.lines()
                        .filter(|l| !l.starts_with("now ") && !l.starts_with("metrics "))
                        .collect::<Vec<_>>()
                        .join("\n")
                };
                assert_eq!(strip_now(&before), strip_now(&after));
                assert_eq!(journal.schedule().version(), version_before);
                assert!(journal.quiescent(), "in-flight messages not cancelled");
                assert!(snapshot.quiescent());
            }
        }
        // Drained ops must match (a failed adjustment truncates its ops).
        assert_eq!(journal.take_ops(), snapshot.take_ops());
        assert_eq!(
            state_dump(&journal),
            state_dump(&snapshot),
            "state diverged after ({node}, {cells})"
        );
    }
    assert!(successes > 0, "sequence must exercise the commit path");
    assert!(failures > 0, "sequence must exercise the rollback path");
}

#[test]
fn journal_matches_snapshot_on_reliable_transport() {
    run_differential(Channel::Reliable);
}

#[test]
fn journal_matches_snapshot_on_lossy_transport() {
    run_differential(Channel::Lossy);
}

#[test]
fn journal_matches_snapshot_on_chaos_transport() {
    run_differential(Channel::Chaos);
}

/// Pending-ops truncation: ops committed by an earlier successful
/// adjustment must survive a later failed one un-drained, on both paths.
#[test]
fn failed_adjustment_truncates_only_its_own_ops() {
    let mut journal = build(Channel::Reliable, false);
    let mut snapshot = build(Channel::Reliable, true);
    journal.run_static().unwrap();
    snapshot.run_static().unwrap();
    journal.take_ops();
    snapshot.take_ops();

    // Leave the successful adjustment's ops sitting in the sink.
    let at = journal.now();
    journal
        .adjust_and_settle(at, Link::up(NodeId(9)), 2)
        .unwrap();
    snapshot
        .adjust_and_settle(at, Link::up(NodeId(9)), 2)
        .unwrap();

    let at = journal.now();
    assert!(journal
        .adjust_and_settle(at, Link::up(NodeId(10)), 600)
        .is_err());
    assert!(snapshot
        .adjust_and_settle(at, Link::up(NodeId(10)), 600)
        .is_err());

    let a = journal.take_ops();
    let b = snapshot.take_ops();
    assert_eq!(a, b);
    assert!(
        !a.is_empty(),
        "the successful adjustment's ops must survive the failed one"
    );
}

/// The version stamp: every mutation advances it — including a rejected
/// adjustment, whose clock advance is observable — and reads leave it
/// alone, which is what lets a service cache rendered summaries.
#[test]
fn version_stamp_advances_on_every_mutation() {
    let mut net = build(Channel::Reliable, false);
    let v0 = net.version();
    net.run_static().unwrap();
    let v1 = net.version();
    assert_ne!(v0, v1);

    let _ = net.schedule();
    let _ = net.metrics_snapshot();
    assert_eq!(net.version(), v1, "reads must not advance the stamp");

    let at = net.now();
    net.adjust_and_settle(at, Link::up(NodeId(9)), 2).unwrap();
    let v2 = net.version();
    assert_ne!(v1, v2);

    let at = net.now();
    assert!(net.adjust_and_settle(at, Link::up(NodeId(9)), 777).is_err());
    assert_ne!(
        net.version(),
        v2,
        "a rejected adjustment still advances now"
    );
}
