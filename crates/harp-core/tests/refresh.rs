//! Tests of the maintenance-window refresh: after a storm of incremental
//! adjustments, a refresh restores the static phase's latency-compliant
//! layout at the cost of one full static-phase message exchange.

use harp_core::{
    allocate_partitions, build_interfaces, latency_bound, unsatisfied_links, verify_schedule,
    verify_uplink_compliance, HarpNetwork, Requirements, SchedulingPolicy,
};
use tsch_sim::{Direction, Link, NodeId, Rate, SlotframeConfig, Task, TaskId, Tree};

fn network() -> (Tree, Requirements, HarpNetwork) {
    let tree = Tree::paper_fig1_example();
    let mut reqs = Requirements::new();
    for v in tree.nodes().skip(1) {
        reqs.set(Link::up(v), 1);
        reqs.set(Link::down(v), 1);
    }
    let net = HarpNetwork::new(
        tree.clone(),
        SlotframeConfig::paper_default(),
        &reqs,
        SchedulingPolicy::RateMonotonic,
    );
    (tree, reqs, net)
}

#[test]
fn refresh_restores_compliance_after_adjustments() {
    let (tree, reqs, mut net) = network();
    net.run_static().unwrap();

    // A storm of growth that drags partitions into the slotframe's idle
    // area (losing compliant ordering).
    let changes = [(9u32, 4u32), (10, 3), (11, 5), (4, 3), (6, 4)];
    let mut expected = reqs.clone();
    for (node, cells) in changes {
        net.adjust_and_settle(net.now(), Link::up(NodeId(node)), cells)
            .unwrap();
        expected.set(Link::up(NodeId(node)), cells);
    }
    assert!(net.schedule().is_exclusive());

    // Refresh: demands preserved, compliance restored.
    let (report, moved) = net.refresh().unwrap();
    assert!(net.quiescent());
    assert!(report.mgmt_messages >= 10, "a refresh pays the static bill");
    assert!(moved > 0, "the layout actually changed");
    assert!(verify_schedule(&tree, &expected, net.schedule()).is_empty());

    // The refreshed layout matches the centralized oracle for the *current*
    // demands — i.e. it is exactly the compliant static allocation.
    let cfg = SlotframeConfig::paper_default();
    let up = build_interfaces(&tree, &expected, Direction::Up, cfg.channels).unwrap();
    let down = build_interfaces(&tree, &expected, Direction::Down, cfg.channels).unwrap();
    let table = allocate_partitions(&tree, &up, &down, cfg).unwrap();
    assert!(verify_uplink_compliance(&tree, &table).is_empty());

    // Latency bound after refresh: every uplink task fits two slotframes
    // again (compliant best case within one).
    for v in tree.nodes().skip(1) {
        let task = Task::uplink(TaskId(0), v, Rate::per_slotframe(1));
        let bound = latency_bound(net.schedule(), &tree, &task).unwrap();
        assert!(
            bound.best_case_slots <= u64::from(cfg.slots),
            "{v} best case {} after refresh",
            bound.best_case_slots
        );
    }
}

#[test]
fn refresh_is_idempotent() {
    let (tree, reqs, mut net) = network();
    net.run_static().unwrap();
    let (_, moved_first) = net.refresh().unwrap();
    // Right after a static phase, a refresh recomputes the same layout.
    assert_eq!(moved_first, 0, "refresh of a fresh layout moves nothing");
    let (_, moved_second) = net.refresh().unwrap();
    assert_eq!(moved_second, 0);
    assert!(unsatisfied_links(&tree, &reqs, net.schedule()).is_empty());
}

#[test]
fn network_remains_adjustable_after_refresh() {
    let (_, _, mut net) = network();
    net.run_static().unwrap();
    net.adjust_and_settle(net.now(), Link::up(NodeId(9)), 6)
        .unwrap();
    net.refresh().unwrap();
    // The refreshed state machines keep working for further dynamics.
    net.adjust_and_settle(net.now(), Link::up(NodeId(10)), 4)
        .unwrap();
    assert!(net.schedule().is_exclusive());
    assert_eq!(net.schedule().cells_of(Link::up(NodeId(9))).len(), 6);
    assert_eq!(net.schedule().cells_of(Link::up(NodeId(10))).len(), 4);
}

#[test]
fn rejected_adjustment_is_fully_rolled_back() {
    // Regression: a rejected (infeasible) adjustment must not leave the
    // inflated demand behind — a later refresh or adjustment would
    // otherwise explode on the phantom requirement.
    let (tree, reqs, mut net) = network();
    net.run_static().unwrap();
    let before = net
        .node(tree.parent(NodeId(9)).unwrap())
        .requirement(Direction::Up, NodeId(9));

    let result = net.adjust_and_settle(net.now(), Link::up(NodeId(9)), 500);
    assert!(result.is_err(), "500 cells cannot fit");

    // Demand restored at the parent, schedule untouched, plane drained.
    let after = net
        .node(tree.parent(NodeId(9)).unwrap())
        .requirement(Direction::Up, NodeId(9));
    assert_eq!(after, before);
    assert!(net.quiescent());
    assert!(unsatisfied_links(&tree, &reqs, net.schedule()).is_empty());

    // Both a follow-up adjustment and a refresh now succeed cleanly.
    net.adjust_and_settle(net.now(), Link::up(NodeId(9)), 3)
        .unwrap();
    let (_, _moved) = net.refresh().unwrap();
    assert!(net.schedule().is_exclusive());
    assert_eq!(net.schedule().cells_of(Link::up(NodeId(9))).len(), 3);
}
