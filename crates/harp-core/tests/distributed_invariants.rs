//! Seeded randomized tests of the *distributed* HARP deployment: on
//! arbitrary trees and demands, the message-passing protocol must converge
//! to the same schedule as the centralized oracle, and arbitrary sequences
//! of feasible traffic changes must preserve exclusivity and demand
//! satisfaction.

use harp_core::{
    allocate_partitions, build_interfaces, generate_schedule, unsatisfied_links, HarpNetwork,
    Requirements, SchedulingPolicy,
};
use tsch_sim::{Direction, Link, NodeId, SlotframeConfig, SplitMix64, Tree};

fn random_tree(rng: &mut SplitMix64, max_nodes: usize) -> Tree {
    let edges = 1 + rng.next_below(max_nodes as u64 - 1) as usize;
    let mut pairs = Vec::with_capacity(edges);
    for i in 0..edges {
        pairs.push(((i + 1) as u32, rng.next_below(i as u64 + 1) as u32));
    }
    Tree::from_parents(&pairs)
}

/// Arbitrary demands: every link gets 0..=2 cells in each direction.
fn random_reqs(rng: &mut SplitMix64, tree: &Tree) -> Requirements {
    let mut reqs = Requirements::new();
    for v in tree.nodes().skip(1) {
        reqs.set(Link::up(v), rng.next_below(3) as u32);
        reqs.set(Link::down(v), rng.next_below(3) as u32);
    }
    reqs
}

#[test]
fn distributed_converges_to_centralized() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xD1_57 ^ case);
        let tree = random_tree(&mut rng, 18);
        let reqs = random_reqs(&mut rng, &tree);
        let config = SlotframeConfig::paper_default();
        let up = build_interfaces(&tree, &reqs, Direction::Up, config.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, config.channels).unwrap();
        let Ok(table) = allocate_partitions(&tree, &up, &down, config) else {
            continue;
        };
        let oracle =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();

        let mut net =
            HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
        net.run_static().unwrap();
        assert!(net.quiescent(), "case {case}");
        for d in Direction::BOTH {
            for link in tree.links(d) {
                assert_eq!(
                    net.schedule().cells_of(link),
                    oracle.cells_of(link),
                    "case {case}: {link}"
                );
            }
        }
    }
}

#[test]
fn random_adjustment_sequences_keep_invariants() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xAD_3C ^ case);
        let tree = random_tree(&mut rng, 14);
        let n = tree.len() as u64;
        let changes: Vec<(u32, bool, u32)> = (0..1 + rng.next_below(11))
            .map(|_| {
                (
                    1 + rng.next_below(n - 1) as u32,
                    rng.next_below(2) == 1,
                    1 + rng.next_below(3) as u32,
                )
            })
            .collect();
        let config = SlotframeConfig::paper_default();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), 1);
            reqs.set(Link::down(v), 1);
        }
        let mut net =
            HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
        net.run_static().unwrap();

        let mut expected = reqs.clone();
        for (node, up, cells) in changes {
            let direction = if up { Direction::Up } else { Direction::Down };
            let link = Link {
                child: NodeId(node),
                direction,
            };
            net.adjust_and_settle(net.now(), link, cells).unwrap();
            expected.set(link, cells);
            assert!(net.schedule().is_exclusive(), "case {case}");
            assert!(
                unsatisfied_links(&tree, &expected, net.schedule()).is_empty(),
                "case {case}"
            );
            // Exact allocation after every change, not just coverage.
            assert_eq!(
                net.schedule().cells_of(link).len(),
                cells as usize,
                "case {case}"
            );
        }
    }
}

#[test]
fn static_phase_message_complexity_is_linear() {
    // The static phase exchanges exactly one POST-intf and at most one
    // POST-part per non-leaf, non-gateway node — the efficiency claim
    // behind HARP's bottom-up/top-down design.
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0x11_EA ^ case);
        let tree = random_tree(&mut rng, 20);
        let config = SlotframeConfig::paper_default();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), 1);
        }
        let mut net =
            HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
        let report = net.run_static().unwrap();
        let interior = tree.nodes().skip(1).filter(|&v| !tree.is_leaf(v)).count() as u64;
        assert!(report.mgmt_messages <= 2 * interior + 2, "case {case}");
        // Timing: bounded by a constant number of slotframes per tree level.
        let levels = u64::from(tree.layers().max(1));
        assert!(
            report.slotframes(config) <= 3 * levels + 2,
            "case {case}: {} slotframes for {} levels",
            report.slotframes(config),
            levels
        );
    }
}
