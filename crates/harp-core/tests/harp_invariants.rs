//! Seeded randomized tests of the HARP invariants on randomly generated
//! trees and demands.
//!
//! The generators build arbitrary parent-pointer trees (each node's parent
//! is some earlier node) and arbitrary small per-link demands; the
//! assertions check the paper's claims hold universally, not just on the
//! canned examples:
//!
//! * composition composites contain all children, disjointly, with minimal
//!   slot extent bounds;
//! * partition allocation isolates every scheduling area;
//! * generated schedules are exclusive and demand-satisfying;
//! * dynamic adjustment preserves all of the above.

use harp_core::{
    adjust_partition, allocate_partitions, build_interfaces, compose_components, generate_schedule,
    is_feasible, unsatisfied_links, Requirements, ResourceComponent, SchedulingPolicy,
};
use packing::{all_disjoint, Rect};
use tsch_sim::{Direction, Link, NodeId, SlotframeConfig, SplitMix64, Tree};

/// Arbitrary tree with 2..=`max_nodes` nodes: node i's parent is drawn
/// from `0..i`.
fn random_tree(rng: &mut SplitMix64, max_nodes: usize) -> Tree {
    let edges = 1 + rng.next_below(max_nodes as u64 - 1) as usize;
    let mut pairs = Vec::with_capacity(edges);
    for i in 0..edges {
        pairs.push(((i + 1) as u32, rng.next_below(i as u64 + 1) as u32));
    }
    Tree::from_parents(&pairs)
}

/// Arbitrary demands: every link gets 0..=3 cells in each direction.
fn random_reqs(rng: &mut SplitMix64, tree: &Tree) -> Requirements {
    let mut reqs = Requirements::new();
    for v in tree.nodes().skip(1) {
        reqs.set(Link::up(v), rng.next_below(4) as u32);
        reqs.set(Link::down(v), rng.next_below(4) as u32);
    }
    reqs
}

#[test]
fn composition_contains_children_disjointly() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xC0_3E ^ case);
        let comps: Vec<(u32, u32)> = (0..1 + rng.next_below(9))
            .map(|_| (1 + rng.next_below(8) as u32, 1 + rng.next_below(4) as u32))
            .collect();
        let children: Vec<(NodeId, ResourceComponent)> = comps
            .iter()
            .enumerate()
            .map(|(i, &(s, c))| (NodeId(i as u32), ResourceComponent::new(s, c)))
            .collect();
        let layout = compose_components(&children, 16, 1).unwrap();
        let composite = layout.composite();
        // (i) contains all children without overlap.
        let rects: Vec<Rect> = layout.placements().iter().map(|&(_, r)| r).collect();
        assert!(all_disjoint(&rects), "case {case}");
        let bounds = Rect::from_xywh(0, 0, composite.slots, composite.channels);
        for &(_, r) in layout.placements() {
            assert!(bounds.contains_rect(&r), "case {case}");
        }
        // (ii) the slot extent is minimal-feasible: at least the widest
        // child and at least the 16-channel area bound.
        let widest = comps.iter().map(|&(s, _)| s).max().unwrap();
        let area: u64 = comps
            .iter()
            .map(|&(s, c)| u64::from(s) * u64::from(c))
            .sum();
        assert!(composite.slots >= widest, "case {case}");
        assert!(
            u64::from(composite.slots) >= area.div_ceil(16),
            "case {case}"
        );
        // (iii) the channel budget is respected.
        assert!(composite.channels <= 16, "case {case}");
    }
}

#[test]
fn pipeline_produces_exclusive_satisfying_schedules() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xE5_C1 ^ case);
        let tree = random_tree(&mut rng, 24);
        let reqs = random_reqs(&mut rng, &tree);
        let config = SlotframeConfig::paper_default();
        let up = build_interfaces(&tree, &reqs, Direction::Up, config.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, config.channels).unwrap();
        let Ok(table) = allocate_partitions(&tree, &up, &down, config) else {
            // Overflow is a legal outcome for extreme demands; nothing to check.
            continue;
        };
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        assert!(schedule.is_exclusive(), "case {case}");
        assert!(
            unsatisfied_links(&tree, &reqs, &schedule).is_empty(),
            "case {case}"
        );
        // Exact allocation: no link holds more cells than required.
        for (link, cells) in reqs.iter() {
            assert_eq!(schedule.cells_of(link).len(), cells as usize, "case {case}");
        }
    }
}

#[test]
fn scheduling_areas_are_isolated() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x15_0A ^ case);
        let tree = random_tree(&mut rng, 24);
        let reqs = random_reqs(&mut rng, &tree);
        let config = SlotframeConfig::paper_default();
        let up = build_interfaces(&tree, &reqs, Direction::Up, config.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, config.channels).unwrap();
        let Ok(table) = allocate_partitions(&tree, &up, &down, config) else {
            continue;
        };
        let mut areas = Vec::new();
        for d in Direction::BOTH {
            for v in tree.nodes() {
                if tree.is_leaf(v) {
                    continue;
                }
                if let Some(area) = table.scheduling_area(&tree, v, d) {
                    areas.push(area);
                }
            }
        }
        assert!(all_disjoint(&areas), "case {case}");
    }
}

#[test]
fn adjustment_outcome_is_always_valid() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xAD_75 ^ case);
        let widths: Vec<u32> = (0..2 + rng.next_below(6))
            .map(|_| 1 + rng.next_below(5) as u32)
            .collect();
        let grow_to = 1 + rng.next_below(12) as u32;
        let parent_w = 16 + rng.next_below(15) as u32;
        let parent_h = 1 + rng.next_below(3) as u32;
        // Lay siblings out in a row, then grow the first one.
        let mut children = Vec::new();
        let mut x = 0;
        for (i, &w) in widths.iter().enumerate() {
            children.push((NodeId(i as u32), Rect::from_xywh(x, 0, w, 1)));
            x += w;
        }
        if x > parent_w {
            continue;
        }
        let parent = Rect::from_xywh(0, 0, parent_w, parent_h);
        let new_size = ResourceComponent::row(grow_to);
        match adjust_partition(parent, &children, NodeId(0), new_size).unwrap() {
            Some(outcome) => {
                let rects: Vec<Rect> = outcome
                    .layout
                    .iter()
                    .map(|&(_, r)| r)
                    .filter(|r| !r.is_empty())
                    .collect();
                assert!(all_disjoint(&rects), "case {case}");
                for &(n, r) in &outcome.layout {
                    assert!(parent.contains_rect(&r) || r.is_empty(), "case {case}");
                    let expected = if n == NodeId(0) {
                        new_size.as_size()
                    } else {
                        children.iter().find(|(c, _)| *c == n).unwrap().1.size
                    };
                    assert_eq!(r.size, expected, "case {case}");
                }
                // Unmoved children really did not move.
                for &(n, old) in &children {
                    if !outcome.moved.contains(&n) {
                        let now = outcome.layout.iter().find(|(c, _)| *c == n).unwrap().1;
                        assert_eq!(now, old, "case {case}");
                    }
                }
            }
            None => {
                // The heuristic said no; the exact area bound must agree
                // that it is at least tight.
                let others: u64 = widths[1..].iter().map(|&w| u64::from(w)).sum();
                let needed = others + u64::from(grow_to);
                assert!(
                    needed > u64::from(parent_w) * u64::from(parent_h) || grow_to > parent_w,
                    "case {case}: refused although area and width admit a packing: \
                     needed {needed}, capacity {}",
                    parent_w * parent_h
                );
            }
        }
    }
}

#[test]
fn feasibility_test_never_false_positive() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xFE_A5 ^ case);
        let comps: Vec<(u32, u32)> = (0..1 + rng.next_below(7))
            .map(|_| (1 + rng.next_below(6) as u32, 1 + rng.next_below(3) as u32))
            .collect();
        let pw = 1 + rng.next_below(20) as u32;
        let ph = 1 + rng.next_below(4) as u32;
        let components: Vec<ResourceComponent> = comps
            .iter()
            .map(|&(s, c)| ResourceComponent::new(s, c))
            .collect();
        let parent = ResourceComponent::new(pw, ph);
        if is_feasible(parent, &components).unwrap() {
            // A positive answer comes with an actual packing inside.
            let area: u64 = components.iter().map(|c| c.cell_count()).sum();
            assert!(area <= parent.cell_count(), "case {case}");
            for c in &components {
                assert!(c.slots <= pw && c.channels <= ph, "case {case}");
            }
        }
    }
}

#[test]
fn interfaces_direct_component_matches_demand() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x1F_DC ^ case);
        let tree = random_tree(&mut rng, 20);
        let reqs = random_reqs(&mut rng, &tree);
        let set = build_interfaces(&tree, &reqs, Direction::Up, 16).unwrap();
        for v in tree.nodes() {
            if tree.is_leaf(v) {
                continue;
            }
            let direct = set
                .node(v)
                .interface
                .component(tree.link_layer(v))
                .expect("non-leaf nodes have a direct component");
            assert_eq!(
                direct.slots,
                reqs.direct_total(&tree, v, Direction::Up),
                "case {case}"
            );
            assert!(direct.channels <= 1 || direct.slots == 0, "case {case}");
        }
    }
}
