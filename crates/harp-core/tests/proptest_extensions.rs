//! Property-based tests for the extension modules: channel-band
//! coexistence, latency analysis, and the verify checkers.

use harp_core::{
    allocate_partitions, build_interfaces, generate_schedule, latency_bound, verify_partitions,
    verify_schedule, verify_uplink_compliance, BandPlan, Requirements, SchedulingPolicy,
};
use proptest::prelude::*;
use tsch_sim::{Direction, Link, NodeId, Rate, SlotframeConfig, Task, TaskId, Tree};

fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    prop::collection::vec(0..1_000_000u32, 1..max_nodes).prop_map(|choices| {
        let mut pairs = Vec::with_capacity(choices.len());
        for (i, c) in choices.iter().enumerate() {
            pairs.push(((i + 1) as u16, (c % (i as u32 + 1)) as u16));
        }
        Tree::from_parents(&pairs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn band_plan_survives_random_adjustment_sequences(
        widths in prop::collection::vec(1u16..=4, 2..5),
        adjustments in prop::collection::vec((0usize..5, 1u16..=8), 1..12),
    ) {
        let Ok(mut plan) = BandPlan::allocate(&widths, 16) else {
            return Ok(()); // over-subscribed initial widths: nothing to test
        };
        for (idx, new_width) in adjustments {
            let idx = idx % widths.len();
            match plan.adjust(idx, new_width) {
                Ok(moved) => {
                    prop_assert!(plan.is_isolated());
                    prop_assert_eq!(plan.band(idx).width, new_width);
                    // Every unmoved band is untouched by definition of the
                    // outcome; spot-check the isolation of all widths.
                    prop_assert!(moved.contains(&idx) || plan.band(idx).width == new_width);
                }
                Err(_) => {
                    // A refusal must leave a consistent plan behind.
                    prop_assert!(plan.is_isolated());
                }
            }
        }
    }

    #[test]
    fn band_plan_never_exceeds_total(
        widths in prop::collection::vec(1u16..=6, 1..6),
    ) {
        let total: u32 = widths.iter().map(|&w| u32::from(w)).sum();
        let plan = BandPlan::allocate(&widths, 16);
        prop_assert_eq!(plan.is_ok(), total <= 16);
        if let Ok(plan) = plan {
            prop_assert!(plan.is_isolated());
            prop_assert_eq!(u32::from(plan.idle_channels()), 16 - total);
        }
    }

    #[test]
    fn static_allocations_pass_every_verifier(tree in tree_strategy(20)) {
        let cfg = SlotframeConfig::paper_default();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
            reqs.set(Link::down(v), tree.subtree_size(v));
        }
        let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let Ok(table) = allocate_partitions(&tree, &up, &down, cfg) else {
            return Ok(());
        };
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        prop_assert!(verify_schedule(&tree, &reqs, &schedule).is_empty());
        prop_assert!(verify_partitions(&tree, &table).is_empty());
        prop_assert!(verify_uplink_compliance(&tree, &table).is_empty());
    }

    #[test]
    fn compliant_schedules_bound_uplink_latency_by_one_frame_plus_wait(
        tree in tree_strategy(16),
    ) {
        // For a compliant static allocation, an uplink packet that releases
        // at slot 0 rides the frame in order: best case is under one frame.
        let cfg = SlotframeConfig::paper_default();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
        }
        let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let Ok(table) = allocate_partitions(&tree, &up, &down, cfg) else {
            return Ok(());
        };
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        for v in tree.nodes().skip(1) {
            let task = Task::uplink(TaskId(0), v, Rate::per_slotframe(1));
            let bound = latency_bound(&schedule, &tree, &task).unwrap();
            prop_assert!(
                bound.best_case_slots <= u64::from(cfg.slots),
                "{v}: best case {} exceeds a frame",
                bound.best_case_slots
            );
            // Worst case is bounded by two frames: missing the whole
            // compliant run costs exactly one extra frame.
            prop_assert!(
                bound.worst_case_slots <= 2 * u64::from(cfg.slots),
                "{v}: worst case {}",
                bound.worst_case_slots
            );
        }
    }

    #[test]
    fn latency_bound_monotone_in_depth_for_chains(depth in 1u16..10) {
        // On a chain with one cell per link in compliant order, the bound
        // grows with depth.
        let cfg = SlotframeConfig::paper_default();
        let pairs: Vec<(u16, u16)> = (1..=depth).map(|i| (i, i - 1)).collect();
        let tree = Tree::from_parents(&pairs);
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), 1);
        }
        let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let table = allocate_partitions(&tree, &up, &down, cfg).unwrap();
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        let mut last = 0;
        for d in 1..=depth {
            let node = NodeId(d);
            let task = Task::uplink(TaskId(0), node, Rate::per_slotframe(1));
            let bound = latency_bound(&schedule, &tree, &task).unwrap();
            prop_assert!(bound.best_case_slots >= last);
            last = bound.best_case_slots;
        }
    }
}
