//! White-box tests of protocol details: message coalescing, partition
//! translation on sibling moves, pending-request consumption, and report
//! accounting.

use harp_core::{
    HarpMessage, HarpNetwork, HarpNode, Requirements, ResourceComponent, SchedulingPolicy,
};
use tsch_sim::{Direction, Link, NodeId, SlotframeConfig, Tree};

fn fig1_reqs(tree: &Tree) -> Requirements {
    let mut reqs = Requirements::new();
    for v in tree.nodes().skip(1) {
        reqs.set(Link::up(v), 1);
        reqs.set(Link::down(v), 1);
    }
    reqs
}

#[test]
fn post_partitions_carries_both_directions_in_one_message() {
    // The gateway's POST-part to each child must contain uplink and
    // downlink entries together (one message per child, as on the testbed).
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let mut nodes: Vec<HarpNode> = tree
        .nodes()
        .map(|v| HarpNode::new(&tree, v, config, SchedulingPolicy::RateMonotonic))
        .collect();
    for (link, cells) in fig1_reqs(&tree).iter() {
        let parent = tree.parent(link.child).unwrap();
        nodes[parent.index()].set_requirement(link.direction, link.child, cells);
    }
    // Drive the static phase synchronously and capture the gateway's output.
    let mut inbox: Vec<(NodeId, NodeId, HarpMessage)> = Vec::new();
    for node in &mut nodes {
        let fx = node.bootstrap().unwrap();
        let from = node.id();
        inbox.extend(fx.messages.into_iter().map(|(to, m)| (from, to, m)));
    }
    let mut gateway_posts = Vec::new();
    while let Some((from, to, msg)) = inbox.pop() {
        if from == tree.root() {
            if let HarpMessage::PostPartitions { partitions } = &msg {
                gateway_posts.push((to, partitions.clone()));
            }
        }
        let fx = nodes[to.index()].handle(from, msg).unwrap();
        inbox.extend(fx.messages.into_iter().map(|(t, m)| (to, t, m)));
    }
    assert!(!gateway_posts.is_empty());
    for (child, partitions) in gateway_posts {
        let has_up = partitions.iter().any(|&(d, _, _)| d == Direction::Up);
        let has_down = partitions.iter().any(|&(d, _, _)| d == Direction::Down);
        assert!(
            has_up && has_down,
            "POST-part to {child} missing a direction"
        );
    }
}

#[test]
fn sibling_move_translates_nested_partitions() {
    // When an adjustment moves a sibling subtree's partition, every nested
    // partition inside it must translate with it, and the descendants'
    // schedules must follow.
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let reqs = fig1_reqs(&tree);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();

    // Before: record where node 7 schedules layer 3.
    let before = net.node(NodeId(7)).partition(Direction::Up, 3).unwrap();

    // A large layer-3 increase from node 8's side forces the gateway layer
    // to reorganise; wherever node 7's partition lands, its cells must
    // still be exclusive and satisfy its links.
    net.adjust_and_settle(net.now(), Link::up(NodeId(11)), 9)
        .unwrap();
    let after = net.node(NodeId(7)).partition(Direction::Up, 3).unwrap();
    assert!(net.schedule().is_exclusive());
    let mut expected = reqs.clone();
    expected.set(Link::up(NodeId(11)), 9);
    assert!(harp_core::unsatisfied_links(&tree, &expected, net.schedule()).is_empty());
    // The partition may or may not have moved; if it did, the schedule
    // followed it (cells of links 9→7 and 10→7 are inside `after`).
    for child in [NodeId(9), NodeId(10)] {
        for cell in net.schedule().cells_of(Link::up(child)) {
            assert!(
                cell.slot >= after.left() && cell.slot < after.right(),
                "cell {cell} outside node 7's row {after:?} (was {before:?})"
            );
        }
    }
}

#[test]
fn pending_requests_are_consumed_once() {
    // Two successive escalating increases at the same link must both
    // resolve (a stale pending entry would corrupt the second).
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let reqs = fig1_reqs(&tree);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();
    for cells in [4u32, 8] {
        net.adjust_and_settle(net.now(), Link::up(NodeId(9)), cells)
            .unwrap();
        assert!(net.schedule().is_exclusive());
        assert_eq!(
            net.schedule().cells_of(Link::up(NodeId(9))).len(),
            cells as usize
        );
    }
}

#[test]
fn interleaved_up_and_down_changes_do_not_interfere() {
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let reqs = fig1_reqs(&tree);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();
    // Fire both directions' changes at the same instant, settle once.
    let now = net.now();
    net.reset_report();
    net.request_change(now, Link::up(NodeId(9)), 3).unwrap();
    net.request_change(now, Link::down(NodeId(9)), 4).unwrap();
    net.run_until_quiescent().unwrap();
    assert!(net.schedule().is_exclusive());
    assert_eq!(net.schedule().cells_of(Link::up(NodeId(9))).len(), 3);
    assert_eq!(net.schedule().cells_of(Link::down(NodeId(9))).len(), 4);
}

#[test]
fn report_counts_are_internally_consistent() {
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let reqs = fig1_reqs(&tree);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    let report = net.run_static().unwrap();
    assert!(report.completed_at >= report.started_at);
    assert!(!report.involved_nodes.is_empty());
    // Static phase sends no dynamic messages, so no layers recorded.
    assert!(report.layers.is_empty());
    // Seconds and slotframes derive from the same elapsed count.
    let secs = report.elapsed_seconds(config);
    assert!((secs - config.slots_to_seconds(report.elapsed_slots())).abs() < 1e-9);
}

#[test]
fn zero_demand_network_converges_with_empty_schedule() {
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let reqs = Requirements::new();
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();
    assert!(net.quiescent());
    assert_eq!(net.schedule().assignment_count(), 0);
    // A first demand can still be injected dynamically.
    net.adjust_and_settle(net.now(), Link::up(NodeId(4)), 2)
        .unwrap();
    assert_eq!(net.schedule().cells_of(Link::up(NodeId(4))).len(), 2);
    assert!(net.schedule().is_exclusive());
}

#[test]
fn resource_component_growth_direction_matters() {
    // A [n,1] row growing in channels (the paper's C_{40,5}: [1,1]→[1,2]
    // event shape) — direct rows cannot grow in channels, but composed
    // layers can; check a channel-growth adjustment at a composed layer.
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let reqs = fig1_reqs(&tree);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();
    // Increase both children of node 7 so that C_{3,3} must grow in the
    // channel dimension (two rows of width 2 compose to [2,2] within the
    // slot budget rather than [4,1]).
    net.adjust_and_settle(net.now(), Link::up(NodeId(9)), 2)
        .unwrap();
    net.adjust_and_settle(net.now(), Link::up(NodeId(10)), 2)
        .unwrap();
    assert!(net.schedule().is_exclusive());
    let iface = net.node(NodeId(7)).interface(Direction::Up).unwrap();
    assert_eq!(iface.component(3), Some(ResourceComponent::row(4)));
}

// ---- handler idempotency (transport duplicates as defence in depth) ----

fn variant(msg: &HarpMessage) -> &'static str {
    match msg {
        HarpMessage::PostInterface { .. } => "PostInterface",
        HarpMessage::PostPartitions { .. } => "PostPartitions",
        HarpMessage::PutInterface { .. } => "PutInterface",
        HarpMessage::PutPartition { .. } => "PutPartition",
        HarpMessage::CellAssignment { .. } => "CellAssignment",
    }
}

/// Drives a synchronous exchange delivering every message **twice**. The
/// duplicate must be a no-op: no new messages, no new schedule ops, and the
/// receiver's state byte-identical (compared via its `Debug` rendering).
/// Returns the set of message variants exercised.
fn drive_with_duplicates(
    nodes: &mut [HarpNode],
    mut inbox: Vec<(NodeId, NodeId, HarpMessage)>,
) -> std::collections::BTreeSet<&'static str> {
    let mut covered = std::collections::BTreeSet::new();
    while let Some((from, to, msg)) = inbox.pop() {
        covered.insert(variant(&msg));
        let fx = nodes[to.index()].handle(from, msg.clone()).unwrap();
        let state_after = format!("{:?}", nodes[to.index()]);
        let dup = nodes[to.index()].handle(from, msg.clone()).unwrap();
        assert!(
            dup.messages.is_empty(),
            "duplicate {} re-delivered to {to} re-emitted messages: {:?}",
            variant(&msg),
            dup.messages
        );
        assert!(
            dup.schedule_ops.is_empty(),
            "duplicate {} re-delivered to {to} re-emitted schedule ops: {:?}",
            variant(&msg),
            dup.schedule_ops
        );
        assert_eq!(
            format!("{:?}", nodes[to.index()]),
            state_after,
            "duplicate {} re-delivered to {to} changed node state",
            variant(&msg)
        );
        inbox.extend(fx.messages.into_iter().map(|(t, m)| (to, t, m)));
    }
    covered
}

fn fresh_nodes(tree: &Tree, config: SlotframeConfig) -> Vec<HarpNode> {
    let mut nodes: Vec<HarpNode> = tree
        .nodes()
        .map(|v| HarpNode::new(tree, v, config, SchedulingPolicy::RateMonotonic))
        .collect();
    for (link, cells) in fig1_reqs(tree).iter() {
        let parent = tree.parent(link.child).unwrap();
        nodes[parent.index()].set_requirement(link.direction, link.child, cells);
    }
    nodes
}

#[test]
fn static_phase_handlers_are_idempotent() {
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let mut nodes = fresh_nodes(&tree, config);
    let mut inbox: Vec<(NodeId, NodeId, HarpMessage)> = Vec::new();
    for node in &mut nodes {
        let from = node.id();
        let fx = node.bootstrap().unwrap();
        inbox.extend(fx.messages.into_iter().map(|(to, m)| (from, to, m)));
    }
    let covered = drive_with_duplicates(&mut nodes, inbox);
    for want in ["PostInterface", "PostPartitions", "CellAssignment"] {
        assert!(
            covered.contains(want),
            "static phase never exercised {want}"
        );
    }
}

#[test]
fn dynamic_phase_handlers_are_idempotent() {
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let mut nodes = fresh_nodes(&tree, config);
    // Converge the static phase first (without duplicates).
    let mut inbox: Vec<(NodeId, NodeId, HarpMessage)> = Vec::new();
    for node in &mut nodes {
        let from = node.id();
        let fx = node.bootstrap().unwrap();
        inbox.extend(fx.messages.into_iter().map(|(to, m)| (from, to, m)));
    }
    while let Some((from, to, msg)) = inbox.pop() {
        let fx = nodes[to.index()].handle(from, msg).unwrap();
        inbox.extend(fx.messages.into_iter().map(|(t, m)| (to, t, m)));
    }
    // A large increase deep in the tree escalates through every ancestor,
    // exercising PUT intf, PUT part and fresh cell assignments; deliver the
    // whole cascade with duplicates.
    let parent = tree.parent(NodeId(9)).unwrap();
    let fx = nodes[parent.index()]
        .request_change(Direction::Up, NodeId(9), 8)
        .unwrap();
    let inbox: Vec<(NodeId, NodeId, HarpMessage)> = fx
        .messages
        .into_iter()
        .map(|(to, m)| (parent, to, m))
        .collect();
    let covered = drive_with_duplicates(&mut nodes, inbox);
    for want in ["PutInterface", "PutPartition", "CellAssignment"] {
        assert!(covered.contains(want), "adjustment never exercised {want}");
    }
}
