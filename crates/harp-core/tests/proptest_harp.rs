//! Property-based tests of the HARP invariants on randomly generated trees
//! and demands.
//!
//! The generators build arbitrary parent-pointer trees (each node's parent
//! is some earlier node) and arbitrary small per-link demands; the
//! properties assert the paper's claims hold universally, not just on the
//! canned examples:
//!
//! * composition composites contain all children, disjointly, with minimal
//!   slot extent bounds;
//! * partition allocation isolates every scheduling area;
//! * generated schedules are exclusive and demand-satisfying;
//! * dynamic adjustment preserves all of the above.

use harp_core::{
    adjust_partition, allocate_partitions, build_interfaces, compose_components,
    generate_schedule, is_feasible, unsatisfied_links, Requirements, ResourceComponent,
    SchedulingPolicy,
};
use packing::{all_disjoint, Rect};
use proptest::prelude::*;
use tsch_sim::{Direction, Link, NodeId, SlotframeConfig, Tree};

/// Arbitrary tree with `n` nodes: node i's parent is drawn from `0..i`.
fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    prop::collection::vec(0..1_000_000u32, 1..max_nodes).prop_map(|choices| {
        let mut pairs = Vec::with_capacity(choices.len());
        for (i, c) in choices.iter().enumerate() {
            let child = (i + 1) as u16;
            let parent = (c % (i as u32 + 1)) as u16;
            pairs.push((child, parent));
        }
        Tree::from_parents(&pairs)
    })
}

/// Arbitrary demands: every link gets 0..=3 cells in each direction.
fn reqs_strategy(tree: &Tree) -> impl Strategy<Value = Requirements> {
    let n = tree.len() - 1;
    prop::collection::vec((0u32..=3, 0u32..=3), n).prop_map(move |cells| {
        let mut reqs = Requirements::new();
        for (i, &(up, down)) in cells.iter().enumerate() {
            let child = NodeId((i + 1) as u16);
            reqs.set(Link::up(child), up);
            reqs.set(Link::down(child), down);
        }
        reqs
    })
}

fn tree_and_reqs(max_nodes: usize) -> impl Strategy<Value = (Tree, Requirements)> {
    tree_strategy(max_nodes).prop_flat_map(|tree| {
        let reqs = reqs_strategy(&tree);
        (Just(tree), reqs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn composition_contains_children_disjointly(
        comps in prop::collection::vec((1u32..=8, 1u32..=4), 1..10),
    ) {
        let children: Vec<(NodeId, ResourceComponent)> = comps
            .iter()
            .enumerate()
            .map(|(i, &(s, c))| (NodeId(i as u16), ResourceComponent::new(s, c)))
            .collect();
        let layout = compose_components(&children, 16, 1).unwrap();
        let composite = layout.composite();
        // (i) contains all children without overlap.
        let rects: Vec<Rect> = layout.placements().iter().map(|&(_, r)| r).collect();
        prop_assert!(all_disjoint(&rects));
        let bounds = Rect::from_xywh(0, 0, composite.slots, composite.channels);
        for &(_, r) in layout.placements() {
            prop_assert!(bounds.contains_rect(&r));
        }
        // (ii) the slot extent is minimal-feasible: at least the widest
        // child and at least the 16-channel area bound.
        let widest = comps.iter().map(|&(s, _)| s).max().unwrap();
        let area: u64 = comps.iter().map(|&(s, c)| u64::from(s) * u64::from(c)).sum();
        prop_assert!(composite.slots >= widest);
        prop_assert!(u64::from(composite.slots) >= area.div_ceil(16));
        // (iii) the channel budget is respected.
        prop_assert!(composite.channels <= 16);
    }

    #[test]
    fn pipeline_produces_exclusive_satisfying_schedules(
        (tree, reqs) in tree_and_reqs(24),
    ) {
        let config = SlotframeConfig::paper_default();
        let up = build_interfaces(&tree, &reqs, Direction::Up, config.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, config.channels).unwrap();
        let Ok(table) = allocate_partitions(&tree, &up, &down, config) else {
            // Overflow is a legal outcome for extreme demands; nothing to check.
            return Ok(());
        };
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        prop_assert!(schedule.is_exclusive());
        prop_assert!(unsatisfied_links(&tree, &reqs, &schedule).is_empty());
        // Exact allocation: no link holds more cells than required.
        for (link, cells) in reqs.iter() {
            prop_assert_eq!(schedule.cells_of(link).len(), cells as usize);
        }
    }

    #[test]
    fn scheduling_areas_are_isolated((tree, reqs) in tree_and_reqs(24)) {
        let config = SlotframeConfig::paper_default();
        let up = build_interfaces(&tree, &reqs, Direction::Up, config.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, config.channels).unwrap();
        let Ok(table) = allocate_partitions(&tree, &up, &down, config) else {
            return Ok(());
        };
        let mut areas = Vec::new();
        for d in Direction::BOTH {
            for v in tree.nodes() {
                if tree.is_leaf(v) {
                    continue;
                }
                if let Some(area) = table.scheduling_area(&tree, v, d) {
                    areas.push(area);
                }
            }
        }
        prop_assert!(all_disjoint(&areas));
    }

    #[test]
    fn adjustment_outcome_is_always_valid(
        widths in prop::collection::vec(1u32..=5, 2..8),
        grow_to in 1u32..=12,
        parent_w in 16u32..=30,
        parent_h in 1u32..=3,
    ) {
        // Lay siblings out in a row, then grow the first one.
        let mut children = Vec::new();
        let mut x = 0;
        for (i, &w) in widths.iter().enumerate() {
            children.push((NodeId(i as u16), Rect::from_xywh(x, 0, w, 1)));
            x += w;
        }
        prop_assume!(x <= parent_w);
        let parent = Rect::from_xywh(0, 0, parent_w, parent_h);
        let new_size = ResourceComponent::row(grow_to);
        match adjust_partition(parent, &children, NodeId(0), new_size).unwrap() {
            Some(outcome) => {
                let rects: Vec<Rect> = outcome
                    .layout
                    .iter()
                    .map(|&(_, r)| r)
                    .filter(|r| !r.is_empty())
                    .collect();
                prop_assert!(all_disjoint(&rects));
                for &(n, r) in &outcome.layout {
                    prop_assert!(parent.contains_rect(&r) || r.is_empty());
                    let expected = if n == NodeId(0) {
                        new_size.as_size()
                    } else {
                        children.iter().find(|(c, _)| *c == n).unwrap().1.size
                    };
                    prop_assert_eq!(r.size, expected);
                }
                // Unmoved children really did not move.
                for &(n, old) in &children {
                    if !outcome.moved.contains(&n) {
                        let now = outcome.layout.iter().find(|(c, _)| *c == n).unwrap().1;
                        prop_assert_eq!(now, old);
                    }
                }
            }
            None => {
                // The heuristic said no; the exact area bound must agree
                // that it is at least tight.
                let others: u64 = widths[1..].iter().map(|&w| u64::from(w)).sum();
                let needed = others + u64::from(grow_to);
                prop_assert!(
                    needed > u64::from(parent_w) * u64::from(parent_h)
                        || grow_to > parent_w,
                    "refused although area and width admit a packing: \
                     needed {needed}, capacity {}",
                    parent_w * parent_h
                );
            }
        }
    }

    #[test]
    fn feasibility_test_never_false_positive(
        comps in prop::collection::vec((1u32..=6, 1u32..=3), 1..8),
        pw in 1u32..=20,
        ph in 1u32..=4,
    ) {
        let components: Vec<ResourceComponent> = comps
            .iter()
            .map(|&(s, c)| ResourceComponent::new(s, c))
            .collect();
        let parent = ResourceComponent::new(pw, ph);
        if is_feasible(parent, &components).unwrap() {
            // A positive answer comes with an actual packing inside.
            let area: u64 = components.iter().map(|c| c.cell_count()).sum();
            prop_assert!(area <= parent.cell_count());
            for c in &components {
                prop_assert!(c.slots <= pw && c.channels <= ph);
            }
        }
    }

    #[test]
    fn interfaces_direct_component_matches_demand((tree, reqs) in tree_and_reqs(20)) {
        let set = build_interfaces(&tree, &reqs, Direction::Up, 16).unwrap();
        for v in tree.nodes() {
            if tree.is_leaf(v) {
                continue;
            }
            let direct = set
                .node(v)
                .interface
                .component(tree.link_layer(v))
                .expect("non-leaf nodes have a direct component");
            prop_assert_eq!(direct.slots, reqs.direct_total(&tree, v, Direction::Up));
            prop_assert!(direct.channels <= 1 || direct.slots == 0);
        }
    }
}
