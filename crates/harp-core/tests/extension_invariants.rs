//! Seeded randomized tests for the extension modules: channel-band
//! coexistence, latency analysis, and the verify checkers.

use harp_core::{
    allocate_partitions, build_interfaces, generate_schedule, latency_bound, verify_partitions,
    verify_schedule, verify_uplink_compliance, BandPlan, Requirements, SchedulingPolicy,
};
use tsch_sim::{Direction, Link, NodeId, Rate, SlotframeConfig, SplitMix64, Task, TaskId, Tree};

fn random_tree(rng: &mut SplitMix64, max_nodes: usize) -> Tree {
    let edges = 1 + rng.next_below(max_nodes as u64 - 1) as usize;
    let mut pairs = Vec::with_capacity(edges);
    for i in 0..edges {
        pairs.push(((i + 1) as u32, rng.next_below(i as u64 + 1) as u32));
    }
    Tree::from_parents(&pairs)
}

#[test]
fn band_plan_survives_random_adjustment_sequences() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0xBA_2D ^ case);
        let widths: Vec<u16> = (0..2 + rng.next_below(3))
            .map(|_| 1 + rng.next_below(4) as u16)
            .collect();
        let adjustments: Vec<(usize, u16)> = (0..1 + rng.next_below(11))
            .map(|_| (rng.next_below(5) as usize, 1 + rng.next_below(8) as u16))
            .collect();
        let Ok(mut plan) = BandPlan::allocate(&widths, 16) else {
            continue; // over-subscribed initial widths: nothing to test
        };
        for (idx, new_width) in adjustments {
            let idx = idx % widths.len();
            match plan.adjust(idx, new_width) {
                Ok(moved) => {
                    assert!(plan.is_isolated(), "case {case}");
                    assert_eq!(plan.band(idx).width, new_width, "case {case}");
                    // Every unmoved band is untouched by definition of the
                    // outcome; spot-check the isolation of all widths.
                    assert!(
                        moved.contains(&idx) || plan.band(idx).width == new_width,
                        "case {case}"
                    );
                }
                Err(_) => {
                    // A refusal must leave a consistent plan behind.
                    assert!(plan.is_isolated(), "case {case}");
                }
            }
        }
    }
}

#[test]
fn band_plan_never_exceeds_total() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0xBA_57 ^ case);
        let widths: Vec<u16> = (0..1 + rng.next_below(5))
            .map(|_| 1 + rng.next_below(6) as u16)
            .collect();
        let total: u32 = widths.iter().map(|&w| u32::from(w)).sum();
        let plan = BandPlan::allocate(&widths, 16);
        assert_eq!(plan.is_ok(), total <= 16, "case {case}");
        if let Ok(plan) = plan {
            assert!(plan.is_isolated(), "case {case}");
            assert_eq!(u32::from(plan.idle_channels()), 16 - total, "case {case}");
        }
    }
}

#[test]
fn static_allocations_pass_every_verifier() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0x5A_11 ^ case);
        let tree = random_tree(&mut rng, 20);
        let cfg = SlotframeConfig::paper_default();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
            reqs.set(Link::down(v), tree.subtree_size(v));
        }
        let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let Ok(table) = allocate_partitions(&tree, &up, &down, cfg) else {
            continue;
        };
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        assert!(
            verify_schedule(&tree, &reqs, &schedule).is_empty(),
            "case {case}"
        );
        assert!(verify_partitions(&tree, &table).is_empty(), "case {case}");
        assert!(
            verify_uplink_compliance(&tree, &table).is_empty(),
            "case {case}"
        );
    }
}

#[test]
fn compliant_schedules_bound_uplink_latency_by_one_frame_plus_wait() {
    // For a compliant static allocation, an uplink packet that releases
    // at slot 0 rides the frame in order: best case is under one frame.
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0x1A_7B ^ case);
        let tree = random_tree(&mut rng, 16);
        let cfg = SlotframeConfig::paper_default();
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), tree.subtree_size(v));
        }
        let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let Ok(table) = allocate_partitions(&tree, &up, &down, cfg) else {
            continue;
        };
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        for v in tree.nodes().skip(1) {
            let task = Task::uplink(TaskId(0), v, Rate::per_slotframe(1));
            let bound = latency_bound(&schedule, &tree, &task).unwrap();
            assert!(
                bound.best_case_slots <= u64::from(cfg.slots),
                "case {case}: {v}: best case {} exceeds a frame",
                bound.best_case_slots
            );
            // Worst case is bounded by two frames: missing the whole
            // compliant run costs exactly one extra frame.
            assert!(
                bound.worst_case_slots <= 2 * u64::from(cfg.slots),
                "case {case}: {v}: worst case {}",
                bound.worst_case_slots
            );
        }
    }
}

#[test]
fn latency_bound_monotone_in_depth_for_chains() {
    // On a chain with one cell per link in compliant order, the bound
    // grows with depth.
    for depth in 1u32..10 {
        let cfg = SlotframeConfig::paper_default();
        let pairs: Vec<(u32, u32)> = (1..=depth).map(|i| (i, i - 1)).collect();
        let tree = Tree::from_parents(&pairs);
        let mut reqs = Requirements::new();
        for v in tree.nodes().skip(1) {
            reqs.set(Link::up(v), 1);
        }
        let up = build_interfaces(&tree, &reqs, Direction::Up, cfg.channels).unwrap();
        let down = build_interfaces(&tree, &reqs, Direction::Down, cfg.channels).unwrap();
        let table = allocate_partitions(&tree, &up, &down, cfg).unwrap();
        let schedule =
            generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic).unwrap();
        let mut last = 0;
        for d in 1..=depth {
            let node = NodeId(d);
            let task = Task::uplink(TaskId(0), node, Rate::per_slotframe(1));
            let bound = latency_bound(&schedule, &tree, &task).unwrap();
            assert!(bound.best_case_slots >= last, "depth {depth}");
            last = bound.best_case_slots;
        }
    }
}
