//! Regression tests for the schedule-op sink: every pathway that mutates the
//! network's internal schedule — static phase, dynamic adjustments, topology
//! changes and global refreshes — must emit the matching [`ScheduleOp`]s, so
//! an embedding simulator replaying [`HarpNetwork::take_ops`] onto its own
//! [`NetworkSchedule`] stays in lockstep. (Earlier versions silently dropped
//! the ops of `join_leaf`/`leave_leaf`/`reparent_leaf` and `refresh`.)

use harp_core::{apply_op, HarpNetwork, Requirements, SchedulingPolicy};
use tsch_sim::{Link, NetworkSchedule, NodeId, SlotframeConfig, Tree};

fn fig1_reqs(tree: &Tree) -> Requirements {
    let mut reqs = Requirements::new();
    for v in tree.nodes().skip(1) {
        reqs.set(Link::up(v), 1);
        reqs.set(Link::down(v), 1);
    }
    reqs
}

fn assert_mirror_matches(net: &HarpNetwork, mirror: &NetworkSchedule, stage: &str) {
    let got: Vec<_> = mirror.iter_links().map(|(l, c)| (l, c.to_vec())).collect();
    let want: Vec<_> = net
        .schedule()
        .iter_links()
        .map(|(l, c)| (l, c.to_vec()))
        .collect();
    assert_eq!(got, want, "external mirror diverged after {stage}");
}

#[test]
fn every_mutation_pathway_emits_mirrorable_ops() {
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let reqs = fig1_reqs(&tree);
    let mut net = HarpNetwork::new(tree, config, &reqs, SchedulingPolicy::RateMonotonic);
    let mut mirror = NetworkSchedule::new(config);

    let replay = |net: &mut HarpNetwork, mirror: &mut NetworkSchedule, stage: &str| {
        for op in net.take_ops() {
            apply_op(mirror, &op).unwrap();
        }
        assert_mirror_matches(net, mirror, stage);
    };

    // Static phase via bootstrap + drain (the op-returning path).
    let boot_ops = net.bootstrap().unwrap();
    for op in &boot_ops {
        apply_op(&mut mirror, op).unwrap();
    }
    net.run_until_quiescent().unwrap();
    replay(&mut net, &mut mirror, "static phase");

    // Dynamic adjustment (multi-hop escalation).
    net.adjust_and_settle(net.now(), Link::up(NodeId(9)), 4)
        .unwrap();
    replay(&mut net, &mut mirror, "adjust_and_settle");

    // A leaf joins with fresh demand.
    let (joined, _) = net.join_leaf(net.now(), NodeId(7), 2, 1).unwrap();
    replay(&mut net, &mut mirror, "join_leaf");

    // A leaf reparents (release at the old parent, re-grant at the new).
    net.reparent_leaf(net.now(), joined, NodeId(8)).unwrap();
    replay(&mut net, &mut mirror, "reparent_leaf");

    // A leaf leaves (its cells are released).
    net.leave_leaf(net.now(), joined).unwrap();
    replay(&mut net, &mut mirror, "leave_leaf");

    // Global refresh rebuilds the whole layout; the sink must release the
    // old cells before re-assigning, or the mirror replay double-books.
    let (_, moved) = net.refresh().unwrap();
    replay(&mut net, &mut mirror, "refresh");
    assert!(net.quiescent());
    let _ = moved;
}

#[test]
fn run_static_clears_the_sink_for_lockstep_embedding() {
    // Lockstep callers clone the post-static schedule as their mirror seed;
    // a stale static-phase op replayed afterwards would double-assign.
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::paper_default();
    let reqs = fig1_reqs(&tree);
    let mut net = HarpNetwork::new(tree, config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();
    assert!(net.take_ops().is_empty());
}
