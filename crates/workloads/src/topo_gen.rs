//! Seeded random tree-topology generation.
//!
//! The paper's simulation studies use batches of random topologies with a
//! fixed node count and layer count ("100 network topologies with 5 layers
//! and 50 nodes", §VII-A; "81 nodes and 10 layers", §VII-B). The generator
//! here reproduces that: it first lays a backbone chain that realises the
//! requested depth, then attaches the remaining nodes to uniformly chosen
//! parents whose depth leaves room within the layer bound.

use tsch_sim::{SplitMix64, Tree, TreeBuilder};

/// Parameters for random tree generation.
///
/// # Examples
///
/// ```
/// use workloads::TopologyConfig;
///
/// let cfg = TopologyConfig { nodes: 50, layers: 5, max_children: 8 };
/// let tree = cfg.generate(42);
/// assert_eq!(tree.len(), 50);
/// assert_eq!(tree.layers(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyConfig {
    /// Total number of nodes including the gateway.
    pub nodes: u16,
    /// Exact depth of the tree (the maximum link layer).
    pub layers: u32,
    /// Upper bound on children per node (keeps trees realistic; use a large
    /// value for unconstrained growth).
    pub max_children: usize,
}

impl TopologyConfig {
    /// The paper's Fig. 11 simulation setting: 50 nodes, 5 layers.
    #[must_use]
    pub const fn paper_50_node() -> Self {
        Self {
            nodes: 50,
            layers: 5,
            max_children: 8,
        }
    }

    /// The paper's Fig. 12 setting: 81 nodes, 10 layers.
    #[must_use]
    pub const fn paper_81_node() -> Self {
        Self {
            nodes: 81,
            layers: 10,
            max_children: 8,
        }
    }

    /// Generates a random tree for this configuration.
    ///
    /// The same `(config, seed)` pair always produces the same tree.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unsatisfiable: fewer than `layers + 1`
    /// nodes, zero layers with more than one node, or more nodes than
    /// `max_children` allows.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Tree {
        crate::obs::TOPOLOGIES_GENERATED.add(1);
        assert!(
            u32::from(self.nodes) > self.layers,
            "need more than {} nodes for {} layers",
            self.layers,
            self.layers
        );
        assert!(
            self.layers > 0 || self.nodes == 1,
            "multi-node trees need layers"
        );
        let mut rng = SplitMix64::new(seed);
        let mut builder = TreeBuilder::new();
        let mut depth = vec![0u32];
        let mut child_count = vec![0usize];

        // Backbone: a chain realising the exact depth.
        let mut tip = builder.root();
        for _ in 0..self.layers {
            let node = builder.add_child(tip).expect("tip exists");
            depth.push(depth[tip.index()] + 1);
            child_count.push(0);
            child_count[tip.index()] += 1;
            tip = node;
        }

        // Attach the rest to random eligible parents.
        while builder.len() < usize::from(self.nodes) {
            let eligible: Vec<usize> = (0..builder.len())
                .filter(|&i| depth[i] < self.layers && child_count[i] < self.max_children)
                .collect();
            assert!(
                !eligible.is_empty(),
                "max_children {} too small for {} nodes",
                self.max_children,
                self.nodes
            );
            let parent_idx = eligible[rng.next_below(eligible.len() as u64) as usize];
            let parent = tsch_sim::NodeId(parent_idx as u16);
            builder.add_child(parent).expect("parent exists");
            depth.push(depth[parent_idx] + 1);
            child_count.push(0);
            child_count[parent_idx] += 1;
        }
        builder.build()
    }

    /// Generates a batch of `count` independent topologies derived from one
    /// base seed (topology *i* uses `seed + i`).
    #[must_use]
    pub fn generate_batch(&self, seed: u64, count: usize) -> Vec<Tree> {
        (0..count)
            .map(|i| self.generate(seed.wrapping_add(i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_node_and_layer_counts() {
        for seed in 0..20 {
            let tree = TopologyConfig::paper_50_node().generate(seed);
            assert_eq!(tree.len(), 50);
            assert_eq!(tree.layers(), 5, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TopologyConfig {
            nodes: 30,
            layers: 4,
            max_children: 6,
        };
        assert_eq!(cfg.generate(7), cfg.generate(7));
        assert_ne!(cfg.generate(7), cfg.generate(8));
    }

    #[test]
    fn respects_max_children() {
        let cfg = TopologyConfig {
            nodes: 40,
            layers: 3,
            max_children: 4,
        };
        let tree = cfg.generate(3);
        for v in tree.nodes() {
            assert!(tree.children(v).len() <= 4);
        }
    }

    #[test]
    fn batch_is_seed_indexed() {
        let cfg = TopologyConfig::paper_50_node();
        let batch = cfg.generate_batch(100, 5);
        assert_eq!(batch.len(), 5);
        assert_eq!(batch[2], cfg.generate(102));
    }

    #[test]
    fn eighty_one_node_ten_layer() {
        let tree = TopologyConfig::paper_81_node().generate(1);
        assert_eq!(tree.len(), 81);
        assert_eq!(tree.layers(), 10);
    }

    #[test]
    fn minimal_chain() {
        let cfg = TopologyConfig {
            nodes: 4,
            layers: 3,
            max_children: 2,
        };
        let tree = cfg.generate(0);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.layers(), 3);
    }

    #[test]
    #[should_panic(expected = "need more than")]
    fn too_few_nodes_panics() {
        let _ = TopologyConfig {
            nodes: 3,
            layers: 5,
            max_children: 4,
        }
        .generate(0);
    }

    #[test]
    fn every_layer_is_populated() {
        let tree = TopologyConfig::paper_81_node().generate(9);
        for d in 0..=10 {
            assert!(!tree.nodes_at_depth(d).is_empty(), "depth {d} empty");
        }
    }
}
