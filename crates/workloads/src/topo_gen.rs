//! Seeded random tree-topology generation.
//!
//! The paper's simulation studies use batches of random topologies with a
//! fixed node count and layer count ("100 network topologies with 5 layers
//! and 50 nodes", §VII-A; "81 nodes and 10 layers", §VII-B). The generator
//! here reproduces that: it first lays a backbone chain that realises the
//! requested depth, then attaches the remaining nodes to uniformly chosen
//! parents whose depth leaves room within the layer bound.

use tsch_sim::{SplitMix64, Tree, TreeBuilder};

/// An order-statistics set over node indices: membership toggles and
/// "k-th smallest member" queries in `O(log n)` via a Fenwick tree.
///
/// [`TopologyConfig::generate`] draws a uniform eligible parent per
/// attached node; rebuilding the eligible list per draw is `O(n)` and made
/// generation quadratic, which matters for the 100k+-node scale
/// topologies. Selecting the k-th member of this set is draw-for-draw
/// identical to indexing that list, so trees are unchanged.
struct EligibleSet {
    /// 1-based Fenwick array over the *full* capacity (so membership can
    /// be added incrementally without re-aggregating prefix ranges).
    fenwick: Vec<i64>,
    member: Vec<bool>,
    count: u64,
}

impl EligibleSet {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            fenwick: vec![0; capacity + 1],
            member: Vec::with_capacity(capacity),
            count: 0,
        }
    }

    fn add(&mut self, index: usize, delta: i64) {
        let mut pos = index + 1;
        while pos < self.fenwick.len() {
            self.fenwick[pos] += delta;
            pos += pos & pos.wrapping_neg();
        }
    }

    /// Appends the next index with the given membership.
    fn push(&mut self, eligible: bool) {
        let index = self.member.len();
        assert!(index + 1 < self.fenwick.len(), "capacity exceeded");
        self.member.push(eligible);
        if eligible {
            self.count += 1;
            self.add(index, 1);
        }
    }

    /// Sets an existing index's membership.
    fn set(&mut self, index: usize, eligible: bool) {
        if self.member[index] != eligible {
            self.member[index] = eligible;
            if eligible {
                self.count += 1;
                self.add(index, 1);
            } else {
                self.count -= 1;
                self.add(index, -1);
            }
        }
    }

    fn count(&self) -> u64 {
        self.count
    }

    /// Index of the `k`-th member (0-based, in increasing index order).
    fn kth(&self, k: u64) -> usize {
        debug_assert!(k < self.count);
        let target = i64::try_from(k + 1).expect("member count fits i64");
        let mut pos = 0usize;
        let mut remaining = target;
        let mut step = (self.fenwick.len() - 1).next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next < self.fenwick.len() && self.fenwick[next] < remaining {
                remaining -= self.fenwick[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // largest 1-based prefix below the target, i.e. the 0-based answer
    }
}

/// Parameters for random tree generation.
///
/// # Examples
///
/// ```
/// use workloads::TopologyConfig;
///
/// let cfg = TopologyConfig { nodes: 50, layers: 5, max_children: 8 };
/// let tree = cfg.generate(42);
/// assert_eq!(tree.len(), 50);
/// assert_eq!(tree.layers(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyConfig {
    /// Total number of nodes including the gateway.
    pub nodes: u32,
    /// Exact depth of the tree (the maximum link layer).
    pub layers: u32,
    /// Upper bound on children per node (keeps trees realistic; use a large
    /// value for unconstrained growth).
    pub max_children: usize,
}

impl TopologyConfig {
    /// The paper's Fig. 11 simulation setting: 50 nodes, 5 layers.
    #[must_use]
    pub const fn paper_50_node() -> Self {
        Self {
            nodes: 50,
            layers: 5,
            max_children: 8,
        }
    }

    /// The paper's Fig. 12 setting: 81 nodes, 10 layers.
    #[must_use]
    pub const fn paper_81_node() -> Self {
        Self {
            nodes: 81,
            layers: 10,
            max_children: 8,
        }
    }

    /// Generates a random tree for this configuration.
    ///
    /// The same `(config, seed)` pair always produces the same tree.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unsatisfiable: fewer than `layers + 1`
    /// nodes, zero layers with more than one node, or more nodes than
    /// `max_children` allows.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Tree {
        crate::obs::TOPOLOGIES_GENERATED.add(1);
        assert!(
            self.nodes > self.layers,
            "need more than {} nodes for {} layers",
            self.layers,
            self.layers
        );
        assert!(
            self.layers > 0 || self.nodes == 1,
            "multi-node trees need layers"
        );
        let mut rng = SplitMix64::new(seed);
        let mut builder = TreeBuilder::new();
        let mut depth = vec![0u32];
        let mut child_count = vec![0usize];
        // A node is an eligible parent while its depth leaves room within
        // the layer bound and it has child capacity left. The set tracks
        // exactly the list the former O(n) rebuild produced, so each
        // `kth(next_below(count))` draw picks the same parent.
        let mut eligible = EligibleSet::with_capacity(self.nodes as usize);
        let is_eligible =
            |depth: u32, children: usize| depth < self.layers && children < self.max_children;
        eligible.push(is_eligible(0, 0));

        // Backbone: a chain realising the exact depth.
        let mut tip = builder.root();
        for _ in 0..self.layers {
            let node = builder.add_child(tip).expect("tip exists");
            depth.push(depth[tip.index()] + 1);
            child_count.push(0);
            child_count[tip.index()] += 1;
            eligible.set(
                tip.index(),
                is_eligible(depth[tip.index()], child_count[tip.index()]),
            );
            eligible.push(is_eligible(depth[node.index()], 0));
            tip = node;
        }

        // Attach the rest to random eligible parents.
        while builder.len() < self.nodes as usize {
            assert!(
                eligible.count() > 0,
                "max_children {} too small for {} nodes",
                self.max_children,
                self.nodes
            );
            let parent_idx = eligible.kth(rng.next_below(eligible.count()));
            let parent = tsch_sim::NodeId(parent_idx as u32);
            builder.add_child(parent).expect("parent exists");
            depth.push(depth[parent_idx] + 1);
            child_count.push(0);
            child_count[parent_idx] += 1;
            eligible.set(
                parent_idx,
                is_eligible(depth[parent_idx], child_count[parent_idx]),
            );
            eligible.push(is_eligible(*depth.last().unwrap(), 0));
        }
        builder.build()
    }

    /// Generates a batch of `count` independent topologies derived from one
    /// base seed (topology *i* uses `seed + i`).
    #[must_use]
    pub fn generate_batch(&self, seed: u64, count: usize) -> Vec<Tree> {
        (0..count)
            .map(|i| self.generate(seed.wrapping_add(i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-Fenwick generator: rebuilds the eligible list per draw.
    /// Kept verbatim as the semantic reference for draw-for-draw identity.
    fn naive_generate(cfg: &TopologyConfig, seed: u64) -> Tree {
        let mut rng = SplitMix64::new(seed);
        let mut builder = TreeBuilder::new();
        let mut depth = vec![0u32];
        let mut child_count = vec![0usize];
        let mut tip = builder.root();
        for _ in 0..cfg.layers {
            let node = builder.add_child(tip).expect("tip exists");
            depth.push(depth[tip.index()] + 1);
            child_count.push(0);
            child_count[tip.index()] += 1;
            tip = node;
        }
        while builder.len() < cfg.nodes as usize {
            let eligible: Vec<usize> = (0..builder.len())
                .filter(|&i| depth[i] < cfg.layers && child_count[i] < cfg.max_children)
                .collect();
            let parent_idx = eligible[rng.next_below(eligible.len() as u64) as usize];
            let parent = tsch_sim::NodeId(parent_idx as u32);
            builder.add_child(parent).expect("parent exists");
            depth.push(depth[parent_idx] + 1);
            child_count.push(0);
            child_count[parent_idx] += 1;
        }
        builder.build()
    }

    #[test]
    fn fenwick_generator_is_draw_identical_to_naive() {
        let configs = [
            TopologyConfig::paper_50_node(),
            TopologyConfig::paper_81_node(),
            TopologyConfig {
                nodes: 200,
                layers: 7,
                max_children: 3,
            },
            TopologyConfig {
                nodes: 4,
                layers: 3,
                max_children: 2,
            },
        ];
        for cfg in configs {
            for seed in 0..10 {
                assert_eq!(
                    cfg.generate(seed),
                    naive_generate(&cfg, seed),
                    "{cfg:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn eligible_set_selects_kth_member() {
        let mut set = EligibleSet::with_capacity(10);
        for i in 0..10 {
            set.push(i % 2 == 0); // members: 0, 2, 4, 6, 8
        }
        assert_eq!(set.count(), 5);
        for (k, expect) in [(0, 0), (1, 2), (2, 4), (3, 6), (4, 8)] {
            assert_eq!(set.kth(k), expect);
        }
        set.set(4, false);
        set.set(5, true);
        assert_eq!(set.count(), 5);
        assert_eq!(set.kth(2), 5);
        set.set(5, true); // idempotent
        assert_eq!(set.count(), 5);
    }

    #[test]
    fn exact_node_and_layer_counts() {
        for seed in 0..20 {
            let tree = TopologyConfig::paper_50_node().generate(seed);
            assert_eq!(tree.len(), 50);
            assert_eq!(tree.layers(), 5, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TopologyConfig {
            nodes: 30,
            layers: 4,
            max_children: 6,
        };
        assert_eq!(cfg.generate(7), cfg.generate(7));
        assert_ne!(cfg.generate(7), cfg.generate(8));
    }

    #[test]
    fn respects_max_children() {
        let cfg = TopologyConfig {
            nodes: 40,
            layers: 3,
            max_children: 4,
        };
        let tree = cfg.generate(3);
        for v in tree.nodes() {
            assert!(tree.children(v).len() <= 4);
        }
    }

    #[test]
    fn batch_is_seed_indexed() {
        let cfg = TopologyConfig::paper_50_node();
        let batch = cfg.generate_batch(100, 5);
        assert_eq!(batch.len(), 5);
        assert_eq!(batch[2], cfg.generate(102));
    }

    #[test]
    fn eighty_one_node_ten_layer() {
        let tree = TopologyConfig::paper_81_node().generate(1);
        assert_eq!(tree.len(), 81);
        assert_eq!(tree.layers(), 10);
    }

    #[test]
    fn minimal_chain() {
        let cfg = TopologyConfig {
            nodes: 4,
            layers: 3,
            max_children: 2,
        };
        let tree = cfg.generate(0);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.layers(), 3);
    }

    #[test]
    #[should_panic(expected = "need more than")]
    fn too_few_nodes_panics() {
        let _ = TopologyConfig {
            nodes: 3,
            layers: 5,
            max_children: 4,
        }
        .generate(0);
    }

    #[test]
    fn every_layer_is_populated() {
        let tree = TopologyConfig::paper_81_node().generate(9);
        for d in 0..=10 {
            assert!(!tree.nodes_at_depth(d).is_empty(), "depth {d} empty");
        }
    }
}
