//! The parsed scenario tree — plain data, no behaviour beyond defaults.
//!
//! Every field mirrors one grammar directive (see the [module
//! docs](super)); the compile helpers in [`super::compile`] lower these
//! specs onto simulator types.

use tsch_sim::Rate;

/// A fully parsed scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name from the `scenario <name>` preamble line.
    pub name: String,
    /// Base seed for every random process (`seed`, default 0). Runner
    /// flags may override it.
    pub seed: u64,
    /// Data-plane run length in slotframes (`frames`, default 100).
    pub frames: u64,
    /// `[topology]` section.
    pub topology: TopologySpec,
    /// `[scheduler]` section.
    pub scheduler: SchedulerSpec,
    /// `[workloads]` section.
    pub workload: WorkloadSpec,
    /// `[faults]` section, in file order.
    pub faults: Vec<FaultSpec>,
    /// `[report]` section.
    pub report: ReportSpec,
}

/// How the routing tree (or batch of trees) is obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// The 50-node testbed layout ([`crate::testbed_50_node_tree`]).
    Testbed50,
    /// The paper's Fig. 1 example tree.
    Fig1,
    /// Seeded random trees from [`crate::TopologyConfig`].
    Random {
        /// Nodes per tree (default 50).
        nodes: u32,
        /// Maximum layers (default 5).
        layers: u32,
        /// Maximum children per node (default 8).
        max_children: usize,
        /// Batch seed (`generate_batch`).
        seed: u64,
        /// Trees in the batch (default 1).
        count: usize,
        /// Batch size under `--quick` (default = `count`).
        quick_count: usize,
    },
    /// Explicit `link <child> <parent>` lines, in file order.
    Explicit(Vec<(u32, u32)>),
}

/// Slotframe geometry and the control channel's quality sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerSpec {
    /// Slots per slotframe (default 199, the paper's).
    pub slots: u32,
    /// Channel offsets (default 16).
    pub channels: u16,
    /// Control-plane PDR points; a sweep for `pdr_sweep` reports
    /// (default `[1.0]`, the ideal channel).
    pub control_pdrs: Vec<f64>,
}

impl Default for SchedulerSpec {
    fn default() -> Self {
        Self {
            slots: 199,
            channels: 16,
            control_pdrs: vec![1.0],
        }
    }
}

/// How link demand (and the data-plane task set) is derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandModel {
    /// One echo task per node at `rate`; link demand aggregates subtree
    /// traffic in both directions ([`crate::aggregated_echo_requirements`]).
    Echo(Rate),
    /// Every link demands a flat `cells`
    /// ([`crate::uniform_link_requirements`]).
    Uniform(u32),
}

/// Idle headroom cells padded onto one node's path at the static phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Headroom {
    /// The node whose root path is padded.
    pub node: u32,
    /// Extra cells per path link, both directions.
    pub cells: u32,
}

/// One runtime rate change of a node's task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateStep {
    /// The node whose task steps.
    pub node: u32,
    /// Slotframe at which the new rate takes effect.
    pub at_frame: u64,
    /// The new rate.
    pub rate: Rate,
}

/// A directed-link selector usable before the tree is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSel {
    /// `up:<node>` — the node's uplink.
    Up(u32),
    /// `down:<node>` — the node's downlink.
    Down(u32),
    /// `deepest` — the uplink of the first node at the deepest populated
    /// layer (resolved per tree).
    Deepest,
}

/// `[workloads]` — demand model plus the dynamic event streams.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Demand model (default `demand echo rate=1`).
    pub demand: DemandModel,
    /// Optional static-phase headroom padding.
    pub headroom: Option<Headroom>,
    /// Task rate steps, in file order.
    pub rate_steps: Vec<RateStep>,
    /// Control-plane demand adjustments (`adjustments`/`pdr_sweep`
    /// events), in file order.
    pub demand_steps: Vec<DemandStep>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            demand: DemandModel::Echo(Rate::per_slotframe(1)),
            headroom: None,
            rate_steps: Vec::new(),
            demand_steps: Vec::new(),
        }
    }
}

/// One control-plane demand adjustment: raise a link's demand by `delta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandStep {
    /// The adjusted link.
    pub link: LinkSel,
    /// Cells added on top of the link's modelled demand.
    pub delta: u32,
}

/// One fault directive. The data-plane kinds lower onto
/// [`tsch_sim::FaultPlan`] actions at exact ASNs; `Reparent` is
/// control-plane churn consumed by the `churn` report driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// `crash node=N at_frame=F [restart_frame=G]`
    Crash {
        /// Crashed node.
        node: u32,
        /// Slotframe the crash fires at.
        at_frame: u64,
        /// Optional restart slotframe (strictly after `at_frame`).
        restart_frame: Option<u64>,
    },
    /// `gateway_failover at_frame=F frames=D` — the root goes dark for
    /// `frames` slotframes.
    GatewayFailover {
        /// Slotframe the gateway goes down.
        at_frame: u64,
        /// Outage length in slotframes.
        frames: u64,
    },
    /// `pdr_window link=L from_frame=F frames=D pdr=P` — degrade one
    /// link's PDR over a window, restoring afterwards.
    PdrWindow {
        /// Degraded link.
        link: LinkSel,
        /// Window start slotframe.
        from_frame: u64,
        /// Window length in slotframes.
        frames: u64,
        /// Degraded PDR in `[0, 1]`.
        pdr: f64,
    },
    /// `partition subtree=N at_frame=F frames=D` — cut the subtree rooted
    /// at `N` off the network for a window (both cut-crossing links).
    Partition {
        /// Subtree root (non-gateway).
        subtree: u32,
        /// Window start slotframe.
        at_frame: u64,
        /// Window length in slotframes.
        frames: u64,
    },
    /// `burst node=N at_frame=F packets=K` — release `K` extra packets
    /// of the node's task at an exact slotframe boundary.
    Burst {
        /// Bursting node (non-gateway).
        node: u32,
        /// Slotframe of the burst.
        at_frame: u64,
        /// Extra packets released.
        packets: u32,
    },
    /// `reparent node=N to=M at_frame=F` — mobile-node churn: leaf `N`
    /// re-attaches under `M` (control plane; `churn` reports).
    Reparent {
        /// The moving leaf.
        node: u32,
        /// Its new parent.
        to: u32,
        /// Slotframe of the move.
        at_frame: u64,
    },
}

/// What the runner executes and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportMode {
    /// Lockstep control+data planes; per-slotframe latency rows of one
    /// observed node (the Fig. 10 shape).
    Timeline {
        /// Observed node.
        node: u32,
    },
    /// Control-plane PDR sweep over the scheduler's `control_pdr` list
    /// (the mgmt-loss shape).
    PdrSweep,
    /// One row per `demand_step` adjustment (the Table II shape).
    Adjustments,
    /// Fault-driven data-plane replicates: `repeats` independently seeded
    /// runs of the same scenario, one row each.
    Replicates {
        /// Number of replicate runs.
        repeats: u32,
    },
    /// Sequential control-plane churn: one row per fault/demand event.
    Churn,
}

/// `[report]` — output file and mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSpec {
    /// `BENCH_*.json` file written at the workspace root (omit to print
    /// only).
    pub file: Option<String>,
    /// Report mode (default `replicates repeats=1`).
    pub mode: ReportMode,
}

impl Default for ReportSpec {
    fn default() -> Self {
        Self {
            file: None,
            mode: ReportMode::Replicates { repeats: 1 },
        }
    }
}
