//! Declarative scenario DSL: experiments as data files.
//!
//! A scenario file is a zero-dependency, line-oriented description of one
//! experiment — topology, slotframe, workload, fault schedule and report
//! shape — hand-parsed like the in-tree JSON writer (no serde). The
//! checked-in files under `scenarios/` replace what used to be bespoke
//! experiment binaries; `harp_sim --scenario <file>` replays any of them
//! byte-identically for a given seed (see `DESIGN.md` §14 for the grammar
//! and determinism rules).
//!
//! ```text
//! # Comments run to end of line; blank lines are ignored.
//! scenario fig10_dynamic        # preamble: name, seed, frames
//! seed 0xF10
//! frames 100
//!
//! [topology]                    # generator testbed50 | fig1 |
//! generator testbed50           #   random count=10 quick_count=2 seed=0x10EF
//!                               # or explicit `link <child> <parent>` lines
//! [scheduler]
//! slots 199
//! channels 16
//! control_pdr 1.0 0.99 0.9      # sweep list for pdr_sweep reports
//!
//! [workloads]
//! demand echo rate=1            # or: demand uniform cells=1
//! headroom node=15 cells=1
//! rate_step node=15 at_frame=30 rate=3/2
//! demand_step link=up:5 delta=3 # or link=deepest
//!
//! [faults]
//! crash node=7 at_frame=10 restart_frame=20
//! gateway_failover at_frame=15 frames=5
//! pdr_window link=up:9 from_frame=10 frames=10 pdr=0.5
//! partition subtree=3 at_frame=12 frames=6
//! burst node=21 at_frame=8 packets=20
//! reparent node=45 to=2 at_frame=25
//!
//! [report]
//! file BENCH_fig10.json
//! mode timeline node=15         # | pdr_sweep | adjustments |
//! ```                           #   replicates repeats=4 | churn
//!
//! [`parse_scenario`] turns the text into a [`Scenario`] or a
//! [`ScenarioError`] carrying the offending line and column; the compile
//! helpers on [`Scenario`] lower it onto the simulator's types
//! ([`tsch_sim::FaultPlan`], [`tsch_sim::Tree`], task ids).

mod ast;
mod compile;
mod parse;

pub use ast::{
    DemandModel, DemandStep, FaultSpec, Headroom, LinkSel, RateStep, ReportMode, ReportSpec,
    Scenario, SchedulerSpec, TopologySpec, WorkloadSpec,
};
pub use compile::DemandStepEvent;
pub use parse::{parse_scenario, ScenarioError};
