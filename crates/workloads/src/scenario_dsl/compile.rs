//! Lowering a parsed [`Scenario`] onto simulator types: trees, slotframe
//! config, requirements, task sets and the exact-ASN [`FaultPlan`].
//!
//! Frame-denominated directives lower as `asn = frame * slots`, i.e. the
//! top of the named slotframe, so a fault at `at_frame=F` governs frame
//! `F`'s releases (the engine drains due faults before boundary work).
//! `reparent` is control-plane churn and never enters the data-plane plan;
//! the `churn` report driver consumes it from [`Scenario::faults`]
//! directly.

use super::ast::{DemandModel, FaultSpec, LinkSel, Scenario, TopologySpec};
use crate::{
    aggregated_echo_requirements, echo_task_per_node, task_id_of, testbed_50_node_tree,
    uniform_link_requirements, uplink_task_per_node, TopologyConfig,
};
use tsch_sim::{Asn, FaultAction, FaultPlan, Link, NodeId, Rate, SlotframeConfig, Task, Tree};

/// A [`super::DemandStep`] resolved against a concrete tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandStepEvent {
    /// The adjusted directed link.
    pub link: Link,
    /// Cells added on top of the link's modelled demand.
    pub delta: u32,
}

impl LinkSel {
    /// Resolves the selector against a tree.
    ///
    /// `deepest` picks the uplink of the first node at the deepest
    /// populated layer (the management-loss experiment's victim rule).
    ///
    /// # Errors
    ///
    /// A message naming the selector when the node is outside the tree,
    /// is the gateway, or (for `deepest`) the tree has a single node.
    pub fn resolve(self, tree: &Tree) -> Result<Link, String> {
        let node = |n: u32| -> Result<NodeId, String> {
            let id = NodeId(n);
            if id.index() >= tree.len() {
                return Err(format!("link selector names node {n} outside the tree"));
            }
            if id == tree.root() {
                return Err(format!("link selector names the gateway (node {n})"));
            }
            Ok(id)
        };
        match self {
            LinkSel::Up(n) => Ok(Link::up(node(n)?)),
            LinkSel::Down(n) => Ok(Link::down(node(n)?)),
            LinkSel::Deepest => (1..=tree.layers())
                .rev()
                .find_map(|d| tree.nodes_at_depth(d).first().copied())
                .map(Link::up)
                .ok_or_else(|| "`deepest` needs a tree with at least one non-root node".into()),
        }
    }
}

impl Scenario {
    /// The slotframe geometry from the `[scheduler]` section.
    ///
    /// # Errors
    ///
    /// A message when the slot/channel combination is rejected by
    /// [`SlotframeConfig::new`].
    pub fn slotframe_config(&self) -> Result<SlotframeConfig, String> {
        SlotframeConfig::new(self.scheduler.slots, self.scheduler.channels, 10_000)
            .map_err(|e| format!("invalid scheduler geometry: {e}"))
    }

    /// Builds the scenario's tree batch. `quick` selects the random
    /// generator's `quick_count`; the fixed topologies always yield one
    /// tree.
    #[must_use]
    pub fn trees(&self, quick: bool) -> Vec<Tree> {
        match &self.topology {
            TopologySpec::Testbed50 => vec![testbed_50_node_tree()],
            TopologySpec::Fig1 => vec![Tree::paper_fig1_example()],
            TopologySpec::Random {
                nodes,
                layers,
                max_children,
                seed,
                count,
                quick_count,
            } => {
                let cfg = TopologyConfig {
                    nodes: *nodes,
                    layers: *layers,
                    max_children: *max_children,
                };
                cfg.generate_batch(*seed, if quick { *quick_count } else { *count })
            }
            TopologySpec::Explicit(links) => vec![Tree::from_parents(links)],
        }
    }

    /// Per-link cell demand under the scenario's demand model.
    #[must_use]
    pub fn requirements(&self, tree: &Tree) -> harp_core::Requirements {
        match self.workload.demand {
            DemandModel::Echo(rate) => aggregated_echo_requirements(tree, rate),
            DemandModel::Uniform(cells) => uniform_link_requirements(tree, cells),
        }
    }

    /// The data-plane task set matching [`Scenario::requirements`]: echo
    /// tasks at the demand rate, or (for uniform demand) one
    /// packet-per-frame uplink task per node as monitoring traffic.
    #[must_use]
    pub fn tasks(&self, tree: &Tree) -> Vec<Task> {
        match self.workload.demand {
            DemandModel::Echo(rate) => echo_task_per_node(tree, rate),
            DemandModel::Uniform(_) => uplink_task_per_node(tree, Rate::per_slotframe(1)),
        }
    }

    /// Resolves every `demand_step` against a tree, in file order.
    ///
    /// # Errors
    ///
    /// The first selector that does not resolve (see [`LinkSel::resolve`]).
    pub fn demand_step_events(&self, tree: &Tree) -> Result<Vec<DemandStepEvent>, String> {
        self.workload
            .demand_steps
            .iter()
            .map(|s| {
                Ok(DemandStepEvent {
                    link: s.link.resolve(tree)?,
                    delta: s.delta,
                })
            })
            .collect()
    }

    /// Lowers the data-plane fault directives onto an exact-ASN
    /// [`FaultPlan`] for `tree` (see the module docs for the frame → ASN
    /// rule). `reparent` directives are validated but excluded — they are
    /// control-plane churn.
    ///
    /// # Errors
    ///
    /// A message naming the first directive whose node, link or task does
    /// not exist in `tree` (bursts need a task, so they require a node the
    /// demand model generates traffic for).
    pub fn data_fault_plan(&self, tree: &Tree) -> Result<FaultPlan, String> {
        let slots = u64::from(self.scheduler.slots);
        let asn = |frame: u64| Asn(frame * slots);
        let node = |n: u32, what: &str| -> Result<NodeId, String> {
            let id = NodeId(n);
            if id.index() >= tree.len() {
                return Err(format!("`{what}` names node {n} outside the tree"));
            }
            Ok(id)
        };
        let mut plan = FaultPlan::new();
        for fault in &self.faults {
            match *fault {
                FaultSpec::Crash {
                    node: n,
                    at_frame,
                    restart_frame,
                } => {
                    plan = plan.crash(node(n, "crash")?, asn(at_frame), restart_frame.map(asn));
                }
                FaultSpec::GatewayFailover { at_frame, frames } => {
                    plan = plan.crash(tree.root(), asn(at_frame), Some(asn(at_frame + frames)));
                }
                FaultSpec::PdrWindow {
                    link,
                    from_frame,
                    frames,
                    pdr,
                } => {
                    let link = link.resolve(tree)?;
                    plan =
                        plan.pdr_window(link, asn(from_frame), asn(from_frame + frames), pdr, 1.0);
                }
                FaultSpec::Partition {
                    subtree,
                    at_frame,
                    frames,
                } => {
                    let root = node(subtree, "partition")?;
                    if root == tree.root() {
                        return Err("`partition` cannot cut the gateway's subtree".into());
                    }
                    let (from, until) = (asn(at_frame), asn(at_frame + frames));
                    plan = plan.mask_window(Link::up(root), from, until).mask_window(
                        Link::down(root),
                        from,
                        until,
                    );
                }
                FaultSpec::Burst {
                    node: n,
                    at_frame,
                    packets,
                } => {
                    let id = node(n, "burst")?;
                    let task = task_id_of(tree, id)
                        .ok_or_else(|| format!("`burst` names node {n}, which has no task"))?;
                    plan = plan.at(asn(at_frame), FaultAction::TaskBurst(task, packets));
                }
                FaultSpec::Reparent { node: n, to, .. } => {
                    node(n, "reparent")?;
                    node(to, "reparent")?;
                }
            }
        }
        Ok(plan)
    }

    /// The control-plane churn stream: every `reparent` directive as
    /// `(at_frame, node, new_parent)`, in file order.
    #[must_use]
    pub fn reparent_events(&self) -> Vec<(u64, u32, u32)> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                FaultSpec::Reparent { node, to, at_frame } => Some((at_frame, node, to)),
                _ => None,
            })
            .collect()
    }
}
