//! The hand-rolled line parser: text → [`Scenario`] or a positioned
//! [`ScenarioError`].
//!
//! The grammar is strictly line-oriented (see the [module docs](super)):
//! `#` comments run to end of line, a `[section]` header switches context,
//! and every directive is a head word followed by bare values or
//! `key=value` pairs. All diagnostics carry the 1-based line and column of
//! the offending token, which is what `harp-cli scenarios validate`
//! surfaces.

use super::ast::{
    DemandModel, DemandStep, FaultSpec, Headroom, LinkSel, RateStep, ReportMode, ReportSpec,
    Scenario, SchedulerSpec, TopologySpec, WorkloadSpec,
};
use core::fmt;
use tsch_sim::Rate;

/// A parse or validation failure, positioned at its offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ScenarioError {}

fn err<T>(line: usize, col: usize, msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError {
        line,
        col,
        msg: msg.into(),
    })
}

/// One whitespace-delimited token with its 1-based column.
struct Tok<'a> {
    col: usize,
    text: &'a str,
}

/// Tokenizes one line: strips the `#` comment, splits on whitespace.
fn tokenize(raw: &str) -> Vec<Tok<'_>> {
    let code = match raw.find('#') {
        Some(i) => &raw[..i],
        None => raw,
    };
    let mut toks = Vec::new();
    let mut rest = code;
    let mut offset = 0;
    while let Some(start) = rest.find(|c: char| !c.is_whitespace()) {
        let after = &rest[start..];
        let len = after.find(char::is_whitespace).unwrap_or(after.len());
        toks.push(Tok {
            col: offset + start + 1,
            text: &after[..len],
        });
        offset += start + len;
        rest = &rest[start + len..];
    }
    toks
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.replace('_', "");
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_rate(s: &str) -> Option<Rate> {
    let (p, q) = match s.split_once('/') {
        Some((p, q)) => (p.parse().ok()?, q.parse().ok()?),
        None => (s.parse().ok()?, 1),
    };
    Rate::new(p, q).ok()
}

fn parse_link(s: &str) -> Option<LinkSel> {
    if s == "deepest" {
        return Some(LinkSel::Deepest);
    }
    let (dir, node) = s.split_once(':')?;
    let node = node.parse().ok()?;
    match dir {
        "up" => Some(LinkSel::Up(node)),
        "down" => Some(LinkSel::Down(node)),
        _ => None,
    }
}

/// A directive's `key=value` arguments, consumed by name; leftover keys
/// are a positioned error.
struct Args<'a> {
    line: usize,
    head: &'a str,
    pairs: Vec<(&'a str, &'a str, usize)>,
}

impl<'a> Args<'a> {
    fn new(line: usize, head: &'a str, toks: &[Tok<'a>]) -> Result<Self, ScenarioError> {
        let mut pairs = Vec::new();
        for t in toks {
            match t.text.split_once('=') {
                Some((k, v)) if !k.is_empty() && !v.is_empty() => {
                    pairs.push((k, v, t.col));
                }
                _ => {
                    return err(
                        line,
                        t.col,
                        format!("`{head}` expects key=value arguments, got `{}`", t.text),
                    )
                }
            }
        }
        Ok(Self { line, head, pairs })
    }

    /// Takes a required argument, parsing it with `parse`.
    fn req<T>(&mut self, key: &str, parse: impl Fn(&str) -> Option<T>) -> Result<T, ScenarioError> {
        match self.opt(key, parse)? {
            Some(v) => Ok(v),
            None => err(
                self.line,
                1,
                format!("`{}` is missing its `{key}=` argument", self.head),
            ),
        }
    }

    /// Takes an optional argument, parsing it with `parse`.
    fn opt<T>(
        &mut self,
        key: &str,
        parse: impl Fn(&str) -> Option<T>,
    ) -> Result<Option<T>, ScenarioError> {
        let Some(i) = self.pairs.iter().position(|&(k, _, _)| k == key) else {
            return Ok(None);
        };
        let (_, v, col) = self.pairs.remove(i);
        match parse(v) {
            Some(parsed) => Ok(Some(parsed)),
            None => err(
                self.line,
                col,
                format!("invalid value `{v}` for `{key}` in `{}`", self.head),
            ),
        }
    }

    /// Errors on any argument not consumed.
    fn finish(self) -> Result<(), ScenarioError> {
        match self.pairs.first() {
            None => Ok(()),
            Some(&(k, _, col)) => err(
                self.line,
                col,
                format!("unknown argument `{k}` for `{}`", self.head),
            ),
        }
    }
}

const SECTIONS: [&str; 5] = ["topology", "scheduler", "workloads", "faults", "report"];

/// Parses a scenario file.
///
/// # Errors
///
/// [`ScenarioError`] with the line and column of the first malformed or
/// semantically invalid directive.
pub fn parse_scenario(text: &str) -> Result<Scenario, ScenarioError> {
    let mut name: Option<String> = None;
    let mut seed = 0u64;
    let mut frames = 100u64;
    let mut generator: Option<TopologySpec> = None;
    let mut explicit_links: Vec<(u32, u32)> = Vec::new();
    let mut scheduler = SchedulerSpec::default();
    let mut workload = WorkloadSpec::default();
    let mut faults: Vec<FaultSpec> = Vec::new();
    let mut report = ReportSpec::default();
    let mut mode_line = 0usize;
    let mut section: Option<&str> = None;
    let mut seen: Vec<&str> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let toks = tokenize(raw);
        let Some(head) = toks.first() else { continue };

        // Section headers.
        if let Some(inner) = head.text.strip_prefix('[') {
            let Some(sec) = inner.strip_suffix(']') else {
                return err(line, head.col, "unterminated section header");
            };
            let Some(&known) = SECTIONS.iter().find(|&&s| s == sec) else {
                return err(line, head.col, format!("unknown section `[{sec}]`"));
            };
            if seen.contains(&known) {
                return err(line, head.col, format!("duplicate section `[{sec}]`"));
            }
            if let Some(t) = toks.get(1) {
                return err(line, t.col, "trailing tokens after section header");
            }
            seen.push(known);
            section = Some(known);
            continue;
        }

        let rest = &toks[1..];
        match section {
            // Preamble: scenario / seed / frames.
            None => match head.text {
                "scenario" => {
                    let Some(n) = rest.first() else {
                        return err(line, head.col, "`scenario` needs a name");
                    };
                    if name.is_some() {
                        return err(line, head.col, "duplicate `scenario` line");
                    }
                    name = Some(n.text.to_owned());
                }
                "seed" => {
                    let Some(v) = rest.first().and_then(|t| parse_u64(t.text)) else {
                        return err(line, head.col, "`seed` needs an integer value");
                    };
                    seed = v;
                }
                "frames" => {
                    let v = rest.first().and_then(|t| parse_u64(t.text));
                    match v {
                        Some(v) if v > 0 => frames = v,
                        _ => return err(line, head.col, "`frames` needs a positive integer"),
                    }
                }
                other => {
                    return err(
                        line,
                        head.col,
                        format!("unknown preamble directive `{other}` (expected a `[section]`)"),
                    )
                }
            },
            Some("topology") => match head.text {
                "generator" => {
                    if generator.is_some() || !explicit_links.is_empty() {
                        return err(line, head.col, "topology is already specified");
                    }
                    let Some(kind) = rest.first() else {
                        return err(line, head.col, "`generator` needs a kind");
                    };
                    generator = Some(match kind.text {
                        "testbed50" => {
                            Args::new(line, "generator testbed50", &rest[1..])?.finish()?;
                            TopologySpec::Testbed50
                        }
                        "fig1" => {
                            Args::new(line, "generator fig1", &rest[1..])?.finish()?;
                            TopologySpec::Fig1
                        }
                        "random" => {
                            let mut a = Args::new(line, "generator random", &rest[1..])?;
                            let nodes = a.opt("nodes", |s| s.parse().ok())?.unwrap_or(50u32);
                            let layers = a.opt("layers", |s| s.parse().ok())?.unwrap_or(5u32);
                            let max_children =
                                a.opt("max_children", |s| s.parse().ok())?.unwrap_or(8usize);
                            let gseed = a.opt("seed", parse_u64)?.unwrap_or(seed);
                            let count = a.opt("count", |s| s.parse().ok())?.unwrap_or(1usize);
                            let quick_count =
                                a.opt("quick_count", |s| s.parse().ok())?.unwrap_or(count);
                            a.finish()?;
                            if nodes < 2 || count == 0 || quick_count == 0 {
                                return err(
                                    line,
                                    head.col,
                                    "`generator random` needs nodes >= 2 and counts >= 1",
                                );
                            }
                            TopologySpec::Random {
                                nodes,
                                layers,
                                max_children,
                                seed: gseed,
                                count,
                                quick_count,
                            }
                        }
                        other => {
                            return err(
                                line,
                                kind.col,
                                format!("unknown generator `{other}` (testbed50 | fig1 | random)"),
                            )
                        }
                    });
                }
                "link" => {
                    if generator.is_some() {
                        return err(line, head.col, "topology is already specified");
                    }
                    let (Some(c), Some(p)) = (
                        rest.first().and_then(|t| t.text.parse::<u32>().ok()),
                        rest.get(1).and_then(|t| t.text.parse::<u32>().ok()),
                    ) else {
                        return err(line, head.col, "`link` needs `<child> <parent>` node ids");
                    };
                    explicit_links.push((c, p));
                }
                other => {
                    return err(
                        line,
                        head.col,
                        format!("unknown topology directive `{other}`"),
                    )
                }
            },
            Some("scheduler") => match head.text {
                "slots" => match rest.first().and_then(|t| t.text.parse::<u32>().ok()) {
                    Some(v) if v > 0 => scheduler.slots = v,
                    _ => return err(line, head.col, "`slots` needs a positive integer"),
                },
                "channels" => match rest.first().and_then(|t| t.text.parse::<u16>().ok()) {
                    Some(v) if v > 0 => scheduler.channels = v,
                    _ => return err(line, head.col, "`channels` needs a positive integer"),
                },
                "control_pdr" => {
                    let mut pdrs = Vec::new();
                    for t in rest {
                        match t.text.parse::<f64>() {
                            Ok(p) if (0.0..=1.0).contains(&p) => pdrs.push(p),
                            _ => {
                                return err(
                                    line,
                                    t.col,
                                    format!(
                                        "`control_pdr` values must be in [0, 1], got `{}`",
                                        t.text
                                    ),
                                )
                            }
                        }
                    }
                    if pdrs.is_empty() {
                        return err(line, head.col, "`control_pdr` needs at least one value");
                    }
                    scheduler.control_pdrs = pdrs;
                }
                other => {
                    return err(
                        line,
                        head.col,
                        format!("unknown scheduler directive `{other}`"),
                    )
                }
            },
            Some("workloads") => match head.text {
                "demand" => {
                    let Some(kind) = rest.first() else {
                        return err(line, head.col, "`demand` needs a model (echo | uniform)");
                    };
                    workload.demand = match kind.text {
                        "echo" => {
                            let mut a = Args::new(line, "demand echo", &rest[1..])?;
                            let rate = a.opt("rate", parse_rate)?.unwrap_or(Rate::per_slotframe(1));
                            a.finish()?;
                            DemandModel::Echo(rate)
                        }
                        "uniform" => {
                            let mut a = Args::new(line, "demand uniform", &rest[1..])?;
                            let cells = a.opt("cells", |s| s.parse().ok())?.unwrap_or(1u32);
                            a.finish()?;
                            if cells == 0 {
                                return err(line, head.col, "`demand uniform` needs cells >= 1");
                            }
                            DemandModel::Uniform(cells)
                        }
                        other => {
                            return err(
                                line,
                                kind.col,
                                format!("unknown demand model `{other}` (echo | uniform)"),
                            )
                        }
                    };
                }
                "headroom" => {
                    let mut a = Args::new(line, "headroom", rest)?;
                    let node = a.req("node", |s| s.parse().ok())?;
                    let cells = a.req("cells", |s| s.parse().ok())?;
                    a.finish()?;
                    workload.headroom = Some(Headroom { node, cells });
                }
                "rate_step" => {
                    let mut a = Args::new(line, "rate_step", rest)?;
                    let node = a.req("node", |s| s.parse().ok())?;
                    let at_frame = a.req("at_frame", parse_u64)?;
                    let rate = a.req("rate", parse_rate)?;
                    a.finish()?;
                    workload.rate_steps.push(RateStep {
                        node,
                        at_frame,
                        rate,
                    });
                }
                "demand_step" => {
                    let mut a = Args::new(line, "demand_step", rest)?;
                    let link = a.req("link", parse_link)?;
                    let delta = a.req("delta", |s| s.parse().ok())?;
                    a.finish()?;
                    workload.demand_steps.push(DemandStep { link, delta });
                }
                other => {
                    return err(
                        line,
                        head.col,
                        format!("unknown workloads directive `{other}`"),
                    )
                }
            },
            Some("faults") => {
                let spec = match head.text {
                    "crash" => {
                        let mut a = Args::new(line, "crash", rest)?;
                        let node = a.req("node", |s| s.parse().ok())?;
                        let at_frame = a.req("at_frame", parse_u64)?;
                        let restart_frame = a.opt("restart_frame", parse_u64)?;
                        a.finish()?;
                        if let Some(r) = restart_frame {
                            if r <= at_frame {
                                return err(
                                    line,
                                    head.col,
                                    "`restart_frame` must be after `at_frame`",
                                );
                            }
                        }
                        FaultSpec::Crash {
                            node,
                            at_frame,
                            restart_frame,
                        }
                    }
                    "gateway_failover" => {
                        let mut a = Args::new(line, "gateway_failover", rest)?;
                        let at_frame = a.req("at_frame", parse_u64)?;
                        let outage = a.req("frames", parse_u64)?;
                        a.finish()?;
                        if outage == 0 {
                            return err(line, head.col, "`frames` must be positive");
                        }
                        FaultSpec::GatewayFailover {
                            at_frame,
                            frames: outage,
                        }
                    }
                    "pdr_window" => {
                        let mut a = Args::new(line, "pdr_window", rest)?;
                        let link = a.req("link", parse_link)?;
                        let from_frame = a.req("from_frame", parse_u64)?;
                        let window = a.req("frames", parse_u64)?;
                        let pdr = a.req("pdr", |s| {
                            s.parse::<f64>().ok().filter(|p| (0.0..=1.0).contains(p))
                        })?;
                        a.finish()?;
                        if window == 0 {
                            return err(line, head.col, "`frames` must be positive");
                        }
                        FaultSpec::PdrWindow {
                            link,
                            from_frame,
                            frames: window,
                            pdr,
                        }
                    }
                    "partition" => {
                        let mut a = Args::new(line, "partition", rest)?;
                        let subtree = a.req("subtree", |s| s.parse().ok())?;
                        let at_frame = a.req("at_frame", parse_u64)?;
                        let window = a.req("frames", parse_u64)?;
                        a.finish()?;
                        if window == 0 {
                            return err(line, head.col, "`frames` must be positive");
                        }
                        FaultSpec::Partition {
                            subtree,
                            at_frame,
                            frames: window,
                        }
                    }
                    "burst" => {
                        let mut a = Args::new(line, "burst", rest)?;
                        let node = a.req("node", |s| s.parse().ok())?;
                        let at_frame = a.req("at_frame", parse_u64)?;
                        let packets = a.req("packets", |s| s.parse().ok())?;
                        a.finish()?;
                        if packets == 0 {
                            return err(line, head.col, "`packets` must be positive");
                        }
                        FaultSpec::Burst {
                            node,
                            at_frame,
                            packets,
                        }
                    }
                    "reparent" => {
                        let mut a = Args::new(line, "reparent", rest)?;
                        let node = a.req("node", |s| s.parse().ok())?;
                        let to = a.req("to", |s| s.parse().ok())?;
                        let at_frame = a.req("at_frame", parse_u64)?;
                        a.finish()?;
                        FaultSpec::Reparent { node, to, at_frame }
                    }
                    other => return err(line, head.col, format!("unknown fault kind `{other}`")),
                };
                faults.push(spec);
            }
            Some("report") => match head.text {
                "file" => {
                    let Some(f) = rest.first() else {
                        return err(line, head.col, "`file` needs a file name");
                    };
                    report.file = Some(f.text.to_owned());
                }
                "mode" => {
                    let Some(kind) = rest.first() else {
                        return err(line, head.col, "`mode` needs a kind");
                    };
                    mode_line = line;
                    report.mode = match kind.text {
                        "timeline" => {
                            let mut a = Args::new(line, "mode timeline", &rest[1..])?;
                            let node = a.req("node", |s| s.parse().ok())?;
                            a.finish()?;
                            ReportMode::Timeline { node }
                        }
                        "pdr_sweep" => {
                            Args::new(line, "mode pdr_sweep", &rest[1..])?.finish()?;
                            ReportMode::PdrSweep
                        }
                        "adjustments" => {
                            Args::new(line, "mode adjustments", &rest[1..])?.finish()?;
                            ReportMode::Adjustments
                        }
                        "replicates" => {
                            let mut a = Args::new(line, "mode replicates", &rest[1..])?;
                            let repeats = a.opt("repeats", |s| s.parse().ok())?.unwrap_or(1u32);
                            a.finish()?;
                            if repeats == 0 {
                                return err(line, head.col, "`repeats` must be positive");
                            }
                            ReportMode::Replicates { repeats }
                        }
                        "churn" => {
                            Args::new(line, "mode churn", &rest[1..])?.finish()?;
                            ReportMode::Churn
                        }
                        other => {
                            return err(line, kind.col, format!("unknown report mode `{other}`"))
                        }
                    };
                }
                other => {
                    return err(
                        line,
                        head.col,
                        format!("unknown report directive `{other}`"),
                    )
                }
            },
            Some(_) => unreachable!("sections are validated on entry"),
        }
    }

    let Some(name) = name else {
        return err(1, 1, "missing `scenario <name>` preamble line");
    };
    let topology = match generator {
        Some(g) => g,
        None if !explicit_links.is_empty() => TopologySpec::Explicit(explicit_links),
        None => TopologySpec::Testbed50,
    };
    // Cross-directive checks, reported at the `mode` line.
    let mode_err = |msg: &str| ScenarioError {
        line: mode_line.max(1),
        col: 1,
        msg: msg.to_owned(),
    };
    match report.mode {
        ReportMode::Adjustments | ReportMode::PdrSweep => {
            if workload.demand_steps.is_empty() {
                return Err(mode_err(
                    "this report mode needs at least one `demand_step`",
                ));
            }
        }
        ReportMode::Churn => {
            if faults.is_empty() {
                return Err(mode_err("`mode churn` needs at least one fault event"));
            }
        }
        ReportMode::Timeline { .. } | ReportMode::Replicates { .. } => {}
    }

    Ok(Scenario {
        name,
        seed,
        frames,
        topology,
        scheduler,
        workload,
        faults,
        report,
    })
}
