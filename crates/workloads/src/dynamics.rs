//! Traffic-change event streams for the dynamic experiments.

use tsch_sim::{Link, NodeId, Rate, Tree};

/// One traffic change: at a given slotframe boundary, a link's demand (or a
/// task's rate) changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficChange {
    /// Slotframe index at which the change takes effect.
    pub at_slotframe: u64,
    /// The node whose traffic changes (its uplink/downlink demands move).
    pub node: NodeId,
    /// The node's new task rate.
    pub new_rate: Rate,
}

/// The Fig. 10 storyline: the observed node's rate steps
/// 1 → 1.5 → 3 packets/slotframe at two successive instants.
///
/// # Examples
///
/// ```
/// use tsch_sim::NodeId;
/// use workloads::fig10_rate_steps;
///
/// let steps = fig10_rate_steps(NodeId(15));
/// assert_eq!(steps.len(), 2);
/// assert!(steps[0].at_slotframe < steps[1].at_slotframe);
/// ```
#[must_use]
pub fn fig10_rate_steps(node: NodeId) -> Vec<TrafficChange> {
    vec![
        TrafficChange {
            at_slotframe: 30,
            node,
            new_rate: Rate::new(3, 2).expect("3/2 is a valid rate"),
        },
        TrafficChange {
            at_slotframe: 60,
            node,
            new_rate: Rate::per_slotframe(3),
        },
    ]
}

/// The new uplink cell requirement of every link on `node`'s path to the
/// gateway if the node's own rate becomes `new_rate` while every other node
/// keeps `base_rate` (one task per node, echo traffic).
///
/// Returns `(link, new_cells)` pairs from the node upward. This is the
/// demand recomputation a rate change induces: every ancestor link forwards
/// the extra packets.
#[must_use]
pub fn uplink_demand_after_change(
    tree: &Tree,
    node: NodeId,
    base_rate: Rate,
    new_rate: Rate,
) -> Vec<(Link, u32)> {
    let path = tree.path_to_root(node);
    path.windows(2)
        .map(|hop| {
            let child = hop[0];
            // Everyone in the child's subtree sends at base_rate except
            // `node`, which sends at new_rate.
            let others = f64::from(tree.subtree_size(child) - 1) * base_rate.as_f64();
            let cells = (others + new_rate.as_f64()).ceil() as u32;
            (Link::up(child), cells)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_steps_match_paper_rates() {
        let steps = fig10_rate_steps(NodeId(15));
        assert!((steps[0].new_rate.as_f64() - 1.5).abs() < 1e-12);
        assert!((steps[1].new_rate.as_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn demand_recomputation_on_chain() {
        // 0 ← 1 ← 2: node 2's rate goes 1 → 3.
        let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
        let demands = uplink_demand_after_change(
            &tree,
            NodeId(2),
            Rate::per_slotframe(1),
            Rate::per_slotframe(3),
        );
        assert_eq!(demands.len(), 2);
        // Link 2→1 carries only node 2's traffic: 3 cells.
        assert_eq!(demands[0], (Link::up(NodeId(2)), 3));
        // Link 1→0 carries node 1's own packet plus node 2's three.
        assert_eq!(demands[1], (Link::up(NodeId(1)), 4));
    }

    #[test]
    fn fractional_rate_rounds_up_per_link() {
        let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
        let demands = uplink_demand_after_change(
            &tree,
            NodeId(2),
            Rate::per_slotframe(1),
            Rate::new(3, 2).unwrap(),
        );
        assert_eq!(demands[0].1, 2, "ceil(1.5)");
        assert_eq!(demands[1].1, 3, "ceil(1 + 1.5)");
    }

    #[test]
    fn unchanged_rate_reproduces_subtree_demand() {
        let tree = Tree::paper_fig1_example();
        let r = Rate::per_slotframe(1);
        let demands = uplink_demand_after_change(&tree, NodeId(9), r, r);
        for (link, cells) in demands {
            assert_eq!(cells, tree.subtree_size(link.child));
        }
    }
}
