//! The scale-study scenario: one tree of 16 grafted subtrees sized to a
//! requested node count, with a schedule built to shard cleanly.
//!
//! The HARP partitioning insight — depth-1 subtrees are disjoint — only
//! pays off at scale if the workload actually respects it. This scenario
//! makes the precondition hold by construction: the slotframe's slots are
//! divided into one contiguous range per subtree, and every link is
//! scheduled inside its own subtree's range, so no cell ever mixes links
//! from two subtrees and [`tsch_sim::ShardedSimulator`] accepts the
//! scenario as-is. Within a range, cells are assigned demand-aware and
//! first-fit: each uplink route link receives as many cells per slotframe
//! as tasks route through it (so queues are stable), and non-conflicting
//! links share cells where the two-hop model allows, exercising the
//! engine's conflict probing without manufacturing collisions.

use crate::topo_gen::TopologyConfig;
use std::collections::HashMap;
use tsch_sim::{
    Cell, InterferenceModel, Link, NetworkSchedule, NodeId, Rate, SlotframeConfig, Task, TaskId,
    Tree, TwoHopInterference,
};

/// Depth-1 subtrees (= shards) in every scale scenario.
pub const SCALE_SUBTREES: usize = 16;

/// Node counts of the scale-study rows (1k → 1M). The bench harness and
/// its gate both iterate this list, so adding a row here grows both.
pub const SCALE_SIZES: [u32; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Traffic sources per subtree (the deepest nodes, so routes are long).
pub const SCALE_SOURCES_PER_SUBTREE: usize = 8;

/// A complete simulator input for the scale study.
#[derive(Debug, Clone)]
pub struct ScaleScenario {
    /// The grafted topology: 16 depth-1 subtrees under the gateway.
    pub tree: Tree,
    /// The paper-shaped slotframe: 199 slots × 16 channels.
    pub config: SlotframeConfig,
    /// Conflict-free schedule, one private slot range per subtree.
    pub schedule: NetworkSchedule,
    /// Uplink tasks from the deepest nodes of each subtree.
    pub tasks: Vec<Task>,
}

/// Smallest depth whose fanout-4 tree capacity `(4^(d+1) - 1) / 3` holds
/// `nodes`.
fn fanout4_layers(nodes: u32) -> u32 {
    let mut layers = 1u32;
    let mut capacity = 5u64; // 1 + 4
    while capacity < u64::from(nodes) {
        layers += 1;
        capacity = capacity * 4 + 1;
    }
    layers
}

/// Builds the scale scenario for a total node count (gateway included).
///
/// The same `(nodes, seed)` pair always produces the same scenario.
///
/// # Panics
///
/// Panics if `nodes` is too small to give every subtree at least two
/// nodes (a root and a leaf), i.e. below 33.
#[must_use]
pub fn scale_scenario(nodes: u32, seed: u64) -> ScaleScenario {
    let subtrees = u32::try_from(SCALE_SUBTREES).expect("small constant");
    assert!(
        nodes > 2 * subtrees,
        "need more than {} nodes for {subtrees} two-node subtrees",
        2 * subtrees
    );
    let per = (nodes - 1) / subtrees;
    let extra = (nodes - 1) % subtrees;

    // Graft each generated subtree under the gateway with a contiguous
    // global id block; `from_parents` sees strictly increasing child ids.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(nodes as usize - 1);
    let mut subtree_roots = Vec::with_capacity(SCALE_SUBTREES);
    let mut base = 1u32;
    for i in 0..subtrees {
        let m = per + u32::from(i < extra);
        let layers = fanout4_layers(m).min(m - 1);
        let sub = TopologyConfig {
            nodes: m,
            layers,
            max_children: 4,
        }
        .generate(seed.wrapping_add(u64::from(i)));
        subtree_roots.push(NodeId(base));
        pairs.push((base, 0));
        for v in sub.nodes().skip(1) {
            let parent = sub.parent(v).expect("non-root");
            pairs.push((base + v.0, base + parent.0));
        }
        base += m;
    }
    let tree = Tree::from_parents(&pairs);

    let config = SlotframeConfig::new(199, 16, 10_000).expect("valid slotframe");
    let tasks = scale_tasks(&tree, &subtree_roots);
    let schedule = scale_schedule(&tree, config, &subtree_roots, &tasks);
    ScaleScenario {
        tree,
        config,
        schedule,
        tasks,
    }
}

/// Uplink tasks from each subtree's deepest nodes (rate 1 per slotframe).
fn scale_tasks(tree: &Tree, subtree_roots: &[NodeId]) -> Vec<Task> {
    let depth = node_depths(tree);
    let mut tasks = Vec::with_capacity(subtree_roots.len() * SCALE_SOURCES_PER_SUBTREE);
    for (i, &root) in subtree_roots.iter().enumerate() {
        let end = subtree_roots
            .get(i + 1)
            .map_or(tree.len() as u32, |next| next.0);
        let mut members: Vec<NodeId> = (root.0..end).map(NodeId).collect();
        // Deepest first; ties resolve to the smallest id for determinism.
        members.sort_by_key(|v| (std::cmp::Reverse(depth[v.index()]), v.0));
        for &source in members.iter().take(SCALE_SOURCES_PER_SUBTREE) {
            tasks.push(Task::uplink(
                TaskId(source.0),
                source,
                Rate::per_slotframe(1),
            ));
        }
    }
    tasks
}

fn node_depths(tree: &Tree) -> Vec<u32> {
    let mut depth = vec![0u32; tree.len()];
    for v in tree.nodes().skip(1) {
        let parent = tree.parent(v).expect("non-root");
        depth[v.index()] = depth[parent.index()] + 1;
    }
    depth
}

/// Demand-aware first-fit coloring inside per-subtree slot ranges.
///
/// Each route link gets as many cells as tasks route through it. Links
/// are placed highest-demand first into the earliest cell of their
/// subtree's range whose occupants they do not conflict with (two-hop
/// model), so cells are reused across distant links without creating
/// collisions.
fn scale_schedule(
    tree: &Tree,
    config: SlotframeConfig,
    subtree_roots: &[NodeId],
    tasks: &[Task],
) -> NetworkSchedule {
    let count = u32::try_from(subtree_roots.len()).expect("small constant");
    let width = config.slots / count;
    assert!(width >= 1, "slotframe too short for {count} subtree ranges");
    let interference = TwoHopInterference::from_tree(tree);
    let depth = node_depths(tree);

    // Per-subtree uplink demand per link child (uplinks only: tasks walk
    // child -> gateway).
    let mut demand: HashMap<NodeId, u64> = HashMap::new();
    for task in tasks {
        let mut v = task.source;
        while v != NodeId(0) {
            *demand.entry(v).or_insert(0) += 1;
            v = tree.parent(v).expect("non-root");
        }
    }

    let shard_index = |v: NodeId| -> usize {
        match subtree_roots.binary_search_by(|root| root.0.cmp(&v.0)) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };

    let mut schedule = NetworkSchedule::new(config);
    for (k, _) in subtree_roots.iter().enumerate() {
        let slot_base = u32::try_from(k).expect("small constant") * width;
        let mut links: Vec<(Link, u64)> = demand
            .iter()
            .filter(|(&v, _)| shard_index(v) == k)
            .map(|(&v, &d)| (Link::up(v), d))
            .collect();
        links.sort_by_key(|&(link, d)| {
            (
                std::cmp::Reverse(d),
                depth[link.child.index()],
                link.child.0,
            )
        });

        let cells: Vec<Cell> = (slot_base..slot_base + width)
            .flat_map(|slot| (0..config.channels).map(move |ch| Cell::new(slot, ch)))
            .collect();
        let mut occupants: Vec<Vec<Link>> = vec![Vec::new(); cells.len()];
        for &(link, d) in &links {
            let mut placed = 0u64;
            for (cell, held) in cells.iter().zip(occupants.iter_mut()) {
                if placed == d {
                    break;
                }
                if held.contains(&link)
                    || held.iter().any(|&o| interference.conflicts(tree, o, link))
                {
                    continue;
                }
                schedule
                    .assign(*cell, link)
                    .expect("first placement of this link in this cell");
                held.push(link);
                placed += 1;
            }
            assert!(
                placed == d,
                "subtree {k} out of cells: link {link:?} needs {d}, placed {placed}"
            );
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::{LinkQuality, ShardOptions, ShardedSimulator, StatsMode};

    #[test]
    fn scenario_has_requested_size_and_shape() {
        let s = scale_scenario(1_000, 7);
        assert_eq!(s.tree.len(), 1_000);
        assert_eq!(s.tree.children(NodeId(0)).len(), SCALE_SUBTREES);
        assert_eq!(s.tasks.len(), SCALE_SUBTREES * SCALE_SOURCES_PER_SUBTREE);
        let cells = |sched: &NetworkSchedule| -> Vec<(Cell, Vec<Link>)> {
            sched
                .iter_cells()
                .map(|(c, links)| (c, links.to_vec()))
                .collect()
        };
        assert_eq!(
            cells(&scale_scenario(1_000, 7).schedule),
            cells(&s.schedule),
            "scenario generation must be deterministic"
        );
    }

    #[test]
    fn schedule_fits_the_slotframe_and_shards_cleanly() {
        let s = scale_scenario(1_000, 3);
        let total: usize = s.schedule.iter_cells().map(|(_, links)| links.len()).sum();
        assert!(total <= (s.config.slots * u32::from(s.config.channels)) as usize);
        // The sharded simulator accepting the scenario proves no cell
        // mixes subtrees and no task sits on the gateway.
        let sharded = ShardedSimulator::try_new(
            &s.tree,
            s.config,
            &s.schedule,
            &LinkQuality::perfect(),
            1,
            &s.tasks,
            ShardOptions::default(),
        )
        .unwrap();
        assert_eq!(sharded.shard_count(), SCALE_SUBTREES);
    }

    #[test]
    fn scenario_delivers_traffic_without_collisions() {
        let s = scale_scenario(500, 11);
        let mut builder = tsch_sim::SimulatorBuilder::new(s.tree, s.config).schedule(s.schedule);
        for task in s.tasks {
            builder = builder.task(task).unwrap();
        }
        builder = builder.stats_mode(StatsMode::Streaming);
        let mut sim = builder.build();
        sim.run_slotframes(4);
        let stats = sim.stats();
        assert_eq!(stats.collisions, 0, "coloring must be conflict-free");
        assert!(stats.delivered() > 0, "uplink traffic must arrive");
        assert_eq!(
            stats.queue_drops, 0,
            "demand-matched cells keep queues stable"
        );
    }

    #[test]
    fn fanout4_layer_bound_is_tight() {
        assert_eq!(fanout4_layers(2), 1);
        assert_eq!(fanout4_layers(5), 1);
        assert_eq!(fanout4_layers(6), 2);
        assert_eq!(fanout4_layers(21), 2);
        assert_eq!(fanout4_layers(22), 3);
        assert_eq!(fanout4_layers(6_250), 7);
        // Per-subtree size at the 1M-node row: 999_999 / 16 ≈ 62_500.
        assert_eq!(fanout4_layers(62_500), 8);
    }
}
