//! Mesh (non-tree) topologies and their decomposition into a routing tree
//! plus interference edges.
//!
//! The paper restricts HARP to tree routing topologies and sketches the
//! extension to general graphs: "decompose the topology to multiple tree
//! structures and apply HARP in a divide and conquer fashion" (footnote 1).
//! This module provides the single-gateway instance of that extension: a
//! random geometric mesh is generated, an RPL-style shortest-hop spanning
//! tree is extracted for routing, and the remaining radio edges become
//! *interference edges* for the two-hop interference model — exactly how a
//! real 6TiSCH deployment looks, where nodes hear more neighbours than
//! they route through.

use tsch_sim::{NodeId, SplitMix64, Tree};

/// A connectivity mesh: nodes with undirected radio links.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    /// Number of nodes; node 0 is the gateway.
    nodes: u32,
    /// Undirected radio edges (smaller id first), sorted and deduplicated.
    edges: Vec<(NodeId, NodeId)>,
}

impl Mesh {
    /// Number of nodes in the mesh.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes as usize
    }

    /// Returns `true` for a single-node mesh.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes <= 1
    }

    /// The undirected radio edges.
    #[must_use]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// The radio neighbours of `node`.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == node {
                    Some(b)
                } else if b == node {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Generates a connected random geometric mesh: `nodes` points on the
    /// unit square, radio edges between points closer than `radius`, extra
    /// edges added greedily (nearest pair across components) to guarantee
    /// connectivity.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn random_geometric(nodes: u32, radius: f64, seed: u64) -> Mesh {
        assert!(nodes > 0, "a mesh needs at least the gateway");
        let mut rng = SplitMix64::new(seed);
        let positions: Vec<(f64, f64)> = (0..nodes)
            .map(|i| {
                if i == 0 {
                    (0.5, 0.5) // gateway in the middle of the plant floor
                } else {
                    (rng.next_f64(), rng.next_f64())
                }
            })
            .collect();
        let dist2 = |a: usize, b: usize| {
            let dx = positions[a].0 - positions[b].0;
            let dy = positions[a].1 - positions[b].1;
            dx * dx + dy * dy
        };
        let mut edges = Vec::new();
        for a in 0..nodes as usize {
            for b in a + 1..nodes as usize {
                if dist2(a, b) <= radius * radius {
                    edges.push((NodeId(a as u32), NodeId(b as u32)));
                }
            }
        }
        // Connect components: repeatedly join the closest cross-component
        // pair (a long-range link through a repeater, in deployment terms).
        let mut component = union_find(nodes as usize, &edges);
        loop {
            let roots: std::collections::BTreeSet<u32> = (0..nodes as usize)
                .map(|i| find(&mut component, i) as u32)
                .collect();
            if roots.len() <= 1 {
                break;
            }
            let mut best: Option<(usize, usize, f64)> = None;
            for a in 0..nodes as usize {
                for b in a + 1..nodes as usize {
                    if find(&mut component, a) != find(&mut component, b) {
                        let d = dist2(a, b);
                        if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                            best = Some((a, b, d));
                        }
                    }
                }
            }
            let (a, b, _) = best.expect("disconnected components exist");
            edges.push((NodeId(a as u32), NodeId(b as u32)));
            union(&mut component, a, b);
        }
        edges.sort_unstable();
        edges.dedup();
        Mesh { nodes, edges }
    }

    /// Extracts the RPL-style routing tree: BFS from the gateway, each node
    /// adopting the first (lowest-id) neighbour at the smaller hop count as
    /// its preferred parent. Returns the tree (node ids preserved) and the
    /// *interference edges* — every radio edge that is not a tree edge.
    ///
    /// # Examples
    ///
    /// ```
    /// use workloads::Mesh;
    ///
    /// let mesh = Mesh::random_geometric(30, 0.3, 7);
    /// let (tree, extra) = mesh.routing_tree();
    /// assert_eq!(tree.len(), 30);
    /// // Tree edges + interference edges = all radio edges.
    /// assert_eq!(extra.len(), mesh.edges().len() - (tree.len() - 1));
    /// ```
    #[must_use]
    pub fn routing_tree(&self) -> (Tree, Vec<(NodeId, NodeId)>) {
        let n = self.len();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut depth: Vec<Option<u32>> = vec![None; n];
        depth[0] = Some(0);
        let mut queue = std::collections::VecDeque::from([NodeId(0)]);
        while let Some(u) = queue.pop_front() {
            let mut neighbors = self.neighbors(u);
            neighbors.sort_unstable();
            for v in neighbors {
                if depth[v.index()].is_none() {
                    depth[v.index()] = Some(depth[u.index()].expect("u visited") + 1);
                    parent[v.index()] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        debug_assert!(depth.iter().all(Option::is_some), "mesh is connected");
        let pairs: Vec<(u32, u32)> = (1..n)
            .map(|i| {
                (
                    i as u32,
                    parent[i].expect("non-gateway node has a parent").0,
                )
            })
            .collect();
        let tree = Tree::from_parents(&pairs);
        let extra: Vec<(NodeId, NodeId)> = self
            .edges
            .iter()
            .copied()
            .filter(|&(a, b)| tree.parent(a) != Some(b) && tree.parent(b) != Some(a))
            .collect();
        (tree, extra)
    }
}

/// One tree of a multi-gateway decomposition: the extracted [`Tree`] plus
/// the mapping from its dense local node ids back to mesh node ids.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestTree {
    /// The routing tree (local ids, gateway = 0).
    pub tree: Tree,
    /// `mesh_id[local.index()]` is the mesh node represented by `local`.
    pub mesh_ids: Vec<NodeId>,
}

impl ForestTree {
    /// The mesh node behind a local tree node.
    #[must_use]
    pub fn mesh_id(&self, local: NodeId) -> NodeId {
        self.mesh_ids[local.index()]
    }
}

impl Mesh {
    /// Decomposes the mesh into one routing tree per gateway — the paper's
    /// footnote 1 ("decompose the topology to multiple tree structures and
    /// apply HARP in a divide and conquer fashion"). Every node joins the
    /// hop-wise closest gateway (ties to the lower gateway index); each
    /// tree gets its own dense id space with its gateway as node 0.
    ///
    /// Combine with [`harp_core::BandPlan`] to give each tree a disjoint
    /// channel band, making the co-existing deployments collision-free
    /// with respect to each other.
    ///
    /// # Panics
    ///
    /// Panics if `gateways` is empty or names a node twice.
    ///
    /// # Examples
    ///
    /// ```
    /// use tsch_sim::NodeId;
    /// use workloads::Mesh;
    ///
    /// let mesh = Mesh::random_geometric(40, 0.3, 5);
    /// let forest = mesh.routing_forest(&[NodeId(0), NodeId(1)]);
    /// assert_eq!(forest.len(), 2);
    /// let covered: usize = forest.iter().map(|t| t.tree.len()).sum();
    /// assert_eq!(covered, 40);
    /// ```
    #[must_use]
    pub fn routing_forest(&self, gateways: &[NodeId]) -> Vec<ForestTree> {
        assert!(!gateways.is_empty(), "need at least one gateway");
        let mut owner: Vec<Option<usize>> = vec![None; self.len()];
        let mut parent: Vec<Option<NodeId>> = vec![None; self.len()];
        let mut queue = std::collections::VecDeque::new();
        for (g_idx, &g) in gateways.iter().enumerate() {
            assert!(owner[g.index()].is_none(), "gateway {g} listed twice");
            owner[g.index()] = Some(g_idx);
            queue.push_back(g);
        }
        // Multi-source BFS: nodes adopt the first wave that reaches them.
        while let Some(u) = queue.pop_front() {
            let mut neighbors = self.neighbors(u);
            neighbors.sort_unstable();
            for v in neighbors {
                if owner[v.index()].is_none() {
                    owner[v.index()] = owner[u.index()];
                    parent[v.index()] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        // Build each tree with a dense local id space (preorder from the
        // gateway so parents precede children).
        let mut forest = Vec::with_capacity(gateways.len());
        for (g_idx, &g) in gateways.iter().enumerate() {
            let mut mesh_ids = vec![g];
            let mut local_of = std::collections::BTreeMap::new();
            local_of.insert(g, NodeId(0));
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            let mut stack: Vec<NodeId> = vec![g];
            while let Some(u) = stack.pop() {
                let mut kids: Vec<NodeId> = (0..self.len() as u32)
                    .map(NodeId)
                    .filter(|&v| owner[v.index()] == Some(g_idx) && parent[v.index()] == Some(u))
                    .collect();
                kids.sort_unstable();
                for v in kids {
                    let local = NodeId(mesh_ids.len() as u32);
                    mesh_ids.push(v);
                    local_of.insert(v, local);
                    pairs.push((local.0, local_of[&u].0));
                    stack.push(v);
                }
            }
            let tree = Tree::from_parents(&pairs);
            forest.push(ForestTree { tree, mesh_ids });
        }
        forest
    }
}

fn union_find(n: usize, edges: &[(NodeId, NodeId)]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n).collect();
    for &(a, b) in edges {
        union(&mut parent, a.index(), b.index());
    }
    parent
}

fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        parent[ra] = rb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_is_connected_and_deterministic() {
        let a = Mesh::random_geometric(40, 0.25, 3);
        let b = Mesh::random_geometric(40, 0.25, 3);
        assert_eq!(a, b);
        let (tree, _) = a.routing_tree();
        assert_eq!(tree.len(), 40, "every node reached the tree");
    }

    #[test]
    fn sparse_radius_still_connects() {
        let mesh = Mesh::random_geometric(25, 0.05, 1);
        let (tree, _) = mesh.routing_tree();
        assert_eq!(tree.len(), 25);
    }

    #[test]
    fn tree_edges_are_radio_edges() {
        let mesh = Mesh::random_geometric(30, 0.3, 9);
        let (tree, _) = mesh.routing_tree();
        for v in tree.nodes().skip(1) {
            let p = tree.parent(v).unwrap();
            let key = if v < p { (v, p) } else { (p, v) };
            assert!(mesh.edges().contains(&key), "tree edge {v}-{p} not in mesh");
        }
    }

    #[test]
    fn interference_edges_complement_tree_edges() {
        let mesh = Mesh::random_geometric(30, 0.35, 5);
        let (tree, extra) = mesh.routing_tree();
        assert_eq!(extra.len() + tree.len() - 1, mesh.edges().len());
        for &(a, b) in &extra {
            assert_ne!(tree.parent(a), Some(b));
            assert_ne!(tree.parent(b), Some(a));
        }
    }

    #[test]
    fn bfs_parents_minimise_hops() {
        let mesh = Mesh::random_geometric(30, 0.3, 11);
        let (tree, _) = mesh.routing_tree();
        // BFS property: a node's depth is ≤ every radio neighbour's + 1.
        for v in tree.nodes() {
            for w in mesh.neighbors(v) {
                assert!(tree.depth(v) <= tree.depth(w) + 1, "{v} vs {w}");
            }
        }
    }

    #[test]
    fn forest_partitions_all_nodes() {
        let mesh = Mesh::random_geometric(50, 0.3, 7);
        let forest = mesh.routing_forest(&[NodeId(0), NodeId(5), NodeId(9)]);
        assert_eq!(forest.len(), 3);
        let total: usize = forest.iter().map(|t| t.tree.len()).sum();
        assert_eq!(total, 50, "every node belongs to exactly one tree");
        // Mesh ids across trees are disjoint.
        let mut seen = std::collections::BTreeSet::new();
        for t in &forest {
            for &m in &t.mesh_ids {
                assert!(seen.insert(m), "{m} appears in two trees");
            }
        }
        // Local tree edges are mesh radio edges.
        for t in &forest {
            for v in t.tree.nodes().skip(1) {
                let p = t.tree.parent(v).unwrap();
                let (a, b) = (t.mesh_id(v), t.mesh_id(p));
                let key = if a < b { (a, b) } else { (b, a) };
                assert!(mesh.edges().contains(&key));
            }
        }
    }

    #[test]
    fn forest_with_single_gateway_matches_routing_tree_size() {
        let mesh = Mesh::random_geometric(30, 0.3, 3);
        let forest = mesh.routing_forest(&[NodeId(0)]);
        let (tree, _) = mesh.routing_tree();
        assert_eq!(forest[0].tree.len(), tree.len());
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn forest_rejects_duplicate_gateways() {
        let mesh = Mesh::random_geometric(10, 0.4, 1);
        let _ = mesh.routing_forest(&[NodeId(0), NodeId(0)]);
    }

    #[test]
    fn single_node_mesh() {
        let mesh = Mesh::random_geometric(1, 0.5, 0);
        assert!(mesh.is_empty());
        let (tree, extra) = mesh.routing_tree();
        assert_eq!(tree.len(), 1);
        assert!(extra.is_empty());
    }
}
