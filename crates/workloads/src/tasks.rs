//! Task-set construction for the paper's workloads.
//!
//! The testbed deploys one end-to-end echo task per device node at equal
//! rates (§VI-B); the simulation studies sweep the per-node data rate from
//! 1 to 8 packets/slotframe (§VII-A). These helpers build those task sets.

use tsch_sim::{NodeId, Rate, Task, TaskId, Tree};

/// One echo task per non-gateway node at a uniform rate — the testbed
/// workload (§VI-B).
///
/// # Examples
///
/// ```
/// use tsch_sim::{Rate, Tree};
/// use workloads::echo_task_per_node;
///
/// let tree = Tree::paper_fig1_example();
/// let tasks = echo_task_per_node(&tree, Rate::per_slotframe(1));
/// assert_eq!(tasks.len(), 11);
/// ```
#[must_use]
pub fn echo_task_per_node(tree: &Tree, rate: Rate) -> Vec<Task> {
    let tasks: Vec<Task> = tree
        .nodes()
        .skip(1)
        .enumerate()
        .map(|(i, n)| Task::echo(TaskId(i as u32), n, rate))
        .collect();
    crate::obs::TASKS_GENERATED.add(tasks.len() as u64);
    tasks
}

/// One uplink-only task per non-gateway node at a uniform rate — the
/// simulation workload of Fig. 11.
#[must_use]
pub fn uplink_task_per_node(tree: &Tree, rate: Rate) -> Vec<Task> {
    let tasks: Vec<Task> = tree
        .nodes()
        .skip(1)
        .enumerate()
        .map(|(i, n)| Task::uplink(TaskId(i as u32), n, rate))
        .collect();
    crate::obs::TASKS_GENERATED.add(tasks.len() as u64);
    tasks
}

/// The task of `node` within a per-node task set (tasks are indexed by
/// enumeration order, which skips the gateway).
#[must_use]
pub fn task_id_of(tree: &Tree, node: NodeId) -> Option<TaskId> {
    tree.nodes()
        .skip(1)
        .position(|n| n == node)
        .map(|i| TaskId(i as u32))
}

/// Uniform per-link cell demand: every link (both directions) requires
/// `cells_per_link` cells, as in the paper's schedule-collision experiment
/// (§VII-A), where each node's data rate directly sets its links' cell
/// count without forwarding aggregation.
#[must_use]
pub fn uniform_link_requirements(tree: &Tree, cells_per_link: u32) -> harp_core::Requirements {
    let mut reqs = harp_core::Requirements::new();
    for v in tree.nodes().skip(1) {
        reqs.set(tsch_sim::Link::up(v), cells_per_link);
        reqs.set(tsch_sim::Link::down(v), cells_per_link);
    }
    reqs
}

/// Uniform uplink-only demand: every uplink requires `cells_per_link`
/// cells, downlinks none — the Fig. 11 sweep's demand model (sensor data
/// flows toward the gateway; at rate 8 this fills the 199-slot frame almost
/// exactly, the regime the paper sweeps).
#[must_use]
pub fn uniform_uplink_requirements(tree: &Tree, cells_per_link: u32) -> harp_core::Requirements {
    let mut reqs = harp_core::Requirements::new();
    for v in tree.nodes().skip(1) {
        reqs.set(tsch_sim::Link::up(v), cells_per_link);
    }
    reqs
}

/// Aggregated (forwarding-aware) requirements for one echo task per node at
/// a uniform rate — the testbed workload's demand model, where a parent
/// forwards its whole subtree's packets (`r(e) = rate × subtree size`).
#[must_use]
pub fn aggregated_echo_requirements(tree: &Tree, rate: Rate) -> harp_core::Requirements {
    harp_core::Requirements::from_tasks(tree, &echo_task_per_node(tree, rate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::TaskKind;

    #[test]
    fn echo_tasks_cover_all_non_gateway_nodes() {
        let tree = Tree::paper_fig1_example();
        let tasks = echo_task_per_node(&tree, Rate::per_slotframe(2));
        assert_eq!(tasks.len(), tree.len() - 1);
        for t in &tasks {
            assert_eq!(t.kind, TaskKind::Echo);
            assert_eq!(t.rate, Rate::per_slotframe(2));
            assert_ne!(t.source, tree.root());
        }
        // Unique ids.
        let mut ids: Vec<u32> = tasks.iter().map(|t| t.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len());
    }

    #[test]
    fn uplink_tasks_are_uplink_only() {
        let tree = Tree::paper_fig1_example();
        let tasks = uplink_task_per_node(&tree, Rate::per_slotframe(3));
        assert!(tasks.iter().all(|t| t.kind == TaskKind::UplinkOnly));
    }

    #[test]
    fn task_id_lookup_matches_enumeration() {
        let tree = Tree::paper_fig1_example();
        let tasks = echo_task_per_node(&tree, Rate::per_slotframe(1));
        for t in &tasks {
            assert_eq!(task_id_of(&tree, t.source), Some(t.id));
        }
        assert_eq!(task_id_of(&tree, tree.root()), None);
    }
}
