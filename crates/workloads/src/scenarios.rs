//! Canned experiment scenarios mirroring the paper's setups.

use crate::topo_gen::TopologyConfig;
use tsch_sim::{NodeId, Tree};

/// A fixed 50-node, 5-layer tree standing in for the testbed topology of
/// Fig. 7(c).
///
/// The paper's exact node placement is not published; this deterministic
/// stand-in has the same node count, depth, and a comparable branching
/// profile (a handful of layer-1 relays, wider middle layers, sparse leaves
/// at layer 5), which is what the latency and adjustment experiments depend
/// on.
///
/// # Examples
///
/// ```
/// use workloads::testbed_50_node_tree;
///
/// let tree = testbed_50_node_tree();
/// assert_eq!(tree.len(), 50);
/// assert_eq!(tree.layers(), 5);
/// ```
#[must_use]
pub fn testbed_50_node_tree() -> Tree {
    // (child, parent) pairs. Gateway 0; layer 1: 1-4; layer 2: 5-16;
    // layer 3: 17-32; layer 4: 33-44; layer 5: 45-49.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    // Layer 1: four relays under the gateway.
    for c in 1..=4 {
        pairs.push((c, 0));
    }
    // Layer 2: three children per relay.
    for (i, c) in (5..=16).enumerate() {
        pairs.push((c, 1 + (i / 3) as u32));
    }
    // Layer 3: sixteen nodes spread over layer 2 (nodes 5..=12 get two each).
    for (i, c) in (17..=32).enumerate() {
        pairs.push((c, 5 + (i / 2) as u32));
    }
    // Layer 4: twelve nodes under the first twelve layer-3 nodes.
    for (i, c) in (33..=44).enumerate() {
        pairs.push((c, 17 + i as u32));
    }
    // Layer 5: five leaves under the first five layer-4 nodes.
    for (i, c) in (45..=49).enumerate() {
        pairs.push((c, 33 + i as u32));
    }
    Tree::from_parents(&pairs)
}

/// The node the paper's Fig. 10 follows through rate changes. In our
/// stand-in topology node 15 is a layer-2 node, as in the paper's narrative
/// (its adjustment resolves within one hop).
#[must_use]
pub fn fig10_observed_node() -> NodeId {
    NodeId(15)
}

/// The random-topology batch of Fig. 11: 100 seeded 50-node, 5-layer trees.
#[must_use]
pub fn fig11_topologies() -> Vec<Tree> {
    TopologyConfig::paper_50_node().generate_batch(0xF1_611, 100)
}

/// The topology family of Fig. 12: 81-node, 10-layer trees.
#[must_use]
pub fn fig12_topologies(count: usize) -> Vec<Tree> {
    TopologyConfig::paper_81_node().generate_batch(0xF1_612, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_tree_shape() {
        let tree = testbed_50_node_tree();
        assert_eq!(tree.len(), 50);
        assert_eq!(tree.layers(), 5);
        assert_eq!(tree.nodes_at_depth(1).len(), 4);
        assert_eq!(tree.nodes_at_depth(2).len(), 12);
        assert_eq!(tree.nodes_at_depth(3).len(), 16);
        assert_eq!(tree.nodes_at_depth(4).len(), 12);
        assert_eq!(tree.nodes_at_depth(5).len(), 5);
    }

    #[test]
    fn observed_node_is_layer_two() {
        let tree = testbed_50_node_tree();
        assert_eq!(tree.depth(fig10_observed_node()), 2);
    }

    #[test]
    fn fig11_batch_has_100_valid_topologies() {
        let batch = fig11_topologies();
        assert_eq!(batch.len(), 100);
        for t in &batch {
            assert_eq!(t.len(), 50);
            assert_eq!(t.layers(), 5);
        }
    }

    #[test]
    fn fig12_topologies_have_ten_layers() {
        for t in fig12_topologies(3) {
            assert_eq!(t.len(), 81);
            assert_eq!(t.layers(), 10);
        }
    }
}
