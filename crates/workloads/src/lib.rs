//! Workload generation for the HARP reproduction: seeded random topologies,
//! task sets, traffic-change event streams and the canned scenarios used by
//! the paper's experiments.
//!
//! # Examples
//!
//! ```
//! use tsch_sim::Rate;
//! use workloads::{echo_task_per_node, TopologyConfig};
//!
//! let tree = TopologyConfig::paper_50_node().generate(7);
//! let tasks = echo_task_per_node(&tree, Rate::per_slotframe(1));
//! assert_eq!(tasks.len(), 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamics;
mod mesh;
mod scenarios;
mod tasks;
mod topo_gen;

pub use dynamics::{fig10_rate_steps, uplink_demand_after_change, TrafficChange};
pub use mesh::{ForestTree, Mesh};
pub use scenarios::{
    fig10_observed_node, fig11_topologies, fig12_topologies, testbed_50_node_tree,
};
pub use tasks::{
    aggregated_echo_requirements, echo_task_per_node, task_id_of, uniform_link_requirements,
    uniform_uplink_requirements, uplink_task_per_node,
};
pub use topo_gen::TopologyConfig;
