//! Workload generation for the HARP reproduction: seeded random topologies,
//! task sets, traffic-change event streams and the canned scenarios used by
//! the paper's experiments.
//!
//! # Examples
//!
//! ```
//! use tsch_sim::Rate;
//! use workloads::{echo_task_per_node, TopologyConfig};
//!
//! let tree = TopologyConfig::paper_50_node().generate(7);
//! let tasks = echo_task_per_node(&tree, Rate::per_slotframe(1));
//! assert_eq!(tasks.len(), 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamics;
mod mesh;
mod scale;
pub mod scenario_dsl;
mod scenarios;
mod tasks;
mod topo_gen;

pub use dynamics::{fig10_rate_steps, uplink_demand_after_change, TrafficChange};
pub use mesh::{ForestTree, Mesh};
pub use scale::{
    scale_scenario, ScaleScenario, SCALE_SIZES, SCALE_SOURCES_PER_SUBTREE, SCALE_SUBTREES,
};
pub use scenarios::{
    fig10_observed_node, fig11_topologies, fig12_topologies, testbed_50_node_tree,
};
pub use tasks::{
    aggregated_echo_requirements, echo_task_per_node, task_id_of, uniform_link_requirements,
    uniform_uplink_requirements, uplink_task_per_node,
};
pub use topo_gen::TopologyConfig;

/// Process-wide activity counters of the workload generators.
///
/// Always-on relaxed atomics ([`harp_obs::StaticCounter`]) — generators are
/// free functions with no state to hang an [`harp_obs::Obs`] handle on. One
/// fetch-add per generated artefact; fold into a snapshot with
/// [`harp_obs::MetricsSnapshot::add_counters`] via [`totals`](obs::totals).
pub mod obs {
    use harp_obs::StaticCounter;

    /// Random trees generated ([`TopologyConfig::generate`](crate::TopologyConfig::generate)).
    pub static TOPOLOGIES_GENERATED: StaticCounter = StaticCounter::new();
    /// Periodic tasks generated (the `*_task_per_node` helpers).
    pub static TASKS_GENERATED: StaticCounter = StaticCounter::new();

    /// Current totals, in the shape
    /// [`MetricsSnapshot::add_counters`](harp_obs::MetricsSnapshot::add_counters)
    /// accepts. Process-wide and monotonic.
    #[must_use]
    pub fn totals() -> [(&'static str, u64); 2] {
        [
            ("workloads.topologies_generated", TOPOLOGIES_GENERATED.get()),
            ("workloads.tasks_generated", TASKS_GENERATED.get()),
        ]
    }
}
