//! Property-based tests of the workload generators: random trees, meshes
//! and their decomposition, and demand models.

use proptest::prelude::*;
use tsch_sim::{Direction, Link, Rate};
use workloads::{Mesh, TopologyConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_trees_match_their_configuration(
        nodes in 10u16..60,
        layers in 2u32..6,
        seed in 0u64..1000,
    ) {
        prop_assume!(u32::from(nodes) > layers);
        let cfg = TopologyConfig { nodes, layers, max_children: 10 };
        let tree = cfg.generate(seed);
        prop_assert_eq!(tree.len(), usize::from(nodes));
        prop_assert_eq!(tree.layers(), layers);
        for v in tree.nodes() {
            prop_assert!(tree.children(v).len() <= 10);
            prop_assert!(tree.depth(v) <= layers);
        }
    }

    #[test]
    fn mesh_decomposition_invariants(
        nodes in 5u16..40,
        radius in 0.15f64..0.5,
        seed in 0u64..500,
    ) {
        let mesh = Mesh::random_geometric(nodes, radius, seed);
        let (tree, extra) = mesh.routing_tree();
        // Every node routed.
        prop_assert_eq!(tree.len(), usize::from(nodes));
        // Edge partition: tree edges + interference edges = radio edges.
        prop_assert_eq!(extra.len() + tree.len() - 1, mesh.edges().len());
        // Interference edges really are non-tree radio edges.
        for &(a, b) in &extra {
            prop_assert!(tree.parent(a) != Some(b) && tree.parent(b) != Some(a));
            let key = if a < b { (a, b) } else { (b, a) };
            prop_assert!(mesh.edges().contains(&key));
        }
        // BFS optimality: depth(v) is the hop distance in the mesh.
        for v in tree.nodes() {
            for w in mesh.neighbors(v) {
                prop_assert!(tree.depth(v) <= tree.depth(w) + 1);
            }
        }
    }

    #[test]
    fn aggregated_demand_equals_rate_times_subtree(
        nodes in 5u16..30,
        layers in 2u32..5,
        rate in 1u32..4,
        seed in 0u64..200,
    ) {
        prop_assume!(u32::from(nodes) > layers);
        let tree = TopologyConfig { nodes, layers, max_children: 8 }.generate(seed);
        let reqs =
            workloads::aggregated_echo_requirements(&tree, Rate::per_slotframe(rate));
        for v in tree.nodes().skip(1) {
            let expected = rate * tree.subtree_size(v);
            prop_assert_eq!(reqs.get(Link::up(v)), expected);
            prop_assert_eq!(reqs.get(Link::down(v)), expected);
        }
    }

    #[test]
    fn uniform_demand_models_cover_expected_links(
        nodes in 5u16..30,
        cells in 1u32..5,
    ) {
        let tree = TopologyConfig { nodes, layers: 2, max_children: 32 }.generate(1);
        let both = workloads::uniform_link_requirements(&tree, cells);
        let up_only = workloads::uniform_uplink_requirements(&tree, cells);
        prop_assert_eq!(both.total(Direction::Up), both.total(Direction::Down));
        prop_assert_eq!(up_only.total(Direction::Down), 0);
        prop_assert_eq!(
            up_only.total(Direction::Up),
            u64::from(cells) * (u64::from(nodes) - 1)
        );
    }

    #[test]
    fn demand_recomputation_is_consistent_with_task_model(
        seed in 0u64..100,
        new_rate_num in 1u32..6,
    ) {
        // uplink_demand_after_change must agree with recomputing the whole
        // task set from scratch.
        let tree = TopologyConfig { nodes: 20, layers: 4, max_children: 6 }.generate(seed);
        let base = Rate::per_slotframe(1);
        let new_rate = Rate::per_slotframe(new_rate_num);
        let node = tree.nodes_at_depth(tree.layers())[0];
        let incremental =
            workloads::uplink_demand_after_change(&tree, node, base, new_rate);

        // Oracle: rebuild the task set with the changed rate.
        let mut tasks = workloads::echo_task_per_node(&tree, base);
        for t in &mut tasks {
            if t.source == node {
                t.rate = new_rate;
            }
        }
        let oracle = harp_core::Requirements::from_tasks(&tree, &tasks);
        for (link, cells) in incremental {
            prop_assert_eq!(cells, oracle.get(link), "{}", link);
        }
    }
}
