//! Seeded randomized tests of the workload generators: random trees, meshes
//! and their decomposition, and demand models.

use tsch_sim::{Direction, Link, Rate, SplitMix64};
use workloads::{Mesh, TopologyConfig};

#[test]
fn random_trees_match_their_configuration() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0x7E_EE ^ case);
        let nodes = 10 + rng.next_below(50) as u32;
        let layers = 2 + rng.next_below(4) as u32;
        let seed = rng.next_below(1000);
        if nodes <= layers {
            continue;
        }
        let cfg = TopologyConfig {
            nodes,
            layers,
            max_children: 10,
        };
        let tree = cfg.generate(seed);
        assert_eq!(tree.len(), nodes as usize, "case {case}");
        assert_eq!(tree.layers(), layers, "case {case}");
        for v in tree.nodes() {
            assert!(tree.children(v).len() <= 10, "case {case}");
            assert!(tree.depth(v) <= layers, "case {case}");
        }
    }
}

#[test]
fn mesh_decomposition_invariants() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0x3E_5A ^ case);
        let nodes = 5 + rng.next_below(35) as u32;
        let radius = 0.15 + rng.next_f64() * 0.35;
        let seed = rng.next_below(500);
        let mesh = Mesh::random_geometric(nodes, radius, seed);
        let (tree, extra) = mesh.routing_tree();
        // Every node routed.
        assert_eq!(tree.len(), nodes as usize, "case {case}");
        // Edge partition: tree edges + interference edges = radio edges.
        assert_eq!(
            extra.len() + tree.len() - 1,
            mesh.edges().len(),
            "case {case}"
        );
        // Interference edges really are non-tree radio edges.
        for &(a, b) in &extra {
            assert!(
                tree.parent(a) != Some(b) && tree.parent(b) != Some(a),
                "case {case}"
            );
            let key = if a < b { (a, b) } else { (b, a) };
            assert!(mesh.edges().contains(&key), "case {case}");
        }
        // BFS optimality: depth(v) is the hop distance in the mesh.
        for v in tree.nodes() {
            for w in mesh.neighbors(v) {
                assert!(tree.depth(v) <= tree.depth(w) + 1, "case {case}");
            }
        }
    }
}

#[test]
fn aggregated_demand_equals_rate_times_subtree() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xA6_6E ^ case);
        let nodes = 5 + rng.next_below(25) as u32;
        let layers = 2 + rng.next_below(3) as u32;
        let rate = 1 + rng.next_below(3) as u32;
        let seed = rng.next_below(200);
        if nodes <= layers {
            continue;
        }
        let tree = TopologyConfig {
            nodes,
            layers,
            max_children: 8,
        }
        .generate(seed);
        let reqs = workloads::aggregated_echo_requirements(&tree, Rate::per_slotframe(rate));
        for v in tree.nodes().skip(1) {
            let expected = rate * tree.subtree_size(v);
            assert_eq!(reqs.get(Link::up(v)), expected, "case {case}");
            assert_eq!(reqs.get(Link::down(v)), expected, "case {case}");
        }
    }
}

#[test]
fn uniform_demand_models_cover_expected_links() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0x0D_E1 ^ case);
        let nodes = 5 + rng.next_below(25) as u32;
        let cells = 1 + rng.next_below(4) as u32;
        let tree = TopologyConfig {
            nodes,
            layers: 2,
            max_children: 32,
        }
        .generate(1);
        let both = workloads::uniform_link_requirements(&tree, cells);
        let up_only = workloads::uniform_uplink_requirements(&tree, cells);
        assert_eq!(
            both.total(Direction::Up),
            both.total(Direction::Down),
            "case {case}"
        );
        assert_eq!(up_only.total(Direction::Down), 0, "case {case}");
        assert_eq!(
            up_only.total(Direction::Up),
            u64::from(cells) * (u64::from(nodes) - 1),
            "case {case}"
        );
    }
}

#[test]
fn demand_recomputation_is_consistent_with_task_model() {
    // uplink_demand_after_change must agree with recomputing the whole
    // task set from scratch.
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xDE_CA ^ case);
        let seed = rng.next_below(100);
        let new_rate_num = 1 + rng.next_below(5) as u32;
        let tree = TopologyConfig {
            nodes: 20,
            layers: 4,
            max_children: 6,
        }
        .generate(seed);
        let base = Rate::per_slotframe(1);
        let new_rate = Rate::per_slotframe(new_rate_num);
        let node = tree.nodes_at_depth(tree.layers())[0];
        let incremental = workloads::uplink_demand_after_change(&tree, node, base, new_rate);

        // Oracle: rebuild the task set with the changed rate.
        let mut tasks = workloads::echo_task_per_node(&tree, base);
        for t in &mut tasks {
            if t.source == node {
                t.rate = new_rate;
            }
        }
        let oracle = harp_core::Requirements::from_tasks(&tree, &tasks);
        for (link, cells) in incremental {
            assert_eq!(cells, oracle.get(link), "case {case}: {link}");
        }
    }
}
