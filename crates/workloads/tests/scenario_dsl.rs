//! Scenario DSL: grammar round-trips, positioned diagnostics, and the
//! lowering of frame-denominated fault directives onto exact-ASN plans.

use tsch_sim::{Asn, FaultAction, Link, NodeId, Rate, TaskId};
use workloads::scenario_dsl::{
    parse_scenario, DemandModel, FaultSpec, LinkSel, ReportMode, TopologySpec,
};
use workloads::testbed_50_node_tree;

const FULL: &str = "\
# A kitchen-sink scenario exercising every directive.
scenario storm          # trailing comments are fine
seed 0xF10
frames 100

[topology]
generator testbed50

[scheduler]
slots 199
channels 16
control_pdr 1.0 0.95 0.9

[workloads]
demand echo rate=3/2
headroom node=15 cells=1
rate_step node=15 at_frame=30 rate=3
demand_step link=up:5 delta=2
demand_step link=deepest delta=1

[faults]
crash node=7 at_frame=10 restart_frame=20
gateway_failover at_frame=30 frames=5
pdr_window link=up:9 from_frame=12 frames=8 pdr=0.5
partition subtree=3 at_frame=40 frames=6
burst node=21 at_frame=8 packets=20
reparent node=45 to=2 at_frame=25

[report]
file BENCH_storm.json
mode replicates repeats=4
";

#[test]
fn full_grammar_round_trips() {
    let s = parse_scenario(FULL).unwrap();
    assert_eq!(s.name, "storm");
    assert_eq!(s.seed, 0xF10);
    assert_eq!(s.frames, 100);
    assert_eq!(s.topology, TopologySpec::Testbed50);
    assert_eq!(s.scheduler.slots, 199);
    assert_eq!(s.scheduler.channels, 16);
    assert_eq!(s.scheduler.control_pdrs, vec![1.0, 0.95, 0.9]);
    assert_eq!(
        s.workload.demand,
        DemandModel::Echo(Rate::new(3, 2).unwrap())
    );
    let h = s.workload.headroom.unwrap();
    assert_eq!((h.node, h.cells), (15, 1));
    assert_eq!(s.workload.rate_steps.len(), 1);
    assert_eq!(s.workload.rate_steps[0].rate, Rate::per_slotframe(3));
    assert_eq!(s.workload.demand_steps.len(), 2);
    assert_eq!(s.workload.demand_steps[1].link, LinkSel::Deepest);
    assert_eq!(s.faults.len(), 6);
    assert!(matches!(
        s.faults[0],
        FaultSpec::Crash {
            node: 7,
            at_frame: 10,
            restart_frame: Some(20)
        }
    ));
    assert_eq!(s.report.file.as_deref(), Some("BENCH_storm.json"));
    assert_eq!(s.report.mode, ReportMode::Replicates { repeats: 4 });
}

#[test]
fn defaults_fill_omitted_sections() {
    let s = parse_scenario("scenario tiny\n").unwrap();
    assert_eq!(s.seed, 0);
    assert_eq!(s.frames, 100);
    assert_eq!(s.topology, TopologySpec::Testbed50);
    assert_eq!(s.scheduler.slots, 199);
    assert_eq!(s.scheduler.control_pdrs, vec![1.0]);
    assert_eq!(s.workload.demand, DemandModel::Echo(Rate::per_slotframe(1)));
    assert_eq!(s.report.mode, ReportMode::Replicates { repeats: 1 });
    assert!(s.report.file.is_none());
}

#[test]
fn explicit_links_build_a_tree() {
    let s = parse_scenario("scenario chain\n[topology]\nlink 1 0\nlink 2 1\n").unwrap();
    assert_eq!(s.topology, TopologySpec::Explicit(vec![(1, 0), (2, 1)]));
    let trees = s.trees(false);
    assert_eq!(trees.len(), 1);
    assert_eq!(trees[0].len(), 3);
}

#[test]
fn random_generator_quick_count() {
    let s = parse_scenario(
        "scenario r\n[topology]\ngenerator random nodes=20 layers=4 count=5 quick_count=2 seed=9\n",
    )
    .unwrap();
    assert_eq!(s.trees(false).len(), 5);
    assert_eq!(s.trees(true).len(), 2);
}

fn err_of(text: &str) -> (usize, usize, String) {
    let e = parse_scenario(text).unwrap_err();
    (e.line, e.col, e.msg)
}

#[test]
fn diagnostics_carry_line_and_column() {
    // Unknown section, positioned at the header token.
    let (line, col, msg) = err_of("scenario x\n[bogus]\n");
    assert_eq!((line, col), (2, 1));
    assert!(msg.contains("unknown section"));

    // Bad value, positioned at the value's token.
    let (line, col, msg) = err_of("scenario x\n[faults]\ncrash node=7 at_frame=ten\n");
    assert_eq!(line, 3);
    assert_eq!(col, 14, "column points at `at_frame=ten`");
    assert!(msg.contains("invalid value"));

    // Display formats as line/column.
    let e = parse_scenario("nonsense\n").unwrap_err();
    assert_eq!(e.to_string(), format!("line 1, column 1: {}", e.msg));
}

#[test]
fn semantic_checks_reject_bad_directives() {
    for (text, needle) in [
        ("frames 0\nscenario x\n", "positive"),
        ("scenario x\n[topology]\n[topology]\n", "duplicate section"),
        ("scenario x\n[scheduler]\ncontrol_pdr 1.5\n", "[0, 1]"),
        (
            "scenario x\n[faults]\ncrash node=1 at_frame=5 restart_frame=5\n",
            "after `at_frame`",
        ),
        (
            "scenario x\n[faults]\nmeteor node=1\n",
            "unknown fault kind",
        ),
        (
            "scenario x\n[faults]\ncrash node=1 at_frame=5 color=red\n",
            "unknown argument",
        ),
        (
            "scenario x\n[report]\nmode replicates repeats=0\n",
            "positive",
        ),
        ("scenario x\n[report]\nmode adjustments\n", "demand_step"),
        ("scenario x\n[report]\nmode churn\n", "fault"),
        ("[topology]\n", "missing `scenario"),
    ] {
        let e = parse_scenario(text).unwrap_err();
        assert!(
            e.msg.contains(needle),
            "for {text:?}: expected {needle:?} in {:?}",
            e.msg
        );
    }
}

#[test]
fn fault_plan_lowers_frames_to_exact_asns() {
    let s = parse_scenario(FULL).unwrap();
    let tree = testbed_50_node_tree();
    let plan = s.data_fault_plan(&tree).unwrap();
    let slots = 199u64;
    let events = plan.events();
    // crash + restart, failover down + up, pdr degrade + restore,
    // partition 2 masks + 2 unmasks, burst = 11; reparent is excluded.
    assert_eq!(events.len(), 11);
    assert!(events.contains(&(Asn(10 * slots), FaultAction::NodeDown(NodeId(7)))));
    assert!(events.contains(&(Asn(20 * slots), FaultAction::NodeUp(NodeId(7)))));
    assert!(events.contains(&(Asn(30 * slots), FaultAction::NodeDown(NodeId(0)))));
    assert!(events.contains(&(Asn(35 * slots), FaultAction::NodeUp(NodeId(0)))));
    assert!(events.contains(&(
        Asn(12 * slots),
        FaultAction::LinkPdr(Link::up(NodeId(9)), 0.5)
    )));
    assert!(events.contains(&(
        Asn(20 * slots),
        FaultAction::LinkPdr(Link::up(NodeId(9)), 1.0)
    )));
    assert!(events.contains(&(
        Asn(40 * slots),
        FaultAction::LinkMask(Link::up(NodeId(3)), true)
    )));
    assert!(events.contains(&(
        Asn(46 * slots),
        FaultAction::LinkMask(Link::down(NodeId(3)), false)
    )));
    // Burst resolves the node's task id under the echo demand model.
    let task = workloads::task_id_of(&tree, NodeId(21)).unwrap();
    assert!(events.contains(&(Asn(8 * slots), FaultAction::TaskBurst(task, 20))));
    assert_eq!(s.reparent_events(), vec![(25, 45, 2)]);
}

#[test]
fn deepest_resolves_to_last_populated_layer() {
    let s = parse_scenario("scenario d\n[workloads]\ndemand uniform cells=1\n").unwrap();
    let tree = testbed_50_node_tree();
    let link = LinkSel::Deepest.resolve(&tree).unwrap();
    // Testbed layer 5 starts at node 45.
    assert_eq!(link, Link::up(NodeId(45)));
    assert!(matches!(s.workload.demand, DemandModel::Uniform(1)));
}

#[test]
fn compile_rejects_out_of_tree_references() {
    let tree = testbed_50_node_tree();
    for (faults, needle) in [
        ("crash node=99 at_frame=1", "outside the tree"),
        ("partition subtree=0 at_frame=1 frames=2", "gateway"),
        (
            "pdr_window link=up:88 from_frame=1 frames=2 pdr=0.5",
            "outside the tree",
        ),
        ("burst node=0 at_frame=1 packets=3", "no task"),
    ] {
        let text = format!("scenario bad\n[faults]\n{faults}\n");
        let s = parse_scenario(&text).unwrap();
        let e = s.data_fault_plan(&tree).unwrap_err();
        assert!(e.contains(needle), "for {faults:?}: got {e:?}");
    }
}

#[test]
fn scenario_tasks_match_demand_model() {
    let s = parse_scenario("scenario t\n[workloads]\ndemand echo rate=2\n").unwrap();
    let tree = testbed_50_node_tree();
    let tasks = s.tasks(&tree);
    assert_eq!(tasks.len(), 49);
    assert_eq!(tasks[0].rate, Rate::per_slotframe(2));
    assert!(s.requirements(&tree).total(tsch_sim::Direction::Up) > 0);
    assert_eq!(tasks[0].id, TaskId(0));
}
