//! Seeded randomized tests of the simulator's conservation and timing
//! invariants.
//!
//! Inputs are drawn from the crate's own [`SplitMix64`] generator, so every
//! case is reproducible from the fixed seeds below and the suite builds
//! offline with no external property-testing dependency.

use std::sync::Arc;
use tsch_sim::{
    Cell, Direction, Link, NetworkSchedule, NodeId, Packet, Rate, SimulatorBuilder,
    SlotframeConfig, SplitMix64, Task, TaskId, Tree,
};

/// Arbitrary parent-pointer tree: node `i + 1` attaches to a random earlier
/// node, giving between 2 and `max_nodes` nodes.
fn random_tree(rng: &mut SplitMix64, max_nodes: usize) -> Tree {
    let edges = 1 + rng.next_below(max_nodes as u64 - 1) as usize;
    let mut pairs = Vec::with_capacity(edges);
    for i in 0..edges {
        pairs.push(((i + 1) as u32, rng.next_below(i as u64 + 1) as u32));
    }
    Tree::from_parents(&pairs)
}

/// A collision-free uplink schedule: every link gets one dedicated cell,
/// scheduled deepest-first (compliant order), cells enumerated across
/// channels.
fn chain_schedule(tree: &Tree, config: SlotframeConfig) -> NetworkSchedule {
    let mut schedule = NetworkSchedule::new(config);
    let mut links = tree.links(Direction::Up);
    links.sort_by_key(|&l| std::cmp::Reverse(tree.layer_of_link(l)));
    for (i, link) in links.into_iter().enumerate() {
        let slot = (i as u32) % config.slots;
        let channel = ((i as u32) / config.slots) as u16;
        schedule
            .assign(Cell::new(slot, channel % config.channels), link)
            .expect("distinct cells");
    }
    schedule
}

#[test]
fn packet_conservation() {
    // generated = delivered + queued + dropped, always.
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0xC0_5E ^ case);
        let tree = random_tree(&mut rng, 16);
        let frames = 1 + rng.next_below(5);
        let config = SlotframeConfig::new(32, 4, 10_000).unwrap();
        let schedule = chain_schedule(&tree, config);
        let mut builder = SimulatorBuilder::new(tree.clone(), config).schedule(schedule);
        for (i, v) in tree.nodes().skip(1).enumerate() {
            builder = builder
                .task(Task::uplink(TaskId(i as u32), v, Rate::per_slotframe(1)))
                .unwrap();
        }
        let mut sim = builder.build();
        sim.run_slotframes(frames);
        let stats = sim.stats();
        assert_eq!(
            stats.generated,
            stats.deliveries.len() as u64 + sim.queued_packets() as u64 + stats.queue_drops,
            "case {case}"
        );
    }
}

#[test]
fn one_cell_per_link_uplink_delivers_everything_eventually() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0xDE_11 ^ case);
        let tree = random_tree(&mut rng, 12);
        let config = SlotframeConfig::new(32, 4, 10_000).unwrap();
        let schedule = chain_schedule(&tree, config);
        let mut builder = SimulatorBuilder::new(tree.clone(), config).schedule(schedule);
        for (i, v) in tree.nodes().skip(1).enumerate() {
            // A single packet per node (released in frame 0 only): with one
            // dedicated cell per link, everything must eventually arrive.
            builder = builder
                .task(Task::uplink(
                    TaskId(i as u32),
                    v,
                    Rate::new(1, 10_000).unwrap(),
                ))
                .unwrap();
        }
        let mut sim = builder.build();
        // Horizon: the most congested link serves a whole subtree at one
        // cell per frame, plus the path depth.
        sim.run_slotframes(tree.len() as u64 + u64::from(tree.layers()) + 1);
        assert!(sim.stats().generated > 0, "case {case}");
        assert_eq!(
            sim.stats().deliveries.len() as u64,
            sim.stats().generated,
            "case {case}"
        );
        assert_eq!(sim.stats().collisions, 0, "case {case}");
    }
}

#[test]
fn latency_respects_hop_count() {
    // A packet from depth d needs at least d slots to reach the root.
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0x1A_7E ^ case);
        let tree = random_tree(&mut rng, 12);
        let config = SlotframeConfig::new(64, 4, 10_000).unwrap();
        let schedule = chain_schedule(&tree, config);
        let mut builder = SimulatorBuilder::new(tree.clone(), config).schedule(schedule);
        for (i, v) in tree.nodes().skip(1).enumerate() {
            builder = builder
                .task(Task::uplink(TaskId(i as u32), v, Rate::new(1, 8).unwrap()))
                .unwrap();
        }
        let mut sim = builder.build();
        sim.run_slotframes(10);
        for d in &sim.stats().deliveries {
            let depth = tree.depth(d.source);
            assert!(
                d.latency_slots() >= u64::from(depth),
                "case {case}: {} at depth {depth} delivered in {} slots",
                d.source,
                d.latency_slots()
            );
        }
    }
}

#[test]
fn rate_release_counts_are_exact() {
    for case in 0..200u64 {
        let mut rng = SplitMix64::new(0x4A_7E ^ case);
        let packets = 1 + rng.next_below(5) as u32;
        let per = 1 + rng.next_below(4) as u32;
        let frames = 1 + rng.next_below(39);
        let rate = Rate::new(packets, per).unwrap();
        let released: u64 = (0..frames)
            .map(|f| u64::from(rate.packets_in_slotframe(f)))
            .sum();
        let exact = u64::from(packets) * frames / u64::from(per);
        // Accumulated releases never drift more than one period's worth.
        assert!(released >= exact, "case {case}");
        assert!(released <= exact + u64::from(packets), "case {case}");
    }
}

#[test]
fn packet_route_traversal_never_skips() {
    for hops in 1usize..8 {
        let route: Arc<[NodeId]> = (0..=hops as u32).map(NodeId).collect();
        let mut p = Packet::new(TaskId(0), 0, tsch_sim::Asn(0), route);
        let mut visited = vec![p.holder()];
        while !p.is_delivered() {
            p.advance();
            visited.push(p.holder());
        }
        assert_eq!(visited.len(), hops + 1);
        let _ = Link::up(NodeId(0));
    }
}
