//! Determinism regression: the dense-index fast path must be observationally
//! identical to the straightforward map-based engine it replaced.
//!
//! The reference is [`tsch_sim::reference::ReferenceSimulator`] — per-link
//! queues in a `BTreeMap<Link, VecDeque<_>>`, a `links_on` probe for every
//! (slot, channel) pair, pairwise interference checks on every occupied
//! cell. Both engines consume the same `SplitMix64` stream, so any
//! divergence in RNG call order, cell execution order, or retry/drop
//! bookkeeping shows up as a stats or trace mismatch.

use tsch_sim::reference::ReferenceSimulator;
use tsch_sim::{
    Cell, Link, LinkQuality, NetworkSchedule, NodeId, Rate, Simulator, SimulatorBuilder,
    SlotframeConfig, SplitMix64, Task, TaskId, TraceEvent, Tree,
};

fn random_tree(rng: &mut SplitMix64, max_nodes: usize) -> Tree {
    let edges = 1 + rng.next_below(max_nodes as u64 - 1) as usize;
    let mut pairs = Vec::with_capacity(edges);
    for i in 0..edges {
        pairs.push(((i + 1) as u32, rng.next_below(i as u64 + 1) as u32));
    }
    Tree::from_parents(&pairs)
}

/// A schedule with shared cells and imperfect links, to exercise the
/// collision and loss paths, not just clean delivery.
fn random_scenario(
    rng: &mut SplitMix64,
    tree: &Tree,
    config: SlotframeConfig,
) -> (NetworkSchedule, LinkQuality, Vec<Task>) {
    let mut schedule = NetworkSchedule::new(config);
    let mut quality = LinkQuality::perfect();
    for v in tree.nodes().skip(1) {
        for link in [Link::up(v), Link::down(v)] {
            let cells = 1 + rng.next_below(3);
            for _ in 0..cells {
                let cell = Cell::new(
                    rng.next_below(u64::from(config.slots)) as u32,
                    rng.next_below(u64::from(config.channels)) as u16,
                );
                // Duplicate (cell, link) draws are legal to skip: both
                // engines consume the schedule, not the draw sequence.
                let _ = schedule.assign(cell, link);
            }
            if rng.chance(0.4) {
                quality.set_pdr(link, 0.3 + 0.7 * rng.next_f64()).unwrap();
            }
        }
    }
    let tasks: Vec<Task> = tree
        .nodes()
        .skip(1)
        .map(|v| {
            let rate = Rate::per_slotframe(1 + rng.next_below(2) as u32);
            if rng.chance(0.5) {
                Task::echo(TaskId(v.0), v, rate)
            } else {
                Task::uplink(TaskId(v.0), v, rate)
            }
        })
        .collect();
    (schedule, quality, tasks)
}

fn assert_equivalent(dense: &Simulator, reference: &ReferenceSimulator, label: &str) {
    let d = dense.stats();
    let r = reference.stats();
    assert_eq!(d.deliveries, r.deliveries, "{label}: deliveries");
    assert_eq!(d.tx_attempts, r.tx_attempts, "{label}: tx_attempts");
    assert_eq!(
        d.tx_attempts_per_link(),
        r.tx_attempts_per_link(),
        "{label}: per-link attempts"
    );
    assert_eq!(d.collisions, r.collisions, "{label}: collisions");
    assert_eq!(d.losses, r.losses, "{label}: losses");
    assert_eq!(d.queue_drops, r.queue_drops, "{label}: queue_drops");
    assert_eq!(d.generated, r.generated, "{label}: generated");
    assert_eq!(
        d.queue_high_water(),
        r.queue_high_water(),
        "{label}: queue high-water"
    );
    assert_eq!(
        d.slots_simulated, r.slots_simulated,
        "{label}: slots simulated"
    );
    let dense_trace: Vec<TraceEvent> = dense.trace().iter().copied().collect();
    assert_eq!(dense_trace, reference.trace(), "{label}: trace events");
}

#[test]
fn dense_engine_matches_reference_on_random_scenarios() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x000D_E25E ^ case);
        let tree = random_tree(&mut rng, 24);
        let config = SlotframeConfig::new(20, 4, 10_000).unwrap();
        let (schedule, quality, tasks) = random_scenario(&mut rng, &tree, config);
        let seed = rng.next_u64();
        let frames = 12;

        let mut builder = SimulatorBuilder::new(tree.clone(), config)
            .schedule(schedule.clone())
            .quality(quality.clone())
            .seed(seed)
            .trace_capacity(1 << 20);
        for task in &tasks {
            builder = builder.task(task.clone()).unwrap();
        }
        let mut dense = builder.build();
        dense.run_slotframes(frames);

        let mut reference = ReferenceSimulator::new(tree, config, schedule, quality, seed, &tasks);
        reference.run_slotframes(frames);

        assert_equivalent(&dense, &reference, &format!("case {case}"));
    }
}

#[test]
fn sparse_conflicts_match_reference_with_extra_radio_edges() {
    // Extra (non-tree) radio edges exercise the candidate-set CSR build:
    // the sparse adjacency must capture exactly the conflicts the
    // reference probes pairwise on every occupied cell.
    use tsch_sim::TwoHopInterference;
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(0x0E_D6E5 ^ case);
        let tree = random_tree(&mut rng, 24);
        let config = SlotframeConfig::new(20, 4, 10_000).unwrap();
        let (schedule, quality, tasks) = random_scenario(&mut rng, &tree, config);
        let n = tree.len() as u64;
        let edges: Vec<(NodeId, NodeId)> = (0..4)
            .map(|_| {
                (
                    NodeId(rng.next_below(n) as u32),
                    NodeId(rng.next_below(n) as u32),
                )
            })
            .filter(|(a, b)| a != b)
            .collect();
        let seed = rng.next_u64();
        let frames = 10;

        let mut builder = SimulatorBuilder::new(tree.clone(), config)
            .schedule(schedule.clone())
            .quality(quality.clone())
            .interference(Box::new(TwoHopInterference::with_extra_edges(
                edges.iter().copied(),
            )))
            .seed(seed)
            .trace_capacity(1 << 20);
        for task in &tasks {
            builder = builder.task(task.clone()).unwrap();
        }
        let mut dense = builder.build();
        dense.run_slotframes(frames);

        let mut reference = ReferenceSimulator::new(tree, config, schedule, quality, seed, &tasks)
            .with_interference(TwoHopInterference::with_extra_edges(edges));
        reference.run_slotframes(frames);

        assert_equivalent(&dense, &reference, &format!("extra-edge case {case}"));
    }
}

#[test]
fn dense_engine_matches_reference_under_runtime_schedule_mutation() {
    // The fast path caches a per-slot table keyed on the schedule version;
    // mutating the schedule mid-run must invalidate it exactly like the
    // reference's per-slot probing.
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x0034_17ED ^ case);
        let tree = random_tree(&mut rng, 16);
        let config = SlotframeConfig::new(15, 3, 10_000).unwrap();
        let (schedule, quality, tasks) = random_scenario(&mut rng, &tree, config);
        let seed = rng.next_u64();

        let mut builder = SimulatorBuilder::new(tree.clone(), config)
            .schedule(schedule.clone())
            .quality(quality.clone())
            .seed(seed)
            .trace_capacity(1 << 20);
        for task in &tasks {
            builder = builder.task(task.clone()).unwrap();
        }
        let mut dense = builder.build();
        let mut reference =
            ReferenceSimulator::new(tree.clone(), config, schedule, quality, seed, &tasks);

        for _round in 0..6u64 {
            dense.run_slotframes(2);
            reference.run_slotframes(2);
            // Apply the same mutation to both engines.
            let victim = NodeId(1 + rng.next_below(tree.len() as u64 - 1) as u32);
            let link = if rng.chance(0.5) {
                Link::up(victim)
            } else {
                Link::down(victim)
            };
            if rng.chance(0.5) {
                dense.schedule_mut().unassign_link(link);
                reference.schedule_mut().unassign_link(link);
            } else {
                let cell = Cell::new(
                    rng.next_below(u64::from(config.slots)) as u32,
                    rng.next_below(u64::from(config.channels)) as u16,
                );
                let _ = dense.schedule_mut().assign(cell, link);
                let _ = reference.schedule_mut().assign(cell, link);
            }
        }
        dense.run_slotframes(4);
        reference.run_slotframes(4);

        assert_equivalent(&dense, &reference, &format!("case {case}"));
    }
}
