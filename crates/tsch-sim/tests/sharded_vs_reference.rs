//! Sharded-execution fidelity: running one engine per depth-1 subtree and
//! merging the results must match the monolithic reference engine.
//!
//! With perfect links neither engine draws randomness, so the match is
//! bit-exact (modulo the documented gateway high-water upper bound and
//! delivery/trace ordering, which the merge canonicalizes). With lossy
//! links the per-shard RNG streams diverge from the monolithic stream, but
//! the sharded outcome must still be byte-identical across worker-thread
//! counts.

use tsch_sim::reference::ReferenceSimulator;
use tsch_sim::sharded::sort_trace;
use tsch_sim::{
    Cell, DeliveryRecord, Link, LinkQuality, NetworkSchedule, NodeId, Rate, ShardOptions,
    ShardedSimulator, SplitMix64, StatsMode, Task, TaskId, TraceEvent, Tree,
};

/// A random tree guaranteed to have several depth-1 subtrees.
fn random_shardable_tree(rng: &mut SplitMix64, max_nodes: usize) -> Tree {
    let tops = 2 + rng.next_below(3) as usize;
    let extra = rng.next_below((max_nodes - tops) as u64) as usize;
    let mut pairs = Vec::with_capacity(tops + extra);
    for i in 0..tops {
        pairs.push(((i + 1) as u32, 0));
    }
    for i in 0..extra {
        let v = (tops + i + 1) as u32;
        pairs.push((v, 1 + rng.next_below((tops + i) as u64) as u32));
    }
    Tree::from_parents(&pairs)
}

/// Depth-1 ancestor of `v` (the shard it belongs to).
fn top_of(tree: &Tree, mut v: NodeId) -> NodeId {
    loop {
        let parent = tree.parent(v).expect("non-root");
        if parent == NodeId(0) {
            return v;
        }
        v = parent;
    }
}

/// A random scenario whose schedule keeps every cell inside one subtree:
/// each depth-1 subtree draws its cells from a private slot range. Shared
/// cells *within* a subtree still occur, exercising collisions.
fn shardable_scenario(
    rng: &mut SplitMix64,
    tree: &Tree,
    slots: u32,
    channels: u16,
) -> (NetworkSchedule, Vec<Task>) {
    let config = tsch_sim::SlotframeConfig::new(slots, channels, 10_000).unwrap();
    let tops: Vec<NodeId> = tree.children(NodeId(0)).to_vec();
    let width = slots / tops.len() as u32;
    assert!(width >= 2, "slot range too narrow to be interesting");
    let mut schedule = NetworkSchedule::new(config);
    for v in tree.nodes().skip(1) {
        let k = tops.iter().position(|&t| t == top_of(tree, v)).unwrap() as u32;
        for link in [Link::up(v), Link::down(v)] {
            let cells = 1 + rng.next_below(3);
            for _ in 0..cells {
                let cell = Cell::new(
                    k * width + rng.next_below(u64::from(width)) as u32,
                    rng.next_below(u64::from(channels)) as u16,
                );
                let _ = schedule.assign(cell, link);
            }
        }
    }
    let tasks: Vec<Task> = tree
        .nodes()
        .skip(1)
        .map(|v| {
            let rate = Rate::per_slotframe(1 + rng.next_below(2) as u32);
            if rng.chance(0.5) {
                Task::echo(TaskId(v.0), v, rate)
            } else {
                Task::uplink(TaskId(v.0), v, rate)
            }
        })
        .collect();
    (schedule, tasks)
}

fn sorted_deliveries(records: &[DeliveryRecord]) -> Vec<DeliveryRecord> {
    let mut out = records.to_vec();
    out.sort_by_key(|d| (d.delivered.0, d.source.0, d.created.0));
    out
}

#[test]
fn sharded_matches_reference_with_perfect_links() {
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(0x5AA2_DED0 ^ case);
        let tree = random_shardable_tree(&mut rng, 24);
        let config = tsch_sim::SlotframeConfig::new(40, 4, 10_000).unwrap();
        let (schedule, tasks) = shardable_scenario(&mut rng, &tree, 40, 4);
        let seed = rng.next_u64();
        let frames = 12;

        let mut sharded = ShardedSimulator::try_new(
            &tree,
            config,
            &schedule,
            &LinkQuality::perfect(),
            seed,
            &tasks,
            ShardOptions {
                trace_capacity: 1 << 20,
                stats_mode: StatsMode::Full,
                serial_fallback_threshold: 0,
            },
        )
        .unwrap();
        sharded.run_slotframes(frames);
        let s = sharded.stats();

        let mut reference = ReferenceSimulator::new(
            tree.clone(),
            config,
            schedule,
            LinkQuality::perfect(),
            seed,
            &tasks,
        );
        reference.run_slotframes(frames);
        let r = reference.stats();

        let label = format!("case {case}");
        assert_eq!(s.tx_attempts, r.tx_attempts, "{label}: tx_attempts");
        assert_eq!(s.collisions, r.collisions, "{label}: collisions");
        assert_eq!(s.losses, r.losses, "{label}: losses");
        assert_eq!(s.queue_drops, r.queue_drops, "{label}: queue_drops");
        assert_eq!(s.generated, r.generated, "{label}: generated");
        assert_eq!(
            s.slots_simulated, r.slots_simulated,
            "{label}: slots simulated"
        );
        assert_eq!(
            s.tx_attempts_per_link(),
            r.tx_attempts_per_link(),
            "{label}: per-link attempts"
        );
        assert_eq!(
            s.deliveries,
            sorted_deliveries(&r.deliveries),
            "{label}: deliveries"
        );

        // Queue high-water: exact for every node but the gateway, whose
        // merged value is a documented upper bound on the reference peak.
        let mut s_hw = s.queue_high_water();
        let mut r_hw = r.queue_high_water();
        let s_root = s_hw.remove(&NodeId(0)).unwrap_or(0);
        let r_root = r_hw.remove(&NodeId(0)).unwrap_or(0);
        assert_eq!(s_hw, r_hw, "{label}: non-gateway queue high-water");
        assert!(
            s_root >= r_root,
            "{label}: gateway high-water {s_root} must bound reference {r_root}"
        );

        // Trace: same event multiset, compared in the canonical order.
        let mut r_trace: Vec<TraceEvent> = reference.trace().to_vec();
        sort_trace(&mut r_trace);
        assert_eq!(sharded.merged_trace(), r_trace, "{label}: trace events");
    }
}

#[test]
fn sharded_serial_and_parallel_runs_are_byte_identical() {
    for case in 0..8u64 {
        let mut rng = SplitMix64::new(0x0DD5_EED5 ^ case);
        let tree = random_shardable_tree(&mut rng, 24);
        let config = tsch_sim::SlotframeConfig::new(40, 4, 10_000).unwrap();
        let (schedule, tasks) = shardable_scenario(&mut rng, &tree, 40, 4);
        // Lossy links: per-shard RNG streams must not depend on the
        // thread count, only on the shard index.
        let mut quality = LinkQuality::perfect();
        for v in tree.nodes().skip(1) {
            for link in [Link::up(v), Link::down(v)] {
                if rng.chance(0.5) {
                    quality.set_pdr(link, 0.3 + 0.7 * rng.next_f64()).unwrap();
                }
            }
        }
        let seed = rng.next_u64();
        let options = ShardOptions {
            trace_capacity: 1 << 20,
            stats_mode: StatsMode::Full,
            serial_fallback_threshold: 0,
        };

        let mut serial =
            ShardedSimulator::try_new(&tree, config, &schedule, &quality, seed, &tasks, options)
                .unwrap();
        let mut parallel =
            ShardedSimulator::try_new(&tree, config, &schedule, &quality, seed, &tasks, options)
                .unwrap();
        serial.run_slotframes_with_threads(10, 1);
        parallel.run_slotframes_with_threads(10, 4);

        let a = serial.stats();
        let b = parallel.stats();
        let label = format!("case {case}");
        assert_eq!(a.deliveries, b.deliveries, "{label}: deliveries");
        assert_eq!(a.tx_attempts, b.tx_attempts, "{label}: tx_attempts");
        assert_eq!(a.collisions, b.collisions, "{label}: collisions");
        assert_eq!(a.losses, b.losses, "{label}: losses");
        assert_eq!(a.queue_drops, b.queue_drops, "{label}: queue_drops");
        assert_eq!(a.generated, b.generated, "{label}: generated");
        assert_eq!(
            a.tx_attempts_per_link(),
            b.tx_attempts_per_link(),
            "{label}: per-link attempts"
        );
        assert_eq!(
            a.queue_high_water(),
            b.queue_high_water(),
            "{label}: queue high-water"
        );
        assert_eq!(
            a.slots_simulated, b.slots_simulated,
            "{label}: slots simulated"
        );
        assert_eq!(
            serial.merged_trace(),
            parallel.merged_trace(),
            "{label}: trace events"
        );
    }
}

#[test]
fn streaming_sharded_stats_match_full_aggregates() {
    let mut rng = SplitMix64::new(0x57AE_A11E);
    let tree = random_shardable_tree(&mut rng, 20);
    let config = tsch_sim::SlotframeConfig::new(40, 4, 10_000).unwrap();
    let (schedule, tasks) = shardable_scenario(&mut rng, &tree, 40, 4);
    let seed = rng.next_u64();

    let mut full = ShardedSimulator::try_new(
        &tree,
        config,
        &schedule,
        &LinkQuality::perfect(),
        seed,
        &tasks,
        ShardOptions {
            trace_capacity: 0,
            stats_mode: StatsMode::Full,
            serial_fallback_threshold: 0,
        },
    )
    .unwrap();
    let mut streaming = ShardedSimulator::try_new(
        &tree,
        config,
        &schedule,
        &LinkQuality::perfect(),
        seed,
        &tasks,
        ShardOptions {
            trace_capacity: 0,
            stats_mode: StatsMode::Streaming,
            serial_fallback_threshold: 0,
        },
    )
    .unwrap();
    full.run_slotframes(10);
    streaming.run_slotframes(10);

    let f = full.stats();
    let s = streaming.stats();
    assert!(s.deliveries.is_empty(), "streaming mode keeps no records");
    assert_eq!(s.delivered(), f.delivered(), "delivered counter");
    assert_eq!(s.generated, f.generated);
    assert_eq!(s.tx_attempts_per_link(), f.tx_attempts_per_link());
    assert_eq!(s.latency_histogram(), f.latency_histogram());
    for source in tasks.iter().map(|t| t.source) {
        let fs = f.latency_summary(source);
        let ss = s.latency_summary(source);
        assert_eq!(fs.count, ss.count, "source {source:?} count");
        assert_eq!(fs.min, ss.min, "source {source:?} min");
        assert_eq!(fs.max, ss.max, "source {source:?} max");
        assert!((fs.mean - ss.mean).abs() < 1e-9, "source {source:?} mean");
    }
}
