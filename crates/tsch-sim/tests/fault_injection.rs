//! Fault-injection engine invariants: exact-ASN firing, crash/restart and
//! window semantics, determinism, and the event-driven `idle_wakeups == 0`
//! invariant holding under active fault windows (differentially checked
//! against the dense walk).

use tsch_sim::{
    Asn, Cell, FaultAction, FaultPlan, Link, NetworkSchedule, NodeId, Rate, Simulator,
    SimulatorBuilder, SlotframeConfig, Task, TaskId, Tree,
};

fn chain_tree() -> Tree {
    // 0 ← 1 ← 2
    Tree::from_parents(&[(1, 0), (2, 1)])
}

fn small_config() -> SlotframeConfig {
    SlotframeConfig::new(10, 2, 10_000).unwrap()
}

/// Collision-free chain schedule: 2→1 up, 1→0 up, 0→1 down, 1→2 down.
fn chain_schedule() -> NetworkSchedule {
    let mut s = NetworkSchedule::new(small_config());
    s.assign(Cell::new(0, 0), Link::up(NodeId(2))).unwrap();
    s.assign(Cell::new(1, 0), Link::up(NodeId(1))).unwrap();
    s.assign(Cell::new(2, 0), Link::down(NodeId(1))).unwrap();
    s.assign(Cell::new(3, 0), Link::down(NodeId(2))).unwrap();
    s
}

fn chain_sim(plan: FaultPlan) -> Simulator {
    SimulatorBuilder::new(chain_tree(), small_config())
        .schedule(chain_schedule())
        .seed(7)
        .fault_plan(plan)
        .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
        .unwrap()
        .build()
}

#[test]
fn faults_fire_at_exact_asn() {
    let plan = FaultPlan::new().crash(NodeId(2), Asn(25), None);
    let mut sim = chain_sim(plan);
    sim.run_slots(25); // now == 25, the fault slot has not executed yet
    assert!(!sim.node_is_down(NodeId(2)));
    assert_eq!(sim.faults_fired(), 0);
    assert_eq!(sim.pending_faults(), 1);
    sim.run_slots(1); // slot 25 executes: the action fires at its top
    assert!(sim.node_is_down(NodeId(2)));
    assert_eq!(sim.faults_fired(), 1);
    assert_eq!(sim.pending_faults(), 0);
}

#[test]
fn crash_clears_queues_and_pauses_generation() {
    // No schedule: packets pile up at node 2's uplink until the crash.
    let plan = FaultPlan::new().crash(NodeId(2), Asn(30), None);
    let mut sim = SimulatorBuilder::new(chain_tree(), small_config())
        .fault_plan(plan)
        .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
        .unwrap()
        .build();
    sim.run_slotframes(3); // frames 0..2 release 3 packets, none scheduled
    assert_eq!(sim.queue_depth(NodeId(2)), 3);
    sim.run_slotframes(3); // crash fires at slot 30 (frame-3 boundary)
    assert!(sim.node_is_down(NodeId(2)));
    assert_eq!(sim.queue_depth(NodeId(2)), 0, "crash drops queued frames");
    assert_eq!(sim.stats().queue_drops, 3);
    assert_eq!(sim.stats().generated, 3, "a down node releases nothing");
}

#[test]
fn restart_resumes_delivery() {
    let plan = FaultPlan::new().crash(NodeId(2), Asn(20), Some(Asn(50)));
    let mut sim = chain_sim(plan);
    sim.run_slotframes(2);
    let before = sim.stats().delivered();
    assert!(before > 0);
    sim.run_slotframes(3); // frames 2..4: down the whole time
    assert_eq!(sim.stats().generated, 2, "no releases while down");
    sim.run_slotframes(5); // restarted at slot 50
    assert!(!sim.node_is_down(NodeId(2)));
    assert!(sim.stats().delivered() > before, "deliveries resume");
}

#[test]
fn pdr_window_degrades_then_restores() {
    // Degrade the first hop to PDR 0 over frames 2..5; the retry limit
    // turns the dead window into drops, then traffic recovers.
    let plan = FaultPlan::new().pdr_window(Link::up(NodeId(2)), Asn(20), Asn(50), 0.0, 1.0);
    let mut sim = chain_sim(plan);
    sim.run_slotframes(10);
    let stats = sim.stats();
    assert!(stats.losses > 0, "dead window loses frames");
    assert_eq!(sim.faults_fired(), 2);
    // Packets released after the restore sail through: drain and compare.
    let delivered_before = stats.delivered();
    sim.run_slotframes(2);
    assert_eq!(sim.stats().delivered(), delivered_before + 2);
}

#[test]
fn mask_window_partitions_and_heals() {
    // Mask the 1→0 uplink: the gateway side of the cut sees nothing.
    let plan = FaultPlan::new().mask_window(Link::up(NodeId(1)), Asn(0), Asn(40));
    let mut sim = chain_sim(plan);
    sim.run_slotframes(4);
    assert_eq!(sim.stats().delivered(), 0, "cut isolates the subtree");
    assert!(sim.stats().losses > 0);
    sim.run_slotframes(4);
    assert!(sim.stats().delivered() > 0, "heals when the mask lifts");
}

#[test]
fn gateway_failover_window_stops_all_delivery() {
    let plan = FaultPlan::new().crash(NodeId(0), Asn(0), Some(Asn(40)));
    let mut sim = chain_sim(plan);
    sim.run_slotframes(4);
    assert_eq!(sim.stats().delivered(), 0, "no gateway, no delivery");
    sim.run_slotframes(6);
    assert!(sim.stats().delivered() > 0, "failover back online");
}

#[test]
fn burst_releases_mid_frame() {
    let plan = FaultPlan::new().at(Asn(23), FaultAction::TaskBurst(TaskId(0), 5));
    let mut sim = chain_sim(plan);
    sim.run_slots(23);
    assert_eq!(sim.stats().generated, 3); // frames 0, 1, 2
    sim.run_slots(1);
    assert_eq!(
        sim.stats().generated,
        3 + 5,
        "burst lands at its exact slot"
    );
    // The schedule carries one packet per frame, so the burst drains as a
    // backlog; nothing is lost along the way.
    sim.run_slotframes(10);
    let stats = sim.stats();
    assert_eq!(stats.generated, 3 + 5 + 10);
    assert_eq!(stats.queue_drops, 0);
    assert_eq!(
        stats.generated - stats.delivered(),
        sim.queued_packets() as u64,
        "burst packets are conserved"
    );
    assert!(stats.delivered() >= 10);
}

#[test]
fn rate_ramp_takes_effect_at_next_boundary() {
    let plan = FaultPlan::new().at(
        Asn(30),
        FaultAction::TaskRate(TaskId(0), Rate::per_slotframe(3)),
    );
    let mut sim = chain_sim(plan);
    sim.run_slotframes(3);
    assert_eq!(sim.stats().generated, 3);
    sim.run_slotframes(2);
    assert_eq!(sim.stats().generated, 3 + 6, "ramped rate from frame 3");
}

fn storm_plan() -> FaultPlan {
    FaultPlan::new()
        .crash(NodeId(2), Asn(95), Some(Asn(195)))
        .pdr_window(Link::up(NodeId(1)), Asn(100), Asn(300), 0.5, 1.0)
        .mask_window(Link::down(NodeId(2)), Asn(150), Asn(250))
        .at(Asn(123), FaultAction::TaskBurst(TaskId(0), 7))
        .at(
            Asn(200),
            FaultAction::TaskRate(TaskId(0), Rate::per_slotframe(2)),
        )
}

fn storm_sim(dense: bool) -> Simulator {
    SimulatorBuilder::new(chain_tree(), small_config())
        .schedule(chain_schedule())
        .seed(42)
        .dense_walk(dense)
        .fault_plan(storm_plan())
        .task(Task::echo(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
        .unwrap()
        .build()
}

#[test]
fn fault_storm_replays_identically_and_never_wakes_idle() {
    let mut a = storm_sim(false);
    let mut b = storm_sim(false);
    a.run_slotframes(50);
    b.run_slotframes(50);
    assert_eq!(a.stats().generated, b.stats().generated);
    assert_eq!(a.stats().delivered(), b.stats().delivered());
    assert_eq!(a.stats().losses, b.stats().losses);
    assert_eq!(a.stats().queue_drops, b.stats().queue_drops);
    assert_eq!(a.faults_fired(), b.faults_fired());
    assert_eq!(a.faults_fired(), storm_plan().len() as u64);
    assert_eq!(
        a.idle_wakeups(),
        0,
        "fault windows never break the calendar"
    );
}

#[test]
fn fault_storm_matches_dense_walk_baseline() {
    // The event-driven skip and the unconditional walk must agree under
    // active fault windows — the differential check that fault mutations
    // keep the queue-pressure index consistent.
    let mut event = storm_sim(false);
    let mut dense = storm_sim(true);
    event.run_slotframes(50);
    dense.run_slotframes(50);
    assert_eq!(event.stats().generated, dense.stats().generated);
    assert_eq!(event.stats().delivered(), dense.stats().delivered());
    assert_eq!(event.stats().losses, dense.stats().losses);
    assert_eq!(event.stats().collisions, dense.stats().collisions);
    assert_eq!(event.stats().queue_drops, dense.stats().queue_drops);
    assert_eq!(event.stats().tx_attempts, dense.stats().tx_attempts);
    assert_eq!(event.queued_packets(), dense.queued_packets());
    assert_eq!(event.idle_wakeups(), 0);
}

#[test]
#[should_panic(expected = "outside the tree")]
fn build_rejects_fault_on_unknown_node() {
    let plan = FaultPlan::new().crash(NodeId(99), Asn(1), None);
    let _ = SimulatorBuilder::new(chain_tree(), small_config())
        .fault_plan(plan)
        .build();
}

#[test]
#[should_panic(expected = "unregistered task")]
fn build_rejects_fault_on_unknown_task() {
    let plan = FaultPlan::new().at(Asn(1), FaultAction::TaskBurst(TaskId(9), 1));
    let _ = SimulatorBuilder::new(chain_tree(), small_config())
        .fault_plan(plan)
        .build();
}

#[test]
fn runtime_pdr_mutation_is_public_api() {
    let mut sim = chain_sim(FaultPlan::new());
    sim.set_link_pdr(Link::up(NodeId(2)), 0.0).unwrap();
    sim.run_slotframes(4);
    assert_eq!(sim.stats().delivered(), 0);
    assert!(sim.set_link_pdr(Link::up(NodeId(2)), 1.5).is_err());
    sim.set_link_pdr(Link::up(NodeId(2)), 1.0).unwrap();
    sim.run_slotframes(4);
    assert!(sim.stats().delivered() > 0);
}
