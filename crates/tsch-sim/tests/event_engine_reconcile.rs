//! Equivalence suite for the event-driven slot engine.
//!
//! Three engines must agree byte-for-byte on every seeded scenario:
//!
//! * the default **event** engine — slots are skipped unless a scheduled
//!   link holds traffic (the queue-pressure wake index);
//! * the **dense walk** — the same engine with
//!   [`SimulatorBuilder::dense_walk`] forcing the unconditional per-slot
//!   cell iteration the event path replaced;
//! * the map-based [`ReferenceSimulator`] oracle.
//!
//! The skip is sound because an idle slot draws no RNG, emits no stats and
//! no trace; these tests pin that argument empirically across random
//! topologies, shared cells, lossy links (both engines consume one
//! `SplitMix64` stream — a single extra or missing draw diverges
//! everything after it), runtime schedule mutation, and the calendar-based
//! control-plane retransmission timers. A final property test drives the
//! engine with observability on and requires the `sim.idle_wakeups`
//! counter to stay zero: the wake index may never promise work an
//! executed slot does not find.

use tsch_sim::reference::ReferenceSimulator;
use tsch_sim::{
    Asn, Cell, Chaos, ControlPlane, Delivered, Link, LinkQuality, Lossy, NetworkSchedule, NodeId,
    Rate, Simulator, SimulatorBuilder, SlotframeConfig, SplitMix64, Task, TaskId, TraceEvent,
    TransportStats, Tree,
};

fn random_tree(rng: &mut SplitMix64, max_nodes: usize) -> Tree {
    let edges = 1 + rng.next_below(max_nodes as u64 - 1) as usize;
    let mut pairs = Vec::with_capacity(edges);
    for i in 0..edges {
        pairs.push(((i + 1) as u32, rng.next_below(i as u64 + 1) as u32));
    }
    Tree::from_parents(&pairs)
}

/// A schedule with shared cells, to exercise collisions; `lossy` adds
/// imperfect links so the RNG stream is actually consumed.
fn random_scenario(
    rng: &mut SplitMix64,
    tree: &Tree,
    config: SlotframeConfig,
    lossy: bool,
) -> (NetworkSchedule, LinkQuality, Vec<Task>) {
    let mut schedule = NetworkSchedule::new(config);
    let mut quality = LinkQuality::perfect();
    for v in tree.nodes().skip(1) {
        for link in [Link::up(v), Link::down(v)] {
            let cells = 1 + rng.next_below(3);
            for _ in 0..cells {
                let cell = Cell::new(
                    rng.next_below(u64::from(config.slots)) as u32,
                    rng.next_below(u64::from(config.channels)) as u16,
                );
                let _ = schedule.assign(cell, link);
            }
            if lossy && rng.chance(0.4) {
                quality.set_pdr(link, 0.3 + 0.7 * rng.next_f64()).unwrap();
            }
        }
    }
    let tasks: Vec<Task> = tree
        .nodes()
        .skip(1)
        .map(|v| {
            let rate = Rate::per_slotframe(1 + rng.next_below(2) as u32);
            if rng.chance(0.5) {
                Task::echo(TaskId(v.0), v, rate)
            } else {
                Task::uplink(TaskId(v.0), v, rate)
            }
        })
        .collect();
    (schedule, quality, tasks)
}

fn build(
    tree: &Tree,
    config: SlotframeConfig,
    schedule: &NetworkSchedule,
    quality: &LinkQuality,
    seed: u64,
    tasks: &[Task],
    dense_walk: bool,
) -> Simulator {
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(schedule.clone())
        .quality(quality.clone())
        .seed(seed)
        .dense_walk(dense_walk)
        .trace_capacity(1 << 20);
    for task in tasks {
        builder = builder.task(task.clone()).unwrap();
    }
    builder.build()
}

fn assert_sims_identical(a: &Simulator, b: &Simulator, label: &str) {
    let (x, y) = (a.stats(), b.stats());
    assert_eq!(x.deliveries, y.deliveries, "{label}: deliveries");
    assert_eq!(x.tx_attempts, y.tx_attempts, "{label}: tx_attempts");
    assert_eq!(
        x.tx_attempts_per_link(),
        y.tx_attempts_per_link(),
        "{label}: per-link attempts"
    );
    assert_eq!(x.collisions, y.collisions, "{label}: collisions");
    assert_eq!(x.losses, y.losses, "{label}: losses");
    assert_eq!(x.queue_drops, y.queue_drops, "{label}: queue_drops");
    assert_eq!(x.generated, y.generated, "{label}: generated");
    assert_eq!(
        x.queue_high_water(),
        y.queue_high_water(),
        "{label}: queue high-water"
    );
    assert_eq!(
        x.slots_simulated, y.slots_simulated,
        "{label}: slots simulated"
    );
    let ta: Vec<TraceEvent> = a.trace().iter().copied().collect();
    let tb: Vec<TraceEvent> = b.trace().iter().copied().collect();
    assert_eq!(ta, tb, "{label}: trace events");
}

fn assert_matches_reference(sim: &Simulator, reference: &ReferenceSimulator, label: &str) {
    let (d, r) = (sim.stats(), reference.stats());
    assert_eq!(d.deliveries, r.deliveries, "{label}: deliveries");
    assert_eq!(d.tx_attempts, r.tx_attempts, "{label}: tx_attempts");
    assert_eq!(d.collisions, r.collisions, "{label}: collisions");
    assert_eq!(d.losses, r.losses, "{label}: losses");
    assert_eq!(d.queue_drops, r.queue_drops, "{label}: queue_drops");
    assert_eq!(
        d.queue_high_water(),
        r.queue_high_water(),
        "{label}: queue high-water"
    );
    let trace: Vec<TraceEvent> = sim.trace().iter().copied().collect();
    assert_eq!(trace, reference.trace(), "{label}: trace events");
}

#[test]
fn event_engine_matches_dense_walk_and_reference_at_perfect_pdr() {
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(0xE7E4_7000 ^ case);
        let tree = random_tree(&mut rng, 24);
        let config = SlotframeConfig::new(20, 4, 10_000).unwrap();
        let (schedule, quality, tasks) = random_scenario(&mut rng, &tree, config, false);
        let seed = rng.next_u64();
        let frames = 12;

        let mut event = build(&tree, config, &schedule, &quality, seed, &tasks, false);
        let mut dense = build(&tree, config, &schedule, &quality, seed, &tasks, true);
        event.run_slotframes(frames);
        dense.run_slotframes(frames);
        assert_sims_identical(&event, &dense, &format!("perfect case {case}"));

        let mut reference = ReferenceSimulator::new(tree, config, schedule, quality, seed, &tasks);
        reference.run_slotframes(frames);
        assert_matches_reference(&event, &reference, &format!("perfect case {case}"));
    }
}

#[test]
fn event_engine_matches_dense_walk_on_lossy_links() {
    // Lossy links make slot skipping observable through the shared RNG
    // stream: if the event engine ever skipped a slot the dense walk
    // executes (or vice versa), the loss pattern diverges from that draw
    // on.
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(0xE7E4_7105 ^ case);
        let tree = random_tree(&mut rng, 24);
        let config = SlotframeConfig::new(20, 4, 10_000).unwrap();
        let (schedule, quality, tasks) = random_scenario(&mut rng, &tree, config, true);
        let seed = rng.next_u64();
        let frames = 12;

        let mut event = build(&tree, config, &schedule, &quality, seed, &tasks, false);
        let mut dense = build(&tree, config, &schedule, &quality, seed, &tasks, true);
        event.run_slotframes(frames);
        dense.run_slotframes(frames);
        assert_sims_identical(&event, &dense, &format!("lossy case {case}"));
        assert!(
            event.stats().losses > 0,
            "lossy case {case}: scenario must actually draw losses"
        );

        let mut reference = ReferenceSimulator::new(tree, config, schedule, quality, seed, &tasks);
        reference.run_slotframes(frames);
        assert_matches_reference(&event, &reference, &format!("lossy case {case}"));
    }
}

#[test]
fn event_engine_matches_dense_walk_under_schedule_mutation() {
    // Mutating the schedule mid-run rebuilds the wake index; pressure
    // accumulated by occupied links must survive the rebuild exactly.
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0xE7E4_7200 ^ case);
        let tree = random_tree(&mut rng, 16);
        let config = SlotframeConfig::new(15, 3, 10_000).unwrap();
        let (schedule, quality, tasks) = random_scenario(&mut rng, &tree, config, true);
        let seed = rng.next_u64();

        let mut event = build(&tree, config, &schedule, &quality, seed, &tasks, false);
        let mut dense = build(&tree, config, &schedule, &quality, seed, &tasks, true);
        for _round in 0..6u64 {
            event.run_slotframes(2);
            dense.run_slotframes(2);
            let victim = NodeId(1 + rng.next_below(tree.len() as u64 - 1) as u32);
            let link = if rng.chance(0.5) {
                Link::up(victim)
            } else {
                Link::down(victim)
            };
            if rng.chance(0.5) {
                event.schedule_mut().unassign_link(link);
                dense.schedule_mut().unassign_link(link);
            } else {
                let cell = Cell::new(
                    rng.next_below(u64::from(config.slots)) as u32,
                    rng.next_below(u64::from(config.channels)) as u16,
                );
                let _ = event.schedule_mut().assign(cell, link);
                let _ = dense.schedule_mut().assign(cell, link);
            }
        }
        event.run_slotframes(4);
        dense.run_slotframes(4);
        assert_sims_identical(&event, &dense, &format!("mutation case {case}"));
    }
}

/// Runs a seeded control-plane scenario to completion and returns its
/// full observable outcome.
fn control_plane_outcome(
    make_transport: &dyn Fn() -> Box<dyn tsch_sim::Transport>,
) -> (Vec<Delivered<u32>>, TransportStats, u64) {
    let tree = Tree::paper_fig1_example();
    let config = SlotframeConfig::new(20, 4, 10_000).unwrap();
    let mut plane: ControlPlane<u32> = ControlPlane::new(&tree, config, make_transport());
    let pairs = [
        (NodeId(9), NodeId(7)),
        (NodeId(4), NodeId(1)),
        (NodeId(1), NodeId(4)),
        (NodeId(7), NodeId(9)),
    ];
    for (i, &(from, to)) in pairs.iter().cycle().take(12).enumerate() {
        plane
            .send(&tree, Asn(i as u64 * 3), from, to, i as u32)
            .unwrap();
    }
    let mut delivered = Vec::new();
    while let Some(at) = plane.next_event() {
        delivered.extend(plane.poll(&tree, at).unwrap());
    }
    (delivered, plane.stats(), plane.messages_sent())
}

#[test]
fn calendar_timers_are_byte_identical_under_lossy_transport() {
    // The retransmission path is driven by the event calendar; two
    // identically seeded runs must produce the same delivery stream,
    // stats, and message count — and retransmissions must actually fire,
    // so the calendar path is the one being exercised.
    let run = || control_plane_outcome(&|| Box::new(Lossy::uniform(0.5, 0xCAFE).unwrap()) as _);
    let (delivered, stats, sent) = run();
    assert_eq!((delivered.clone(), stats, sent), run(), "lossy reruns");
    assert!(stats.retransmissions > 0, "timers must fire");
    assert_eq!(delivered.len(), 12, "reliability recovers every payload");
}

#[test]
fn calendar_timers_are_byte_identical_under_chaos_transport() {
    let run = || control_plane_outcome(&|| Box::new(Chaos::new(0xD1CE, 0.25, 0.2, 0.5, 7)) as _);
    let (delivered, stats, sent) = run();
    assert_eq!((delivered.clone(), stats, sent), run(), "chaos reruns");
    assert!(stats.retransmissions > 0, "timers must fire");
    assert!(
        stats.duplicates_suppressed > 0,
        "chaos duplicates exercise the dedup window"
    );
    assert_eq!(delivered.len(), 12, "reliability recovers every payload");
}

#[test]
fn calendar_never_wakes_an_idle_slot() {
    // Property: with observability on, the engine's own idle-wakeup
    // counter stays zero across random scenarios, lossy links, and
    // runtime schedule mutation — executed slots always find work.
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0xE7E4_7300 ^ case);
        let tree = random_tree(&mut rng, 24);
        let config = SlotframeConfig::new(20, 4, 10_000).unwrap();
        let (schedule, quality, tasks) = random_scenario(&mut rng, &tree, config, true);
        let seed = rng.next_u64();

        let mut builder = SimulatorBuilder::new(tree.clone(), config)
            .schedule(schedule.clone())
            .quality(quality.clone())
            .seed(seed)
            .observability(16);
        for task in &tasks {
            builder = builder.task(task.clone()).unwrap();
        }
        let mut sim = builder.build();
        for _round in 0..4u64 {
            sim.run_slotframes(3);
            let victim = NodeId(1 + rng.next_below(tree.len() as u64 - 1) as u32);
            sim.schedule_mut().unassign_link(Link::up(victim));
        }
        sim.run_slotframes(3);
        let snap = sim.metrics_snapshot();
        assert_eq!(
            snap.counter("sim.idle_wakeups"),
            Some(0),
            "case {case}: the wake index promised work an executed slot did not find"
        );
        assert!(
            snap.counter("sim.slots").unwrap_or(0) > 0,
            "case {case}: the run actually executed"
        );
    }
}
